#include <gtest/gtest.h>

#include <cmath>

#include "queueing/mmc.h"

namespace kairos::queueing {
namespace {

TEST(ErlangCTest, KnownValues) {
  // M/M/1: ErlangC == rho.
  EXPECT_NEAR(ErlangC(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(ErlangC(1, 0.9), 0.9, 1e-12);
  // M/M/2 at a=1 (rho=0.5): C = 1/3 (textbook value).
  EXPECT_NEAR(ErlangC(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangCTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(ErlangC(4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ErlangC(4, 4.0), 1.0);   // unstable
  EXPECT_DOUBLE_EQ(ErlangC(4, 10.0), 1.0);  // far past stability
  EXPECT_THROW(ErlangC(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ErlangC(2, -1.0), std::invalid_argument);
}

TEST(ErlangCTest, MonotoneInLoadAndServers) {
  double prev = 0.0;
  for (double a = 0.5; a < 4.0; a += 0.5) {
    const double c = ErlangC(4, a);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // More servers at the same offered load wait less.
  EXPECT_LT(ErlangC(8, 3.0), ErlangC(4, 3.0));
}

TEST(MmcMeanWaitTest, MatchesMm1ClosedForm) {
  // M/M/1: Wq = rho / (mu - lambda).
  const double mu = 10.0, lambda = 7.0;
  EXPECT_NEAR(MmcMeanWait(1, lambda, mu), 0.7 / (mu - lambda), 1e-12);
  EXPECT_TRUE(std::isinf(MmcMeanWait(1, 10.0, 10.0)));
}

TEST(MmcSojournTailTest, Mm1IsExponentialSojourn) {
  // M/M/1 sojourn ~ Exp(mu - lambda).
  const double mu = 10.0, lambda = 6.0, t = 0.3;
  EXPECT_NEAR(MmcSojournTail(1, lambda, mu, t),
              std::exp(-(mu - lambda) * t), 1e-9);
}

TEST(MmcSojournTailTest, BasicProperties) {
  EXPECT_DOUBLE_EQ(MmcSojournTail(2, 5.0, 10.0, -1.0), 1.0);
  EXPECT_NEAR(MmcSojournTail(2, 5.0, 10.0, 0.0), 1.0, 1e-12);
  // Tail decreases in t.
  double prev = 1.0;
  for (double t = 0.0; t < 2.0; t += 0.1) {
    const double tail = MmcSojournTail(3, 20.0, 10.0, t);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
  // Unstable: always waiting.
  EXPECT_DOUBLE_EQ(MmcSojournTail(1, 20.0, 10.0, 5.0), 1.0);
}

TEST(MmcSojournTailTest, EqualRateLimitContinuous) {
  // r1 == r2 exactly when c*mu - lambda == mu; check continuity there.
  const double mu = 10.0;
  const int c = 2;
  const double lambda = c * mu - mu;  // 10 -> r1 == r2
  const double at = MmcSojournTail(c, lambda, mu, 0.2);
  const double near = MmcSojournTail(c, lambda + 1e-7, mu, 0.2);
  EXPECT_NEAR(at, near, 1e-5);
}

TEST(MmcMaxRateForQosTest, RespectsQosAndScalesWithServers) {
  const double mu = 20.0;          // 50 ms mean service
  const double qos = 0.5;          // 500 ms p99 target
  const double one = MmcMaxRateForQos(1, mu, qos);
  const double four = MmcMaxRateForQos(4, mu, qos);
  EXPECT_GT(one, 0.0);
  EXPECT_LT(one, mu);              // below saturation
  EXPECT_GT(four, 3.0 * one);      // near-linear scaling plus pooling gain
  // At the returned rate the p99 target holds.
  EXPECT_LE(MmcSojournTail(1, one, mu, qos), 0.01 + 1e-6);
}

TEST(MmcMaxRateForQosTest, InfeasibleQosIsZero) {
  // Mean service 100 ms but p99 target 10 ms: even an idle server misses.
  EXPECT_DOUBLE_EQ(MmcMaxRateForQos(4, 10.0, 0.010), 0.0);
  EXPECT_THROW(MmcMaxRateForQos(0, 10.0, 0.1), std::invalid_argument);
}

TEST(NaivePooledMmcThroughputTest, AddsPools) {
  const PoolModel base{2, 20.0, 0.5};
  const PoolModel aux[] = {{3, 12.0, 0.5}, {0, 12.0, 0.5}};
  const double base_only = NaivePooledMmcThroughput(base, nullptr, 0);
  const double with_aux = NaivePooledMmcThroughput(base, aux, 2);
  EXPECT_GT(base_only, 0.0);
  EXPECT_GT(with_aux, base_only);
  EXPECT_NEAR(with_aux - base_only, MmcMaxRateForQos(3, 12.0, 0.5), 1e-9);
  // A pool whose lone-service p99 already misses QoS contributes nothing.
  const PoolModel hopeless[] = {{5, 8.0, 0.5}};
  EXPECT_NEAR(NaivePooledMmcThroughput(base, hopeless, 1), base_only, 1e-9);
}

}  // namespace
}  // namespace kairos::queueing
