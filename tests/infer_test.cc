#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/stats.h"
#include "infer/net.h"
#include "infer/ops.h"
#include "infer/rec_models.h"
#include "infer/tensor.h"
#include "infer/thread_pool.h"

namespace kairos::infer {
namespace {

TEST(TensorTest, ShapeAndAccess) {
  Tensor t(3, 4, 1.5f);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  t(2, 3) = 7.0f;
  EXPECT_FLOAT_EQ(t(2, 3), 7.0f);
  EXPECT_FLOAT_EQ(t.row(2)[3], 7.0f);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallAndEmpty) {
  ThreadPool pool(4);
  int count = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.ParallelFor(2, [&](std::size_t) { ++count; });  // runs inline
  EXPECT_EQ(count, 2);
}

TEST(ThreadPoolTest, SingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(GemmTest, MatchesManualComputation) {
  ThreadPool pool(2);
  Tensor x(2, 3);
  // x = [[1,2,3],[4,5,6]]
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      x(r, c) = static_cast<float>(r * 3 + c + 1);
    }
  }
  Tensor w(3, 2);
  // w = [[1,0],[0,1],[1,1]]
  w(0, 0) = 1;
  w(1, 1) = 1;
  w(2, 0) = 1;
  w(2, 1) = 1;
  Tensor out(2, 2);
  Gemm(x, w, out, pool);
  EXPECT_FLOAT_EQ(out(0, 0), 4.0f);   // 1 + 3
  EXPECT_FLOAT_EQ(out(0, 1), 5.0f);   // 2 + 3
  EXPECT_FLOAT_EQ(out(1, 0), 10.0f);  // 4 + 6
  EXPECT_FLOAT_EQ(out(1, 1), 11.0f);  // 5 + 6
}

TEST(GemmTest, DimensionMismatchThrows) {
  ThreadPool pool(1);
  Tensor x(2, 3), w(4, 2), out(2, 2);
  EXPECT_THROW(Gemm(x, w, out, pool), std::invalid_argument);
}

TEST(AddBiasActivateTest, ReluAndSigmoid) {
  Tensor t(1, 2);
  t(0, 0) = -1.0f;
  t(0, 1) = 1.0f;
  Tensor relu_t = t;
  AddBiasActivate(relu_t, {0.0f, 0.0f}, Activation::kRelu);
  EXPECT_FLOAT_EQ(relu_t(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu_t(0, 1), 1.0f);

  Tensor sig_t(1, 1);
  sig_t(0, 0) = 0.0f;
  AddBiasActivate(sig_t, {0.0f}, Activation::kSigmoid);
  EXPECT_NEAR(sig_t(0, 0), 0.5f, 1e-6);
}

TEST(EmbeddingTableTest, GatherPooledSumsRows) {
  ThreadPool pool(1);
  EmbeddingTable table(10, 4, /*seed=*/1);
  Tensor out(1, 4);
  // Gathering the same row twice doubles it.
  std::vector<std::uint32_t> idx = {3, 3};
  table.GatherPooled(idx, 2, out, pool);
  Tensor single(1, 4);
  table.GatherPooled({3}, 1, single, pool);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(out(0, c), 2.0f * single(0, c), 1e-6);
  }
}

TEST(EmbeddingTableTest, ShapeMismatchThrows) {
  ThreadPool pool(1);
  EmbeddingTable table(10, 4, 1);
  Tensor out(2, 4);
  EXPECT_THROW(table.GatherPooled({1, 2, 3}, 2, out, pool),
               std::invalid_argument);
}

TEST(ConcatColumnsTest, LaysOutPartsInOrder) {
  Tensor a(1, 2), b(1, 1);
  a(0, 0) = 1;
  a(0, 1) = 2;
  b(0, 0) = 3;
  Tensor out(1, 3);
  ConcatColumns({&a, &b}, out);
  EXPECT_FLOAT_EQ(out(0, 0), 1);
  EXPECT_FLOAT_EQ(out(0, 1), 2);
  EXPECT_FLOAT_EQ(out(0, 2), 3);
}

TEST(MlpTest, ShapesPropagate) {
  ThreadPool pool(2);
  Mlp mlp({8, 16, 4}, Activation::kSigmoid, 7);
  EXPECT_EQ(mlp.in_features(), 8u);
  EXPECT_EQ(mlp.out_features(), 4u);
  Tensor x(5, 8, 0.1f);
  const Tensor y = mlp.Forward(x, pool);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 4u);
  // Sigmoid output is in (0, 1).
  for (float v : y.data()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(MlpTest, DeterministicForSameSeed) {
  ThreadPool pool(1);
  Mlp a({4, 8, 1}, Activation::kNone, 42);
  Mlp b({4, 8, 1}, Activation::kNone, 42);
  Tensor x(3, 4, 0.5f);
  const Tensor ya = a.Forward(x, pool);
  const Tensor yb = b.Forward(x, pool);
  for (std::size_t i = 0; i < ya.size(); ++i) {
    EXPECT_FLOAT_EQ(ya.data()[i], yb.data()[i]);
  }
}

class RecModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RecModelTest, ProducesPerSampleScores) {
  ThreadPool pool(2);
  const auto model = BuildRecModel(GetParam());
  EXPECT_EQ(model->Name(), GetParam());
  const Tensor scores = model->Infer(17, pool, /*seed=*/3);
  EXPECT_EQ(scores.rows(), 17u);
  EXPECT_EQ(scores.cols(), 1u);
  for (float v : scores.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST_P(RecModelTest, LatencyGrowsRoughlyLinearlyWithBatch) {
  // The Sec. 5.1 observation this whole reproduction leans on: latency vs.
  // batch size is near-perfectly linear (paper: Pearson > 0.99). Real
  // wall-clock measurement is noisy on shared CI machines, so the gate is
  // slightly relaxed but still demands strong linearity.
  ThreadPool pool(2);
  const auto model = BuildRecModel(GetParam());
  const std::vector<std::size_t> batches = {8, 64, 160, 320, 512};
  const std::vector<double> lat = MeasureLatencyMs(*model, batches, pool, 3);
  std::vector<double> xs(batches.begin(), batches.end());
  EXPECT_GT(PearsonCorrelation(xs, lat), 0.95) << model->Name();
}

INSTANTIATE_TEST_SUITE_P(AllModels, RecModelTest,
                         ::testing::Values("NCF", "RM2", "WND", "MT-WND",
                                           "DIEN"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(RecModelTest, UnknownNameThrows) {
  EXPECT_THROW(BuildRecModel("BERT"), std::out_of_range);
}

TEST(RecModelTest, ZeroBatchThrows) {
  ThreadPool pool(1);
  const auto model = BuildRecModel("NCF");
  EXPECT_THROW(model->Infer(0, pool), std::invalid_argument);
}

}  // namespace
}  // namespace kairos::infer
