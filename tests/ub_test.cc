#include <gtest/gtest.h>

#include <array>

#include "core/kairos.h"
#include "serving/throughput_eval.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

namespace kairos::ub {
namespace {

using cloud::Catalog;
using cloud::Config;
using latency::LatencyModel;

// --- The paper's Fig. 7 worked examples, verbatim. ---

TEST(UpperBoundGeneralTest, PaperScenario1BaseBottleneck) {
  // Qb=100, Qb_s+=90, Qa=150, f=0.6 -> C = 0.4/0.6*150 = 100 >= 90, so the
  // base is the bottleneck: QPSmax = 90 / 0.4 = 225.
  const std::array<std::pair<int, double>, 1> aux = {{{1, 150.0}}};
  EXPECT_NEAR(UpperBoundGeneral(1, 100.0, 90.0, aux, 0.6), 225.0, 1e-9);
}

TEST(UpperBoundGeneralTest, PaperScenario2AuxBottleneck) {
  // Qb=100, Qb_s+=90, Qa=140, f=0.7 -> C = 0.3/0.7*140 = 60 < 90, so the
  // auxiliary is the bottleneck: QPSmax = 140/0.7 + (90-60)/90*100 = 233.3.
  const std::array<std::pair<int, double>, 1> aux = {{{1, 140.0}}};
  EXPECT_NEAR(UpperBoundGeneral(1, 100.0, 90.0, aux, 0.7), 233.3333, 1e-3);
}

TEST(UpperBoundGeneralTest, MultiNodeScaling) {
  // Eq. 12: u base nodes scale the base-bottleneck bound linearly.
  const std::array<std::pair<int, double>, 1> aux = {{{1, 150.0}}};
  const double one = UpperBoundGeneral(1, 100.0, 90.0, aux, 0.6);
  // With u=2 the base-side capacity doubles; C = 100 vs 180 means the
  // auxiliary becomes the bottleneck (Eq. 13 branch).
  const double two = UpperBoundGeneral(2, 100.0, 90.0, aux, 0.6);
  EXPECT_GT(two, one);
  // Doubling the aux nodes under base bottleneck leaves Eq. 12 unchanged.
  const std::array<std::pair<int, double>, 1> aux2 = {{{2, 150.0}}};
  EXPECT_NEAR(UpperBoundGeneral(1, 100.0, 90.0, aux2, 0.6), 225.0, 1e-9);
}

TEST(UpperBoundGeneralTest, MultipleAuxTypesAggregate) {
  // Two aux types (Eq. 14-15): capacities sum inside C.
  const std::array<std::pair<int, double>, 2> aux = {{{1, 80.0}, {2, 30.0}}};
  // sum v*Qa = 140, same as scenario 2.
  EXPECT_NEAR(UpperBoundGeneral(1, 100.0, 90.0, aux, 0.7), 233.3333, 1e-3);
}

TEST(UpperBoundGeneralTest, EdgeCases) {
  const std::array<std::pair<int, double>, 1> aux = {{{1, 150.0}}};
  // No base nodes: nothing can serve the largest queries.
  EXPECT_DOUBLE_EQ(UpperBoundGeneral(0, 100.0, 90.0, aux, 0.6), 0.0);
  // No aux capacity: homogeneous u * Qb.
  EXPECT_DOUBLE_EQ(UpperBoundGeneral(3, 100.0, 90.0, {}, 0.6), 300.0);
  // f' = 0: no query fits any auxiliary; again u * Qb.
  EXPECT_DOUBLE_EQ(UpperBoundGeneral(2, 100.0, 90.0, aux, 0.0), 200.0);
  // f' = 1: both tiers at full rate.
  EXPECT_DOUBLE_EQ(UpperBoundGeneral(1, 100.0, 90.0, aux, 1.0), 250.0);
}

// --- Estimator over catalog/model/monitor. ---

Catalog TinyCatalog() {
  Catalog c;
  c.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"aux", "A", cloud::InstanceClass::kGeneralPurposeCpu, 0.25, false});
  return c;
}

LatencyModel TinyModel() { return LatencyModel({{10.0, 0.1}, {20.0, 0.4}}); }

TEST(UpperBoundEstimatorTest, BreakdownFieldsAreConsistent) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const UpperBoundEstimator est(catalog, truth, /*qos_ms=*/150.0);
  const auto monitor =
      core::MonitorFromMix(workload::LogNormalBatches::Production(), 8000, 3);

  const UpperBoundBreakdown b = est.Estimate(Config({2, 3}), monitor);
  // s' for the aux: (0.98*150 - 20) / 0.4 = 317.
  EXPECT_EQ(b.s_prime, 317);
  EXPECT_GT(b.f_prime, 0.5);
  EXPECT_LT(b.f_prime, 1.0);
  EXPECT_GT(b.q_b, 0.0);
  EXPECT_GT(b.q_b_splus, 0.0);
  EXPECT_LT(b.q_b_splus, b.q_b);  // large queries are slower
  EXPECT_GT(b.aux_rate_sum, 0.0);
  EXPECT_GT(b.qps_max, 0.0);
}

TEST(UpperBoundEstimatorTest, HomogeneousEqualsBaseRateTimesNodes) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const UpperBoundEstimator est(catalog, truth, 150.0);
  const auto monitor =
      core::MonitorFromMix(workload::LogNormalBatches::Production(), 8000, 3);
  const auto b1 = est.Estimate(Config({1, 0}), monitor);
  const auto b3 = est.Estimate(Config({3, 0}), monitor);
  EXPECT_NEAR(b3.qps_max, 3.0 * b1.qps_max, 1e-9);
  EXPECT_NEAR(b1.qps_max, b1.q_b, 1e-9);
}

TEST(UpperBoundEstimatorTest, MonotoneInAddedInstances) {
  // The justification for Kairos+ sub-configuration pruning: adding
  // hardware can only raise the bound.
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const UpperBoundEstimator est(catalog, truth, 150.0);
  const auto monitor =
      core::MonitorFromMix(workload::LogNormalBatches::Production(), 8000, 3);
  for (int u = 1; u <= 3; ++u) {
    for (int v = 0; v <= 6; ++v) {
      const double here = est.QpsMax(Config({u, v}), monitor);
      EXPECT_GE(est.QpsMax(Config({u + 1, v}), monitor), here - 1e-9);
      EXPECT_GE(est.QpsMax(Config({u, v + 1}), monitor), here - 1e-9);
    }
  }
}

TEST(UpperBoundEstimatorTest, InvalidInputsThrow) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EXPECT_THROW(UpperBoundEstimator(catalog, truth, 0.0),
               std::invalid_argument);
  const UpperBoundEstimator est(catalog, truth, 100.0);
  const auto monitor =
      core::MonitorFromMix(workload::LogNormalBatches::Production(), 100, 3);
  EXPECT_THROW(est.Estimate(Config({1}), monitor), std::invalid_argument);
}

// Key paper invariant (Definition 2): the estimated bound dominates the
// throughput any distribution scheme actually achieves, across configs.
class UbDominatesAchieved : public ::testing::TestWithParam<
                                std::tuple<std::string, int, int>> {};

TEST_P(UbDominatesAchieved, BoundHolds) {
  const auto [scheme, u, v] = GetParam();
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const double qos_ms = 150.0;
  const auto mix = workload::LogNormalBatches::Production();
  const auto monitor = core::MonitorFromMix(mix, 8000, 11);
  const UpperBoundEstimator est(catalog, truth, qos_ms);
  const Config config({u, v});
  const double bound = est.QpsMax(config, monitor);

  serving::EvalOptions opt;
  opt.queries = 500;
  opt.rate_guess = std::max(1.0, 0.5 * bound);
  const auto achieved = serving::EvaluateConfig(
      catalog, config, truth, qos_ms, core::MakePolicyFactory(scheme, 200),
      mix, opt);
  EXPECT_LE(achieved.qps, bound * 1.05) << config.ToString() << " " << scheme;
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndConfigs, UbDominatesAchieved,
    ::testing::Combine(::testing::Values("KAIROS", "RIBBON", "CLKWRK"),
                       ::testing::Values(1, 2), ::testing::Values(0, 2, 4)));

// --- Similarity-based selection. ---

TEST(SelectorTest, RankIsDescendingAndStable) {
  const std::vector<Config> configs = {Config({1, 0}), Config({2, 0}),
                                       Config({3, 0})};
  const std::vector<double> bounds = {5.0, 9.0, 9.0};
  const auto ranked = RankByUpperBound(configs, bounds);
  EXPECT_DOUBLE_EQ(ranked[0].upper_bound, 9.0);
  EXPECT_EQ(ranked[0].config, Config({2, 0}));  // stable: first 9.0 wins
  EXPECT_EQ(ranked[2].config, Config({1, 0}));
}

TEST(SelectorTest, Top3AgreementPicksTopRanked) {
  Catalog catalog = TinyCatalog();
  std::vector<RankedConfig> ranked = {
      {Config({2, 5}), 100.0}, {Config({2, 4}), 99.0}, {Config({2, 3}), 98.0},
      {Config({1, 9}), 97.0},
  };
  const SelectionResult r = SelectConfiguration(ranked, catalog);
  EXPECT_FALSE(r.used_distance_rule);
  EXPECT_EQ(r.chosen, Config({2, 5}));
  EXPECT_EQ(r.chosen_rank, 0u);
}

TEST(SelectorTest, DisagreementUsesMinSseCentroid) {
  Catalog catalog = TinyCatalog();
  // Base counts disagree in the top 3; among the cluster below, (2,4) is
  // the centroid-most config.
  std::vector<RankedConfig> ranked = {
      {Config({1, 9}), 100.0}, {Config({3, 3}), 99.5}, {Config({2, 4}), 99.0},
      {Config({2, 5}), 98.5},  {Config({2, 3}), 98.0}, {Config({3, 4}), 97.5},
  };
  const SelectionResult r = SelectConfiguration(ranked, catalog);
  EXPECT_TRUE(r.used_distance_rule);
  // Verify it actually minimizes the SSE over the candidate set.
  double best_sse = 1e300;
  Config best;
  for (const auto& a : ranked) {
    double sse = 0.0;
    for (const auto& b : ranked) sse += a.config.SquaredDistance(b.config);
    if (sse < best_sse) {
      best_sse = sse;
      best = a.config;
    }
  }
  EXPECT_EQ(r.chosen, best);
}

TEST(SelectorTest, ShortListsWork) {
  Catalog catalog = TinyCatalog();
  const std::vector<RankedConfig> one = {{Config({1, 1}), 10.0}};
  EXPECT_EQ(SelectConfiguration(one, catalog).chosen, Config({1, 1}));
  EXPECT_THROW(SelectConfiguration({}, catalog), std::invalid_argument);
}

TEST(SelectorTest, SizeMismatchThrows) {
  EXPECT_THROW(RankByUpperBound({Config({1})}, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace kairos::ub
