// Telemetry-plane coverage (DESIGN.md Sec. 13): the MetricRegistry
// contract (duplicate rejection, sharded merge under 8 writer threads),
// TraceRecorder ring wraparound with exact drop counts, machine-validated
// Chrome-trace JSON and Prometheus text exposition, and the determinism
// contract — ServeAll with telemetry disabled is bit-identical across
// serve_threads 1/4/8, and an *enabled* plane never perturbs results.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "core/fleet.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace kairos::telemetry {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to machine-validate the Chrome
// trace exporter's output instead of eyeballing substrings.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input; sets ok=false on any syntax error or
  /// trailing garbage.
  JsonValue Parse(bool* ok) {
    JsonValue value = ParseValue();
    SkipSpace();
    *ok = !failed_ && pos_ == text_.size();
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  JsonValue Fail() {
    failed_ = true;
    return JsonValue{};
  }

  JsonValue ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail();
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  JsonValue ParseObject() {
    if (!Consume('{')) return Fail();
    JsonObject object;
    if (Consume('}')) return JsonValue{object};
    do {
      JsonValue key = ParseString();
      if (failed_ || !Consume(':')) return Fail();
      object[key.str()] = ParseValue();
      if (failed_) return Fail();
    } while (Consume(','));
    if (!Consume('}')) return Fail();
    return JsonValue{object};
  }

  JsonValue ParseArray() {
    if (!Consume('[')) return Fail();
    JsonArray array;
    if (Consume(']')) return JsonValue{array};
    do {
      array.push_back(ParseValue());
      if (failed_) return Fail();
    } while (Consume(','));
    if (!Consume(']')) return Fail();
    return JsonValue{array};
  }

  JsonValue ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail();
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail();
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail();
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out += static_cast<char>(std::stoi(hex, nullptr, 16));
          break;
        }
        default: return Fail();
      }
    }
    if (pos_ >= text_.size()) return Fail();
    ++pos_;  // closing quote
    return JsonValue{out};
  }

  JsonValue ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true};
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue{false};
    }
    return Fail();
  }

  JsonValue ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{nullptr};
    }
    return Fail();
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail();
    try {
      return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    } catch (...) {
      return Fail();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

JsonValue ParseJsonOrDie(const std::string& text) {
  bool ok = false;
  JsonParser parser(text);
  JsonValue value = parser.Parse(&ok);
  EXPECT_TRUE(ok) << "invalid JSON: " << text.substr(0, 400);
  return value;
}

// ---------------------------------------------------------------------------
// MetricRegistry contract.

TEST(MetricRegistryTest, RejectsDuplicateAndMalformedNames) {
  MetricRegistry registry({"a", "b"});
  ASSERT_TRUE(registry.RegisterCounter("requests_total", "help").ok());
  // The same name is taken for every kind, not just the same kind.
  const auto dup_counter = registry.RegisterCounter("requests_total", "x");
  EXPECT_FALSE(dup_counter.ok());
  EXPECT_EQ(dup_counter.status().code(), StatusCode::kInvalidArgument);
  const auto dup_gauge = registry.RegisterGauge("requests_total", "x");
  EXPECT_FALSE(dup_gauge.ok());
  const auto dup_hist =
      registry.RegisterHistogram("requests_total", "x", {1.0});
  EXPECT_FALSE(dup_hist.ok());

  EXPECT_FALSE(registry.RegisterCounter("", "x").ok());
  EXPECT_FALSE(registry.RegisterCounter("9starts_with_digit", "x").ok());
  EXPECT_FALSE(registry.RegisterCounter("has space", "x").ok());
  EXPECT_FALSE(registry.RegisterCounter("has-dash", "x").ok());
  EXPECT_TRUE(registry.RegisterCounter("ok_name:with_colon", "x").ok());
}

TEST(MetricRegistryTest, RejectsBadHistogramBounds) {
  MetricRegistry registry({"a"});
  EXPECT_FALSE(registry.RegisterHistogram("h1", "x", {}).ok());
  EXPECT_FALSE(registry.RegisterHistogram("h2", "x", {1.0, 1.0}).ok());
  EXPECT_FALSE(registry.RegisterHistogram("h3", "x", {2.0, 1.0}).ok());
  EXPECT_TRUE(registry.RegisterHistogram("h4", "x", {1.0, 2.0, 3.0}).ok());
}

TEST(MetricRegistryTest, SnapshotMergesShardsAndKeepsPerShardValues) {
  MetricRegistry registry({"alpha", "beta"});
  const MetricId counter = *registry.RegisterCounter("c_total", "counts");
  const MetricId gauge = *registry.RegisterGauge("g", "level");
  const MetricId hist = *registry.RegisterHistogram("h", "obs", {1.0, 10.0});

  registry.Add(counter, 0, 3.0);
  registry.Add(counter, 1, 4.0);
  registry.Set(gauge, 0, 7.0);
  registry.Set(gauge, 1, 9.0);
  registry.Observe(hist, 0, 0.5);   // bucket le=1
  registry.Observe(hist, 0, 5.0);   // bucket le=10
  registry.Observe(hist, 1, 50.0);  // +Inf bucket

  const MetricSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);
  ASSERT_EQ(snapshot.shard_names.size(), 2u);

  const MetricValue& c = snapshot.metrics[0];
  EXPECT_EQ(c.name, "c_total");
  EXPECT_EQ(c.kind, MetricKind::kCounter);
  EXPECT_EQ(c.value, 7.0);
  ASSERT_EQ(c.per_shard.size(), 2u);
  EXPECT_EQ(c.per_shard[0], 3.0);
  EXPECT_EQ(c.per_shard[1], 4.0);

  const MetricValue& g = snapshot.metrics[1];
  EXPECT_EQ(g.kind, MetricKind::kGauge);
  EXPECT_EQ(g.per_shard[0], 7.0);
  EXPECT_EQ(g.per_shard[1], 9.0);

  const MetricValue& h = snapshot.metrics[2];
  EXPECT_EQ(h.kind, MetricKind::kHistogram);
  ASSERT_EQ(h.bounds.size(), 2u);
  ASSERT_EQ(h.bucket_counts.size(), 3u);  // two bounds + the +Inf bucket
  EXPECT_EQ(h.bucket_counts[0], 1u);
  EXPECT_EQ(h.bucket_counts[1], 1u);
  EXPECT_EQ(h.bucket_counts[2], 1u);
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 55.5);

  registry.Reset();
  const MetricSnapshot zeroed = registry.Snapshot();
  EXPECT_EQ(zeroed.metrics[0].value, 0.0);
  EXPECT_EQ(zeroed.metrics[2].count, 0u);
}

TEST(MetricRegistryTest, MergeIsExactUnderEightWriterThreads) {
  // The ownership contract: one writer per shard, snapshot at quiescence.
  // 8 threads hammer their own shard's cells; the joined snapshot must be
  // an exact sum — any lost update means the sharding leaked.
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kIncrements = 100000;
  std::vector<std::string> names;
  for (std::size_t s = 0; s < kShards; ++s) {
    names.push_back("shard" + std::to_string(s));
  }
  MetricRegistry registry(names);
  const MetricId counter = *registry.RegisterCounter("ops_total", "ops");
  const MetricId gauge = *registry.RegisterGauge("depth", "depth");
  const MetricId hist = *registry.RegisterHistogram("lat", "lat", {0.5});

  std::vector<std::thread> writers;
  for (std::size_t s = 0; s < kShards; ++s) {
    writers.emplace_back([&registry, counter, gauge, hist, s] {
      for (std::size_t i = 0; i < kIncrements; ++i) {
        registry.Add(counter, s);
        registry.Set(gauge, s, static_cast<double>(i));
        registry.Observe(hist, s, i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  const MetricSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.metrics[0].value,
            static_cast<double>(kShards * kIncrements));
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(snapshot.metrics[0].per_shard[s],
              static_cast<double>(kIncrements));
    EXPECT_EQ(snapshot.metrics[1].per_shard[s],
              static_cast<double>(kIncrements - 1));
  }
  EXPECT_EQ(snapshot.metrics[2].count, kShards * kIncrements);
  EXPECT_EQ(snapshot.metrics[2].bucket_counts[0],
            kShards * kIncrements / 2);
  EXPECT_EQ(snapshot.metrics[2].bucket_counts[1],
            kShards * kIncrements / 2);
}

// ---------------------------------------------------------------------------
// TraceRecorder ring semantics.

TEST(TraceRecorderTest, WraparoundKeepsNewestAndCountsDropsExactly) {
  TraceRecorder recorder({"only"}, /*events_per_shard=*/4);
  for (int i = 0; i < 10; ++i) {
    recorder.EmitSpan(0, "span" + std::to_string(i),
                      static_cast<std::uint64_t>(i), 1);
  }
  // 10 emitted into capacity 4: exactly 6 dropped, the newest 4 kept,
  // oldest first.
  EXPECT_EQ(recorder.DroppedCount(0), 6u);
  EXPECT_EQ(recorder.TotalDropped(), 6u);
  const std::vector<TraceEvent> events = recorder.ShardEvents(0);
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].name, "span" + std::to_string(6 + i));
    EXPECT_EQ(events[i].ts_us, static_cast<std::uint64_t>(6 + i));
  }

  recorder.Reset();
  EXPECT_EQ(recorder.DroppedCount(0), 0u);
  EXPECT_TRUE(recorder.ShardEvents(0).empty());
}

TEST(TraceRecorderTest, ShardsAreIndependent) {
  TraceRecorder recorder({"a", "b"}, 2);
  recorder.EmitSpan(0, "x", 0, 1);
  recorder.EmitSpan(1, "y1", 0, 1);
  recorder.EmitSpan(1, "y2", 0, 1);
  recorder.EmitSpan(1, "y3", 0, 1);
  EXPECT_EQ(recorder.DroppedCount(0), 0u);
  EXPECT_EQ(recorder.DroppedCount(1), 1u);
  EXPECT_EQ(recorder.ShardEvents(0).size(), 1u);
  EXPECT_EQ(recorder.ShardEvents(1).size(), 2u);
  EXPECT_EQ(recorder.AllEvents().size(), 3u);
}

TEST(TraceRecorderTest, ScopedSpanEmitsOnDestructionAndNullIsNoop) {
  TraceRecorder recorder({"s"}, 8);
  {
    ScopedSpan span(&recorder, 0, "work");
    span.AddArg("key", "value");
  }
  const std::vector<TraceEvent> events = recorder.ShardEvents(0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].phase, 'X');
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "key");
  EXPECT_EQ(events[0].args[0].second, "value");

  {
    ScopedSpan noop(nullptr, 0, "ignored");
    noop.AddArg("k", "v");
  }
  EXPECT_EQ(recorder.ShardEvents(0).size(), 1u);

  recorder.EmitInstant(0, "tick", {{"n", "1"}});
  EXPECT_EQ(recorder.ShardEvents(0).back().phase, 'i');
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON, machine-validated.

TEST(ChromeTraceExportTest, ProducesValidTraceEventJson) {
  TraceRecorder recorder({"modelA", "modelB"}, 16);
  recorder.EmitSpan(0, "engine.advance", 10, 25,
                    {{"fired", "3"}, {"to_s", "1.5"}});
  recorder.EmitSpan(1, "engine.advance", 12, 20);
  recorder.EmitInstant(1, "chaos.fault", {{"kind", "PREEMPTION"}});

  const std::string json = ExportChromeTrace(recorder);
  const JsonValue root = ParseJsonOrDie(json);
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.object().count("traceEvents"));
  EXPECT_EQ(root.object().at("displayTimeUnit").str(), "ms");

  const JsonArray& events = root.object().at("traceEvents").array();
  // 2 thread_name metadata events + 3 recorded ones.
  ASSERT_EQ(events.size(), 5u);

  std::size_t metadata = 0, spans = 0, instants = 0;
  for (const JsonValue& event : events) {
    ASSERT_TRUE(event.is_object());
    const JsonObject& o = event.object();
    // Every event carries the required keys with the right types.
    ASSERT_TRUE(o.count("name") && o.at("name").is_string());
    ASSERT_TRUE(o.count("ph") && o.at("ph").is_string());
    ASSERT_TRUE(o.count("pid") && o.at("pid").is_number());
    ASSERT_TRUE(o.count("tid") && o.at("tid").is_number());
    const std::string& ph = o.at("ph").str();
    if (ph == "M") {
      ++metadata;
      EXPECT_EQ(o.at("name").str(), "thread_name");
      const std::string& track = o.at("args").object().at("name").str();
      EXPECT_TRUE(track == "modelA" || track == "modelB");
    } else if (ph == "X") {
      ++spans;
      ASSERT_TRUE(o.count("ts") && o.at("ts").is_number());
      ASSERT_TRUE(o.count("dur") && o.at("dur").is_number());
      EXPECT_EQ(o.at("name").str(), "engine.advance");
    } else if (ph == "i") {
      ++instants;
      EXPECT_EQ(o.at("s").str(), "t");
      EXPECT_EQ(o.at("args").object().at("kind").str(), "PREEMPTION");
    } else {
      FAIL() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(metadata, 2u);
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);
}

TEST(ChromeTraceExportTest, EscapesHostileStringsRoundTrip) {
  TraceRecorder recorder({"we\"ird\\name\n"}, 4);
  recorder.EmitSpan(0, "na\"me\twith\\stuff", 0, 1,
                    {{"k\"ey", "v\nal\\ue"}});
  const JsonValue root = ParseJsonOrDie(ExportChromeTrace(recorder));
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].object().at("args").object().at("name").str(),
            "we\"ird\\name\n");
  EXPECT_EQ(events[1].object().at("name").str(), "na\"me\twith\\stuff");
  EXPECT_EQ(events[1].object().at("args").object().at("k\"ey").str(),
            "v\nal\\ue");
}

// ---------------------------------------------------------------------------
// Prometheus text exposition, parsed line by line.

TEST(PrometheusExportTest, ExposesWellFormedFamilies) {
  MetricRegistry registry({"m0", "m1"});
  const MetricId counter = *registry.RegisterCounter("kq_total", "queries");
  const MetricId gauge = *registry.RegisterGauge("kq_depth", "queue depth");
  const MetricId hist =
      *registry.RegisterHistogram("kq_lat", "latency", {1.0, 5.0});
  registry.Add(counter, 0, 10.0);
  registry.Add(counter, 1, 32.0);
  registry.Set(gauge, 0, 4.0);
  registry.Set(gauge, 1, 2.5);
  registry.Observe(hist, 0, 0.5);
  registry.Observe(hist, 1, 3.0);
  registry.Observe(hist, 1, 100.0);

  const std::string text = ExportPrometheus(registry.Snapshot());
  std::istringstream lines(text);
  std::string line;
  // Grammar of every expected line shape.
  const std::regex help_re(R"(# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+)");
  const std::regex type_re(
      R"(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))");
  const std::regex sample_re(
      R"([a-zA-Z_:][a-zA-Z0-9_:]*(_bucket|_sum|_count)?(\{[^}]*\})? -?[0-9+.eEinf]+)");
  std::vector<std::string> all_lines;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    all_lines.push_back(line);
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, help_re) ||
                  std::regex_match(line, type_re))
          << "bad comment line: " << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_re))
          << "bad sample line: " << line;
    }
  }

  // The exact family layout: HELP, TYPE, then the samples.
  const std::vector<std::string> expected = {
      "# HELP kq_total queries",
      "# TYPE kq_total counter",
      "kq_total{shard=\"m0\"} 10",
      "kq_total{shard=\"m1\"} 32",
      "# HELP kq_depth queue depth",
      "# TYPE kq_depth gauge",
      "kq_depth{shard=\"m0\"} 4",
      "kq_depth{shard=\"m1\"} 2.5",
      "# HELP kq_lat latency",
      "# TYPE kq_lat histogram",
      "kq_lat_bucket{le=\"1\"} 1",
      "kq_lat_bucket{le=\"5\"} 2",
      "kq_lat_bucket{le=\"+Inf\"} 3",
      "kq_lat_sum 103.5",
      "kq_lat_count 3",
  };
  EXPECT_EQ(all_lines, expected);
}

TEST(PrometheusExportTest, DuplicateShardNamesGetDistinctLabels) {
  MetricRegistry registry({"RM2", "RM2", "fleet"});
  const MetricId counter = *registry.RegisterCounter("c_total", "c");
  registry.Add(counter, 0, 1.0);
  registry.Add(counter, 1, 2.0);
  registry.Add(counter, 2, 3.0);
  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("c_total{shard=\"RM2#0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("c_total{shard=\"RM2#1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("c_total{shard=\"fleet\"} 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The facade and the sink.

TEST(TelemetryFacadeTest, CreateAppendsFleetShardAndPreRegisters) {
  auto telemetry = Telemetry::Create({"RM2", "WND"});
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().ToString();
  EXPECT_EQ((*telemetry)->num_model_shards(), 2u);
  EXPECT_EQ((*telemetry)->fleet_shard(), 2u);
  ASSERT_EQ((*telemetry)->tracer().shard_names().size(), 3u);
  EXPECT_EQ((*telemetry)->tracer().shard_names()[2], "fleet");
  EXPECT_GT((*telemetry)->metrics().size(), 0u);

  const EngineInstruments instruments = (*telemetry)->InstrumentsFor(1);
  EXPECT_EQ(instruments.shard, 1u);
  EXPECT_EQ(instruments.metrics, &(*telemetry)->metrics());

  EXPECT_FALSE(Telemetry::Create({}).ok());
}

TEST(TelemetryFacadeTest, SinkBoundsSamplesAndCountsDrops) {
  auto telemetry = Telemetry::Create({"only"});
  ASSERT_TRUE(telemetry.ok());
  TelemetrySink sink(telemetry->get(), /*max_samples=*/2);
  sink.AtBarrier(1.0, 1u);
  sink.AtBarrier(2.0, 3u);
  sink.AtBarrier(3.0, 1u);
  EXPECT_EQ(sink.dropped_samples(), 1u);
  const std::vector<BarrierSample> samples = sink.TakeSamples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].sim_time, 1.0);
  EXPECT_EQ(samples[1].barrier_flags, 3u);
  EXPECT_EQ(samples[0].metrics.metrics.size(),
            (*telemetry)->metrics().size());
}

// ---------------------------------------------------------------------------
// ServeAll integration: the pure-observer determinism contract.

core::Fleet MakeFleet() {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto fleet = core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

core::FleetServeOptions BusyServe() {
  core::FleetServeOptions options;
  options.duration_s = 20.0;
  options.base_rate_qps = 25.0;
  options.window_s = 2.5;
  options.realloc_period_s = 7.5;
  options.launch_lag_s = 1.0;
  options.shifts = {core::FleetLoadShift{8.0, "RM2", 4.0}};
  return options;
}

/// Field-by-field equality of everything a run *computes* (telemetry
/// samples excluded — they are observational output, not results).
void ExpectResultsBitIdentical(const core::FleetServeResult& a,
                               const core::FleetServeResult& b) {
  ASSERT_EQ(a.models.size(), b.models.size());
  EXPECT_EQ(a.total_qps, b.total_qps);
  EXPECT_EQ(a.total_weighted_qps, b.total_weighted_qps);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.monitor_resets, b.monitor_resets);
  EXPECT_EQ(a.shed_actions, b.shed_actions);
  EXPECT_EQ(a.instances_lost, b.instances_lost);
  EXPECT_EQ(a.ondemand_cost_usd, b.ondemand_cost_usd);
  EXPECT_EQ(a.effective_cost_usd, b.effective_cost_usd);
  ASSERT_EQ(a.control_log.size(), b.control_log.size());
  for (std::size_t e = 0; e < a.control_log.size(); ++e) {
    EXPECT_EQ(a.control_log[e].time, b.control_log[e].time);
    EXPECT_EQ(a.control_log[e].kind, b.control_log[e].kind);
    EXPECT_EQ(a.control_log[e].model, b.control_log[e].model);
    EXPECT_EQ(a.control_log[e].reason, b.control_log[e].reason);
  }
  ASSERT_EQ(a.final_shares_per_hour.size(), b.final_shares_per_hour.size());
  for (std::size_t j = 0; j < a.final_shares_per_hour.size(); ++j) {
    EXPECT_EQ(a.final_shares_per_hour[j], b.final_shares_per_hour[j]);
  }
  for (std::size_t j = 0; j < a.models.size(); ++j) {
    const core::FleetModelServe& ma = a.models[j];
    const core::FleetModelServe& mb = b.models[j];
    EXPECT_EQ(ma.model, mb.model);
    EXPECT_EQ(ma.qps, mb.qps);
    EXPECT_EQ(ma.totals.offered, mb.totals.offered);
    EXPECT_EQ(ma.totals.served, mb.totals.served);
    EXPECT_EQ(ma.totals.violations, mb.totals.violations);
    EXPECT_EQ(ma.totals.rejected, mb.totals.rejected);
    EXPECT_EQ(ma.totals.shed, mb.totals.shed);
    EXPECT_EQ(ma.totals.p99_ms, mb.totals.p99_ms);
    EXPECT_EQ(ma.totals.mean_ms, mb.totals.mean_ms);
    EXPECT_EQ(ma.totals.makespan, mb.totals.makespan);
    ASSERT_EQ(ma.windows.size(), mb.windows.size());
    for (std::size_t w = 0; w < ma.windows.size(); ++w) {
      EXPECT_EQ(ma.windows[w].start, mb.windows[w].start);
      EXPECT_EQ(ma.windows[w].end, mb.windows[w].end);
      EXPECT_EQ(ma.windows[w].offered, mb.windows[w].offered);
      EXPECT_EQ(ma.windows[w].served, mb.windows[w].served);
      EXPECT_EQ(ma.windows[w].violations, mb.windows[w].violations);
      EXPECT_EQ(ma.windows[w].p99_ms, mb.windows[w].p99_ms);
      EXPECT_EQ(ma.windows[w].mean_ms, mb.windows[w].mean_ms);
      EXPECT_EQ(ma.windows[w].qps, mb.windows[w].qps);
      EXPECT_EQ(ma.windows[w].mean_batch, mb.windows[w].mean_batch);
      EXPECT_EQ(ma.windows[w].queue_depth_max, mb.windows[w].queue_depth_max);
      EXPECT_EQ(ma.windows[w].queue_depth_mean,
                mb.windows[w].queue_depth_mean);
    }
  }
}

TEST(TelemetryServeTest, DisabledRunsAreBitIdenticalAcrossThreadCounts) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  core::FleetServeOptions serve = BusyServe();
  serve.serve_threads = 1;
  const auto serial = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_TRUE(serial->telemetry_samples.empty());
  for (const std::size_t threads : {4u, 8u}) {
    serve.serve_threads = threads;
    const auto threaded = fleet.ServeAll(*plan, serve);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ExpectResultsBitIdentical(*serial, *threaded);
  }
}

TEST(TelemetryServeTest, EnabledTelemetryNeverPerturbsResults) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  core::FleetServeOptions serve = BusyServe();
  serve.serve_threads = 1;
  const auto baseline = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const std::size_t threads : {1u, 4u, 8u}) {
    auto telemetry = Telemetry::Create({"RM2", "WND", "NCF"});
    ASSERT_TRUE(telemetry.ok()) << telemetry.status().ToString();
    core::FleetServeOptions instrumented = BusyServe();
    instrumented.serve_threads = threads;
    instrumented.telemetry = telemetry->get();
    const auto result = fleet.ServeAll(*plan, instrumented);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Telemetry is a pure observer: the *results* match the
    // uninstrumented run bit for bit at every thread count.
    ExpectResultsBitIdentical(*baseline, *result);

    // And the plane actually observed the run: one sample per barrier,
    // counters consistent with the totals.
    ASSERT_FALSE(result->telemetry_samples.empty());
    EXPECT_EQ(result->telemetry_samples_dropped, 0u);
    const MetricSnapshot& last = result->telemetry_samples.back().metrics;
    double offered = 0.0, served = 0.0;
    std::size_t expect_offered = 0, expect_served = 0;
    for (const MetricValue& metric : last.metrics) {
      if (metric.name == "kairos_queries_offered_total") {
        offered = metric.value;
      }
      if (metric.name == "kairos_queries_served_total") served = metric.value;
    }
    for (const core::FleetModelServe& model : result->models) {
      expect_offered += model.totals.offered;
      expect_served += model.totals.served;
    }
    // The last barrier's snapshot is the horizon: every arrival and
    // completion inside the run is in it.
    EXPECT_EQ(offered, static_cast<double>(expect_offered));
    EXPECT_EQ(served, static_cast<double>(expect_served));

    // The exporters stay machine-valid on real run output.
    const JsonValue root =
        ParseJsonOrDie(ExportChromeTrace((*telemetry)->tracer()));
    EXPECT_TRUE(root.object().count("traceEvents"));
    EXPECT_GE(root.object().at("traceEvents").array().size(), 4u);
    const std::string prom = ExportPrometheus(last);
    EXPECT_NE(prom.find("# TYPE kairos_queries_offered_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("kairos_queries_offered_total{shard=\"RM2\"} "),
              std::string::npos);
  }
}

TEST(TelemetryServeTest, RejectsMismatchedShardLayout) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  auto wrong_count = Telemetry::Create({"RM2", "WND"});
  ASSERT_TRUE(wrong_count.ok());
  core::FleetServeOptions serve = BusyServe();
  serve.telemetry = wrong_count->get();
  const auto too_few = fleet.ServeAll(*plan, serve);
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);

  auto wrong_names = Telemetry::Create({"RM2", "NCF", "WND"});
  ASSERT_TRUE(wrong_names.ok());
  serve.telemetry = wrong_names->get();
  const auto misnamed = fleet.ServeAll(*plan, serve);
  ASSERT_FALSE(misnamed.ok());
  EXPECT_EQ(misnamed.status().code(), StatusCode::kInvalidArgument);
}

TEST(TelemetryServeTest, WindowQueueDepthFieldsTrackOverload) {
  // A deliberately under-provisioned single-model fleet: the central
  // queue must visibly back up, and the new WindowedMetrics fields must
  // agree with each other (mean <= max, max > 0 under overload).
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 1.2;
  auto fleet = core::Fleet::Create(
      catalog, {core::FleetModelOptions{.model = "RM2"}}, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  core::FleetServeOptions serve;
  serve.duration_s = 12.0;
  serve.base_rate_qps = 120.0;  // far past a $1.2/hr configuration
  serve.window_s = 3.0;
  const auto result = fleet->ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::size_t peak = 0;
  for (const serving::WindowedMetrics& window : result->models[0].windows) {
    EXPECT_LE(window.queue_depth_mean,
              static_cast<double>(window.queue_depth_max));
    if (window.offered > 0) {
      EXPECT_GE(window.queue_depth_mean, 0.0);
    }
    peak = std::max(peak, window.queue_depth_max);
  }
  EXPECT_GT(peak, 0u);
}

}  // namespace
}  // namespace kairos::telemetry
