#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace kairos::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(3.0, [&] { fired.push_back(3); });
  q.Schedule(1.0, [&] { fired.push_back(1); });
  q.Schedule(2.0, [&] { fired.push_back(2); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreaksByInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(1.0, [&] { fired.push_back(10); });
  q.Schedule(1.0, [&] { fired.push_back(20); });
  q.Schedule(1.0, [&] { fired.push_back(30); });
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
  // Double-cancel is a no-op.
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId id = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  q.Cancel(id);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, EmptyQueueNextTimeIsInfinity) {
  EventQueue q;
  EXPECT_GE(q.NextTime(), kTimeInfinity);
}

TEST(SimulatorTest, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Time> seen;
  sim.At(5.0, [&] { seen.push_back(sim.Now()); });
  sim.At(2.0, [&] { seen.push_back(sim.Now()); });
  sim.RunUntil();
  EXPECT_EQ(seen, (std::vector<Time>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
}

TEST(SimulatorTest, AfterIsRelativeToNow) {
  Simulator sim;
  Time fired_at = -1.0;
  sim.At(3.0, [&] { sim.After(2.0, [&] { fired_at = sim.Now(); }); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorTest, RunUntilHonorsHorizon) {
  Simulator sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(10.0, [&] { ++fired; });
  EXPECT_EQ(sim.RunUntil(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.Idle());
  sim.RunUntil();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(sim.Idle());
}

TEST(SimulatorTest, EventsScheduledInPastClampToNow) {
  Simulator sim;
  Time fired_at = -1.0;
  sim.At(4.0, [&] { sim.At(1.0, [&] { fired_at = sim.Now(); }); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(fired_at, 4.0);  // not time travel
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.At(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntil();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.At(1.0, [&] { ++fired; });
  sim.At(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, FreeListBoundsSlotGrowthUnderChurn) {
  // A streaming run schedules and fires events forever (source pulls,
  // completions). Slots must be recycled: the backing storage stays at the
  // high-water mark of *concurrent* events, not of events ever scheduled.
  EventQueue q;
  int fired = 0;
  std::function<void(Time)> chain = [&](Time at) {
    q.Schedule(at, [&, at] {
      ++fired;
      if (fired < 10000) chain(at + 1.0);
    });
  };
  chain(0.0);
  q.Schedule(0.5, [] {});  // a second concurrent event at the start
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(fired, 10000);
  EXPECT_LE(q.SlotCount(), 4u);  // bounded, not ~10000
}

TEST(EventQueueTest, CancelledSlotsAreRecycled) {
  EventQueue q;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = q.Schedule(1.0, [] {});
    EXPECT_TRUE(q.Cancel(id));
  }
  EXPECT_LE(q.SlotCount(), 2u);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, StaleCancelAfterSlotReuseIsANoOp) {
  EventQueue q;
  bool first_fired = false;
  bool second_fired = false;
  const EventId first = q.Schedule(1.0, [&] { first_fired = true; });
  q.RunNext();  // fires and releases the slot
  EXPECT_TRUE(first_fired);
  // The recycled slot now backs a *different* event; the stale handle must
  // not be able to cancel it.
  const EventId second = q.Schedule(2.0, [&] { second_fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(q.Cancel(first));
  EXPECT_EQ(q.Size(), 1u);
  q.RunNext();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueueTest, OrderingSurvivesSlotReuse) {
  // Tie-breaking stays insertion-ordered even when later events reuse the
  // slots of earlier fired/cancelled ones.
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.Schedule(0.5, [] {});
  q.Schedule(0.6, [&] { order.push_back(0); });
  q.Cancel(a);       // slot of `a` goes to the free list
  q.RunNext();       // fires 0; its slot is recycled too
  q.Schedule(1.0, [&] { order.push_back(1); });  // reuses a slot
  q.Schedule(1.0, [&] { order.push_back(2); });  // reuses a slot
  q.Schedule(1.0, [&] { order.push_back(3); });  // fresh slot
  while (!q.Empty()) q.RunNext();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, CascadedSchedulingIsDeterministic) {
  // Events spawning events at the same timestamp preserve FIFO order.
  Simulator sim;
  std::vector<int> order;
  sim.At(1.0, [&] {
    order.push_back(1);
    sim.After(0.0, [&] { order.push_back(3); });
  });
  sim.At(1.0, [&] { order.push_back(2); });
  sim.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace kairos::sim
