// The common/parallel primitives the Fleet uses to probe and plan
// independent models concurrently: ThreadPool and ParallelFor.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"

namespace kairos {
namespace {

TEST(ParallelismForTest, ResolvesZeroAndClampsToJobs) {
  EXPECT_GE(ParallelismFor(0, 100), 1u);
  EXPECT_EQ(ParallelismFor(8, 3), 3u);   // never more workers than jobs
  EXPECT_EQ(ParallelismFor(2, 100), 2u);
  EXPECT_EQ(ParallelismFor(0, 0), 1u);   // degenerate: still one worker
}

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum += i; });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&] { ++count; });
  pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, WaitRethrowsTheFirstTaskException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The pool stays usable after an error batch.
  std::atomic<int> count{0};
  pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<int> hits(1000, 0);
  ParallelFor(hits.size(), 4, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ParallelForTest, HandlesDegenerateSizesAndSerialFallback) {
  int calls = 0;
  ParallelFor(0, 4, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(5, 1, [&](std::size_t) { ++calls; });  // serial path
  EXPECT_EQ(calls, 5);
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(ParallelFor(8, 4,
                           [](std::size_t i) {
                             if (i == 3) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

}  // namespace
}  // namespace kairos
