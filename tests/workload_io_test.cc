#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "workload/arrival.h"
#include "workload/mixtures.h"
#include "workload/trace_io.h"

namespace kairos::workload {
namespace {

TEST(TraceIoTest, RoundTripsThroughStream) {
  Rng rng(1);
  const auto mix = LogNormalBatches::Production();
  const Trace original =
      Trace::Generate(PoissonArrivals(50.0), mix, 200, rng);
  std::stringstream buffer;
  SaveTraceCsv(original, buffer);
  const Trace loaded = LoadTraceCsv(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.queries()[i].id, original.queries()[i].id);
    EXPECT_EQ(loaded.queries()[i].batch_size,
              original.queries()[i].batch_size);
    EXPECT_NEAR(loaded.queries()[i].arrival, original.queries()[i].arrival,
                1e-9);
  }
}

TEST(TraceIoTest, RoundTripsThroughFile) {
  Rng rng(2);
  const auto mix = GaussianBatches::Default();
  const Trace original =
      Trace::Generate(PoissonArrivals(20.0), mix, 50, rng);
  const std::string path = ::testing::TempDir() + "/kairos_trace_test.csv";
  SaveTraceCsv(original, path);
  const Trace loaded = LoadTraceCsv(path);
  EXPECT_EQ(loaded.size(), original.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream buffer("wrong,header,here\n1,0.5,10\n");
  EXPECT_THROW(LoadTraceCsv(buffer), std::runtime_error);
}

TEST(TraceIoTest, RejectsMalformedRow) {
  std::stringstream buffer("id,arrival_s,batch\n1,abc,10\n");
  EXPECT_THROW(LoadTraceCsv(buffer), std::runtime_error);
}

TEST(TraceIoTest, RejectsOutOfRangeBatch) {
  std::stringstream buffer("id,arrival_s,batch\n1,0.5,5000\n");
  EXPECT_THROW(LoadTraceCsv(buffer), std::runtime_error);
}

TEST(TraceIoTest, RejectsUnsortedArrivals) {
  std::stringstream buffer("id,arrival_s,batch\n1,2.0,10\n2,1.0,10\n");
  EXPECT_THROW(LoadTraceCsv(buffer), std::runtime_error);
}

TEST(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(LoadTraceCsv(std::string("/nonexistent/path/trace.csv")),
               std::runtime_error);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  SaveTraceCsv(Trace(), buffer);
  EXPECT_EQ(LoadTraceCsv(buffer).size(), 0u);
}

TEST(MixtureBatchesTest, WeightsRespected) {
  auto mix = MixtureBatches::BimodalDefault();
  Rng rng(3);
  int large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (mix.Sample(rng) > 400) ++large;
  }
  // The 20%-weight Gaussian(600, 80) component dominates above 400.
  EXPECT_NEAR(static_cast<double>(large) / n, 0.2, 0.02);
}

TEST(MixtureBatchesTest, CdfIsWeightedAverage) {
  auto mix = MixtureBatches::BimodalDefault();
  // Between the modes the CDF must sit at the small-component weight.
  EXPECT_NEAR(mix.Cdf(350), 0.8, 0.01);
  EXPECT_DOUBLE_EQ(mix.Cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(mix.Cdf(1000), 1.0);
}

TEST(MixtureBatchesTest, InvalidComponentsThrow) {
  EXPECT_THROW(MixtureBatches({}), std::invalid_argument);
  std::vector<MixtureBatches::Component> bad;
  bad.push_back({nullptr, 1.0});
  EXPECT_THROW(MixtureBatches(std::move(bad)), std::invalid_argument);
  std::vector<MixtureBatches::Component> neg;
  neg.push_back(
      {std::make_shared<GaussianBatches>(100.0, 10.0), -1.0});
  EXPECT_THROW(MixtureBatches(std::move(neg)), std::invalid_argument);
}

TEST(ParetoBatchesTest, SamplesMatchCdfAndTailOrder) {
  const ParetoBatches heavy(0.8);
  const ParetoBatches light(2.5);
  Rng rng(4);
  int heavy_large = 0, light_large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (heavy.Sample(rng) > 200) ++heavy_large;
    if (light.Sample(rng) > 200) ++light_large;
  }
  EXPECT_GT(heavy_large, 4 * light_large);  // heavier tail
  EXPECT_NEAR(static_cast<double>(heavy_large) / n, 1.0 - heavy.Cdf(200),
              0.02);
  EXPECT_THROW(ParetoBatches(0.0), std::invalid_argument);
}

TEST(KendallTauTest, PerfectAndInvertedRankings) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {10, 20, 30, 40, 50};
  const std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(xs, up), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(xs, down), -1.0);
  EXPECT_DOUBLE_EQ(KendallTau(xs, {}), 0.0);
}

TEST(KendallTauTest, PartialAgreement) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {1, 3, 2, 4};  // one swapped pair of 6
  EXPECT_NEAR(KendallTau(xs, ys), (5.0 - 1.0) / 6.0, 1e-12);
}

}  // namespace
}  // namespace kairos::workload
