#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "workload/arrival.h"
#include "workload/mixtures.h"
#include "workload/trace_io.h"

#ifdef KAIROS_HAS_ZLIB
#include <zlib.h>
#endif

namespace kairos::workload {
namespace {

std::string WriteTempFile(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  return path;
}

TEST(TraceIoTest, RoundTripsThroughStream) {
  Rng rng(1);
  const auto mix = LogNormalBatches::Production();
  const Trace original =
      Trace::Generate(PoissonArrivals(50.0), mix, 200, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(original, buffer).ok());
  const auto loaded = ReadTraceCsv(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ(loaded->queries()[i].id, original.queries()[i].id);
    EXPECT_EQ(loaded->queries()[i].batch_size,
              original.queries()[i].batch_size);
    EXPECT_NEAR(loaded->queries()[i].arrival, original.queries()[i].arrival,
                1e-9);
  }
}

TEST(TraceIoTest, RoundTripsThroughFile) {
  Rng rng(2);
  const auto mix = GaussianBatches::Default();
  const Trace original =
      Trace::Generate(PoissonArrivals(20.0), mix, 50, rng);
  const std::string path = ::testing::TempDir() + "/kairos_trace_test.csv";
  ASSERT_TRUE(WriteTraceCsv(original, path).ok());
  const auto loaded = ReadTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  const auto loaded =
      ReadTraceCsv(std::string("/nonexistent/path/trace.csv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("cannot open"), std::string::npos);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(Trace(), buffer).ok());
  const auto loaded = ReadTraceCsv(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
}

TEST(TraceIoTest, WriteToUnopenablePathIsNotFound) {
  EXPECT_EQ(WriteTraceCsv(Trace(), "/nonexistent/dir/trace.csv").code(),
            StatusCode::kNotFound);
}

// The malformed-input fuzz table (DESIGN.md Sec. 12): every corrupt shape
// must come back as a precise kInvalidArgument — with the offending line
// number — and never crash. Each case runs through both read paths (the
// stream materializer and, via a temp file, the streaming reader) and
// must produce the identical status from each, because both funnel every
// row through the one shared parser.
TEST(TraceIoTest, MalformedInputTable) {
  struct Case {
    const char* name;
    std::string body;
    const char* want;  // required substring of the error message
  };
  const std::vector<Case> cases = {
      {"empty file", "", "bad or missing header"},
      {"wrong header", "wrong,header,here\n1,0.5,10\n",
       "bad or missing header"},
      {"header case drift", "ID,ARRIVAL_S,BATCH\n", "bad or missing header"},
      {"non-numeric arrival", "id,arrival_s,batch\n1,abc,10\n",
       "malformed row at line 2"},
      {"non-numeric id", "id,arrival_s,batch\nx1,0.5,10\n",
       "malformed row at line 2"},
      {"negative id", "id,arrival_s,batch\n-1,0.5,10\n",
       "malformed row at line 2"},
      {"missing field", "id,arrival_s,batch\n1,0.5\n",
       "malformed row at line 2"},
      {"extra field", "id,arrival_s,batch\n1,0.5,10,9\n",
       "malformed row at line 2"},
      {"inner space", "id,arrival_s,batch\n1, 0.5,10\n",
       "malformed row at line 2"},
      {"truncated final line", "id,arrival_s,batch\n1,0.5,3\n2,0.6\n",
       "malformed row at line 3"},
      {"unterminated truncated tail", "id,arrival_s,batch\n1,0.5,3\n2,0.",
       "malformed row at line 3"},
      {"NaN arrival", "id,arrival_s,batch\n1,nan,3\n",
       "non-finite arrival_s at line 2"},
      {"inf arrival", "id,arrival_s,batch\n1,inf,3\n",
       "non-finite arrival_s at line 2"},
      {"negative arrival", "id,arrival_s,batch\n1,-0.5,3\n",
       "negative arrival_s at line 2"},
      {"batch zero", "id,arrival_s,batch\n1,0.5,0\n",
       "batch out of [1, 1000] at line 2"},
      {"batch too large", "id,arrival_s,batch\n1,0.5,5000\n",
       "batch out of [1, 1000] at line 2"},
      {"negative batch", "id,arrival_s,batch\n1,0.5,-3\n",
       "batch out of [1, 1000] at line 2"},
      {"unsorted arrivals", "id,arrival_s,batch\n1,2.0,10\n2,1.0,10\n",
       "arrivals not sorted at line 3"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::stringstream buffer(c.body);
    const auto from_stream = ReadTraceCsv(buffer);
    ASSERT_FALSE(from_stream.ok());
    EXPECT_EQ(from_stream.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(from_stream.status().message().find(c.want), std::string::npos)
        << "got: " << from_stream.status().message();

    const std::string path = WriteTempFile("kairos_fuzz_case.csv", c.body);
    const auto from_file = ReadTraceCsv(path);
    ASSERT_FALSE(from_file.ok());
    EXPECT_EQ(from_file.status().ToString(), from_stream.status().ToString())
        << "streaming and materialized paths disagree";
    std::remove(path.c_str());
  }
}

TEST(TraceIoTest, AcceptsCrlfAndMissingFinalNewline) {
  for (const std::string body :
       {std::string("id,arrival_s,batch\r\n1,0.5,3\r\n2,0.75,4\r\n"),
        std::string("id,arrival_s,batch\n1,0.5,3\n2,0.75,4")}) {
    std::stringstream buffer(body);
    const auto loaded = ReadTraceCsv(buffer);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->size(), 2u);
    EXPECT_EQ(loaded->queries()[1].id, 2u);
    EXPECT_EQ(loaded->queries()[1].batch_size, 4);
  }
}

// The >4G edge: ids beyond 32 bits (a multi-billion-row trace) and
// arrivals past 2^32 seconds must survive the round trip bit-exactly —
// offsets, ids and line numbers are 64-bit end to end.
TEST(TraceIoTest, LargeIdsAndArrivalsRoundTripExactly) {
  const Trace trace({Query{(1ull << 32) + 7ull, 3, 0.5},
                     Query{(1ull << 53) + 1ull, 5, 4294967296.25}});
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(trace, buffer).ok());
  const auto loaded = ReadTraceCsv(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->queries()[0].id, (1ull << 32) + 7ull);
  EXPECT_EQ(loaded->queries()[1].id, (1ull << 53) + 1ull);
  EXPECT_EQ(loaded->queries()[1].arrival, 4294967296.25);
}

TEST(TraceIoTest, StreamingReaderReadsRewindsAndCounts) {
  const std::string path = WriteTempFile(
      "kairos_stream_rw.csv", "id,arrival_s,batch\n1,0.5,3\n2,0.75,4\n");
  auto reader = StreamingTraceReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  Query q;
  auto more = reader->Next(&q);
  ASSERT_TRUE(more.ok() && *more);
  EXPECT_EQ(q.id, 1u);
  ASSERT_TRUE(reader->Rewind().ok());
  EXPECT_EQ(reader->queries_read(), 0u);
  std::vector<Query> all;
  while (true) {
    more = reader->Next(&q);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    all.push_back(q);
  }
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(reader->queries_read(), 2u);
  EXPECT_EQ(all[1].batch_size, 4);
  // Clean EOF is stable, not an error.
  more = reader->Next(&q);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
  std::remove(path.c_str());
}

TEST(TraceIoTest, StreamingErrorIsStickyUntilRewind) {
  const std::string path = WriteTempFile(
      "kairos_stream_sticky.csv", "id,arrival_s,batch\n1,0.5,3\n2,bad,4\n");
  auto reader = StreamingTraceReader::Open(path);
  ASSERT_TRUE(reader.ok());
  Query q;
  ASSERT_TRUE(reader->Next(&q).ok());
  const auto failed = reader->Next(&q);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInvalidArgument);
  // Sticky: the same status again, not EOF and not the next row.
  const auto again = reader->Next(&q);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().ToString(), failed.status().ToString());
  // Rewind clears the sticky state and replays from the first row.
  ASSERT_TRUE(reader->Rewind().ok());
  const auto first = reader->Next(&q);
  ASSERT_TRUE(first.ok() && *first);
  EXPECT_EQ(q.id, 1u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, GzipRoundTripMatchesPlainRead) {
#ifdef KAIROS_HAS_ZLIB
  ASSERT_TRUE(TraceGzipSupported());
  Rng rng(3);
  const Trace original = Trace::Generate(
      PoissonArrivals(40.0), LogNormalBatches::Production(), 300, rng);
  std::stringstream buffer;
  ASSERT_TRUE(WriteTraceCsv(original, buffer).ok());
  const std::string body = buffer.str();
  const std::string gz_path = ::testing::TempDir() + "/kairos_trace.csv.gz";
  gzFile gz = gzopen(gz_path.c_str(), "wb");
  ASSERT_NE(gz, nullptr);
  ASSERT_EQ(gzwrite(gz, body.data(), static_cast<unsigned>(body.size())),
            static_cast<int>(body.size()));
  ASSERT_EQ(gzclose(gz), Z_OK);
  const auto loaded = ReadTraceCsv(gz_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < loaded->size(); ++i) {
    EXPECT_EQ(loaded->queries()[i].id, original.queries()[i].id);
    EXPECT_EQ(loaded->queries()[i].batch_size,
              original.queries()[i].batch_size);
  }
  std::remove(gz_path.c_str());
#else
  EXPECT_FALSE(TraceGzipSupported());
  const auto opened = StreamingTraceReader::Open("anything.gz");
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kFailedPrecondition);
#endif
}

// The pre-Status names still work for old callers and throw with exactly
// Status::ToString() as the message.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(TraceIoTest, DeprecatedThrowingShimsStillWork) {
  const Trace trace({Query{1u, 3, 0.5}});
  std::stringstream buffer;
  SaveTraceCsv(trace, buffer);
  const Trace loaded = LoadTraceCsv(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.queries()[0].id, 1u);
  std::stringstream bad("wrong,header,here\n");
  try {
    (void)LoadTraceCsv(bad);
    FAIL() << "LoadTraceCsv on a bad header must throw";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("INVALID_ARGUMENT"),
              std::string::npos)
        << err.what();
  }
}
#pragma GCC diagnostic pop

TEST(MixtureBatchesTest, WeightsRespected) {
  auto mix = MixtureBatches::BimodalDefault();
  Rng rng(3);
  int large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (mix.Sample(rng) > 400) ++large;
  }
  // The 20%-weight Gaussian(600, 80) component dominates above 400.
  EXPECT_NEAR(static_cast<double>(large) / n, 0.2, 0.02);
}

TEST(MixtureBatchesTest, CdfIsWeightedAverage) {
  auto mix = MixtureBatches::BimodalDefault();
  // Between the modes the CDF must sit at the small-component weight.
  EXPECT_NEAR(mix.Cdf(350), 0.8, 0.01);
  EXPECT_DOUBLE_EQ(mix.Cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(mix.Cdf(1000), 1.0);
}

TEST(MixtureBatchesTest, InvalidComponentsThrow) {
  EXPECT_THROW(MixtureBatches({}), std::invalid_argument);
  std::vector<MixtureBatches::Component> bad;
  bad.push_back({nullptr, 1.0});
  EXPECT_THROW(MixtureBatches(std::move(bad)), std::invalid_argument);
  std::vector<MixtureBatches::Component> neg;
  neg.push_back(
      {std::make_shared<GaussianBatches>(100.0, 10.0), -1.0});
  EXPECT_THROW(MixtureBatches(std::move(neg)), std::invalid_argument);
}

TEST(ParetoBatchesTest, SamplesMatchCdfAndTailOrder) {
  const ParetoBatches heavy(0.8);
  const ParetoBatches light(2.5);
  Rng rng(4);
  int heavy_large = 0, light_large = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (heavy.Sample(rng) > 200) ++heavy_large;
    if (light.Sample(rng) > 200) ++light_large;
  }
  EXPECT_GT(heavy_large, 4 * light_large);  // heavier tail
  EXPECT_NEAR(static_cast<double>(heavy_large) / n, 1.0 - heavy.Cdf(200),
              0.02);
  EXPECT_THROW(ParetoBatches(0.0), std::invalid_argument);
}

TEST(KendallTauTest, PerfectAndInvertedRankings) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {10, 20, 30, 40, 50};
  const std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(xs, up), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau(xs, down), -1.0);
  EXPECT_DOUBLE_EQ(KendallTau(xs, {}), 0.0);
}

TEST(KendallTauTest, PartialAgreement) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {1, 3, 2, 4};  // one swapped pair of 6
  EXPECT_NEAR(KendallTau(xs, ys), (5.0 - 1.0) / 6.0, 1e-12);
}

}  // namespace
}  // namespace kairos::workload
