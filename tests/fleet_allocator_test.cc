// The budget-allocator registry (STATIC / MARGINAL) and its integration
// with the Fleet facade: conservation, monotonicity, degenerate inputs,
// and STATIC-vs-MARGINAL dominance on a three-model fleet.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/status.h"
#include "core/allocator.h"
#include "core/fleet.h"
#include "workload/batch_dist.h"

namespace kairos {
namespace {

using cloud::Catalog;
using core::AllocModel;
using core::AllocationProblem;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(AllocatorRegistryTest, ListsStaticAndMarginal) {
  const auto names = AllocatorRegistry::Global().ListNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "STATIC"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "MARGINAL"), names.end());

  auto lower = AllocatorRegistry::Global().Build("marginal");
  ASSERT_TRUE(lower.ok());  // case-insensitive lookup
  EXPECT_EQ((*lower)->Name(), "MARGINAL");
  EXPECT_TRUE((*lower)->NeedsProbes());

  auto unknown = AllocatorRegistry::Global().Build("GREEDY");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("STATIC"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Synthetic allocation problems (no planner, no simulator): probe(i, b) is
// a concave saturating utility cap_i * (1 - exp(-slope_i * b)).
// ---------------------------------------------------------------------------

AllocationProblem ConcaveProblem(double budget, std::vector<double> caps,
                                 std::vector<double> slopes) {
  AllocationProblem problem;
  problem.budget_per_hour = budget;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    AllocModel m;
    m.name = "m" + std::to_string(i);
    m.floor = 0.5;
    problem.models.push_back(m);
  }
  problem.probe = [caps, slopes](std::size_t i,
                                 double b) -> StatusOr<double> {
    return caps[i] * (1.0 - std::exp(-slopes[i] * b));
  };
  return problem;
}

double TotalUtility(const AllocationProblem& problem,
                    const std::vector<double>& shares) {
  double total = 0.0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    total += *problem.probe(i, shares[i]);
  }
  return total;
}

TEST(MarginalAllocatorTest, ConservesBudgetAndRespectsBounds) {
  auto allocator = *AllocatorRegistry::Global().Build("MARGINAL");
  auto problem = ConcaveProblem(10.0, {100.0, 300.0, 50.0}, {0.5, 0.9, 0.2});
  problem.models[1].ceiling = 3.0;

  const auto shares = allocator->Allocate(problem);
  ASSERT_TRUE(shares.ok()) << shares.status().ToString();
  ASSERT_EQ(shares->size(), 3u);
  double sum = 0.0;
  for (std::size_t i = 0; i < shares->size(); ++i) {
    EXPECT_GE((*shares)[i], problem.models[i].floor - 1e-9);
    EXPECT_LE((*shares)[i], problem.models[i].ceiling + 1e-9);
    sum += (*shares)[i];
  }
  EXPECT_LE(sum, problem.budget_per_hour + 1e-9);
}

TEST(MarginalAllocatorTest, MoreBudgetNeverLowersTotalUtility) {
  auto allocator = *AllocatorRegistry::Global().Build("MARGINAL");
  const std::vector<double> caps = {120.0, 80.0, 200.0};
  const std::vector<double> slopes = {0.8, 0.3, 0.15};
  double previous = 0.0;
  for (const double budget : {2.0, 4.0, 8.0, 16.0}) {
    auto problem = ConcaveProblem(budget, caps, slopes);
    const auto shares = allocator->Allocate(problem);
    ASSERT_TRUE(shares.ok()) << shares.status().ToString();
    const double total = TotalUtility(problem, *shares);
    EXPECT_GE(total, previous - 1e-9) << "budget " << budget;
    previous = total;
  }
}

TEST(MarginalAllocatorTest, DominatesStaticOnHeterogeneousUtilities) {
  auto marginal = *AllocatorRegistry::Global().Build("MARGINAL");
  auto proportional = *AllocatorRegistry::Global().Build("STATIC");
  // Model 1's utility saturates immediately; STATIC's equal-weight split
  // strands budget there that MARGINAL routes to the steep models.
  auto problem = ConcaveProblem(9.0, {40.0, 10.0, 500.0}, {2.0, 5.0, 0.3});

  const auto m = marginal->Allocate(problem);
  const auto s = proportional->Allocate(problem);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_GE(TotalUtility(problem, *m), TotalUtility(problem, *s) - 1e-9);
  EXPECT_GT(TotalUtility(problem, *m), TotalUtility(problem, *s) * 1.05);
}

TEST(MarginalAllocatorTest, SingleModelGetsTheWholeBudgetWhileItHelps) {
  auto allocator = *AllocatorRegistry::Global().Build("MARGINAL");
  auto problem = ConcaveProblem(4.0, {100.0}, {1.0});
  const auto shares = allocator->Allocate(problem);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), 1u);
  // Strictly concave utility: every grant has positive marginal gain, so
  // the single model absorbs (nearly) the full budget.
  EXPECT_NEAR((*shares)[0], 4.0, 0.15);
}

TEST(MarginalAllocatorTest, RejectsDegenerateProblems) {
  auto allocator = *AllocatorRegistry::Global().Build("MARGINAL");

  auto zero_weight = ConcaveProblem(5.0, {10.0, 10.0}, {1.0, 1.0});
  zero_weight.models[0].weight = 0.0;
  auto bad = allocator->Allocate(zero_weight);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto no_probe = ConcaveProblem(5.0, {10.0}, {1.0});
  no_probe.probe = nullptr;
  auto missing = allocator->Allocate(no_probe);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kFailedPrecondition);

  auto tight = ConcaveProblem(0.6, {10.0, 10.0}, {1.0, 1.0});  // floors 2x0.5
  auto infeasible = allocator->Allocate(tight);
  ASSERT_FALSE(infeasible.ok());
  EXPECT_EQ(infeasible.status().code(), StatusCode::kInfeasible);

  auto probe_error = ConcaveProblem(5.0, {10.0}, {1.0});
  probe_error.probe = [](std::size_t, double) -> StatusOr<double> {
    return Status::Internal("latency surface exploded");
  };
  auto failed = allocator->Allocate(probe_error);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find("m0"), std::string::npos);
}

TEST(StaticAllocatorTest, WeightProportionalWithFloorAndCeiling) {
  auto allocator = *AllocatorRegistry::Global().Build("STATIC");
  AllocationProblem problem;
  problem.budget_per_hour = 6.0;
  for (const double weight : {2.0, 1.0}) {
    AllocModel m;
    m.name = "m" + std::to_string(problem.models.size());
    m.weight = weight;
    m.floor = 0.5;
    problem.models.push_back(m);
  }
  auto shares = allocator->Allocate(problem);
  ASSERT_TRUE(shares.ok());
  EXPECT_NEAR((*shares)[0], 4.0, 1e-9);
  EXPECT_NEAR((*shares)[1], 2.0, 1e-9);

  // A ceiling clamps the share; the excess stays unspent.
  problem.models[0].ceiling = 3.0;
  shares = allocator->Allocate(problem);
  ASSERT_TRUE(shares.ok());
  EXPECT_NEAR((*shares)[0], 3.0, 1e-9);
  EXPECT_NEAR((*shares)[1], 2.0, 1e-9);

  // A share below its floor is infeasible, naming the model.
  problem.models[1].floor = 2.5;
  auto infeasible = allocator->Allocate(problem);
  ASSERT_FALSE(infeasible.ok());
  EXPECT_EQ(infeasible.status().code(), StatusCode::kInfeasible);
  EXPECT_NE(infeasible.status().message().find("m1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fleet integration
// ---------------------------------------------------------------------------

std::vector<core::FleetModelOptions> ThreeModelFleet() {
  std::vector<core::FleetModelOptions> models;
  for (const char* name : {"RM2", "WND", "NCF"}) {
    core::FleetModelOptions m;
    m.model = name;
    m.monitor_warmup = 3000;
    models.push_back(m);
  }
  return models;
}

TEST(FleetAllocatorTest, UnknownAllocatorAndTraceAreNotFound) {
  const Catalog catalog = Catalog::PaperPool();
  core::FleetOptions options;
  options.allocator = "GREEDY";
  auto fleet = Fleet::Create(catalog, ThreeModelFleet(), options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_EQ(fleet.status().code(), StatusCode::kNotFound);
  EXPECT_NE(fleet.status().message().find("MARGINAL"), std::string::npos);

  auto models = ThreeModelFleet();
  models[1].trace = "TWITTER";
  auto bad_trace = Fleet::Create(catalog, models);
  ASSERT_FALSE(bad_trace.ok());
  EXPECT_EQ(bad_trace.status().code(), StatusCode::kNotFound);
  EXPECT_NE(bad_trace.status().message().find("WND"), std::string::npos);
}

TEST(FleetAllocatorTest, MarginalPlanKeepsTheFleetInvariants) {
  const Catalog catalog = Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 7.5;
  options.allocator = "MARGINAL";
  options.planning_threads = 2;
  auto fleet = Fleet::Create(catalog, ThreeModelFleet(), options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->models.size(), 3u);

  double share_sum = 0.0;
  for (const core::FleetModelPlan& m : plan->models) {
    EXPECT_LE(m.cost_per_hour, m.budget_per_hour + 1e-9) << m.model;
    EXPECT_GE(m.outcome.config.Count(catalog.BaseType()), 1) << m.model;
    EXPECT_GT(m.outcome.expected_qps, 0.0) << m.model;
    share_sum += m.budget_per_hour;
  }
  EXPECT_LE(share_sum, plan->budget_per_hour + 1e-9);
  EXPECT_LE(plan->total_cost_per_hour, plan->budget_per_hour + 1e-9);
}

TEST(FleetAllocatorTest, MarginalMatchesOrBeatsStaticOnPlannedQps) {
  const Catalog catalog = Catalog::PaperPool();
  // Weights deliberately mismatched to the models' marginal value: NCF
  // (tiny model, tight QoS) hogs half the static split.
  auto models = ThreeModelFleet();
  models[0].weight = 1.0;  // RM2
  models[1].weight = 1.0;  // WND
  models[2].weight = 2.0;  // NCF

  const auto planned_total = [&](const std::string& allocator) {
    core::FleetOptions options;
    options.budget_per_hour = 8.0;
    options.allocator = allocator;
    auto fleet = Fleet::Create(catalog, models, options);
    EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
    fleet->ObserveMixAll(workload::LogNormalBatches::Production());
    const auto plan = fleet->PlanAll();
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    double total = 0.0;
    for (const auto& m : plan->models) total += m.outcome.expected_qps;
    return total;
  };

  EXPECT_GE(planned_total("MARGINAL"), planned_total("STATIC") - 1e-6);
}

TEST(FleetAllocatorTest, MarginalSurvivesFloorsThatStaticRejects) {
  const Catalog catalog = Catalog::PaperPool();
  // $1.2 split 2:1 leaves WND's static share below one base instance
  // (the api_test TinyBudgetShareIsInfeasible case) — MARGINAL only needs
  // the floors to fit and re-splits from there.
  auto models = ThreeModelFleet();
  models.resize(2);  // RM2 + WND
  models[0].weight = 2.0;
  core::FleetOptions options;
  options.budget_per_hour = 1.2;
  auto rejected = Fleet::Create(catalog, models, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInfeasible);

  options.allocator = "MARGINAL";
  auto fleet = Fleet::Create(catalog, models, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  // The seeded session budgets honor every floor without collectively
  // overspending the envelope (the allocator re-splits at PlanAll).
  double session_sum = 0.0;
  for (const char* name : {"RM2", "WND"}) {
    const double share = (*fleet->Session(name))->options().budget_per_hour;
    EXPECT_GE(share, 0.526 - 1e-9) << name;  // cheapest base instance
    session_sum += share;
  }
  EXPECT_LE(session_sum, options.budget_per_hour + 1e-9);

  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  for (const auto& m : plan->models) {
    EXPECT_LE(m.cost_per_hour, m.budget_per_hour + 1e-9) << m.model;
  }

  // But floors that cannot all fit stay infeasible even for MARGINAL.
  options.budget_per_hour = 0.6;
  auto impossible = Fleet::Create(catalog, models, options);
  ASSERT_FALSE(impossible.ok());
  EXPECT_EQ(impossible.status().code(), StatusCode::kInfeasible);
}

TEST(FleetAllocatorTest, PerModelTracesDriveMonitorsAndMeasurement) {
  const Catalog catalog = Catalog::PaperPool();
  auto models = ThreeModelFleet();
  models.resize(2);  // RM2 + WND
  models[0].trace = "GAUSSIAN";
  models[0].arrival_scale = 3.0;
  models[1].monitor_warmup = 2000;
  models[0].monitor_warmup = 2000;

  core::FleetOptions options;
  options.budget_per_hour = 5.0;
  auto fleet = Fleet::Create(catalog, models, options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();

  // ObserveMixAll warms RM2 from its own GAUSSIAN trace (mean batch ~150)
  // and WND from the caller's production mix (mean batch well under 120).
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  EXPECT_GT((*fleet->Session("RM2"))->monitor().MeanBatch(), 120.0);
  EXPECT_LT((*fleet->Session("WND"))->monitor().MeanBatch(), 120.0);

  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  serving::EvalOptions eval;
  eval.queries = 200;
  eval.bisect_iters = 3;
  const auto measured = fleet->MeasureAll(
      *plan, workload::LogNormalBatches::Production(), eval);
  ASSERT_TRUE(measured.ok()) << measured.status().ToString();
  ASSERT_EQ(measured->models.size(), 2u);
  const double rm2_qps = measured->models[0].result.qps;
  const double wnd_qps = measured->models[1].result.qps;
  EXPECT_NEAR(measured->total_qps, rm2_qps + wnd_qps, 1e-9);
  // RM2's traffic counts 3x in the arrival-weighted aggregate.
  EXPECT_NEAR(measured->total_weighted_qps, 3.0 * rm2_qps + wnd_qps, 1e-9);
}

}  // namespace
}  // namespace kairos
