// The registry-driven public API: policy/planner registries, Status-based
// errors, the Kairos::Create path, and the multi-model Fleet facade.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/status.h"
#include "core/fleet.h"
#include "core/kairos.h"
#include "core/planner_backend.h"
#include "policy/registry.h"

namespace kairos {
namespace {

using cloud::Catalog;
using cloud::Config;

// ---------------------------------------------------------------------------
// Status / StatusOr
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOkAndFactoriesCarryCodes) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(Status().ToString(), "OK");
  const Status s = Status::NotFound("no such thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such thing");
}

TEST(StatusOrTest, HoldsValueOrError) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);
  EXPECT_EQ(ok_value.value_or(-1), 42);

  StatusOr<int> error(Status::Infeasible("too expensive"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInfeasible);
  EXPECT_EQ(error.value_or(-1), -1);
}

// ---------------------------------------------------------------------------
// PolicyRegistry
// ---------------------------------------------------------------------------

TEST(PolicyRegistryTest, ListsAllPaperSchemes) {
  const auto names = PolicyRegistry::Global().ListNames();
  for (const char* expected :
       {"KAIROS", "RIBBON", "DRS", "CLKWRK", "PARTITIONED"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing scheme " << expected;
  }
}

TEST(PolicyRegistryTest, RoundTripBuildsEveryListedScheme) {
  for (const std::string& name : PolicyRegistry::Global().ListNames()) {
    auto built = PolicyRegistry::Global().Build(name);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_NE(*built, nullptr);
    // The instance's reported name starts with the canonical registry name
    // (PARTITIONED reports its partition count as a suffix).
    EXPECT_EQ((*built)->Name().rfind(
                  name == "PARTITIONED" ? "KAIROS-POP" : name, 0),
              0u)
        << name << " built a policy named " << (*built)->Name();
  }
}

TEST(PolicyRegistryTest, LookupIsCaseInsensitive) {
  for (const std::string& name : {"kairos", "Kairos", "KAIROS", "rIbBoN"}) {
    EXPECT_TRUE(PolicyRegistry::Global().Contains(name)) << name;
    EXPECT_TRUE(PolicyRegistry::Global().Build(name).ok()) << name;
  }
}

TEST(PolicyRegistryTest, UnknownNameIsNotFoundAndListsAlternatives) {
  const auto result = PolicyRegistry::Global().Build("FCFS++");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  for (const std::string& name : PolicyRegistry::Global().ListNames()) {
    EXPECT_NE(result.status().message().find(name), std::string::npos)
        << "error message does not name " << name;
  }
}

TEST(PolicyRegistryTest, KnobsOverrideDefaultsAndUnknownKnobRejected) {
  auto info = PolicyRegistry::Global().Info("DRS");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->knobs.at("threshold"), 200.0);

  auto drs = PolicyRegistry::Global().Build("DRS", {{"threshold", 350.0}});
  ASSERT_TRUE(drs.ok());
  EXPECT_EQ((*drs)->Name(), "DRS");

  auto bad = PolicyRegistry::Global().Build("DRS", {{"thresh", 350.0}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("threshold"), std::string::npos);

  // Out-of-range knob *values* are errors too, never silently clamped.
  for (const double out_of_range : {-5.0, 1e9}) {
    auto bad_value =
        PolicyRegistry::Global().Build("DRS", {{"threshold", out_of_range}});
    ASSERT_FALSE(bad_value.ok());
    EXPECT_EQ(bad_value.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_FALSE(PolicyRegistry::Global()
                   .MakeFactory("PARTITIONED", {{"partitions", 0.0}})
                   .ok());
}

TEST(PolicyRegistryTest, FactoryProducesFreshInstances) {
  auto factory = PolicyRegistry::Global().MakeFactory("KAIROS");
  ASSERT_TRUE(factory.ok());
  const auto a = (*factory)();
  const auto b = (*factory)();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->Name(), "KAIROS");
}

TEST(MakePolicyFactoryShimTest, StillThrowsButNamesAlternatives) {
  try {
    core::MakePolicyFactory("FCFS++");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("KAIROS"), std::string::npos) << message;
    EXPECT_NE(message.find("RIBBON"), std::string::npos) << message;
  }
}

TEST(MakePolicyFactoryShimTest, ErrorTextIsTheSharedStatusFormatting) {
  // The deprecated shim must not compose bespoke throw text: its message
  // is exactly the registry Status rendered by Status::ToString, so shim
  // and registry callers read the same diagnostics.
  const std::string expected =
      PolicyRegistry::Global().MakeFactory("FCFS++").status().ToString();
  ASSERT_EQ(expected.rfind("NOT_FOUND: ", 0), 0u) << expected;
  try {
    core::MakePolicyFactory("FCFS++");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
}

// ---------------------------------------------------------------------------
// PlannerRegistry / PlannerBackend
// ---------------------------------------------------------------------------

TEST(PlannerRegistryTest, ListsTheFourBackends) {
  const auto names = PlannerRegistry::Global().ListNames();
  for (const char* expected :
       {"KAIROS", "KAIROS+", "HOMOGENEOUS", "BRUTE-FORCE"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing backend " << expected;
  }
  EXPECT_TRUE(PlannerRegistry::Global().Contains("kairos+"));
  const auto unknown = PlannerRegistry::Global().Build("SIMPLEX");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("KAIROS+"), std::string::npos);
}

class PlannerBackendTest : public ::testing::Test {
 protected:
  PlannerBackendTest()
      : catalog_(Catalog::PaperPool()),
        spec_(latency::FindModel("RM2")),
        truth_(spec_.Instantiate(catalog_)),
        monitor_(core::MonitorFromMix(workload::LogNormalBatches::Production(),
                                      5000, 7)) {}

  core::PlannerContext Context(double budget = 2.5) const {
    return core::PlannerContext{&catalog_, &truth_, spec_.qos_ms, budget};
  }

  const Catalog catalog_;
  const latency::ModelSpec& spec_;
  latency::LatencyModel truth_;
  workload::QueryMonitor monitor_;
};

TEST_F(PlannerBackendTest, OneShotKairosMatchesPlannerFacade) {
  auto backend = PlannerRegistry::Global().Build("KAIROS");
  ASSERT_TRUE(backend.ok());
  core::PlanRequest request;
  request.monitor = &monitor_;
  const auto outcome = (*backend)->Plan(Context(), request);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->evaluations, 0u);
  EXPECT_GT(outcome->expected_qps, 0.0);
  ASSERT_TRUE(outcome->plan.has_value());
  const core::Plan direct =
      core::Planner(Context()).PlanConfiguration(monitor_);
  EXPECT_EQ(outcome->config, direct.config);
}

TEST_F(PlannerBackendTest, EvaluationBackendsRequireEval) {
  for (const std::string& name : {"KAIROS+", "BRUTE-FORCE"}) {
    auto backend = PlannerRegistry::Global().Build(name);
    ASSERT_TRUE(backend.ok());
    EXPECT_TRUE((*backend)->NeedsEvaluations());
    core::PlanRequest request;
    request.monitor = &monitor_;
    const auto outcome = (*backend)->Plan(Context(), request);
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition)
        << name;
  }
}

TEST_F(PlannerBackendTest, EvaluationBackendsFindTheSyntheticOptimum) {
  // Synthetic monotone eval: more instances is better, so the optimum is
  // a budget-exhausting config and every backend must find a good one.
  const search::EvalFn eval = [](const Config& c) {
    return static_cast<double>(c.TotalInstances());
  };
  for (const std::string& name : {"KAIROS+", "BRUTE-FORCE"}) {
    auto backend = PlannerRegistry::Global().Build(name);
    ASSERT_TRUE(backend.ok());
    core::PlanRequest request;
    request.monitor = &monitor_;
    request.eval = eval;
    request.search.max_evals = 64;
    const auto outcome = (*backend)->Plan(Context(), request);
    ASSERT_TRUE(outcome.ok()) << name << ": " << outcome.status().ToString();
    EXPECT_GT(outcome->evaluations, 0u) << name;
    EXPECT_LE(outcome->evaluations, 64u) << name;
    EXPECT_GT(outcome->config.TotalInstances(), 1) << name;
    EXPECT_LE(outcome->config.CostPerHour(catalog_), 2.5 + 1e-9) << name;
  }
}

TEST_F(PlannerBackendTest, HomogeneousBackendBuysBaseInstancesOnly) {
  auto backend = PlannerRegistry::Global().Build("HOMOGENEOUS");
  ASSERT_TRUE(backend.ok());
  core::PlanRequest request;
  request.monitor = &monitor_;
  const auto outcome = (*backend)->Plan(Context(), request);
  ASSERT_TRUE(outcome.ok());
  const cloud::TypeId base = catalog_.BaseType();
  EXPECT_GT(outcome->config.Count(base), 0);
  for (const cloud::TypeId aux : catalog_.AuxiliaryTypes()) {
    EXPECT_EQ(outcome->config.Count(aux), 0);
  }
}

TEST_F(PlannerBackendTest, InfeasibleBudgetIsStatusNotThrow) {
  auto backend = PlannerRegistry::Global().Build("KAIROS");
  ASSERT_TRUE(backend.ok());
  core::PlanRequest request;
  request.monitor = &monitor_;
  const auto outcome = (*backend)->Plan(Context(/*budget=*/0.01), request);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInfeasible);
}

// ---------------------------------------------------------------------------
// Kairos::Create
// ---------------------------------------------------------------------------

TEST(KairosCreateTest, UnknownModelIsNotFoundListingZoo) {
  const Catalog catalog = Catalog::PaperPool();
  const auto result = core::Kairos::Create(catalog, "LLAMA");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("RM2"), std::string::npos);
  EXPECT_NE(result.status().message().find("DIEN"), std::string::npos);
}

TEST(KairosCreateTest, ValidModelPlansLikeThrowingConstructor) {
  const Catalog catalog = Catalog::PaperPool();
  auto created = core::Kairos::Create(catalog, "WND");
  ASSERT_TRUE(created.ok());
  created->ObserveMix(workload::LogNormalBatches::Production());
  const core::Plan plan = created->PlanConfiguration();
  EXPECT_LE(plan.config.CostPerHour(catalog), 2.5 + 1e-9);

  const auto bad_options = core::Kairos::Create(
      catalog, "WND", core::KairosOptions{.qos_scale = -1.0});
  ASSERT_FALSE(bad_options.ok());
  EXPECT_EQ(bad_options.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------------

std::vector<core::FleetModelOptions> TwoModelFleet() {
  core::FleetModelOptions rm2;
  rm2.model = "RM2";
  rm2.weight = 2.0;
  rm2.monitor_warmup = 4000;
  core::FleetModelOptions wnd;
  wnd.model = "WND";
  wnd.weight = 1.0;
  wnd.monitor_warmup = 4000;
  return {rm2, wnd};
}

TEST(FleetTest, CreateValidationErrors) {
  const Catalog catalog = Catalog::PaperPool();

  auto empty = Fleet::Create(catalog, {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  auto models = TwoModelFleet();
  models[1].model = "LLAMA";
  auto unknown = Fleet::Create(catalog, models);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("RM2"), std::string::npos);

  models = TwoModelFleet();
  models[0].weight = 0.0;
  auto bad_weight = Fleet::Create(catalog, models);
  ASSERT_FALSE(bad_weight.ok());
  EXPECT_EQ(bad_weight.status().code(), StatusCode::kInvalidArgument);

  models = TwoModelFleet();
  models[1].model = "RM2";
  auto dup = Fleet::Create(catalog, models);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  core::FleetOptions options;
  options.planner = "SIMPLEX";
  auto bad_planner = Fleet::Create(catalog, TwoModelFleet(), options);
  ASSERT_FALSE(bad_planner.ok());
  EXPECT_EQ(bad_planner.status().code(), StatusCode::kNotFound);
}

TEST(FleetTest, TinyBudgetShareIsInfeasible) {
  const Catalog catalog = Catalog::PaperPool();
  core::FleetOptions options;
  // Split 2:1 of $1.2/hr: RM2's $0.8 buys a base G1 ($0.526), WND's $0.4
  // cannot — the fleet must refuse with the model named.
  options.budget_per_hour = 1.2;
  auto fleet = Fleet::Create(catalog, TwoModelFleet(), options);
  ASSERT_FALSE(fleet.ok());
  EXPECT_EQ(fleet.status().code(), StatusCode::kInfeasible);
  EXPECT_NE(fleet.status().message().find("WND"), std::string::npos);
}

TEST(FleetTest, BudgetSplitInvariants) {
  const Catalog catalog = Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 5.0;
  auto fleet = Fleet::Create(catalog, TwoModelFleet(), options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  EXPECT_EQ(fleet->size(), 2u);

  // Weight-proportional shares that sum to the global budget.
  const auto rm2_budget = fleet->BudgetFor("RM2");
  const auto wnd_budget = fleet->BudgetFor("WND");
  ASSERT_TRUE(rm2_budget.ok());
  ASSERT_TRUE(wnd_budget.ok());
  EXPECT_NEAR(*rm2_budget, 2.0 * *wnd_budget, 1e-9);
  EXPECT_LE(*rm2_budget + *wnd_budget, options.budget_per_hour + 1e-9);

  EXPECT_FALSE(fleet->BudgetFor("DIEN").ok());
  ASSERT_TRUE(fleet->Session("RM2").ok());
  EXPECT_EQ((*fleet->Session("RM2"))->options().budget_per_hour, *rm2_budget);

  // Planning before observing any workload is a sequencing error.
  const auto premature = fleet->PlanAll();
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), StatusCode::kFailedPrecondition);

  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->models.size(), 2u);

  double share_sum = 0.0;
  double cost_sum = 0.0;
  for (const core::FleetModelPlan& m : plan->models) {
    // Each model's chosen config fits its own share (so the fleet as a
    // whole fits the global budget), keeps >= 1 base instance (QoS
    // feasibility for the largest batches), and carries a positive
    // upper-bound estimate.
    EXPECT_LE(m.cost_per_hour, m.budget_per_hour + 1e-9) << m.model;
    EXPECT_GE(m.outcome.config.Count(catalog.BaseType()), 1) << m.model;
    EXPECT_GT(m.outcome.expected_qps, 0.0) << m.model;
    EXPECT_GT(m.qos_ms, 0.0) << m.model;
    share_sum += m.budget_per_hour;
    cost_sum += m.cost_per_hour;
  }
  EXPECT_LE(share_sum, plan->budget_per_hour + 1e-9);
  EXPECT_NEAR(cost_sum, plan->total_cost_per_hour, 1e-9);
  EXPECT_LE(plan->total_cost_per_hour, plan->budget_per_hour + 1e-9);
}

TEST(FleetTest, MeasureAllReportsEveryModel) {
  const Catalog catalog = Catalog::PaperPool();
  auto models = TwoModelFleet();
  for (auto& m : models) m.monitor_warmup = 2000;
  core::FleetOptions options;
  options.budget_per_hour = 5.0;
  auto fleet = Fleet::Create(catalog, models, options);
  ASSERT_TRUE(fleet.ok());
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok());

  serving::EvalOptions eval;
  eval.queries = 200;  // smoke fidelity
  eval.bisect_iters = 3;
  const auto measured = fleet->MeasureAll(
      *plan, workload::LogNormalBatches::Production(), eval);
  ASSERT_TRUE(measured.ok()) << measured.status().ToString();
  ASSERT_EQ(measured->models.size(), 2u);
  double sum = 0.0;
  for (const auto& m : measured->models) {
    EXPECT_GT(m.result.qps, 0.0) << m.model;
    sum += m.result.qps;
  }
  EXPECT_NEAR(sum, measured->total_qps, 1e-9);

  // Deploying a planned config through the fleet works; unknown models
  // surface as kNotFound.
  const auto runtime = fleet->Deploy("RM2", plan->models[0].outcome.config);
  ASSERT_TRUE(runtime.ok());
  EXPECT_FALSE(fleet->Deploy("DIEN", plan->models[0].outcome.config).ok());
}

}  // namespace
}  // namespace kairos
