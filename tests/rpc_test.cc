#include <gtest/gtest.h>

#include "rpc/channel.h"
#include "rpc/netem.h"
#include "sim/simulator.h"

namespace kairos::rpc {
namespace {

TEST(NetworkModelTest, DeterministicWithoutJitter) {
  const NetworkModel net(50.0, 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(net.SampleDelay(rng), 50e-6);
  EXPECT_DOUBLE_EQ(net.SampleDelay(rng), 50e-6);
}

TEST(NetworkModelTest, JitterIsMultiplicativeAndPositive) {
  const NetworkModel net(50.0, 0.3);
  Rng rng(2);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Time d = net.SampleDelay(rng);
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  // Log-normal multiplicative jitter has mean exp(sigma^2/2) ~ 1.046.
  EXPECT_NEAR(sum / 5000.0, 50e-6 * 1.046, 5e-6);
}

TEST(NetworkModelTest, NegativeParametersThrow) {
  EXPECT_THROW(NetworkModel(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NetworkModel(1.0, -0.5), std::invalid_argument);
}

TEST(ChannelTest, SendDeliversAfterOneHop) {
  sim::Simulator sim;
  Channel ch(sim, NetworkModel(100.0, 0.0), Rng(3));
  Time delivered_at = -1.0;
  ch.Send([&] { delivered_at = sim.Now(); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(delivered_at, 100e-6);
  EXPECT_EQ(ch.stats().messages, 1u);
}

TEST(ChannelTest, CallIsTwoHopsInOrder) {
  sim::Simulator sim;
  Channel ch(sim, NetworkModel(100.0, 0.0), Rng(4));
  Time server_at = -1.0, reply_at = -1.0;
  ch.Call([&] { server_at = sim.Now(); }, [&] { reply_at = sim.Now(); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(server_at, 100e-6);
  EXPECT_DOUBLE_EQ(reply_at, 200e-6);
  EXPECT_EQ(ch.stats().messages, 2u);
  EXPECT_NEAR(ch.stats().total_delay, 200e-6, 1e-12);
}

TEST(ChannelTest, ConcurrentCallsInterleaveByDelay) {
  sim::Simulator sim;
  Channel fast(sim, NetworkModel(10.0, 0.0), Rng(5));
  Channel slow(sim, NetworkModel(500.0, 0.0), Rng(6));
  std::vector<int> order;
  slow.Send([&] { order.push_back(2); });
  fast.Send([&] { order.push_back(1); });
  sim.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace kairos::rpc
