#include <gtest/gtest.h>

#include <algorithm>

#include "rpc/channel.h"
#include "rpc/netem.h"
#include "sim/simulator.h"

namespace kairos::rpc {
namespace {

TEST(NetworkModelTest, DeterministicWithoutJitter) {
  const NetworkModel net(50.0, 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(net.SampleDelay(rng), 50e-6);
  EXPECT_DOUBLE_EQ(net.SampleDelay(rng), 50e-6);
}

TEST(NetworkModelTest, JitterIsMultiplicativeAndPositive) {
  const NetworkModel net(50.0, 0.3);
  Rng rng(2);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const Time d = net.SampleDelay(rng);
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  // Log-normal multiplicative jitter has mean exp(sigma^2/2) ~ 1.046.
  EXPECT_NEAR(sum / 5000.0, 50e-6 * 1.046, 5e-6);
}

TEST(NetworkModelTest, NegativeParametersThrow) {
  EXPECT_THROW(NetworkModel(-1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NetworkModel(1.0, -0.5), std::invalid_argument);
  EXPECT_THROW(NetworkModel(1.0, 0.0, -0.1), std::invalid_argument);
  EXPECT_THROW(NetworkModel(1.0, 0.0, 1.0), std::invalid_argument);
}

TEST(NetworkModelTest, ValidateReturnsStatusForKnobDerivedParameters) {
  EXPECT_TRUE(NetworkModel::Validate(20.0, 0.3, 0.05).ok());
  EXPECT_TRUE(NetworkModel::Validate(0.0, 0.0, 0.0).ok());
  EXPECT_EQ(NetworkModel::Validate(-1.0, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NetworkModel::Validate(1.0, -0.5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NetworkModel::Validate(1.0, 0.0, -0.1).code(),
            StatusCode::kInvalidArgument);
  // loss_prob 1 would retransmit forever: the valid range is [0, 1).
  EXPECT_EQ(NetworkModel::Validate(1.0, 0.0, 1.0).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetworkModelTest, SameSeedReplaysIdenticalDelayAndLossSequences) {
  const NetworkModel net(100.0, 0.4, 0.3);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_DOUBLE_EQ(net.SampleDelay(a), net.SampleDelay(b));
  }
}

TEST(NetworkModelTest, LossFreeModelDrawsNothingForLoss) {
  // Adding the loss knob must not perturb pre-existing RNG streams: a
  // loss_prob-0 model consumes exactly the draws the two-parameter model
  // always did, so both replay the same jitter sequence.
  const NetworkModel legacy(50.0, 0.3);
  const NetworkModel lossless(50.0, 0.3, 0.0);
  Rng a(2);
  Rng b(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_DOUBLE_EQ(legacy.SampleDelay(a), lossless.SampleDelay(b));
  }
}

TEST(NetworkModelTest, LossAddsRetransmissionPenalties) {
  const NetworkModel clean(100.0, 0.0, 0.0);
  const NetworkModel lossy(100.0, 0.0, 0.5);
  Rng rng(11);
  double clean_sum = 0.0, lossy_sum = 0.0;
  Time lossy_max = 0.0;
  for (int i = 0; i < 4000; ++i) {
    clean_sum += clean.SampleDelay(rng);
    const Time d = lossy.SampleDelay(rng);
    EXPECT_GE(d, 0.99 * 100e-6);  // never faster than the lossless hop
    lossy_sum += d;
    lossy_max = std::max(lossy_max, d);
  }
  // At 50% loss the expected retransmission count is 1 per delivery, each
  // costing a 4x-base timeout: mean ~ base * (1 + 1 * 4) = 5x base.
  EXPECT_NEAR(lossy_sum / 4000.0, 5.0 * 100e-6, 1.0 * 100e-6);
  EXPECT_GT(lossy_sum, 2.0 * clean_sum);
  EXPECT_GT(lossy_max, 4.0 * 100e-6);  // at least one retransmitted sample
}

TEST(ChannelTest, SendDeliversAfterOneHop) {
  sim::Simulator sim;
  Channel ch(sim, NetworkModel(100.0, 0.0), Rng(3));
  Time delivered_at = -1.0;
  ch.Send([&] { delivered_at = sim.Now(); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(delivered_at, 100e-6);
  EXPECT_EQ(ch.stats().messages, 1u);
}

TEST(ChannelTest, CallIsTwoHopsInOrder) {
  sim::Simulator sim;
  Channel ch(sim, NetworkModel(100.0, 0.0), Rng(4));
  Time server_at = -1.0, reply_at = -1.0;
  ch.Call([&] { server_at = sim.Now(); }, [&] { reply_at = sim.Now(); });
  sim.RunUntil();
  EXPECT_DOUBLE_EQ(server_at, 100e-6);
  EXPECT_DOUBLE_EQ(reply_at, 200e-6);
  EXPECT_EQ(ch.stats().messages, 2u);
  EXPECT_NEAR(ch.stats().total_delay, 200e-6, 1e-12);
}

TEST(ChannelTest, ConcurrentCallsInterleaveByDelay) {
  sim::Simulator sim;
  Channel fast(sim, NetworkModel(10.0, 0.0), Rng(5));
  Channel slow(sim, NetworkModel(500.0, 0.0), Rng(6));
  std::vector<int> order;
  slow.Send([&] { order.push_back(2); });
  fast.Send([&] { order.push_back(1); });
  sim.RunUntil();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace kairos::rpc
