#include <gtest/gtest.h>

#include <memory>

#include "policy/clockwork_policy.h"
#include "policy/drs_policy.h"
#include "policy/kairos_policy.h"
#include "policy/partitioned_policy.h"
#include "policy/ribbon_policy.h"
#include "serving/system.h"
#include "workload/trace.h"

namespace kairos::policy {
namespace {

using cloud::Catalog;
using cloud::Config;
using latency::LatencyModel;
using serving::InstanceView;
using serving::LatencyPredictor;
using workload::Query;
using workload::Trace;

Catalog TinyCatalog() {
  Catalog c;
  c.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"aux", "A", cloud::InstanceClass::kGeneralPurposeCpu, 0.25, false});
  return c;
}

LatencyModel TinyModel() { return LatencyModel({{10.0, 0.1}, {20.0, 0.4}}); }

struct Fixture {
  Catalog catalog = TinyCatalog();
  LatencyModel truth = TinyModel();
  LatencyPredictor predictor{catalog, truth, serving::PredictorOptions{}};

  RoundContext Ctx(std::vector<Query>& waiting,
                   std::vector<InstanceView>& instances, double qos_ms,
                   Time now = 0.0) {
    RoundContext ctx;
    ctx.now = now;
    ctx.qos_sec = MsToSec(qos_ms);
    ctx.waiting = waiting;
    ctx.instances = instances;
    ctx.predictor = &predictor;
    ctx.catalog = &catalog;
    return ctx;
  }
};

TEST(KairosPolicyTest, PrefersHighSpeedupQueryOnFastInstance) {
  // One large and one small query, one base and one aux instance, both
  // idle. The large query has the higher base/aux speedup, so Kairos must
  // put the large one on the base and the small one on the aux.
  Fixture f;
  std::vector<Query> waiting = {Query{0, 600, 0.0}, Query{1, 20, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}, {1, 0.0, true, 0}};
  KairosPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 2u);
  for (const Assignment& a : out) {
    if (a.waiting_idx == 0) {
      EXPECT_EQ(a.instance_idx, 0u);  // large -> base
    }
    if (a.waiting_idx == 1) {
      EXPECT_EQ(a.instance_idx, 1u);  // small -> aux
    }
  }
}

TEST(KairosPolicyTest, AvoidsQosViolatingPairWhenAlternativeExists) {
  // A batch-600 query violates QoS=100ms on the aux (20+240=260ms) but not
  // on the base (70ms). Even with the base busy for a short while, the
  // penalized cost must route it to the base.
  Fixture f;
  std::vector<Query> waiting = {Query{0, 600, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.010, false, 0},
                                         {1, 0.0, true, 0}};
  KairosPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 100.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_idx, 0u);
}

TEST(KairosPolicyTest, WaitTimeTightensTheDeadline) {
  // Same query, but it has already waited 95 of its 100ms budget: now even
  // the base (70ms serve) violates, everything is penalized, and the
  // matching still returns an assignment (min-cost among penalties).
  Fixture f;
  std::vector<Query> waiting = {Query{0, 600, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.095, false, 0},
                                         {1, 0.095, true, 0}};
  KairosPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 100.0, /*now=*/0.095);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);  // Eq. 7: min(m, n) pairs always matched
}

TEST(KairosPolicyTest, HeterogeneityCoefficientSteersTies) {
  // Two identical small queries, one base + one aux, both idle, both meet
  // QoS. With C_j enabled the aux instance second of cost C_aux*L is
  // cheaper, so the pair (query, aux) participates in the min-cost
  // matching; with one query the solver must pick the aux.
  Fixture f;
  std::vector<Query> waiting = {Query{0, 10, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}, {1, 0.0, true, 0}};
  KairosPolicy with_coeff{KairosPolicyOptions{}};
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = with_coeff.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_idx, 1u);  // aux time is cheap; keep base free

  KairosPolicyOptions no_coeff;
  no_coeff.use_heterogeneity_coefficient = false;
  KairosPolicy without(no_coeff);
  const auto out2 = without.Distribute(ctx);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].instance_idx, 0u);  // raw latency: base is faster
}

TEST(KairosPolicyTest, MatchesMinOfQueriesAndInstances) {
  Fixture f;
  std::vector<Query> waiting;
  for (int i = 0; i < 5; ++i) {
    waiting.push_back(Query{static_cast<workload::QueryId>(i), 50, 0.0});
  }
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}, {1, 0.0, true, 0}};
  KairosPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  EXPECT_EQ(policy.Distribute(ctx).size(), 2u);  // Eq. 7

  std::vector<Query> one = {Query{0, 50, 0.0}};
  auto ctx2 = f.Ctx(one, instances, 300.0);
  EXPECT_EQ(policy.Distribute(ctx2).size(), 1u);
}

TEST(KairosPolicyTest, EmptyInputsYieldNoAssignments) {
  Fixture f;
  std::vector<Query> none;
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}};
  KairosPolicy policy;
  auto ctx = f.Ctx(none, instances, 300.0);
  EXPECT_TRUE(policy.Distribute(ctx).empty());
}

TEST(RibbonPolicyTest, FcfsPrefersBaseOnIdlePool) {
  Fixture f;
  std::vector<Query> waiting = {Query{0, 50, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}, {1, 0.0, true, 0}};
  RibbonPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_idx, 0u);  // base preferred
}

TEST(RibbonPolicyTest, SpillsLargeQueryToAuxWhenBaseBusy) {
  // This is Ribbon's weakness the paper exploits: a large query lands on a
  // slow aux instance simply because the base is busy.
  Fixture f;
  std::vector<Query> waiting = {Query{0, 900, 0.0}};
  std::vector<InstanceView> instances = {{0, 1.0, false, 0},
                                         {1, 0.0, true, 0}};
  RibbonPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_idx, 1u);
}

TEST(RibbonPolicyTest, StopsWhenNoIdleInstance) {
  Fixture f;
  std::vector<Query> waiting = {Query{0, 50, 0.0}, Query{1, 50, 0.0}};
  std::vector<InstanceView> instances = {{0, 1.0, false, 0},
                                         {1, 1.0, false, 0}};
  RibbonPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  EXPECT_TRUE(policy.Distribute(ctx).empty());
}

TEST(DrsPolicyTest, ThresholdSplitsPools) {
  Fixture f;
  std::vector<Query> waiting = {Query{0, 500, 0.0}, Query{1, 50, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}, {1, 0.0, true, 0}};
  DrsPolicy policy(200);
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 2u);
  for (const Assignment& a : out) {
    if (a.waiting_idx == 0) {
      EXPECT_EQ(a.instance_idx, 0u);  // large -> base
    }
    if (a.waiting_idx == 1) {
      EXPECT_EQ(a.instance_idx, 1u);  // small -> aux
    }
  }
}

TEST(DrsPolicyTest, QueryWaitsWhenItsPoolIsBusy) {
  // Small query, aux pool busy, base idle: strict DRS keeps it waiting —
  // the missed opportunity the paper calls out.
  Fixture f;
  std::vector<Query> waiting = {Query{0, 50, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0},
                                         {1, 1.0, false, 0}};
  DrsPolicy policy(200);
  auto ctx = f.Ctx(waiting, instances, 300.0);
  EXPECT_TRUE(policy.Distribute(ctx).empty());
}

TEST(DrsPolicyTest, HomogeneousPoolTakesEverything) {
  Fixture f;
  std::vector<Query> waiting = {Query{0, 50, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}};
  DrsPolicy policy(200);
  auto ctx = f.Ctx(waiting, instances, 300.0);
  EXPECT_EQ(policy.Distribute(ctx).size(), 1u);
}

TEST(DrsPolicyTest, InvalidThresholdThrows) {
  EXPECT_THROW(DrsPolicy(-1), std::invalid_argument);
  EXPECT_THROW(DrsPolicy(1001), std::invalid_argument);
}

TEST(ClockworkPolicyTest, PicksEarliestCompletionMeetingQos) {
  // Base is backlogged 50ms; aux idle. A small query meets QoS on both but
  // completes earlier on the aux: CLKWRK must pick the aux.
  Fixture f;
  std::vector<Query> waiting = {Query{0, 10, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.050, false, 1},
                                         {1, 0.0, true, 0}};
  ClockworkPolicy policy;
  EXPECT_TRUE(policy.EarlyBinding());
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_idx, 1u);
}

TEST(ClockworkPolicyTest, FallsBackToEarliestWhenNoneMeetsQos) {
  Fixture f;
  // Both instances deeply backlogged; nothing meets QoS=50ms.
  std::vector<Query> waiting = {Query{0, 10, 0.0}};
  std::vector<InstanceView> instances = {{0, 5.0, false, 3},
                                         {1, 4.0, false, 3}};
  ClockworkPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 50.0);
  const auto out = policy.Distribute(ctx);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].instance_idx, 1u);  // earlier completion overall
}

TEST(ClockworkPolicyTest, AssignsEveryWaitingQuery) {
  // Early binding: all queries are committed each round.
  Fixture f;
  std::vector<Query> waiting;
  for (int i = 0; i < 6; ++i) {
    waiting.push_back(Query{static_cast<workload::QueryId>(i), 30, 0.0});
  }
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}};
  ClockworkPolicy policy;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  // One instance but early binding commits at most one query per instance
  // per round (the system enforces unique instance indices).
  const auto out = policy.Distribute(ctx);
  EXPECT_EQ(out.size(), 6u);  // Clockwork stacks its per-instance queue
}

TEST(PartitionedPolicyTest, SinglePartitionMatchesPlainKairos) {
  Fixture f;
  std::vector<Query> waiting = {Query{0, 600, 0.0}, Query{1, 20, 0.0}};
  std::vector<InstanceView> instances = {{0, 0.0, true, 0}, {1, 0.0, true, 0}};
  PartitionedKairosPolicy partitioned(1);
  KairosPolicy plain;
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto a = partitioned.Distribute(ctx);
  const auto b = plain.Distribute(ctx);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].waiting_idx, b[i].waiting_idx);
    EXPECT_EQ(a[i].instance_idx, b[i].instance_idx);
  }
}

TEST(PartitionedPolicyTest, AssignmentsStayWithinPartitions) {
  Fixture f;
  std::vector<Query> waiting;
  for (int i = 0; i < 8; ++i) {
    waiting.push_back(Query{static_cast<workload::QueryId>(i), 40, 0.0});
  }
  std::vector<InstanceView> instances(6, InstanceView{0, 0.0, true, 0});
  PartitionedKairosPolicy policy(2);
  auto ctx = f.Ctx(waiting, instances, 300.0);
  const auto out = policy.Distribute(ctx);
  EXPECT_FALSE(out.empty());
  for (const Assignment& a : out) {
    // Query id parity must match instance index parity (round-robin split).
    EXPECT_EQ(waiting[a.waiting_idx].id % 2, a.instance_idx % 2);
  }
}

TEST(PartitionedPolicyTest, ZeroPartitionsThrows) {
  EXPECT_THROW(PartitionedKairosPolicy(0), std::invalid_argument);
}

// Fig. 5 reproduction: with 2 instances and 4 staggered queries, Kairos's
// speedup-aware placement serves all four within QoS while naive FCFS
// (Ribbon) violates on one.
TEST(Fig5SlackScenario, KairosServesAllFourFcfsDoesNot) {
  Catalog catalog = TinyCatalog();
  // base: 40 + 0.26 b ms ; aux: 55 + 0.95 b ms, QoS 350 ms.
  const LatencyModel truth({{40.0, 0.26}, {55.0, 0.95}});
  serving::SystemSpec spec;
  spec.catalog = &catalog;
  spec.config = Config({1, 1});
  spec.truth = &truth;
  spec.qos_ms = 350.0;

  // A small query arrives first, then a large one, then two more small
  // ones. Naive FCFS burns the base on the small leader; when the large
  // query arrives only the aux is idle, and the aux cannot serve it within
  // QoS (55 + 0.95*900 = 910 ms). Kairos parks the small leader on the aux
  // (its weighted time is cheap), keeping the base free for the query with
  // the high speedup.
  const Trace trace({Query{0, 100, 0.000}, Query{1, 900, 0.010},
                     Query{2, 100, 0.020}, Query{3, 100, 0.030}});

  serving::RunOptions keep;
  keep.abort_violation_fraction = 0.0;
  serving::ServingSystem kairos_sys(spec, std::make_unique<KairosPolicy>(),
                                    serving::PredictorOptions{}, keep);
  serving::ServingSystem fcfs_sys(spec, std::make_unique<RibbonPolicy>(),
                                  serving::PredictorOptions{}, keep);
  const auto kairos_run = kairos_sys.Run(trace);
  const auto fcfs_run = fcfs_sys.Run(trace);
  EXPECT_EQ(kairos_run.violations, 0u)
      << "Kairos should serve all 4 queries within QoS";
  EXPECT_GT(fcfs_run.violations, 0u)
      << "naive FCFS should lose at least one query to QoS";
}

}  // namespace
}  // namespace kairos::policy
