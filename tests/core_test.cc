#include <gtest/gtest.h>

#include "cloud/config_space.h"
#include "core/kairos.h"
#include "core/planner.h"
#include "core/runtime.h"

namespace kairos::core {
namespace {

using cloud::Catalog;
using cloud::Config;

TEST(PlannerTest, ConfigSpaceMatchesEnumeration) {
  const Catalog catalog = Catalog::PaperPool();
  const auto spec = latency::FindModel("RM2");
  const auto truth = spec.Instantiate(catalog);
  Planner planner(PlannerContext{&catalog, &truth, spec.qos_ms, 2.5});
  const auto space = planner.ConfigSpace();
  const auto direct = cloud::EnumerateConfigs(
      catalog, {.budget_per_hour = 2.5, .min_base_instances = 1});
  EXPECT_EQ(space.size(), direct.size());
}

TEST(PlannerTest, PlanIsWithinBudgetAndRankedDescending) {
  const Catalog catalog = Catalog::PaperPool();
  const auto spec = latency::FindModel("RM2");
  const auto truth = spec.Instantiate(catalog);
  Planner planner(PlannerContext{&catalog, &truth, spec.qos_ms, 2.5});
  const auto monitor =
      MonitorFromMix(workload::LogNormalBatches::Production(), 10000, 1);
  const Plan plan = planner.PlanConfiguration(monitor);
  EXPECT_LE(plan.config.CostPerHour(catalog), 2.5 + 1e-9);
  for (std::size_t i = 1; i < plan.ranked.size(); ++i) {
    EXPECT_GE(plan.ranked[i - 1].upper_bound, plan.ranked[i].upper_bound);
  }
  // The chosen config sits within the top-10 upper bounds (Sec. 5.2).
  EXPECT_LT(plan.selection.chosen_rank, 10u);
}

TEST(PlannerTest, InvalidContextThrows) {
  const Catalog catalog = Catalog::PaperPool();
  const auto spec = latency::FindModel("RM2");
  const auto truth = spec.Instantiate(catalog);
  EXPECT_THROW(Planner(PlannerContext{nullptr, &truth, 350.0, 2.5}),
               std::invalid_argument);
  EXPECT_THROW(Planner(PlannerContext{&catalog, &truth, 0.0, 2.5}),
               std::invalid_argument);
  EXPECT_THROW(Planner(PlannerContext{&catalog, &truth, 350.0, -1.0}),
               std::invalid_argument);
}

TEST(KairosFacadeTest, ObserveMixWarmsMonitor) {
  const Catalog catalog = Catalog::PaperPool();
  Kairos kairos(catalog, "RM2");
  EXPECT_EQ(kairos.monitor().Count(), 0u);
  kairos.ObserveMix(workload::LogNormalBatches::Production());
  EXPECT_EQ(kairos.monitor().Count(), kairos.options().monitor_warmup);
  kairos.ResetMonitor();
  EXPECT_EQ(kairos.monitor().Count(), 0u);
}

TEST(KairosFacadeTest, QosScaleMultipliesTable3Target) {
  const Catalog catalog = Catalog::PaperPool();
  KairosOptions opt;
  opt.qos_scale = 1.2;  // Fig. 15b
  Kairos kairos(catalog, "WND", opt);
  EXPECT_DOUBLE_EQ(kairos.qos_ms(), 25.0 * 1.2);
  EXPECT_THROW(Kairos(catalog, "WND", KairosOptions{.qos_scale = 0.0}),
               std::invalid_argument);
}

TEST(KairosFacadeTest, UnknownModelThrows) {
  const Catalog catalog = Catalog::PaperPool();
  EXPECT_THROW(Kairos(catalog, "LLAMA"), std::out_of_range);
}

TEST(KairosFacadeTest, PlanWithEvaluationsReturnsBudgetedConfig) {
  const Catalog catalog = Catalog::PaperPool();
  KairosOptions opt;
  opt.monitor_warmup = 4000;
  Kairos kairos(catalog, "DIEN", opt);
  kairos.ObserveMix(workload::LogNormalBatches::Production());
  // Cheap synthetic eval: prefer more total instances (monotone), so the
  // search machinery can be exercised without simulations.
  const auto result = kairos.PlanWithEvaluations(
      [](const Config& c) { return static_cast<double>(c.TotalInstances()); },
      search::SearchOptions{.max_evals = 25});
  EXPECT_LE(result.best_config.CostPerHour(catalog), 2.5 + 1e-9);
  EXPECT_LE(result.evals, 25u);
  EXPECT_GT(result.best_qps, 0.0);
}

TEST(MakePolicyFactoryTest, BuildsAllSchemes) {
  for (const char* name : {"KAIROS", "RIBBON", "DRS", "CLKWRK"}) {
    const auto factory = MakePolicyFactory(name, 150);
    const auto policy = factory();
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->Name(), name);
  }
  EXPECT_THROW(MakePolicyFactory("FCFS++"), std::out_of_range);
}

TEST(MonitorFromMixTest, DeterministicForSeed) {
  const auto mix = workload::LogNormalBatches::Production();
  const auto a = MonitorFromMix(mix, 2000, 5);
  const auto b = MonitorFromMix(mix, 2000, 5);
  EXPECT_DOUBLE_EQ(a.MeanBatch(), b.MeanBatch());
  EXPECT_EQ(a.Count(), 2000u);
}

TEST(RuntimeTest, ServeRunsTraceWithKairosPolicy) {
  const Catalog catalog = Catalog::PaperPool();
  const auto spec = latency::FindModel("WND");
  const auto truth = spec.Instantiate(catalog);
  Runtime runtime(catalog, Config({1, 0, 2, 0}), truth, spec.qos_ms);
  Rng rng(3);
  const auto mix = workload::LogNormalBatches::Production();
  const auto trace = workload::Trace::Generate(
      workload::PoissonArrivals(50.0), mix, 300, rng);
  const auto result = runtime.Serve(trace);
  EXPECT_EQ(result.served, 300u);
  EXPECT_GT(result.throughput_qps, 0.0);
}

TEST(RuntimeTest, MeasureThroughputPositiveForFeasibleSetup) {
  const Catalog catalog = Catalog::PaperPool();
  const auto spec = latency::FindModel("WND");
  const auto truth = spec.Instantiate(catalog);
  Runtime runtime(catalog, Config({2, 0, 0, 0}), truth, spec.qos_ms);
  serving::EvalOptions opt;
  opt.queries = 300;
  opt.rate_guess = 100.0;
  const auto r =
      runtime.MeasureThroughput(workload::LogNormalBatches::Production(), opt);
  EXPECT_GT(r.qps, 0.0);
}

}  // namespace
}  // namespace kairos::core
