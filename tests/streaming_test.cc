// The determinism harness behind the million-user streaming path
// (DESIGN.md Sec. 12): chunk-size invariance for StreamingTraceReader,
// the STREAM registry contract, and the bit-identity oracle — a fleet
// serving a trace through the bounded-memory STREAM source must produce
// results field-for-field identical to the same trace materialized
// through TRACE, at every serve_threads value and every chunk size.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "workload/batch_dist.h"
#include "workload/query_source.h"
#include "workload/trace_io.h"

namespace kairos {
namespace {

using workload::Query;
using workload::QuerySourceRegistry;
using workload::QuerySourceSpec;
using workload::StreamingTraceOptions;
using workload::StreamingTraceReader;
using workload::Trace;

/// Writes a deterministic pseudo-random trace (LCG, fixed seed) to a
/// TempDir file: `n` queries, gaps in [0, 10ms), batches in [1, 8],
/// arrivals printed at full double precision so they round-trip exactly.
std::string WriteTrace(const std::string& name, std::size_t n,
                       double gap_scale = 1.0) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << "id,arrival_s,batch\n";
  std::uint64_t state = 0x243F6A8885A308D3ull;
  double arrival = 0.0;
  out << std::setprecision(17);
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    arrival += gap_scale * static_cast<double>((state >> 33) % 1000) / 1e5;
    const int batch = static_cast<int>((state >> 20) % 8) + 1;
    out << (i + 1) << ',' << arrival << ',' << batch << '\n';
  }
  return path;
}

std::vector<Query> ReadAllStreaming(const std::string& path,
                                    std::size_t chunk_bytes) {
  StreamingTraceOptions options;
  options.chunk_bytes = chunk_bytes;
  auto reader = StreamingTraceReader::Open(path, options);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<Query> queries;
  Query q;
  while (true) {
    const auto more = reader->Next(&q);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    queries.push_back(q);
  }
  EXPECT_EQ(reader->queries_read(), queries.size());
  return queries;
}

// --- Chunk-size invariance: the property the bounded-memory reader is
// --- allowed to exist under. Any refill size — a single byte, a prime
// --- smaller than any line, a page, or the whole file — must yield the
// --- bit-identical query sequence the materializing reader yields.

TEST(StreamingInvarianceTest, AnyChunkSizeYieldsTheMaterializedSequence) {
  const std::string path = WriteTrace("invariance_trace.csv", 500);
  const auto oracle = workload::ReadTraceCsv(path);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle->size(), 500u);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}, std::size_t{0}}) {
    SCOPED_TRACE("chunk_bytes=" + std::to_string(chunk));
    const std::vector<Query> streamed = ReadAllStreaming(path, chunk);
    ASSERT_EQ(streamed.size(), oracle->size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].id, oracle->queries()[i].id) << "query " << i;
      EXPECT_EQ(streamed[i].batch_size, oracle->queries()[i].batch_size)
          << "query " << i;
      // Exact bit equality, not EXPECT_NEAR: both readers share one
      // parser, so the doubles must be identical.
      EXPECT_EQ(streamed[i].arrival, oracle->queries()[i].arrival)
          << "query " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(StreamingInvarianceTest, RewindReplaysTheSameSequencePerChunkSize) {
  const std::string path = WriteTrace("rewind_trace.csv", 64);
  StreamingTraceOptions options;
  options.chunk_bytes = 3;  // forces many refills across rewinds
  auto reader = StreamingTraceReader::Open(path, options);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  auto drain = [&reader] {
    std::vector<Query> queries;
    Query q;
    while (true) {
      const auto more = reader->Next(&q);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      queries.push_back(q);
    }
    return queries;
  };
  const std::vector<Query> first = drain();
  ASSERT_EQ(first.size(), 64u);
  ASSERT_TRUE(reader->Rewind().ok());
  const std::vector<Query> second = drain();
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].id, first[i].id);
    EXPECT_EQ(second[i].batch_size, first[i].batch_size);
    EXPECT_EQ(second[i].arrival, first[i].arrival);
  }
  std::remove(path.c_str());
}

// --- STREAM registry contract.

TEST(StreamSourceTest, SpecWithoutPathIsInvalidArgument) {
  QuerySourceSpec spec;
  spec.source = "STREAM";
  const auto source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(source.status().message().find("spec.path"), std::string::npos)
      << source.status().message();
}

TEST(StreamSourceTest, MissingFileIsNotFoundAtBuildTime) {
  QuerySourceSpec spec;
  spec.source = "STREAM";
  spec.path = ::testing::TempDir() + "no_such_trace.csv";
  const auto source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kNotFound);
}

TEST(StreamSourceTest, EmitsExactlyWhatTraceSourceEmits) {
  const std::string path = WriteTrace("emission_trace.csv", 200);
  const auto trace = workload::ReadTraceCsv(path);
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  workload::TraceSource oracle(*trace);

  QuerySourceSpec spec;
  spec.source = "STREAM";
  spec.path = path;
  spec.chunk_bytes = 11;
  auto streamed = QuerySourceRegistry::Global().Build(spec);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  // Emission-for-emission identity twice over (Reset must rewind the
  // underlying reader, not just the first pass).
  Rng rng(3);
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass=" + std::to_string(pass));
    while (true) {
      const auto want = oracle.Next(rng);
      const auto got = (*streamed)->Next(rng);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (!want.has_value()) break;
      EXPECT_EQ(got->gap, want->gap);
      EXPECT_EQ(got->batch, want->batch);
    }
    oracle.Reset();
    (*streamed)->Reset();
  }
  std::remove(path.c_str());
}

// --- Fleet-level bit-identity: STREAM vs the materialized TRACE oracle,
// --- across serve_threads and chunk sizes. The whole point of the
// --- streaming path is that nothing observable changes.

core::Fleet MakeTraceFleet(const std::string& trace_kind,
                           const std::string& path,
                           std::size_t chunk_bytes) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 2.0;
  auto fleet = core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "NCF",
                               .trace = trace_kind,
                               .trace_path = path,
                               .trace_chunk_bytes = chunk_bytes}},
      options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

/// Every observable field of a single-model serve result, compared
/// exactly. Doubles use EXPECT_EQ on purpose: the claim is determinism,
/// not approximation.
void ExpectSameServe(const core::FleetServeResult& a,
                     const core::FleetServeResult& b) {
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t m = 0; m < a.models.size(); ++m) {
    SCOPED_TRACE("model " + a.models[m].model);
    const serving::RunResult& ta = a.models[m].totals;
    const serving::RunResult& tb = b.models[m].totals;
    EXPECT_EQ(ta.offered, tb.offered);
    EXPECT_EQ(ta.served, tb.served);
    EXPECT_EQ(ta.violations, tb.violations);
    EXPECT_EQ(ta.rejected, tb.rejected);
    EXPECT_EQ(ta.shed, tb.shed);
    EXPECT_EQ(ta.aborted, tb.aborted);
    EXPECT_EQ(ta.p99_ms, tb.p99_ms);
    EXPECT_EQ(ta.mean_ms, tb.mean_ms);
    EXPECT_EQ(ta.makespan, tb.makespan);
    EXPECT_EQ(ta.throughput_qps, tb.throughput_qps);
    EXPECT_EQ(ta.latencies_ms, tb.latencies_ms);
    EXPECT_EQ(ta.per_type_served, tb.per_type_served);
    EXPECT_EQ(ta.per_type_busy, tb.per_type_busy);
    EXPECT_EQ(a.models[m].qps, b.models[m].qps);
    ASSERT_EQ(a.models[m].windows.size(), b.models[m].windows.size());
    for (std::size_t w = 0; w < a.models[m].windows.size(); ++w) {
      SCOPED_TRACE("window " + std::to_string(w));
      const serving::WindowedMetrics& wa = a.models[m].windows[w];
      const serving::WindowedMetrics& wb = b.models[m].windows[w];
      EXPECT_EQ(wa.start, wb.start);
      EXPECT_EQ(wa.end, wb.end);
      EXPECT_EQ(wa.offered, wb.offered);
      EXPECT_EQ(wa.served, wb.served);
      EXPECT_EQ(wa.violations, wb.violations);
      EXPECT_EQ(wa.rejected, wb.rejected);
      EXPECT_EQ(wa.shed, wb.shed);
      EXPECT_EQ(wa.p99_ms, wb.p99_ms);
      EXPECT_EQ(wa.mean_ms, wb.mean_ms);
      EXPECT_EQ(wa.mean_batch, wb.mean_batch);
      EXPECT_EQ(wa.reject_rate, wb.reject_rate);
      EXPECT_EQ(wa.shed_rate, wb.shed_rate);
    }
  }
  EXPECT_EQ(a.total_qps, b.total_qps);
  EXPECT_EQ(a.total_weighted_qps, b.total_weighted_qps);
  EXPECT_EQ(a.shed_actions, b.shed_actions);
}

TEST(StreamingFleetTest, StreamMatchesTraceOracleAcrossThreadsAndChunks) {
  const std::string path = WriteTrace("fleet_trace.csv", 1500);
  core::FleetServeOptions serve;
  serve.duration_s = 10.0;
  serve.base_rate_qps = 15.0;
  serve.window_s = 2.5;

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    SCOPED_TRACE("serve_threads=" + std::to_string(threads));
    serve.serve_threads = threads;

    const core::Fleet oracle = MakeTraceFleet("TRACE", path, 65536);
    const auto oracle_plan = oracle.PlanAll();
    ASSERT_TRUE(oracle_plan.ok()) << oracle_plan.status().ToString();
    const auto want = oracle.ServeAll(*oracle_plan, serve);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_GT(want->models[0].totals.offered, 0u);
    // Zero-shed regime: admission defaults are all-zero, so nothing may
    // be rejected or shed — the identity below is over full service.
    EXPECT_EQ(want->models[0].totals.rejected, 0u);
    EXPECT_EQ(want->models[0].totals.shed, 0u);

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{4096},
                                    std::size_t{0}}) {
      SCOPED_TRACE("chunk_bytes=" + std::to_string(chunk));
      const core::Fleet fleet = MakeTraceFleet("STREAM", path, chunk);
      const auto plan = fleet.PlanAll();
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      const auto got = fleet.ServeAll(*plan, serve);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameServe(*got, *want);
    }
  }
  std::remove(path.c_str());
}

TEST(StreamingFleetTest, SheddingUnderOverloadIsDeterministicAcrossThreads) {
  // Tight gaps (100x compressed, ~20k q/s) overload the small NCF
  // config; the
  // admission deadline makes the engine shed. The shed set must be a
  // pure function of the trace — identical for every serve_threads and
  // identical to the TRACE oracle under the same admission regime.
  const std::string path = WriteTrace("overload_trace.csv", 1200, 0.01);
  core::FleetServeOptions serve;
  serve.duration_s = 4.0;
  serve.base_rate_qps = 15.0;
  serve.window_s = 1.0;
  serve.admission.deadline_s = 0.05;
  serve.admission.max_queue = 256;

  std::vector<core::FleetServeResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    SCOPED_TRACE("serve_threads=" + std::to_string(threads));
    serve.serve_threads = threads;
    const core::Fleet fleet = MakeTraceFleet("STREAM", path, 512);
    const auto plan = fleet.PlanAll();
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto result = fleet.ServeAll(*plan, serve);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(*std::move(result));
  }
  const serving::RunResult& totals = results[0].models[0].totals;
  EXPECT_GT(totals.offered, 0u);
  EXPECT_GT(totals.shed + totals.rejected, 0u)
      << "overload regime failed to trigger admission control";
  // Conservation: every offered query is served, queued at the horizon,
  // rejected, or shed — never double-counted, never lost.
  EXPECT_LE(totals.served + totals.shed + totals.rejected, totals.offered);
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("vs serve_threads variant " + std::to_string(i));
    ExpectSameServe(results[i], results[0]);
  }

  // The materialized oracle sheds the identical set.
  serve.serve_threads = 1;
  const core::Fleet oracle = MakeTraceFleet("TRACE", path, 65536);
  const auto plan = oracle.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto want = oracle.ServeAll(*plan, serve);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ExpectSameServe(results[0], *want);
  std::remove(path.c_str());
}

TEST(StreamingFleetTest, FileBackedTraceWithoutPathIsRejectedAtCreate) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  for (const char* kind : {"STREAM", "TRACE"}) {
    SCOPED_TRACE(kind);
    const auto fleet = core::Fleet::Create(
        catalog, {core::FleetModelOptions{.model = "NCF", .trace = kind}});
    ASSERT_FALSE(fleet.ok());
    EXPECT_EQ(fleet.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(fleet.status().message().find("trace_path"), std::string::npos)
        << fleet.status().message();
  }
}

TEST(StreamingFleetTest, NegativeAdmissionKnobsAreRejected) {
  const std::string path = WriteTrace("knob_trace.csv", 8);
  const core::Fleet fleet = MakeTraceFleet("STREAM", path, 0);
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  core::FleetServeOptions serve;
  serve.duration_s = 1.0;
  serve.admission.deadline_s = -0.5;
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kairos
