#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/env.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/time.h"

namespace kairos {
namespace {

TEST(TimeTest, MsSecRoundTrip) {
  EXPECT_DOUBLE_EQ(MsToSec(250.0), 0.25);
  EXPECT_DOUBLE_EQ(SecToMs(0.25), 250.0);
  EXPECT_DOUBLE_EQ(SecToMs(MsToSec(123.456)), 123.456);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(19);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  for (int i = 0; i < 10000; ++i) {
    ones += rng.Categorical(weights) == 1 ? 1 : 0;
  }
  EXPECT_NEAR(ones / 10000.0, 0.75, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child continues deterministically but differs from parent's stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.Uniform() == child.Uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(StatsTest, MeanVarianceStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 4.571428, 1e-5);
  EXPECT_NEAR(Stddev(xs), 2.13809, 1e-4);
}

TEST(StatsTest, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(empty, 99.0), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 2.5);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 5.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  for (double& y : ys) y = -y;
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, ys), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    xs.push_back(x);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(xs.begin(), xs.end()));
}

TEST(LatencyHistogramTest, PercentileConservative) {
  LatencyHistogram hist(100.0, 100);
  for (int i = 1; i <= 100; ++i) hist.Add(static_cast<double>(i) - 0.5);
  // Bucket upper edges: p50 over 1..100 uniform ≈ 50.
  EXPECT_NEAR(hist.Percentile(50.0), 50.0, 1.0);
  EXPECT_NEAR(hist.Percentile(99.0), 99.0, 1.0);
  // Estimates never under-report (upper bucket edge).
  EXPECT_GE(hist.Percentile(99.0), 98.5);
}

TEST(LatencyHistogramTest, ClampsOutOfRange) {
  LatencyHistogram hist(10.0, 10);
  hist.Add(1e9);
  hist.Add(-5.0);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_LE(hist.Percentile(100.0), 10.0);
}

TEST(MatrixTest, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, MultiplyIdentity) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::Identity(2);
  const Matrix p = m.Multiply(i);
  EXPECT_DOUBLE_EQ(p(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(MatrixTest, TransposedSwapsIndices) {
  Matrix m(2, 3);
  m(0, 2) = 5.0;
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
}

TEST(CholeskyTest, FactorReconstructs) {
  const Matrix a{{4.0, 2.0, 0.6}, {2.0, 5.0, 1.5}, {0.6, 1.5, 3.0}};
  const Matrix l = CholeskyFactor(a);
  const Matrix recon = l.Multiply(l.Transposed());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(recon(i, j), a(i, j), 1e-10);
    }
  }
}

TEST(CholeskyTest, SolveSpdRecoversSolution) {
  const Matrix a{{4.0, 2.0}, {2.0, 5.0}};
  // x = (1, 2) -> b = A x = (8, 12).
  const std::vector<double> x = SolveSpd(a, {8.0, 12.0});
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(CholeskyTest, NotPositiveDefiniteThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  EXPECT_THROW(CholeskyFactor(a), std::domain_error);
}

TEST(TableTest, RenderAndCsv) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", TextTable::Num(1.2345, 2)});
  const std::string rendered = t.Render();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("1.23"), std::string::npos);
  EXPECT_EQ(t.RenderCsv(), "name,value\nalpha,1.23\n");
}

TEST(TableTest, WidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(EnvTest, ScaledCountHasFloor) {
  EXPECT_GE(ScaledCount(1000, 64), 64u);
  EXPECT_GE(ScaledCount(10, 64), 64u);
}

}  // namespace
}  // namespace kairos
