#include <gtest/gtest.h>

#include <set>

#include "cloud/config.h"
#include "cloud/config_space.h"
#include "cloud/instance_type.h"

namespace kairos::cloud {
namespace {

TEST(CatalogTest, PaperPoolMatchesTable4) {
  const Catalog c = Catalog::PaperPool();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].name, "g4dn.xlarge");
  EXPECT_DOUBLE_EQ(c[0].price_per_hour, 0.526);
  EXPECT_TRUE(c[0].is_base);
  EXPECT_EQ(c[1].name, "c5n.2xlarge");
  EXPECT_DOUBLE_EQ(c[1].price_per_hour, 0.432);
  EXPECT_EQ(c[2].name, "r5n.large");
  EXPECT_DOUBLE_EQ(c[2].price_per_hour, 0.149);
  EXPECT_EQ(c[3].name, "t3.xlarge");
  EXPECT_DOUBLE_EQ(c[3].price_per_hour, 0.1664);
}

TEST(CatalogTest, BaseAndAuxiliaryPartition) {
  const Catalog c = Catalog::PaperPool();
  EXPECT_EQ(c.BaseType(), 0u);
  const auto aux = c.AuxiliaryTypes();
  EXPECT_EQ(aux, (std::vector<TypeId>{1, 2, 3}));
}

TEST(CatalogTest, FindShortName) {
  const Catalog c = Catalog::PaperPool();
  EXPECT_EQ(c.FindShortName("C2"), 2u);
  EXPECT_THROW(c.FindShortName("ZZ"), std::out_of_range);
}

TEST(CatalogTest, NoBaseTypeThrows) {
  Catalog c;
  c.Add({"x", "X", InstanceClass::kGeneralPurposeCpu, 1.0, false});
  EXPECT_THROW(c.BaseType(), std::logic_error);
}

TEST(CatalogTest, MultipleBaseTypesThrow) {
  Catalog c;
  c.Add({"x", "X", InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"y", "Y", InstanceClass::kGpuAccelerated, 1.0, true});
  EXPECT_THROW(c.BaseType(), std::logic_error);
}

TEST(ConfigTest, CostMatchesPaperExample) {
  // Fig. 1's (3, 1, 3) over G1/C1/C2 costs 3*0.526 + 0.432 + 3*0.149.
  const Catalog c = Catalog::MotivationPool();
  const Config config({3, 1, 3});
  EXPECT_NEAR(config.CostPerHour(c), 2.457, 1e-9);
  EXPECT_EQ(config.TotalInstances(), 7);
  EXPECT_EQ(config.ToString(), "(3, 1, 3)");
}

TEST(ConfigTest, NegativeCountThrows) {
  EXPECT_THROW(Config({1, -1}), std::invalid_argument);
}

TEST(ConfigTest, SubConfigRelation) {
  const Config small({1, 0, 2});
  const Config big({2, 0, 2});
  EXPECT_TRUE(small.IsSubConfigOf(big));
  EXPECT_FALSE(big.IsSubConfigOf(small));
  EXPECT_FALSE(small.IsSubConfigOf(small));  // strict
  const Config incomparable({0, 5, 0});
  EXPECT_FALSE(incomparable.IsSubConfigOf(big));
  EXPECT_FALSE(big.IsSubConfigOf(incomparable));
}

TEST(ConfigTest, SquaredDistance) {
  const Config a({1, 2, 3});
  const Config b({2, 2, 1});
  EXPECT_DOUBLE_EQ(a.SquaredDistance(b), 1.0 + 0.0 + 4.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistance(a), 0.0);
}

TEST(ConfigSpaceTest, AllWithinBudgetAndBaseRule) {
  const Catalog c = Catalog::PaperPool();
  ConfigSpaceOptions opt;
  opt.budget_per_hour = 2.5;
  const auto configs = EnumerateConfigs(c, opt);
  ASSERT_FALSE(configs.empty());
  for (const Config& cfg : configs) {
    EXPECT_LE(cfg.CostPerHour(c), 2.5 + 1e-9) << cfg.ToString();
    EXPECT_GE(cfg.Count(c.BaseType()), 1) << cfg.ToString();
  }
}

TEST(ConfigSpaceTest, NoDuplicates) {
  const Catalog c = Catalog::PaperPool();
  const auto configs = EnumerateConfigs(c, {.budget_per_hour = 2.5});
  std::set<Config> unique(configs.begin(), configs.end());
  EXPECT_EQ(unique.size(), configs.size());
}

TEST(ConfigSpaceTest, SpaceSizeHasPaperOrderOfMagnitude) {
  // Sec. 5.2 describes "an order of 1000-configuration search space".
  const Catalog c = Catalog::PaperPool();
  const auto at_default = EnumerateConfigs(c, {.budget_per_hour = 2.5});
  EXPECT_GT(at_default.size(), 100u);
  EXPECT_LT(at_default.size(), 2000u);
  // 4x budget (Fig. 15a) must expand the space substantially.
  const auto at_4x = EnumerateConfigs(c, {.budget_per_hour = 10.0});
  EXPECT_GT(at_4x.size(), 10u * at_default.size());
}

TEST(ConfigSpaceTest, BudgetGrowthIsMonotone) {
  const Catalog c = Catalog::PaperPool();
  std::size_t prev = 0;
  for (double budget : {1.0, 1.5, 2.0, 2.5, 3.0}) {
    const auto configs = EnumerateConfigs(c, {.budget_per_hour = budget});
    EXPECT_GE(configs.size(), prev);
    prev = configs.size();
  }
}

TEST(ConfigSpaceTest, ExcludeEmptyAuxDropsHomogeneous) {
  const Catalog c = Catalog::PaperPool();
  ConfigSpaceOptions opt;
  opt.budget_per_hour = 2.5;
  opt.include_empty_aux = false;
  for (const Config& cfg : EnumerateConfigs(c, opt)) {
    int aux = 0;
    for (TypeId t : c.AuxiliaryTypes()) aux += cfg.Count(t);
    EXPECT_GT(aux, 0) << cfg.ToString();
  }
}

TEST(ConfigSpaceTest, MinBaseInstancesRespected) {
  const Catalog c = Catalog::PaperPool();
  ConfigSpaceOptions opt;
  opt.budget_per_hour = 2.5;
  opt.min_base_instances = 2;
  for (const Config& cfg : EnumerateConfigs(c, opt)) {
    EXPECT_GE(cfg.Count(0), 2);
  }
}

TEST(BestHomogeneousTest, MaxBaseNodesUnderBudget) {
  const Catalog c = Catalog::PaperPool();
  const Config homo = BestHomogeneous(c, 2.5);
  EXPECT_EQ(homo.Count(0), 4);  // 4 * 0.526 = 2.104 <= 2.5 < 5 * 0.526
  EXPECT_EQ(homo.Count(1), 0);
  EXPECT_EQ(homo.Count(2), 0);
  EXPECT_EQ(homo.Count(3), 0);
}

TEST(BestHomogeneousTest, TinyBudgetThrows) {
  const Catalog c = Catalog::PaperPool();
  EXPECT_THROW(BestHomogeneous(c, 0.1), std::invalid_argument);
}

TEST(BudgetSlackTest, HomogeneousSlackMatchesPaper) {
  // Sec. 4: (4, 0, 0) leaves ~70% of one G1 unused at the $2.5 budget.
  const Catalog c = Catalog::PaperPool();
  const Config homo = BestHomogeneous(c, 2.5);
  const double slack = BudgetSlack(c, homo, 2.5);
  EXPECT_NEAR(slack * 2.5 / 0.526, 0.7529, 1e-3);
}

}  // namespace
}  // namespace kairos::cloud
