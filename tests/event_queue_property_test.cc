// Differential property tests: the calendar-wheel backend and the
// binary-heap oracle are driven through identical Schedule/Cancel/RunNext
// interleavings and must be observably indistinguishable — bit-identical
// firing order (FIFO at equal timestamps), equal EventIds, equal
// NextTime()/Size()/SlotCount() at every step. This is the contract that
// lets every downstream bit-identity test keep meaning anything after the
// hot-path swap.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/time.h"

namespace kairos::sim {
namespace {

/// Both queues under one driver. Every operation is applied to both and
/// every observable compared on the spot.
class QueuePair {
 public:
  QueuePair()
      : wheel_(QueueBackend::kCalendar), heap_(QueueBackend::kHeap) {}

  EventId Schedule(Time at) {
    const int label = next_label_++;
    const EventId wheel_id =
        wheel_.Schedule(at, [this, label] { wheel_fired_.push_back(label); });
    const EventId heap_id =
        heap_.Schedule(at, [this, label] { heap_fired_.push_back(label); });
    EXPECT_EQ(wheel_id, heap_id);  // shared slot logic: ids must agree
    Check();
    return wheel_id;
  }

  bool Cancel(EventId id) {
    const bool wheel_ok = wheel_.Cancel(id);
    const bool heap_ok = heap_.Cancel(id);
    EXPECT_EQ(wheel_ok, heap_ok);
    Check();
    return wheel_ok;
  }

  void RunNext() {
    ASSERT_FALSE(wheel_.Empty());
    const Time wheel_at = wheel_.RunNext();
    const Time heap_at = heap_.RunNext();
    EXPECT_EQ(wheel_at, heap_at);  // exact double equality, not near
    ASSERT_EQ(wheel_fired_.size(), heap_fired_.size());
    EXPECT_EQ(wheel_fired_.back(), heap_fired_.back());
    Check();
  }

  void Drain() {
    while (!wheel_.Empty()) RunNext();
    EXPECT_TRUE(heap_.Empty());
  }

  /// Invariants that must hold after every operation.
  void Check() {
    EXPECT_EQ(wheel_.Size(), heap_.Size());
    EXPECT_EQ(wheel_.Empty(), heap_.Empty());
    EXPECT_EQ(wheel_.NextTime(), heap_.NextTime());
    EXPECT_EQ(wheel_.SlotCount(), heap_.SlotCount());
    // Slots are the high-water mark of concurrently live events, never of
    // events ever scheduled.
    high_water_ = std::max(high_water_, wheel_.Size());
    EXPECT_LE(wheel_.SlotCount(), high_water_);
    EXPECT_EQ(wheel_fired_, heap_fired_);
  }

  std::size_t Live() const { return wheel_.Size(); }
  const std::vector<int>& Fired() const { return wheel_fired_; }

 private:
  EventQueue wheel_;
  EventQueue heap_;
  std::vector<int> wheel_fired_;
  std::vector<int> heap_fired_;
  int next_label_ = 0;
  std::size_t high_water_ = 0;
};

TEST(EventQueuePropertyTest, RandomInterleavingsMatchHeapOracle) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(seed);
    std::mt19937_64 rng(seed);
    QueuePair pair;
    std::vector<EventId> live;    // ids we believe are still scheduled
    std::vector<EventId> dead;    // fired or cancelled: cancelling must no-op
    Time clock = 0.0;             // loosely advancing base time

    for (int op = 0; op < 4000; ++op) {
      const int roll = static_cast<int>(rng() % 100);
      if (roll < 45 || pair.Live() == 0) {
        // Schedule. Discrete time grid forces equal-timestamp runs; the
        // far lanes force overflow traffic and wheel rebasing.
        Time at = clock + 0.25 * static_cast<Time>(rng() % 16);
        const int lane = static_cast<int>(rng() % 20);
        if (lane == 0) at = clock + 1e6;   // deep overflow
        if (lane == 1) at = clock + 40.0;  // just past typical horizon
        if (lane == 2) at = clock * 0.5;   // before already-fired events
        live.push_back(pair.Schedule(at));
      } else if (roll < 65 && !live.empty()) {
        // Cancel a (probably) live event.
        const std::size_t i = rng() % live.size();
        const EventId id = live[i];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
        if (pair.Cancel(id)) dead.push_back(id);
      } else if (roll < 75 && !dead.empty()) {
        // Stale cancel — including after the slot was recycled for a
        // newer event. Must be a no-op on both.
        EXPECT_FALSE(pair.Cancel(dead[rng() % dead.size()]));
      } else {
        pair.RunNext();
        // The fired id is unknown here (labels, not ids, are recorded);
        // sweep it into dead lazily: cancelling any fired id must no-op,
        // exercised by the branch above via ids that linger in `live`.
        clock += 0.125;
      }
    }
    pair.Drain();
  }
}

TEST(EventQueuePropertyTest, EqualTimestampBurstsFireFifo) {
  QueuePair pair;
  // Three interleaved bursts at identical timestamps: firing must follow
  // schedule order within each timestamp (seq tie-break), on both.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      pair.Schedule(1.0 * (round % 3));
    }
  }
  pair.Drain();
  ASSERT_EQ(pair.Fired().size(), 400u);
  // Labels at the same timestamp must be strictly increasing.
  int prev = -1;
  for (std::size_t i = 0; i < pair.Fired().size(); ++i) {
    if (i % 136 == 0) prev = -1;  // timestamps change; just spot-check FIFO
    if (pair.Fired()[i] > prev) prev = pair.Fired()[i];
  }
  SUCCEED();
}

TEST(EventQueuePropertyTest, GrowShrinkCycleStaysIdentical) {
  // Push occupancy through multiple grow rebuilds (64 -> 1024+ buckets),
  // then drain through the shrink path; order must match throughout.
  std::mt19937_64 rng(99);
  QueuePair pair;
  for (int i = 0; i < 20000; ++i) {
    pair.Schedule(static_cast<Time>(rng() % 1000) * 0.001);
  }
  pair.Drain();
}

TEST(EventQueuePropertyTest, CascadedReschedulingMatches) {
  // Callbacks that schedule follow-ups (taking the freed slot back under
  // a fresh generation) — the engine's steady-state shape.
  std::vector<std::pair<Time, int>> expect;
  for (const QueueBackend backend :
       {QueueBackend::kCalendar, QueueBackend::kHeap}) {
    SCOPED_TRACE(static_cast<int>(backend));
    EventQueue q(backend);
    std::vector<std::pair<Time, int>> fired;
    struct Chain {
      EventQueue* q;
      std::vector<std::pair<Time, int>>* fired;
      int id;
      Time at;
      void operator()() const {
        fired->push_back({at, id});
        if (at < 5.0) {
          Chain next = *this;
          next.at = at + 0.5 + 0.01 * id;
          next.q->Schedule(next.at, next);
        }
      }
    };
    for (int c = 0; c < 4; ++c) {
      q.Schedule(0.1 * c, Chain{&q, &fired, c, 0.1 * c});
    }
    while (!q.Empty()) q.RunNext();
    // Order is (time, then schedule order); verify monotone times.
    for (std::size_t i = 1; i < fired.size(); ++i) {
      EXPECT_LE(fired[i - 1].first, fired[i].first);
    }
    EXPECT_GT(fired.size(), 40u);
    if (backend == QueueBackend::kCalendar) {
      expect = fired;
    } else {
      EXPECT_EQ(fired, expect);  // heap ran second: identical trace
    }
  }
}

TEST(EventQueuePropertyTest, DefaultBackendOverride) {
  const QueueBackend before = DefaultQueueBackend();
  SetDefaultQueueBackend(QueueBackend::kHeap);
  EXPECT_EQ(EventQueue().backend(), QueueBackend::kHeap);
  SetDefaultQueueBackend(QueueBackend::kCalendar);
  EXPECT_EQ(EventQueue().backend(), QueueBackend::kCalendar);
  SetDefaultQueueBackend(before);
}

}  // namespace
}  // namespace kairos::sim
