#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "cloud/config_space.h"
#include "search/annealing.h"
#include "search/bayes_opt.h"
#include "search/genetic.h"
#include "search/gp.h"
#include "search/hill_climb.h"
#include "search/kairos_plus.h"
#include "search/random_search.h"
#include "search/search.h"
#include "ub/selector.h"

namespace kairos::search {
namespace {

using cloud::Config;

// A synthetic concave objective over the 2-type lattice with a unique
// optimum; cheap, so search behaviour can be tested exhaustively.
double SyntheticQps(const Config& c) {
  const double u = c.counts()[0];
  const double v = c.counts()[1];
  // Diminishing returns per tier plus synergy; peak inside the budget.
  return 10.0 * std::sqrt(u) + 4.0 * std::sqrt(v) + 1.5 * std::min(u, v);
}

std::vector<Config> Lattice(int max_u, int max_v) {
  std::vector<Config> out;
  for (int u = 1; u <= max_u; ++u) {
    for (int v = 0; v <= max_v; ++v) out.push_back(Config({u, v}));
  }
  return out;
}

Config Argmax(const std::vector<Config>& configs) {
  Config best = configs.front();
  for (const Config& c : configs) {
    if (SyntheticQps(c) > SyntheticQps(best)) best = c;
  }
  return best;
}

// A *valid* upper bound for the synthetic objective (monotone + margin).
double SyntheticUpperBound(const Config& c) { return SyntheticQps(c) * 1.15; }

TEST(CountingEvaluatorTest, MemoizesAndCounts) {
  int raw_calls = 0;
  CountingEvaluator eval([&](const Config& c) {
    ++raw_calls;
    return SyntheticQps(c);
  });
  const Config a({2, 1});
  EXPECT_DOUBLE_EQ(eval(a), SyntheticQps(a));
  EXPECT_DOUBLE_EQ(eval(a), SyntheticQps(a));
  EXPECT_EQ(raw_calls, 1);
  EXPECT_EQ(eval.evals(), 1u);
  eval(Config({1, 0}));
  EXPECT_EQ(eval.evals(), 2u);
  EXPECT_EQ(eval.best_config(), a);
}

TEST(CandidatePoolTest, SubConfigPruning) {
  CandidatePool pool(Lattice(3, 3));
  const std::size_t before = pool.size();
  pool.RemoveSubConfigsOf(Config({2, 2}));
  // Strict sub-configs of (2,2): (1,0),(1,1),(1,2),(2,0),(2,1) = 5.
  EXPECT_EQ(pool.size(), before - 5);
  EXPECT_TRUE(pool.Contains(Config({2, 2})));   // not a sub-config of itself
  EXPECT_FALSE(pool.Contains(Config({1, 2})));
  EXPECT_TRUE(pool.Contains(Config({3, 1})));   // incomparable survives
}

TEST(CandidatePoolTest, RemoveIfAndRemaining) {
  CandidatePool pool(Lattice(2, 2));
  pool.RemoveIf([](const Config& c) { return c.counts()[1] == 0; });
  for (const Config& c : pool.Remaining()) EXPECT_GT(c.counts()[1], 0);
  pool.Remove(Config({1, 1}));
  EXPECT_FALSE(pool.Contains(Config({1, 1})));
  pool.Remove(Config({1, 1}));  // double remove is a no-op
}

TEST(KairosPlusTest, FindsOptimumAndExhaustsPool) {
  const auto configs = Lattice(4, 6);
  const Config optimum = Argmax(configs);
  std::vector<double> bounds;
  for (const Config& c : configs) bounds.push_back(SyntheticUpperBound(c));
  const auto ranked = ub::RankByUpperBound(configs, bounds);

  const SearchResult r = KairosPlusSearch(ranked, SyntheticQps);
  EXPECT_EQ(r.best_config, optimum);
  EXPECT_NEAR(r.best_qps, SyntheticQps(optimum), 1e-12);
  // With tight bounds the paper expects aggressive pruning: far fewer
  // evaluations than the space size (Fig. 10: < a few % of the space).
  EXPECT_LT(r.evals, configs.size() / 4);
}

TEST(KairosPlusTest, RespectsMaxEvalsAndTarget) {
  const auto configs = Lattice(4, 6);
  std::vector<double> bounds;
  for (const Config& c : configs) bounds.push_back(SyntheticUpperBound(c));
  const auto ranked = ub::RankByUpperBound(configs, bounds);

  SearchOptions opt;
  opt.max_evals = 3;
  EXPECT_LE(KairosPlusSearch(ranked, SyntheticQps, opt).evals, 3u);

  SearchOptions target;
  target.target_qps = SyntheticQps(Argmax(configs)) * 0.9;
  const auto r = KairosPlusSearch(ranked, SyntheticQps, target);
  EXPECT_GE(r.best_qps, target.target_qps);
}

// All baseline searches must eventually reach the optimum when given the
// target and an unlimited budget (they are exhaustive-in-the-limit).
enum class Algo { kRandom, kGenetic, kAnnealing, kBayesOpt };

class BaselineSearchReachesTarget
    : public ::testing::TestWithParam<std::tuple<Algo, std::uint64_t>> {};

TEST_P(BaselineSearchReachesTarget, HitsOptimum) {
  const auto [algo, seed] = GetParam();
  const auto configs = Lattice(4, 6);
  const double best = SyntheticQps(Argmax(configs));
  SearchOptions opt;
  opt.target_qps = best;  // stop exactly at the optimum
  opt.seed = seed;

  SearchResult r;
  switch (algo) {
    case Algo::kRandom:
      r = RandomSearch(configs, SyntheticQps, opt);
      break;
    case Algo::kGenetic: {
      GeneticOptions ga;
      ga.generations = 500;
      r = GeneticSearch(configs, SyntheticQps, opt, ga);
      break;
    }
    case Algo::kAnnealing: {
      AnnealingOptions sa;
      sa.steps = 4000;
      r = AnnealingSearch(configs, SyntheticQps, opt, sa);
      break;
    }
    case Algo::kBayesOpt:
      r = BayesOptSearch(configs, SyntheticQps, opt);
      break;
  }
  EXPECT_NEAR(r.best_qps, best, 1e-9);
  EXPECT_GT(r.evals, 0u);
  EXPECT_LE(r.evals, configs.size());
}

std::string AlgoCaseName(
    const ::testing::TestParamInfo<std::tuple<Algo, std::uint64_t>>& info) {
  static constexpr const char* kNames[] = {"Random", "Genetic", "Annealing",
                                           "BayesOpt"};
  return std::string(kNames[static_cast<int>(std::get<0>(info.param))]) +
         "_seed" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndSeeds, BaselineSearchReachesTarget,
    ::testing::Combine(::testing::Values(Algo::kRandom, Algo::kGenetic,
                                         Algo::kAnnealing, Algo::kBayesOpt),
                       ::testing::Values(1u, 2u, 3u)),
    AlgoCaseName);

TEST(CountingEvaluatorTest, EvaluateBatchStagesWithoutCounting) {
  int raw_calls = 0;
  CountingEvaluator eval([&](const Config& c) {
    ++raw_calls;
    return SyntheticQps(c);
  });
  const std::vector<Config> frontier = {Config({2, 1}), Config({1, 3}),
                                        Config({2, 1})};  // dup collapses
  eval.EvaluateBatch(frontier, 2);
  EXPECT_EQ(raw_calls, 2);   // distinct configs computed speculatively
  EXPECT_EQ(eval.evals(), 0u);  // nothing committed yet
  // Committing pulls the staged value — no recompute — and counts it.
  EXPECT_DOUBLE_EQ(eval(Config({2, 1})), SyntheticQps(Config({2, 1})));
  EXPECT_EQ(raw_calls, 2);
  EXPECT_EQ(eval.evals(), 1u);
  // A staged-but-never-committed result is never counted, yet a staged
  // re-batch does not recompute it either.
  eval.EvaluateBatch({Config({1, 3})}, 2);
  EXPECT_EQ(raw_calls, 2);
  EXPECT_EQ(eval.evals(), 1u);
}

// Batched frontier evaluation is a wall-clock optimisation only: for any
// eval_threads the SearchResult — best config, best qps, unique-eval count
// and the history order itself — must be bit-identical to the serial walk.
class BatchedSearchMatchesSerial
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BatchedSearchMatchesSerial, KairosPlus) {
  const auto configs = Lattice(4, 6);
  std::vector<double> bounds;
  for (const Config& c : configs) bounds.push_back(SyntheticUpperBound(c));
  const auto ranked = ub::RankByUpperBound(configs, bounds);

  SearchOptions serial;
  serial.seed = 5;
  SearchOptions batched = serial;
  batched.eval_threads = GetParam();
  const SearchResult a = KairosPlusSearch(ranked, SyntheticQps, serial);
  const SearchResult b = KairosPlusSearch(ranked, SyntheticQps, batched);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.best_qps, b.best_qps);
  EXPECT_EQ(a.evals, b.evals);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].config, b.history[i].config);
    EXPECT_EQ(a.history[i].qps, b.history[i].qps);
  }
}

TEST_P(BatchedSearchMatchesSerial, KairosPlusWithCaps) {
  const auto configs = Lattice(4, 6);
  std::vector<double> bounds;
  for (const Config& c : configs) bounds.push_back(SyntheticUpperBound(c));
  const auto ranked = ub::RankByUpperBound(configs, bounds);

  SearchOptions serial;
  serial.max_evals = 5;
  SearchOptions batched = serial;
  batched.eval_threads = GetParam();
  const SearchResult a = KairosPlusSearch(ranked, SyntheticQps, serial);
  const SearchResult b = KairosPlusSearch(ranked, SyntheticQps, batched);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.evals, b.evals);

  SearchOptions serial_target;
  serial_target.target_qps = SyntheticQps(Argmax(configs)) * 0.9;
  SearchOptions batched_target = serial_target;
  batched_target.eval_threads = GetParam();
  const SearchResult c = KairosPlusSearch(ranked, SyntheticQps, serial_target);
  const SearchResult d = KairosPlusSearch(ranked, SyntheticQps, batched_target);
  EXPECT_EQ(c.best_config, d.best_config);
  EXPECT_EQ(c.evals, d.evals);
}

TEST_P(BatchedSearchMatchesSerial, RandomSearch) {
  const auto configs = Lattice(4, 6);
  SearchOptions serial;
  serial.seed = 9;
  serial.max_evals = 20;
  SearchOptions batched = serial;
  batched.eval_threads = GetParam();
  const SearchResult a = RandomSearch(configs, SyntheticQps, serial);
  const SearchResult b = RandomSearch(configs, SyntheticQps, batched);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.best_qps, b.best_qps);
  EXPECT_EQ(a.evals, b.evals);
}

TEST_P(BatchedSearchMatchesSerial, GeneticSearch) {
  const auto configs = Lattice(4, 6);
  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    SearchOptions serial;
    serial.seed = seed;
    serial.max_evals = 40;
    SearchOptions batched = serial;
    batched.eval_threads = GetParam();
    GeneticOptions ga;
    ga.generations = 6;
    const SearchResult a = GeneticSearch(configs, SyntheticQps, serial, ga);
    const SearchResult b = GeneticSearch(configs, SyntheticQps, batched, ga);
    EXPECT_EQ(a.best_config, b.best_config);
    EXPECT_EQ(a.best_qps, b.best_qps);
    EXPECT_EQ(a.evals, b.evals);
    ASSERT_EQ(a.history.size(), b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      EXPECT_EQ(a.history[i].config, b.history[i].config);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EvalThreads, BatchedSearchMatchesSerial,
                         ::testing::Values(2u, 4u, 8u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return std::to_string(i.param) + "threads";
                         });

TEST(AnnealingTest, RecordsExplorationHistory) {
  const auto configs = Lattice(4, 6);
  SearchOptions opt;
  opt.seed = 42;
  AnnealingOptions sa;
  sa.steps = 25;
  const SearchResult r = AnnealingSearch(configs, SyntheticQps, opt, sa);
  EXPECT_GE(r.history.size(), 2u);  // the Fig. 2 transcript
  for (const EvalRecord& rec : r.history) {
    EXPECT_GT(rec.qps, 0.0);
  }
}

TEST(HillClimbTest, FindsPeakOnUnimodalGrid) {
  const std::vector<int> grid = {50, 100, 200, 300, 400, 500, 600};
  // Peak at 300.
  const auto eval = [](int t) {
    return 100.0 - std::abs(t - 300) * 0.1;
  };
  const HillClimbResult r = HillClimb(grid, eval);
  EXPECT_EQ(grid[r.best_index], 300);
  EXPECT_LE(r.evals, grid.size());
}

TEST(HillClimbTest, HandlesEdgePeaks) {
  const std::vector<int> grid = {10, 20, 30, 40};
  const auto increasing = [](int t) { return static_cast<double>(t); };
  EXPECT_EQ(grid[HillClimb(grid, increasing).best_index], 40);
  const auto decreasing = [](int t) { return -static_cast<double>(t); };
  EXPECT_EQ(grid[HillClimb(grid, decreasing).best_index], 10);
  EXPECT_THROW(HillClimb({}, increasing), std::invalid_argument);
}

TEST(GaussianProcessTest, InterpolatesNoiselessData) {
  GaussianProcess gp;
  std::vector<std::vector<double>> xs = {{0.0}, {0.5}, {1.0}};
  std::vector<double> ys = {1.0, 2.0, 1.5};
  gp.Fit(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = gp.Predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.stddev, 0.05);  // near-zero at observed points
  }
  // Far away the posterior reverts toward the mean with high uncertainty.
  const auto far = gp.Predict({10.0});
  EXPECT_NEAR(far.mean, (1.0 + 2.0 + 1.5) / 3.0, 1e-6);
  EXPECT_GT(far.stddev, 0.9);
}

TEST(GaussianProcessTest, BadInputsThrow) {
  GaussianProcess gp;
  EXPECT_THROW(gp.Fit({}, {}), std::invalid_argument);
  EXPECT_THROW(gp.Predict({0.0}), std::logic_error);
}

TEST(ExpectedImprovementTest, Properties) {
  // Zero uncertainty: EI is the positive part of the gap.
  EXPECT_DOUBLE_EQ(ExpectedImprovement(5.0, 0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedImprovement(2.0, 0.0, 3.0), 0.0);
  // More uncertainty means more EI at the same mean.
  EXPECT_GT(ExpectedImprovement(3.0, 2.0, 3.0),
            ExpectedImprovement(3.0, 0.5, 3.0));
  // EI is non-negative.
  EXPECT_GE(ExpectedImprovement(-10.0, 1.0, 3.0), 0.0);
}

TEST(SearchComparisonTest, KairosPlusBeatsBaselinesOnEvalCount) {
  // The Fig. 11 headline, on the synthetic objective: evaluations until the
  // optimum is *known found* (target reached).
  const auto configs = Lattice(4, 8);
  const double best = SyntheticQps(Argmax(configs));
  SearchOptions opt;
  opt.target_qps = best;
  opt.seed = 9;

  std::vector<double> bounds;
  for (const Config& c : configs) bounds.push_back(SyntheticUpperBound(c));
  const auto ranked = ub::RankByUpperBound(configs, bounds);
  const std::size_t kairos_evals =
      KairosPlusSearch(ranked, SyntheticQps, opt).evals;

  // Average the stochastic baselines over seeds.
  double rand_evals = 0.0, bo_evals = 0.0;
  const int reps = 5;
  for (std::uint64_t s = 1; s <= reps; ++s) {
    SearchOptions o = opt;
    o.seed = s;
    rand_evals += RandomSearch(configs, SyntheticQps, o).evals;
    bo_evals += BayesOptSearch(configs, SyntheticQps, o).evals;
  }
  rand_evals /= reps;
  bo_evals /= reps;
  EXPECT_LT(kairos_evals, rand_evals);
  EXPECT_LE(kairos_evals, bo_evals * 1.5);
}

}  // namespace
}  // namespace kairos::search
