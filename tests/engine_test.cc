// Streaming-engine and query-source coverage (DESIGN.md Sec. 8): shim
// equivalence with the batch path, the engine state machine, windowed-
// metrics determinism across AdvanceTo step sizes, mid-run mutation
// (arrival scale, policy swap, reconfiguration with launch lag),
// admission control and deadline shedding (DESIGN.md Sec. 12), and the
// QuerySource registry contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/kairos.h"
#include "policy/kairos_policy.h"
#include "policy/ribbon_policy.h"
#include "serving/engine.h"
#include "serving/system.h"
#include "workload/query_source.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

namespace kairos::serving {
namespace {

using cloud::Catalog;
using cloud::Config;
using latency::LatencyModel;
using workload::Query;
using workload::QuerySourceRegistry;
using workload::QuerySourceSpec;
using workload::Trace;

// A tiny two-type catalog: fast base "B", slow aux "A".
Catalog TinyCatalog() {
  Catalog c;
  c.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"aux", "A", cloud::InstanceClass::kGeneralPurposeCpu, 0.25, false});
  return c;
}

// Base: 10ms + 0.1ms/item; aux: 20ms + 0.4ms/item.
LatencyModel TinyModel() {
  return LatencyModel({{10.0, 0.1}, {20.0, 0.4}});
}

SystemSpec TinySpec(const Catalog& catalog, const LatencyModel& model,
                    std::vector<int> counts, double qos_ms = 200.0) {
  SystemSpec spec;
  spec.catalog = &catalog;
  spec.config = Config(std::move(counts));
  spec.truth = &model;
  spec.qos_ms = qos_ms;
  return spec;
}

Trace MediumTrace(double rate_qps = 30.0, std::size_t count = 200,
                  std::uint64_t seed = 4) {
  Rng rng(seed);
  const auto mix = workload::LogNormalBatches::Production();
  return Trace::Generate(workload::PoissonArrivals(rate_qps), mix, count, rng);
}

void ExpectSameRunResult(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.throughput_qps, b.throughput_qps);
  ASSERT_EQ(a.latencies_ms.size(), b.latencies_ms.size());
  for (std::size_t i = 0; i < a.latencies_ms.size(); ++i) {
    EXPECT_EQ(a.latencies_ms[i], b.latencies_ms[i]) << "latency " << i;
  }
  EXPECT_EQ(a.per_type_busy, b.per_type_busy);
  EXPECT_EQ(a.per_type_served, b.per_type_served);
}

// --- Batch shims reproduce the engine bit for bit. ---

TEST(EngineShimTest, ServingSystemRunEqualsManualSubmitDrain) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const Trace trace = MediumTrace();

  ServingSystem system(TinySpec(catalog, truth, {1, 2}),
                       std::make_unique<policy::KairosPolicy>());
  const RunResult batch = system.Run(trace);

  Engine engine(TinySpec(catalog, truth, {1, 2}),
                std::make_unique<policy::KairosPolicy>());
  for (const Query& q : trace.queries()) {
    ASSERT_TRUE(engine.Submit(q).ok());
  }
  engine.Drain();
  ExpectSameRunResult(batch, engine.Totals());
}

TEST(EngineShimTest, RuntimeServeEqualsEngineOnPaperPool) {
  const Catalog catalog = Catalog::PaperPool();
  const auto spec = latency::FindModel("WND");
  const auto truth = spec.Instantiate(catalog);
  core::Runtime runtime(catalog, Config({1, 0, 2, 0}), truth, spec.qos_ms);
  const Trace trace = MediumTrace(50.0, 300, 3);
  const RunResult via_shim = runtime.Serve(trace);

  auto engine = runtime.MakeEngine();
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const Query& q : trace.queries()) {
    ASSERT_TRUE((*engine)->Submit(q).ok());
  }
  (*engine)->Drain();
  ExpectSameRunResult(via_shim, (*engine)->Totals());
}

// --- State machine and submission rules. ---

TEST(EngineTest, StateMachineServingDrainingDrained) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  EXPECT_EQ(engine.state(), EngineState::kServing);
  ASSERT_TRUE(engine.Submit(Query{0, 10, 0.5}).ok());
  engine.Drain();
  EXPECT_EQ(engine.state(), EngineState::kDrained);

  const Status late = engine.Submit(Query{1, 10, 1.0});
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(late.message().find("DRAINED"), std::string::npos);
  EXPECT_EQ(engine.SetArrivalScale(2.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Reconfigure(Config({2, 0})).code(),
            StatusCode::kFailedPrecondition);
}

TEST(EngineTest, SubmitInThePastIsInvalid) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  engine.AdvanceTo(5.0);
  EXPECT_EQ(engine.Submit(Query{0, 10, 1.0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine.Submit(Query{0, 10, 5.0}).ok());
}

TEST(EngineTest, AdvanceToLandsTheClockExactly) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  EXPECT_EQ(engine.AdvanceTo(3.5), 0u);
  EXPECT_DOUBLE_EQ(engine.Now(), 3.5);
  // Moving backwards is a no-op, not a rewind.
  engine.AdvanceTo(1.0);
  EXPECT_DOUBLE_EQ(engine.Now(), 3.5);
}

TEST(EngineTest, CreateRejectsBadSpecsWithStatus) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  SystemSpec no_catalog = TinySpec(catalog, truth, {1, 0});
  no_catalog.catalog = nullptr;
  EXPECT_EQ(Engine::Create(no_catalog, std::make_unique<policy::KairosPolicy>())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Engine::Create(TinySpec(catalog, truth, {0, 0}),
                           std::make_unique<policy::KairosPolicy>())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      Engine::Create(TinySpec(catalog, truth, {1, 0}), nullptr).status().code(),
      StatusCode::kInvalidArgument);
  // The throwing constructor enforces the same validation list.
  EXPECT_THROW(Engine(TinySpec(catalog, truth, {0, 0}),
                      std::make_unique<policy::KairosPolicy>()),
               std::invalid_argument);
}

// --- Zero-offered runs (the throughput/QosMet regression). ---

TEST(EngineTest, EmptyRunReportsZeroThroughputAndFailsQos) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  engine.Drain();
  const RunResult r = engine.Totals();
  EXPECT_EQ(r.offered, 0u);
  EXPECT_EQ(r.served, 0u);
  EXPECT_EQ(r.throughput_qps, 0.0);  // 0/0 must not surface as NaN
  EXPECT_FALSE(r.QosMet(200.0));     // an empty run demonstrates nothing

  ServingSystem system(TinySpec(catalog, truth, {1, 0}),
                       std::make_unique<policy::KairosPolicy>());
  const RunResult batch = system.Run(Trace{});
  EXPECT_EQ(batch.throughput_qps, 0.0);
  EXPECT_FALSE(batch.QosMet(200.0));
}

// --- Windowed metrics. ---

void ExpectSameWindow(const WindowedMetrics& a, const WindowedMetrics& b) {
  EXPECT_EQ(a.start, b.start);
  EXPECT_EQ(a.end, b.end);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.offered_qps, b.offered_qps);
  EXPECT_EQ(a.qps, b.qps);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.mean_batch, b.mean_batch);
  EXPECT_EQ(a.reject_rate, b.reject_rate);
  EXPECT_EQ(a.shed_rate, b.shed_rate);
}

TEST(EngineTest, WindowedMetricsBitIdenticalAcrossStepSizes) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();

  // Same seed + same submission schedule, realized with different
  // AdvanceTo granularities: one 2s stride vs. forty 0.05s strides.
  auto make_engine = [&] {
    EngineOptions options;
    options.seed = 7;
    options.run.abort_violation_fraction = 0.0;
    return std::make_unique<Engine>(TinySpec(catalog, truth, {1, 1}),
                                    std::make_unique<policy::KairosPolicy>(),
                                    PredictorOptions{}, options);
  };
  auto make_source = [] {
    QuerySourceSpec spec;
    spec.source = "production";  // case-insensitive lookup
    spec.rate_qps = 60.0;
    return QuerySourceRegistry::Global().Build(spec);
  };

  auto coarse_engine = make_engine();
  auto coarse_source = make_source();
  ASSERT_TRUE(coarse_source.ok()) << coarse_source.status().ToString();
  ASSERT_TRUE(coarse_engine->SubmitSource(**coarse_source).ok());

  auto fine_engine = make_engine();
  auto fine_source = make_source();
  ASSERT_TRUE(fine_source.ok());
  ASSERT_TRUE(fine_engine->SubmitSource(**fine_source).ok());

  for (int window = 1; window <= 3; ++window) {
    const Time horizon = 2.0 * window;
    coarse_engine->AdvanceTo(horizon);
    for (int step = 0; step < 40; ++step) {
      fine_engine->AdvanceTo(horizon - 2.0 + 0.05 * (step + 1));
    }
    const WindowedMetrics coarse = coarse_engine->TakeWindow();
    const WindowedMetrics fine = fine_engine->TakeWindow();
    EXPECT_GT(coarse.offered, 0u);
    ExpectSameWindow(coarse, fine);
  }
}

TEST(EngineTest, TakeWindowResetsTheAccumulator) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  ASSERT_TRUE(engine.Submit(Query{0, 10, 0.5}).ok());
  engine.AdvanceTo(1.0);
  const WindowedMetrics first = engine.TakeWindow();
  EXPECT_EQ(first.offered, 1u);
  EXPECT_EQ(first.served, 1u);
  EXPECT_DOUBLE_EQ(first.start, 0.0);
  EXPECT_DOUBLE_EQ(first.end, 1.0);
  engine.AdvanceTo(2.0);
  const WindowedMetrics second = engine.TakeWindow();
  EXPECT_DOUBLE_EQ(second.start, 1.0);
  EXPECT_EQ(second.offered, 0u);
  EXPECT_EQ(second.served, 0u);
  EXPECT_EQ(second.qps, 0.0);
}

// --- Mid-run mutation. ---

TEST(EngineTest, SetArrivalScaleRescalesSourceGaps) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.run.abort_violation_fraction = 0.0;
  Engine engine(TinySpec(catalog, truth, {2, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  QuerySourceSpec spec;
  spec.source = "UNIFORM";
  spec.rate_qps = 10.0;
  auto source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(engine.SubmitSource(**source).ok());

  engine.AdvanceTo(10.0);
  const WindowedMetrics before = engine.TakeWindow();
  ASSERT_TRUE(engine.SetArrivalScale(2.0).ok());
  engine.AdvanceTo(20.0);
  const WindowedMetrics after = engine.TakeWindow();
  // Fixed 0.1s gaps: ~100 arrivals in the first window, ~200 once the
  // gaps are halved (edge emissions make it inexact by one).
  EXPECT_NEAR(static_cast<double>(before.offered), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(after.offered), 200.0, 2.0);

  EXPECT_EQ(engine.SetArrivalScale(0.0).code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, SwapPolicyMidRunTakesEffect) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 1}),
                std::make_unique<policy::KairosPolicy>());
  EXPECT_EQ(engine.GetPolicy().Name(), "KAIROS");
  ASSERT_TRUE(engine.Submit(Query{0, 50, 0.5}).ok());
  engine.AdvanceTo(0.25);
  ASSERT_TRUE(engine.SwapPolicy("ribbon").ok());  // case-insensitive
  EXPECT_EQ(engine.GetPolicy().Name(), "RIBBON");
  engine.Drain();
  EXPECT_EQ(engine.Totals().served, 1u);

  const Status unknown = engine.SwapPolicy("FCFS++");
  EXPECT_EQ(unknown.code(), StatusCode::kFailedPrecondition);  // drained
}

TEST(EngineTest, SwapPolicyUnknownNameListsAlternatives) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  const Status unknown = engine.SwapPolicy("FCFS++");
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.message().find("KAIROS"), std::string::npos);
}

TEST(EngineTest, ReconfigureLaunchesAfterLagAndDrainsRemoved) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.launch_lag_s = 0.5;
  options.run.abort_violation_fraction = 0.0;
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  EXPECT_EQ(engine.ActiveInstances(), 1u);

  // Scale out: the two new instances come online launch_lag_s later.
  ASSERT_TRUE(engine.Reconfigure(Config({3, 0})).ok());
  engine.AdvanceTo(0.4);
  EXPECT_EQ(engine.ActiveInstances(), 1u);
  engine.AdvanceTo(0.6);
  EXPECT_EQ(engine.ActiveInstances(), 3u);
  EXPECT_EQ(engine.target_config().Count(0), 3);

  // Scale in: idle instances retire on the spot (nothing to drain).
  ASSERT_TRUE(engine.Reconfigure(Config({1, 0})).ok());
  EXPECT_EQ(engine.ActiveInstances(), 1u);

  EXPECT_EQ(engine.Reconfigure(Config({1})).code(),
            StatusCode::kInvalidArgument);  // arity mismatch
  EXPECT_EQ(engine.Reconfigure(Config({0, 0})).code(),
            StatusCode::kInvalidArgument);  // no instances
}

TEST(EngineTest, ReissuedReconfigureKeepsPendingLaunchesOnSchedule) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.launch_lag_s = 1.0;
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  // Re-issuing the same grown target faster than the launch lag must not
  // reset the pending launches' clocks (a periodic reallocator would
  // otherwise never gain capacity).
  ASSERT_TRUE(engine.Reconfigure(Config({3, 0})).ok());
  engine.AdvanceTo(0.4);
  ASSERT_TRUE(engine.Reconfigure(Config({3, 0})).ok());
  engine.AdvanceTo(0.8);
  ASSERT_TRUE(engine.Reconfigure(Config({3, 0})).ok());
  engine.AdvanceTo(1.1);
  EXPECT_EQ(engine.ActiveInstances(), 3u);

  // Shrinking back below the live count cancels nothing but retires; a
  // shrink while launches are pending cancels those first.
  ASSERT_TRUE(engine.Reconfigure(Config({5, 0})).ok());
  ASSERT_TRUE(engine.Reconfigure(Config({3, 0})).ok());  // cancels the 2
  engine.AdvanceTo(3.0);
  EXPECT_EQ(engine.ActiveInstances(), 3u);
}

TEST(EngineTest, OfferedCountsArrivalsNotScheduledAheadEmissions) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.run.abort_violation_fraction = 0.0;
  Engine engine(TinySpec(catalog, truth, {2, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  QuerySourceSpec spec;
  spec.source = "UNIFORM";
  spec.rate_qps = 10.0;
  auto source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(engine.SubmitSource(**source).ok());
  engine.AdvanceTo(10.0);
  // Fixed 0.1s gaps: arrivals at 0.1 .. 10.0 exactly; the emission
  // already scheduled for 10.1 must not be in the ledger yet.
  EXPECT_EQ(engine.Totals().offered, 100u);
}

TEST(EngineTest, DrainOnSharedClockStopsDespitePeerUnboundedSource) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  sim::Simulator clock;
  EngineOptions options;
  options.run.abort_violation_fraction = 0.0;
  Engine a(TinySpec(catalog, truth, {1, 0}),
           std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
           options, &clock);
  Engine b(TinySpec(catalog, truth, {1, 0}),
           std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
           options, &clock);
  QuerySourceSpec spec;
  spec.source = "UNIFORM";
  spec.rate_qps = 20.0;
  auto peer_source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_TRUE(peer_source.ok());
  ASSERT_TRUE(b.SubmitSource(**peer_source).ok());  // unbounded peer

  ASSERT_TRUE(a.Submit(Query{0, 10, 0.05}).ok());
  ASSERT_TRUE(a.Submit(Query{1, 10, 0.15}).ok());
  a.Drain();  // must terminate once a's two queries completed
  EXPECT_EQ(a.state(), EngineState::kDrained);
  const RunResult totals = a.Totals();
  EXPECT_EQ(totals.offered, 2u);
  EXPECT_EQ(totals.served, 2u);
}

TEST(EngineTest, ReconfigureExpandsServiceCapacityMidRun) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.launch_lag_s = 0.2;
  options.run.abort_violation_fraction = 0.0;
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  // Batch-100 queries cost 20ms on base: 100 QPS offered saturates 1
  // instance (capacity 50/s) but not 3.
  QuerySourceSpec spec;
  spec.source = "UNIFORM";
  spec.rate_qps = 100.0;
  spec.batch = 100;
  auto source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(engine.SubmitSource(**source).ok());

  engine.AdvanceTo(2.0);
  const WindowedMetrics congested = engine.TakeWindow();
  ASSERT_TRUE(engine.Reconfigure(Config({3, 0})).ok());
  engine.AdvanceTo(4.0);
  const WindowedMetrics relieved = engine.TakeWindow();
  EXPECT_LT(congested.qps, 55.0);  // single-instance ceiling
  EXPECT_GT(relieved.qps, 95.0);   // backlog drains at 3-instance capacity
}

// --- Admission control and deadline shedding (DESIGN.md Sec. 12). ---

TEST(EngineAdmissionTest, BoundedQueueRejectsBurstsAndConserves) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.run.abort_violation_fraction = 0.0;
  options.admission.max_queue = 4;
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  // A simultaneous burst of 10: at most max_queue of them can be waiting
  // when each later arrival is admitted, so some must bounce.
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Submit(Query{i, 1, 0.001}).ok());
  }
  engine.Drain();
  const RunResult& totals = engine.Totals();
  EXPECT_EQ(totals.offered, 10u);  // rejected arrivals still arrived
  EXPECT_GT(engine.Rejected(), 0u);
  EXPECT_EQ(engine.Shed(), 0u);  // no deadline in play
  EXPECT_EQ(totals.served + totals.rejected, 10u);
  EXPECT_EQ(engine.Backlog(), 0u);
}

TEST(EngineAdmissionTest, ImpossibleDeadlineShedsTheWholeQueue) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.run.abort_violation_fraction = 0.0;
  // Base service floor is 10ms; a 1ms deadline dooms every query the
  // moment it arrives, so nothing is ever dispatched.
  options.admission.deadline_s = 0.001;
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Submit(Query{i, 2, 0.01 * (i + 1)}).ok());
  }
  engine.Drain();
  EXPECT_EQ(engine.Totals().offered, 5u);
  EXPECT_EQ(engine.Totals().served, 0u);
  EXPECT_EQ(engine.Shed(), 5u);
  EXPECT_EQ(engine.Rejected(), 0u);
  EXPECT_EQ(engine.Backlog(), 0u);
}

TEST(EngineAdmissionTest, HugeLimitsAreBitIdenticalToDisabled) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  auto run = [&](AdmissionOptions admission) {
    EngineOptions options;
    options.seed = 11;
    options.run.abort_violation_fraction = 0.0;
    options.admission = admission;
    Engine engine(TinySpec(catalog, truth, {1, 1}),
                  std::make_unique<policy::KairosPolicy>(),
                  PredictorOptions{}, options);
    QuerySourceSpec spec;
    spec.source = "PRODUCTION";
    spec.rate_qps = 60.0;
    auto source = QuerySourceRegistry::Global().Build(spec);
    EXPECT_TRUE(source.ok());
    EXPECT_TRUE(engine.SubmitSource(**source).ok());
    engine.AdvanceTo(5.0);
    return engine.TakeWindow();
  };
  AdmissionOptions generous;
  generous.max_queue = 1u << 20;
  generous.max_queue_s = 1e6;
  generous.deadline_s = 1e6;
  const WindowedMetrics with_limits = run(generous);
  const WindowedMetrics disabled = run(AdmissionOptions{});
  EXPECT_GT(with_limits.offered, 0u);
  EXPECT_EQ(with_limits.rejected, 0u);
  EXPECT_EQ(with_limits.shed, 0u);
  ExpectSameWindow(with_limits, disabled);
}

TEST(EngineAdmissionTest, ShedAccountingBitIdenticalAcrossStepSizes) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  // Overload a single base instance (capacity ~50 batch-100 queries/s)
  // with 200 QPS plus a tight-but-feasible deadline: some queries serve,
  // some shed, some bounce off the queue bound. The ledger must not
  // depend on how the schedule is realized.
  auto make_engine = [&] {
    EngineOptions options;
    options.seed = 13;
    options.run.abort_violation_fraction = 0.0;
    options.admission.max_queue = 32;
    options.admission.deadline_s = 0.1;
    return std::make_unique<Engine>(TinySpec(catalog, truth, {1, 0}),
                                    std::make_unique<policy::KairosPolicy>(),
                                    PredictorOptions{}, options);
  };
  auto make_source = [] {
    QuerySourceSpec spec;
    spec.source = "UNIFORM";
    spec.rate_qps = 200.0;
    spec.batch = 100;
    return QuerySourceRegistry::Global().Build(spec);
  };
  auto coarse = make_engine();
  auto coarse_source = make_source();
  ASSERT_TRUE(coarse_source.ok());
  ASSERT_TRUE(coarse->SubmitSource(**coarse_source).ok());
  auto fine = make_engine();
  auto fine_source = make_source();
  ASSERT_TRUE(fine_source.ok());
  ASSERT_TRUE(fine->SubmitSource(**fine_source).ok());

  for (int window = 1; window <= 3; ++window) {
    const Time horizon = 1.0 * window;
    coarse->AdvanceTo(horizon);
    for (int step = 0; step < 100; ++step) {
      fine->AdvanceTo(horizon - 1.0 + 0.01 * (step + 1));
    }
    const WindowedMetrics a = coarse->TakeWindow();
    const WindowedMetrics b = fine->TakeWindow();
    ExpectSameWindow(a, b);
  }
  EXPECT_GT(coarse->Shed() + coarse->Rejected(), 0u)
      << "overload regime failed to exercise admission control";
  EXPECT_EQ(coarse->Shed(), fine->Shed());
  EXPECT_EQ(coarse->Rejected(), fine->Rejected());
}

TEST(EngineAdmissionTest, SetAdmissionValidatesAndAppliesMidRun) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());

  AdmissionOptions negative;
  negative.deadline_s = -1.0;
  EXPECT_EQ(engine.SetAdmission(negative).code(),
            StatusCode::kInvalidArgument);

  // Queue work behind a long-running head, then tighten the deadline
  // mid-run: the doomed tail is shed at the next policy round.
  ASSERT_TRUE(engine.Submit(Query{0, 1000, 0.0}).ok());  // 110ms on base
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(engine.Submit(Query{i, 1000, 0.001}).ok());
  }
  engine.AdvanceTo(0.05);
  EXPECT_EQ(engine.Shed(), 0u);
  AdmissionOptions tight;
  tight.deadline_s = 0.2;  // heads now need >= 3 x 110ms of queue ahead
  ASSERT_TRUE(engine.SetAdmission(tight).ok());
  EXPECT_DOUBLE_EQ(engine.admission().deadline_s, 0.2);
  engine.Drain();
  EXPECT_GT(engine.Shed(), 0u);
  EXPECT_EQ(engine.Totals().served + engine.Shed(), 5u);

  // DRAINED engines are immutable.
  EXPECT_EQ(engine.SetAdmission(AdmissionOptions{}).code(),
            StatusCode::kFailedPrecondition);
}

// --- WindowedMetrics corner cases. ---

TEST(WindowedMetricsCornerTest, EmptyWindowReportsAllZeroes) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  engine.AdvanceTo(1.0);
  const WindowedMetrics window = engine.TakeWindow();
  EXPECT_EQ(window.offered, 0u);
  EXPECT_EQ(window.served, 0u);
  EXPECT_EQ(window.rejected, 0u);
  EXPECT_EQ(window.shed, 0u);
  EXPECT_EQ(window.p99_ms, 0.0);
  EXPECT_EQ(window.mean_ms, 0.0);
  EXPECT_EQ(window.mean_batch, 0.0);
  // Rates divide by offered: zero arrivals must read 0, never NaN.
  EXPECT_EQ(window.reject_rate, 0.0);
  EXPECT_EQ(window.shed_rate, 0.0);
}

TEST(WindowedMetricsCornerTest, SingleCompletionWindowP99EqualsItsLatency) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>());
  ASSERT_TRUE(engine.Submit(Query{0, 40, 0.25}).ok());
  engine.AdvanceTo(1.0);
  const WindowedMetrics window = engine.TakeWindow();
  EXPECT_EQ(window.offered, 1u);
  EXPECT_EQ(window.served, 1u);
  EXPECT_GT(window.p99_ms, 0.0);
  EXPECT_EQ(window.p99_ms, window.mean_ms);
  EXPECT_EQ(window.mean_batch, 40.0);
  EXPECT_EQ(window.shed_rate, 0.0);
  EXPECT_EQ(window.reject_rate, 0.0);
}

TEST(WindowedMetricsCornerTest, FullyShedWindowReportsShedRateOne) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EngineOptions options;
  options.run.abort_violation_fraction = 0.0;
  options.admission.deadline_s = 0.001;  // below the 10ms service floor
  Engine engine(TinySpec(catalog, truth, {1, 0}),
                std::make_unique<policy::KairosPolicy>(), PredictorOptions{},
                options);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.Submit(Query{i, 3, 0.1 * (i + 1)}).ok());
  }
  engine.AdvanceTo(1.0);
  const WindowedMetrics window = engine.TakeWindow();
  EXPECT_EQ(window.offered, 5u);
  EXPECT_EQ(window.served, 0u);
  EXPECT_EQ(window.shed, 5u);
  EXPECT_EQ(window.shed_rate, 1.0);
  EXPECT_EQ(window.reject_rate, 0.0);
  EXPECT_EQ(window.p99_ms, 0.0);  // no completions to take a p99 over
  EXPECT_EQ(window.mean_batch, 3.0);
}

// --- QuerySource registry. ---

TEST(QuerySourceTest, RegistryListsTheSixSources) {
  const auto names = QuerySourceRegistry::Global().ListNames();
  for (const char* expected :
       {"GAUSSIAN", "POISSON", "PRODUCTION", "STREAM", "TRACE", "UNIFORM"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(QuerySourceTest, RoundTripEveryRegisteredName) {
  Rng rng(5);
  // STREAM needs a real file: persist the same 4-query trace the TRACE
  // source replays, so both exhaust after the 4 emissions below.
  const Trace trace = MediumTrace(25.0, 4);
  const std::string trace_path =
      ::testing::TempDir() + "roundtrip_source_trace.csv";
  ASSERT_TRUE(workload::WriteTraceCsv(trace, trace_path).ok());
  for (const std::string& name : QuerySourceRegistry::Global().ListNames()) {
    QuerySourceSpec spec;
    spec.source = name;
    spec.rate_qps = 25.0;
    spec.limit = 4;
    spec.trace = trace;
    spec.path = trace_path;
    auto source = QuerySourceRegistry::Global().Build(spec);
    ASSERT_TRUE(source.ok()) << name << ": " << source.status().ToString();
    const auto summary = QuerySourceRegistry::Global().Summary(name);
    ASSERT_TRUE(summary.ok());
    EXPECT_FALSE(summary->empty());
    for (int i = 0; i < 4; ++i) {
      const auto emission = (*source)->Next(rng);
      ASSERT_TRUE(emission.has_value()) << name << " emission " << i;
      EXPECT_GE(emission->gap, 0.0);
      EXPECT_GE(emission->batch, 1);
    }
    // limit = 4 (and the 4-query trace) both exhaust here.
    EXPECT_FALSE((*source)->Next(rng).has_value()) << name;
  }
  std::remove(trace_path.c_str());
}

TEST(QuerySourceTest, UnknownNameIsNotFoundListingAlternatives) {
  QuerySourceSpec spec;
  spec.source = "WAT";
  const auto source = QuerySourceRegistry::Global().Build(spec);
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kNotFound);
  EXPECT_NE(source.status().message().find("POISSON"), std::string::npos);
  EXPECT_NE(source.status().message().find("TRACE"), std::string::npos);
  EXPECT_FALSE(QuerySourceRegistry::Global().Contains("WAT"));
  EXPECT_TRUE(QuerySourceRegistry::Global().Contains("poisson"));
}

TEST(QuerySourceTest, BadParametersAreInvalidArgument) {
  QuerySourceSpec bad_rate;
  bad_rate.source = "POISSON";
  bad_rate.rate_qps = -1.0;
  EXPECT_EQ(QuerySourceRegistry::Global().Build(bad_rate).status().code(),
            StatusCode::kInvalidArgument);

  QuerySourceSpec empty_trace;
  empty_trace.source = "TRACE";
  EXPECT_EQ(QuerySourceRegistry::Global().Build(empty_trace).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QuerySourceTest, TraceSourceReplaysGapsAndBatchesExactly) {
  const Trace trace({Query{0, 7, 0.25}, Query{1, 13, 0.25}, Query{2, 2, 1.0}});
  workload::TraceSource source(trace);
  Rng rng(1);
  Time cumulative = 0.0;
  for (const Query& q : trace.queries()) {
    const auto emission = source.Next(rng);
    ASSERT_TRUE(emission.has_value());
    cumulative += emission->gap;
    EXPECT_DOUBLE_EQ(cumulative, q.arrival);
    EXPECT_EQ(emission->batch, q.batch_size);
  }
  EXPECT_FALSE(source.Next(rng).has_value());
  source.Reset();
  EXPECT_TRUE(source.Next(rng).has_value());
}

}  // namespace
}  // namespace kairos::serving
