// End-to-end invariants from the paper's evaluation, at smoke fidelity:
//  * Kairos's planned heterogeneous config beats the scaled best
//    homogeneous config (Fig. 8, all models);
//  * the Kairos distributor beats Ribbon FCFS on the same hardware (Fig. 3);
//  * upper bounds dominate measured throughput over the top candidates
//    (Fig. 13/14);
//  * Kairos+ finds the best throughput among evaluated configs with far
//    fewer evaluations than the space size (Fig. 10).
#include <gtest/gtest.h>

#include "cloud/config_space.h"
#include "core/kairos.h"
#include "oracle/oracle.h"
#include "serving/throughput_eval.h"

namespace kairos {
namespace {

using cloud::Catalog;
using cloud::Config;

serving::EvalOptions SmokeEval(double guess) {
  serving::EvalOptions opt;
  opt.queries = 500;
  opt.bisect_iters = 6;
  opt.rate_guess = guess;
  return opt;
}

class EndToEnd : public ::testing::TestWithParam<std::string> {
 protected:
  const Catalog catalog_ = Catalog::PaperPool();
  const workload::LogNormalBatches mix_ =
      workload::LogNormalBatches::Production();
};

TEST_P(EndToEnd, PlannedHeteroBeatsScaledHomogeneous) {
  core::Kairos kairos(catalog_, GetParam());
  kairos.ObserveMix(mix_);
  const core::Plan plan = kairos.PlanConfiguration();

  const auto hetero = kairos.MeasureThroughput(
      plan.config, mix_, SmokeEval(plan.ranked.front().upper_bound * 0.5));
  const Config homo = cloud::BestHomogeneous(catalog_, 2.5);
  const auto homo_run =
      kairos.MeasureThroughput(homo, mix_, SmokeEval(hetero.qps));
  const double homo_scaled =
      homo_run.qps * 2.5 / homo.CostPerHour(catalog_);
  // Fig. 8 floor: "more than 1.25x in all cases" — smoke fidelity keeps a
  // margin below that.
  EXPECT_GT(hetero.qps, 1.10 * homo_scaled) << GetParam();
}

TEST_P(EndToEnd, KairosDistributorBeatsRibbonOnSameHardware) {
  core::Kairos kairos(catalog_, GetParam());
  kairos.ObserveMix(mix_);
  const core::Plan plan = kairos.PlanConfiguration();
  const double qos = kairos.qos_ms();

  const auto eval = SmokeEval(plan.ranked.front().upper_bound * 0.5);
  const auto with_kairos = serving::EvaluateConfig(
      catalog_, plan.config, kairos.truth(), qos,
      core::MakePolicyFactory("KAIROS"), mix_, eval);
  const auto with_ribbon = serving::EvaluateConfig(
      catalog_, plan.config, kairos.truth(), qos,
      core::MakePolicyFactory("RIBBON"), mix_, eval);
  EXPECT_GE(with_kairos.qps, with_ribbon.qps * 0.98) << GetParam();
}

TEST_P(EndToEnd, UpperBoundDominatesMeasuredOnTopCandidates) {
  core::Kairos kairos(catalog_, GetParam());
  kairos.ObserveMix(mix_);
  const core::Plan plan = kairos.PlanConfiguration();
  for (std::size_t rank : {std::size_t{0}, std::size_t{4}, std::size_t{9}}) {
    if (rank >= plan.ranked.size()) continue;
    const auto& candidate = plan.ranked[rank];
    const auto measured = kairos.MeasureThroughput(
        candidate.config, mix_, SmokeEval(candidate.upper_bound * 0.5));
    EXPECT_LE(measured.qps, candidate.upper_bound * 1.05)
        << GetParam() << " rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, EndToEnd,
                         ::testing::Values("RM2", "WND", "DIEN"),
                         [](const auto& info) { return info.param; });

TEST(EndToEndSearch, KairosPlusEvaluatesTinyFractionOfSpace) {
  const Catalog catalog = Catalog::PaperPool();
  core::Kairos kairos(catalog, "RM2");
  kairos.ObserveMix(workload::LogNormalBatches::Production());

  // Real (but cheap) evaluation function with memoization inside the
  // search; counts unique evaluations.
  const auto mix = workload::LogNormalBatches::Production();
  const search::EvalFn eval = [&](const Config& c) {
    return kairos.MeasureThroughput(c, mix, SmokeEval(30.0)).qps;
  };
  const auto result = kairos.PlanWithEvaluations(eval);
  const std::size_t space = kairos.PlanConfiguration().ranked.size();
  EXPECT_GT(result.best_qps, 0.0);
  // Fig. 10: Kairos+ consistently evaluates less than ~1% of the space;
  // allow smoke-level slack.
  EXPECT_LT(result.evals, space / 10);
}

TEST(EndToEndOracle, OracleDominatesKairosOnPlannedConfig) {
  const Catalog catalog = Catalog::PaperPool();
  core::Kairos kairos(catalog, "RM2");
  const auto mix = workload::LogNormalBatches::Production();
  kairos.ObserveMix(mix);
  const core::Plan plan = kairos.PlanConfiguration();
  const auto measured = kairos.MeasureThroughput(
      plan.config, mix, SmokeEval(plan.ranked.front().upper_bound * 0.5));
  const double oracle = oracle::OracleThroughput(
      catalog, plan.config, kairos.truth(), kairos.qos_ms(), mix, 4000, 17);
  EXPECT_LE(measured.qps, oracle * 1.05);
  // And Kairos should not be hopelessly far from the oracle (Sec. 8.4
  // reports within ~15%; smoke fidelity allows 45%).
  EXPECT_GT(measured.qps, 0.55 * oracle);
}

TEST(EndToEndNoise, FivePercentPredictionNoiseDoesNotCollapseThroughput) {
  // Fig. 16b: Kairos is robust to 5% latency-prediction noise.
  const Catalog catalog = Catalog::PaperPool();
  core::Kairos kairos(catalog, "RM2");
  const auto mix = workload::LogNormalBatches::Production();
  kairos.ObserveMix(mix);
  const core::Plan plan = kairos.PlanConfiguration();

  serving::PredictorOptions noisy;
  noisy.noise_sigma = 0.05;
  const auto eval = SmokeEval(plan.ranked.front().upper_bound * 0.5);
  const auto clean_run = serving::EvaluateConfig(
      catalog, plan.config, kairos.truth(), kairos.qos_ms(),
      core::MakePolicyFactory("KAIROS"), mix, eval);
  const auto noisy_run = serving::EvaluateConfig(
      catalog, plan.config, kairos.truth(), kairos.qos_ms(),
      core::MakePolicyFactory("KAIROS"), mix, eval, noisy);
  EXPECT_GT(noisy_run.qps, 0.7 * clean_run.qps);
}

TEST(EndToEndRegimeChange, MonitorShiftChangesThePlan) {
  // Fig. 12's premise: when the batch-size regime changes, the planned
  // configuration (or at least its upper-bound ranking) follows without
  // any online evaluation.
  const Catalog catalog = Catalog::PaperPool();
  core::Kairos kairos(catalog, "RM2");
  kairos.ObserveMix(workload::LogNormalBatches::Production());
  const core::Plan before = kairos.PlanConfiguration();

  kairos.ResetMonitor();
  // All-large Gaussian mix: auxiliaries lose their QoS region.
  const workload::GaussianBatches big(850.0, 60.0);
  kairos.ObserveMix(big);
  const core::Plan after = kairos.PlanConfiguration();
  // With (almost) no aux-feasible queries, the plan must lean on base
  // instances much harder than before.
  EXPECT_GT(after.config.Count(0), before.config.Count(0));
}

}  // namespace
}  // namespace kairos
