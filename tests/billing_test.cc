#include <gtest/gtest.h>

#include "cloud/billing.h"

namespace kairos::cloud {
namespace {

TEST(BillingMeterTest, AccruesPerSecond) {
  const Catalog catalog = Catalog::PaperPool();
  BillingMeter meter(catalog);
  const Config homo({4, 0, 0, 0});  // $2.104/hr
  meter.Accrue(homo, 3600.0);
  EXPECT_NEAR(meter.TotalCost(), 2.104, 1e-9);
  meter.Accrue(homo, 1800.0);
  EXPECT_NEAR(meter.TotalCost(), 2.104 * 1.5, 1e-9);
  EXPECT_NEAR(meter.AverageRatePerHour(), 2.104, 1e-9);
  EXPECT_DOUBLE_EQ(meter.TotalTime(), 5400.0);
}

TEST(BillingMeterTest, MixedConfigsAverage) {
  const Catalog catalog = Catalog::PaperPool();
  BillingMeter meter(catalog);
  meter.Accrue(Config({1, 0, 0, 0}), 3600.0);  // $0.526
  meter.Accrue(Config({0, 0, 0, 0}), 3600.0);  // idle, $0
  EXPECT_NEAR(meter.AverageRatePerHour(), 0.263, 1e-9);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.TotalCost(), 0.0);
  EXPECT_DOUBLE_EQ(meter.AverageRatePerHour(), 0.0);
}

TEST(BillingMeterTest, NegativeDurationIsRejected) {
  const Catalog catalog = Catalog::PaperPool();
  BillingMeter meter(catalog);
  const Status rejected = meter.Accrue(Config({1, 0, 0, 0}), -1.0);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  // Nothing accrued: the rejected call must not move the meter.
  EXPECT_DOUBLE_EQ(meter.TotalCost(), 0.0);
  EXPECT_DOUBLE_EQ(meter.TotalTime(), 0.0);
}

TEST(SpotMarketTest, ValidatesItsParameters) {
  SpotMarket market;
  market.reclaim_rate_per_hour = 120.0;
  market.notice_s = 2.0;
  EXPECT_TRUE(market.Validate().ok());

  SpotMarket bad_discount = market;
  bad_discount.discount = 0.0;
  EXPECT_EQ(bad_discount.Validate().code(), StatusCode::kInvalidArgument);
  bad_discount.discount = 1.5;
  EXPECT_EQ(bad_discount.Validate().code(), StatusCode::kInvalidArgument);

  SpotMarket bad_rate = market;
  bad_rate.reclaim_rate_per_hour = -1.0;
  EXPECT_EQ(bad_rate.Validate().code(), StatusCode::kInvalidArgument);

  SpotMarket bad_notice = market;
  bad_notice.notice_s = -0.5;
  EXPECT_EQ(bad_notice.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpotMarketTest, SpotCostAppliesTheDiscount) {
  SpotMarket market;
  market.discount = 0.35;
  EXPECT_NEAR(SpotCost(market, 10.0), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(SpotCost(market, 0.0), 0.0);
  // On-demand parity: a discount of 1 changes nothing.
  market.discount = 1.0;
  EXPECT_DOUBLE_EQ(SpotCost(market, 7.25), 7.25);
}

TEST(PlanReconfigurationTest, GrowthPaysBeforeServing) {
  const Config from({2, 0, 0, 0});
  const Config to({2, 0, 5, 0});
  const auto phases = PlanReconfiguration(from, to, 30.0, 600.0);
  ASSERT_EQ(phases.size(), 2u);
  // During launch: serve on the intersection, pay for the target.
  EXPECT_EQ(phases[0].active, from);
  EXPECT_EQ(phases[0].billed, to);
  EXPECT_DOUBLE_EQ(phases[0].duration, 30.0);
  EXPECT_EQ(phases[1].active, to);
  EXPECT_DOUBLE_EQ(phases[1].duration, 570.0);
}

TEST(PlanReconfigurationTest, ShrinkIsImmediate) {
  const Config from({4, 0, 2, 0});
  const Config to({2, 0, 2, 0});
  const auto phases = PlanReconfiguration(from, to, 30.0, 100.0);
  ASSERT_EQ(phases.size(), 2u);
  // Nothing to launch: the intersection equals the target.
  EXPECT_EQ(phases[0].active, to);
  EXPECT_EQ(phases[0].billed, to);
}

TEST(PlanReconfigurationTest, SwapHoldsBothSidesDuringLaunch) {
  const Config from({3, 0, 0, 0});
  const Config to({1, 0, 9, 0});
  const auto phases = PlanReconfiguration(from, to, 40.0, 300.0);
  ASSERT_EQ(phases.size(), 2u);
  // Serving on the intersection (1 GPU) while paying for 1 GPU + 9 CPUs.
  EXPECT_EQ(phases[0].active, Config({1, 0, 0, 0}));
  EXPECT_EQ(phases[0].billed, to);
}

TEST(PlanReconfigurationTest, HorizonShorterThanLaunch) {
  const Config from({1, 0, 0, 0});
  const Config to({1, 0, 3, 0});
  const auto phases = PlanReconfiguration(from, to, 60.0, 20.0);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].active, from);
  EXPECT_DOUBLE_EQ(phases[0].duration, 20.0);
}

TEST(PlanReconfigurationTest, InvalidInputsThrow) {
  EXPECT_THROW(
      PlanReconfiguration(Config({1, 0}), Config({1, 0, 0}), 10.0, 100.0),
      std::invalid_argument);
  EXPECT_THROW(
      PlanReconfiguration(Config({1, 0}), Config({1, 0}), 10.0, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace kairos::cloud
