#include <gtest/gtest.h>

#include "cloud/billing.h"

namespace kairos::cloud {
namespace {

TEST(BillingMeterTest, AccruesPerSecond) {
  const Catalog catalog = Catalog::PaperPool();
  BillingMeter meter(catalog);
  const Config homo({4, 0, 0, 0});  // $2.104/hr
  meter.Accrue(homo, 3600.0);
  EXPECT_NEAR(meter.TotalCost(), 2.104, 1e-9);
  meter.Accrue(homo, 1800.0);
  EXPECT_NEAR(meter.TotalCost(), 2.104 * 1.5, 1e-9);
  EXPECT_NEAR(meter.AverageRatePerHour(), 2.104, 1e-9);
  EXPECT_DOUBLE_EQ(meter.TotalTime(), 5400.0);
}

TEST(BillingMeterTest, MixedConfigsAverage) {
  const Catalog catalog = Catalog::PaperPool();
  BillingMeter meter(catalog);
  meter.Accrue(Config({1, 0, 0, 0}), 3600.0);  // $0.526
  meter.Accrue(Config({0, 0, 0, 0}), 3600.0);  // idle, $0
  EXPECT_NEAR(meter.AverageRatePerHour(), 0.263, 1e-9);
  meter.Reset();
  EXPECT_DOUBLE_EQ(meter.TotalCost(), 0.0);
  EXPECT_DOUBLE_EQ(meter.AverageRatePerHour(), 0.0);
}

TEST(BillingMeterTest, NegativeDurationIsRejected) {
  const Catalog catalog = Catalog::PaperPool();
  BillingMeter meter(catalog);
  const Status rejected = meter.Accrue(Config({1, 0, 0, 0}), -1.0);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  // Nothing accrued: the rejected call must not move the meter.
  EXPECT_DOUBLE_EQ(meter.TotalCost(), 0.0);
  EXPECT_DOUBLE_EQ(meter.TotalTime(), 0.0);
}

TEST(SpotMarketTest, ValidatesItsParameters) {
  SpotMarket market;
  market.reclaim_rate_per_hour = 120.0;
  market.notice_s = 2.0;
  EXPECT_TRUE(market.Validate().ok());

  SpotMarket bad_discount = market;
  bad_discount.discount = 0.0;
  EXPECT_EQ(bad_discount.Validate().code(), StatusCode::kInvalidArgument);
  bad_discount.discount = 1.5;
  EXPECT_EQ(bad_discount.Validate().code(), StatusCode::kInvalidArgument);

  SpotMarket bad_rate = market;
  bad_rate.reclaim_rate_per_hour = -1.0;
  EXPECT_EQ(bad_rate.Validate().code(), StatusCode::kInvalidArgument);

  SpotMarket bad_notice = market;
  bad_notice.notice_s = -0.5;
  EXPECT_EQ(bad_notice.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpotMarketTest, SpotCostAppliesTheDiscount) {
  SpotMarket market;
  market.discount = 0.35;
  EXPECT_NEAR(SpotCost(market, 10.0), 3.5, 1e-12);
  EXPECT_DOUBLE_EQ(SpotCost(market, 0.0), 0.0);
  // On-demand parity: a discount of 1 changes nothing.
  market.discount = 1.0;
  EXPECT_DOUBLE_EQ(SpotCost(market, 7.25), 7.25);
}

TEST(SpotMarketTest, FlatCurveIsExact) {
  // All curve knobs at zero => the fast path returns `discount` itself,
  // bit-for-bit, so pre-curve runs stay bit-identical.
  SpotMarket market;
  market.discount = 0.35;
  EXPECT_TRUE(market.FlatCurve());
  EXPECT_EQ(market.DiscountAt(0.0), 0.35);
  EXPECT_EQ(market.DiscountAt(1234.5), 0.35);
  EXPECT_EQ(market.MeanDiscount(0.0, 7200.0), 0.35);
  EXPECT_EQ(SpotCost(market, 10.0, 3600.0), SpotCost(market, 10.0));
}

TEST(SpotMarketTest, SinusoidCurve) {
  SpotMarket market;
  market.discount = 0.5;
  market.curve_amplitude = 0.25;
  market.curve_period_s = 40.0;
  EXPECT_TRUE(market.Validate().ok()) << market.Validate().ToString();
  EXPECT_FALSE(market.FlatCurve());
  // Peak at a quarter period, trough at three quarters.
  EXPECT_NEAR(market.DiscountAt(10.0), 0.75, 1e-12);
  EXPECT_NEAR(market.DiscountAt(30.0), 0.25, 1e-12);
  EXPECT_NEAR(market.DiscountAt(40.0), 0.5, 1e-9);

  // An amplitude needs a period, and the envelope must stay in (0, 1].
  SpotMarket no_period = market;
  no_period.curve_period_s = 0.0;
  EXPECT_EQ(no_period.Validate().code(), StatusCode::kInvalidArgument);
  SpotMarket envelope = market;
  envelope.curve_amplitude = 0.6;  // 0.5 - 0.6 < 0
  EXPECT_EQ(envelope.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SpotMarketTest, LinearDriftIntegratesExactly) {
  // Midpoint integration is exact for a linear curve: mean over [0, T]
  // is the discount at T/2.
  SpotMarket market;
  market.discount = 0.5;
  market.curve_slope_per_hour = 0.36;
  EXPECT_TRUE(market.Validate().ok());
  EXPECT_NEAR(market.DiscountAt(100.0), 0.51, 1e-12);
  EXPECT_NEAR(market.MeanDiscount(0.0, 100.0), 0.505, 1e-12);
  EXPECT_NEAR(SpotCost(market, 10.0, 100.0), 5.05, 1e-10);
  // Empty interval degrades to the instantaneous discount.
  EXPECT_NEAR(market.MeanDiscount(50.0, 50.0), 0.505, 1e-12);

  // A drifting curve never sells below the 1% floor or above on-demand.
  SpotMarket crash = market;
  crash.curve_slope_per_hour = -0.5;
  EXPECT_NEAR(crash.DiscountAt(2.0 * 3600.0), kMinSpotDiscount, 1e-12);
  SpotMarket surge = market;
  surge.curve_slope_per_hour = 0.5;
  EXPECT_NEAR(surge.DiscountAt(2.0 * 3600.0), 1.0, 1e-12);
}

TEST(SpotMarketTest, PiecewiseCurveInterpolatesAndHolds) {
  SpotMarket market;
  market.discount = 0.35;  // ignored while curve_points are present
  market.curve_points = {{10.0, 0.2}, {20.0, 0.4}};
  EXPECT_TRUE(market.Validate().ok()) << market.Validate().ToString();
  EXPECT_FALSE(market.FlatCurve());
  // Held constant outside the breakpoints, linear between them.
  EXPECT_NEAR(market.DiscountAt(0.0), 0.2, 1e-12);
  EXPECT_NEAR(market.DiscountAt(15.0), 0.3, 1e-12);
  EXPECT_NEAR(market.DiscountAt(17.5), 0.35, 1e-12);
  EXPECT_NEAR(market.DiscountAt(100.0), 0.4, 1e-12);

  SpotMarket unsorted = market;
  unsorted.curve_points = {{20.0, 0.4}, {10.0, 0.2}};
  EXPECT_EQ(unsorted.Validate().code(), StatusCode::kInvalidArgument);
  SpotMarket bad_discount = market;
  bad_discount.curve_points = {{10.0, 0.2}, {20.0, 1.4}};
  EXPECT_EQ(bad_discount.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(PlanReconfigurationTest, GrowthPaysBeforeServing) {
  const Config from({2, 0, 0, 0});
  const Config to({2, 0, 5, 0});
  const auto phases = PlanReconfiguration(from, to, 30.0, 600.0);
  ASSERT_EQ(phases.size(), 2u);
  // During launch: serve on the intersection, pay for the target.
  EXPECT_EQ(phases[0].active, from);
  EXPECT_EQ(phases[0].billed, to);
  EXPECT_DOUBLE_EQ(phases[0].duration, 30.0);
  EXPECT_EQ(phases[1].active, to);
  EXPECT_DOUBLE_EQ(phases[1].duration, 570.0);
}

TEST(PlanReconfigurationTest, ShrinkIsImmediate) {
  const Config from({4, 0, 2, 0});
  const Config to({2, 0, 2, 0});
  const auto phases = PlanReconfiguration(from, to, 30.0, 100.0);
  ASSERT_EQ(phases.size(), 2u);
  // Nothing to launch: the intersection equals the target.
  EXPECT_EQ(phases[0].active, to);
  EXPECT_EQ(phases[0].billed, to);
}

TEST(PlanReconfigurationTest, SwapHoldsBothSidesDuringLaunch) {
  const Config from({3, 0, 0, 0});
  const Config to({1, 0, 9, 0});
  const auto phases = PlanReconfiguration(from, to, 40.0, 300.0);
  ASSERT_EQ(phases.size(), 2u);
  // Serving on the intersection (1 GPU) while paying for 1 GPU + 9 CPUs.
  EXPECT_EQ(phases[0].active, Config({1, 0, 0, 0}));
  EXPECT_EQ(phases[0].billed, to);
}

TEST(PlanReconfigurationTest, HorizonShorterThanLaunch) {
  const Config from({1, 0, 0, 0});
  const Config to({1, 0, 3, 0});
  const auto phases = PlanReconfiguration(from, to, 60.0, 20.0);
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].active, from);
  EXPECT_DOUBLE_EQ(phases[0].duration, 20.0);
}

TEST(PlanReconfigurationTest, InvalidInputsThrow) {
  EXPECT_THROW(
      PlanReconfiguration(Config({1, 0}), Config({1, 0, 0}), 10.0, 100.0),
      std::invalid_argument);
  EXPECT_THROW(
      PlanReconfiguration(Config({1, 0}), Config({1, 0}), 10.0, 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace kairos::cloud
