#include <gtest/gtest.h>

#include <memory>

#include "core/kairos.h"
#include "oracle/oracle.h"
#include "serving/throughput_eval.h"

namespace kairos::oracle {
namespace {

using cloud::Catalog;
using cloud::Config;
using latency::LatencyModel;

Catalog TinyCatalog() {
  Catalog c;
  c.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"aux", "A", cloud::InstanceClass::kGeneralPurposeCpu, 0.25, false});
  return c;
}

LatencyModel TinyModel() { return LatencyModel({{10.0, 0.1}, {20.0, 0.4}}); }

TEST(OracleTest, SingleBaseUniformBatchesMatchesServiceRate) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  // 100 queries of batch 100 on one base node: 20ms each, back to back.
  const double qps = OracleThroughput(catalog, Config({1, 0}), truth, 200.0,
                                      std::vector<int>(100, 100));
  EXPECT_NEAR(qps, 50.0, 0.5);
}

TEST(OracleTest, AuxOnlyServesItsQosRegion) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  // QoS 100ms: aux region s = (98 - 20) / 0.4 = 195. Batch-500 queries can
  // only run on the base.
  std::vector<int> batches(50, 500);
  const double qps_base_only = OracleThroughput(
      catalog, Config({1, 0}), truth, 100.0, batches);
  const double qps_with_aux = OracleThroughput(
      catalog, Config({1, 5}), truth, 100.0, batches);
  // Auxiliary nodes contribute nothing for all-large batches.
  EXPECT_NEAR(qps_with_aux, qps_base_only, 1e-9);
}

TEST(OracleTest, MixedSizesUseBothTiers) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  std::vector<int> batches;
  for (int i = 0; i < 60; ++i) batches.push_back(50);    // aux-feasible
  for (int i = 0; i < 20; ++i) batches.push_back(800);   // base-only
  const double base_only =
      OracleThroughput(catalog, Config({1, 0}), truth, 150.0, batches);
  const double hetero =
      OracleThroughput(catalog, Config({1, 2}), truth, 150.0, batches);
  EXPECT_GT(hetero, base_only * 1.3);
}

TEST(OracleTest, MonotoneInInstanceCounts) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  const double one =
      OracleThroughput(catalog, Config({1, 0}), truth, 200.0, mix, 1500, 7);
  const double more_base =
      OracleThroughput(catalog, Config({2, 0}), truth, 200.0, mix, 1500, 7);
  const double more_aux =
      OracleThroughput(catalog, Config({1, 2}), truth, 200.0, mix, 1500, 7);
  EXPECT_GT(more_base, one);
  EXPECT_GT(more_aux, one);
}

TEST(OracleTest, EmptyInputsYieldZero) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  EXPECT_DOUBLE_EQ(
      OracleThroughput(catalog, Config({1, 0}), truth, 200.0, {}), 0.0);
  EXPECT_DOUBLE_EQ(OracleThroughput(catalog, Config({0, 0}), truth, 200.0,
                                    std::vector<int>(5, 10)),
                   0.0);
}

// The defining property (Definition 2 / Sec. 7): the oracle's throughput
// upper-limits what any real distribution scheme achieves on the same
// hardware and mix.
class OracleDominates : public ::testing::TestWithParam<std::string> {};

TEST_P(OracleDominates, AchievedThroughputNeverBeatsOracle) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  const Config config({1, 2});
  const double qos_ms = 150.0;

  serving::EvalOptions opt;
  opt.queries = 500;
  opt.rate_guess = 30.0;
  const auto achieved = serving::EvaluateConfig(
      catalog, config, truth, qos_ms, core::MakePolicyFactory(GetParam(), 150),
      mix, opt);
  const double oracle_qps =
      OracleThroughput(catalog, config, truth, qos_ms, mix, 3000, 99);
  EXPECT_LE(achieved.qps, oracle_qps * 1.05)  // 5% sampling tolerance
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Schemes, OracleDominates,
                         ::testing::Values("KAIROS", "RIBBON", "DRS",
                                           "CLKWRK"));

TEST(OracleSearchTest, FindsArgmaxAndAlignsVector) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  const std::vector<Config> configs = {Config({1, 0}), Config({1, 3}),
                                       Config({2, 0}), Config({2, 2})};
  const OracleSearchResult r =
      OracleSearch(catalog, configs, truth, 200.0, mix, 1500, 5);
  ASSERT_EQ(r.per_config_qps.size(), configs.size());
  double best = 0.0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (r.per_config_qps[i] > best) {
      best = r.per_config_qps[i];
      best_idx = i;
    }
  }
  EXPECT_EQ(r.best_config, configs[best_idx]);
  EXPECT_DOUBLE_EQ(r.best_qps, best);
  EXPECT_EQ(r.best_config, Config({2, 2}));  // most hardware wins
}

TEST(OracleSearchTest, EmptyConfigListThrows) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  EXPECT_THROW(OracleSearch(catalog, {}, truth, 200.0, mix, 100, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace kairos::oracle
