#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "assign/brute_force.h"
#include "assign/hungarian.h"
#include "assign/jv.h"
#include "common/rng.h"

namespace kairos::assign {
namespace {

Matrix RandomCost(std::size_t m, std::size_t n, Rng& rng, double lo = 0.0,
                  double hi = 10.0) {
  Matrix cost(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) cost(i, j) = rng.Uniform(lo, hi);
  }
  return cost;
}

TEST(JvTest, TrivialOneByOne) {
  const Matrix cost{{7.0}};
  const AssignmentResult r = SolveJv(cost);
  EXPECT_EQ(r.col_for_row, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(r.total_cost, 7.0);
}

TEST(JvTest, KnownSquareCase) {
  // Optimal is the anti-diagonal: 1 + 2 + 3 = 6.
  const Matrix cost{{9.0, 9.0, 1.0}, {9.0, 2.0, 9.0}, {3.0, 9.0, 9.0}};
  const AssignmentResult r = SolveJv(cost);
  EXPECT_DOUBLE_EQ(r.total_cost, 6.0);
  EXPECT_EQ(r.col_for_row, (std::vector<int>{2, 1, 0}));
}

TEST(JvTest, MoreColumnsThanRows) {
  const Matrix cost{{5.0, 1.0, 8.0, 9.0}, {4.0, 6.0, 2.0, 9.0}};
  const AssignmentResult r = SolveJv(cost);
  EXPECT_EQ(r.matched, 2);
  EXPECT_DOUBLE_EQ(r.total_cost, 3.0);
  EXPECT_TRUE(IsValidMatching(r, 2, 4));
}

TEST(JvTest, MoreRowsThanColumns) {
  const Matrix cost{{5.0, 1.0}, {1.0, 6.0}, {9.0, 9.0}};
  const AssignmentResult r = SolveJv(cost);
  EXPECT_EQ(r.matched, 2);
  EXPECT_TRUE(IsValidMatching(r, 3, 2));
  // Row 2 (all expensive) must be the unmatched one.
  EXPECT_EQ(r.col_for_row[2], -1);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
}

TEST(JvTest, EmptyProblems) {
  EXPECT_EQ(SolveJv(Matrix(0, 5)).matched, 0);
  EXPECT_EQ(SolveJv(Matrix(5, 0)).matched, 0);
}

TEST(JvTest, NonFiniteCostThrows) {
  Matrix cost(2, 2, 1.0);
  cost(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SolveJv(cost), std::invalid_argument);
  cost(0, 0) = std::nan("");
  EXPECT_THROW(SolveJv(cost), std::invalid_argument);
}

TEST(JvTest, NegativeCostsHandled) {
  const Matrix cost{{-5.0, 2.0}, {3.0, -4.0}};
  const AssignmentResult r = SolveJv(cost);
  EXPECT_DOUBLE_EQ(r.total_cost, -9.0);
}

// Property sweep: JV == brute force on random rectangular problems of every
// small shape, across seeds.
struct ShapeSeed {
  std::size_t m, n;
  std::uint64_t seed;
};

class JvVsBruteForce : public ::testing::TestWithParam<ShapeSeed> {};

TEST_P(JvVsBruteForce, OptimalCostMatches) {
  const auto [m, n, seed] = GetParam();
  Rng rng(seed);
  for (int rep = 0; rep < 20; ++rep) {
    const Matrix cost = RandomCost(m, n, rng);
    const AssignmentResult jv = SolveJv(cost);
    const AssignmentResult bf = SolveBruteForce(cost);
    EXPECT_TRUE(IsValidMatching(jv, m, n));
    EXPECT_NEAR(jv.total_cost, bf.total_cost, 1e-9)
        << "shape " << m << "x" << n << " rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallShapes, JvVsBruteForce,
    ::testing::Values(ShapeSeed{1, 1, 1}, ShapeSeed{2, 2, 2},
                      ShapeSeed{3, 3, 3}, ShapeSeed{4, 4, 4},
                      ShapeSeed{5, 5, 5}, ShapeSeed{6, 6, 6},
                      ShapeSeed{7, 7, 7}, ShapeSeed{2, 5, 8},
                      ShapeSeed{5, 2, 9}, ShapeSeed{3, 7, 10},
                      ShapeSeed{7, 3, 11}, ShapeSeed{1, 8, 12},
                      ShapeSeed{8, 1, 13}, ShapeSeed{6, 4, 14},
                      ShapeSeed{4, 6, 15}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "n" +
             std::to_string(info.param.n) + "s" +
             std::to_string(info.param.seed);
    });

// Cross-check the two independent polynomial solvers on larger problems.
class JvVsHungarian : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JvVsHungarian, CostsAgreeOnLargerProblems) {
  Rng rng(GetParam());
  for (const auto& [m, n] :
       {std::pair<std::size_t, std::size_t>{20, 20}, {15, 40}, {40, 15},
        {30, 33}, {64, 64}}) {
    const Matrix cost = RandomCost(m, n, rng);
    const AssignmentResult jv = SolveJv(cost);
    const AssignmentResult hu = SolveHungarian(cost);
    EXPECT_TRUE(IsValidMatching(jv, m, n));
    EXPECT_TRUE(IsValidMatching(hu, m, n));
    EXPECT_NEAR(jv.total_cost, hu.total_cost, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JvVsHungarian,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(JvTest, DegenerateEqualCosts) {
  // All-equal costs: any perfect matching is optimal; must still be valid.
  const Matrix cost(6, 6, 3.0);
  const AssignmentResult r = SolveJv(cost);
  EXPECT_TRUE(IsValidMatching(r, 6, 6));
  EXPECT_DOUBLE_EQ(r.total_cost, 18.0);
}

TEST(JvTest, PenaltyStructureLikeKairos) {
  // Shape of the Kairos Eq. 8 matrices: a few huge penalty entries among
  // normal costs; the solver must route around penalties when possible.
  Matrix cost{{0.1, 100.0}, {0.2, 0.3}};
  const AssignmentResult r = SolveJv(cost);
  EXPECT_EQ(r.col_for_row, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(r.total_cost, 0.4);
}

TEST(BruteForceTest, TooLargeThrows) {
  EXPECT_THROW(SolveBruteForce(Matrix(10, 10, 1.0)), std::invalid_argument);
}

TEST(IsValidMatchingTest, DetectsDuplicateColumns) {
  AssignmentResult r;
  r.col_for_row = {0, 0};
  r.matched = 2;
  EXPECT_FALSE(IsValidMatching(r, 2, 2));
}

TEST(IsValidMatchingTest, DetectsWrongCardinality) {
  AssignmentResult r;
  r.col_for_row = {0, -1};
  r.matched = 1;
  EXPECT_FALSE(IsValidMatching(r, 2, 2));  // should match min(2,2)=2
}

}  // namespace
}  // namespace kairos::assign
