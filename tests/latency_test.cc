#include <gtest/gtest.h>

#include "cloud/instance_type.h"
#include "latency/latency_model.h"
#include "latency/model_zoo.h"
#include "latency/noise.h"

namespace kairos::latency {
namespace {

TEST(AffineLatencyTest, EvaluatesAffine) {
  const AffineLatency curve{10.0, 0.5};
  EXPECT_DOUBLE_EQ(curve.AtBatch(100), 60.0);
}

TEST(LatencyModelTest, RejectsInvalidCurves) {
  EXPECT_THROW(LatencyModel({{-1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(LatencyModel({{1.0, 0.0}}), std::invalid_argument);
}

TEST(LatencyModelTest, BatchClampedToCap) {
  const LatencyModel m({{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(m.LatencyMs(0, 5000), m.LatencyMs(0, kMaxBatchSize));
  EXPECT_THROW(m.LatencyMs(0, 0), std::invalid_argument);
}

TEST(LatencyModelTest, MaxQosBatchInverse) {
  // lat(b) = 10 + 0.5 b; with QoS 100ms and xi=1: s = 180.
  const LatencyModel m({{10.0, 0.5}});
  EXPECT_EQ(m.MaxQosBatch(0, 100.0, 1.0), 180);
  // With the paper's xi = 0.98: s = (98 - 10) / 0.5 = 176.
  EXPECT_EQ(m.MaxQosBatch(0, 100.0), 176);
}

TEST(LatencyModelTest, MaxQosBatchZeroWhenInfeasible) {
  const LatencyModel m({{200.0, 1.0}});
  EXPECT_EQ(m.MaxQosBatch(0, 100.0), 0);
  EXPECT_FALSE(m.MeetsQosAtMaxBatch(0, 100.0));
}

TEST(ModelZooTest, HasAllFiveTable3Models) {
  const auto& zoo = ModelZoo();
  ASSERT_EQ(zoo.size(), 5u);
  EXPECT_EQ(zoo[0].name, "NCF");
  EXPECT_DOUBLE_EQ(zoo[0].qos_ms, 5.0);
  EXPECT_EQ(zoo[1].name, "RM2");
  EXPECT_DOUBLE_EQ(zoo[1].qos_ms, 350.0);
  EXPECT_EQ(zoo[2].name, "WND");
  EXPECT_DOUBLE_EQ(zoo[2].qos_ms, 25.0);
  EXPECT_EQ(zoo[3].name, "MT-WND");
  EXPECT_DOUBLE_EQ(zoo[3].qos_ms, 25.0);
  EXPECT_EQ(zoo[4].name, "DIEN");
  EXPECT_DOUBLE_EQ(zoo[4].qos_ms, 35.0);
}

TEST(ModelZooTest, FindModelByName) {
  EXPECT_EQ(FindModel("DIEN").application, "E-commerce");
  EXPECT_THROW(FindModel("GPT"), std::out_of_range);
}

// Calibration property tests: the structural constraints every model's
// latency surface must satisfy (DESIGN.md Sec. 5).
class ZooCalibration : public ::testing::TestWithParam<std::string> {
 protected:
  const cloud::Catalog catalog_ = cloud::Catalog::PaperPool();
};

TEST_P(ZooCalibration, OnlyBaseTypeMeetsQosAtMaxBatch) {
  const ModelSpec& spec = FindModel(GetParam());
  const LatencyModel m = spec.Instantiate(catalog_);
  EXPECT_TRUE(m.MeetsQosAtMaxBatch(catalog_.BaseType(), spec.qos_ms));
  for (cloud::TypeId t : catalog_.AuxiliaryTypes()) {
    EXPECT_FALSE(m.MeetsQosAtMaxBatch(t, spec.qos_ms))
        << catalog_[t].short_name;
  }
}

TEST_P(ZooCalibration, EveryAuxiliaryHasNonEmptyQosRegion) {
  const ModelSpec& spec = FindModel(GetParam());
  const LatencyModel m = spec.Instantiate(catalog_);
  for (cloud::TypeId t : catalog_.AuxiliaryTypes()) {
    const int s = m.MaxQosBatch(t, spec.qos_ms);
    EXPECT_GT(s, 0) << catalog_[t].short_name;
    EXPECT_LT(s, kMaxBatchSize) << catalog_[t].short_name;
  }
}

TEST_P(ZooCalibration, SomeAuxiliaryBeatsBaseOnQueriesPerDollar) {
  // Heterogeneity can only pay if a CPU type serves small queries at a
  // better rate per dollar than the GPU (Sec. 4's motivation).
  const ModelSpec& spec = FindModel(GetParam());
  const LatencyModel m = spec.Instantiate(catalog_);
  const cloud::TypeId base = catalog_.BaseType();
  const int small_batch = 50;
  const double base_qps_per_dollar =
      (1000.0 / m.LatencyMs(base, small_batch)) /
      catalog_[base].price_per_hour;
  bool some_aux_better = false;
  for (cloud::TypeId t : catalog_.AuxiliaryTypes()) {
    const double aux_qps_per_dollar =
        (1000.0 / m.LatencyMs(t, small_batch)) / catalog_[t].price_per_hour;
    if (aux_qps_per_dollar > base_qps_per_dollar) some_aux_better = true;
  }
  EXPECT_TRUE(some_aux_better);
}

TEST_P(ZooCalibration, BaseIsFastestAtEveryBatchSize) {
  const ModelSpec& spec = FindModel(GetParam());
  const LatencyModel m = spec.Instantiate(catalog_);
  const cloud::TypeId base = catalog_.BaseType();
  for (int b : {1, 10, 100, 500, 1000}) {
    for (cloud::TypeId t : catalog_.AuxiliaryTypes()) {
      EXPECT_LT(m.LatencyMs(base, b), m.LatencyMs(t, b))
          << "batch " << b << " type " << catalog_[t].short_name;
    }
  }
}

TEST_P(ZooCalibration, InstantiatesOverMotivationPool) {
  const ModelSpec& spec = FindModel(GetParam());
  const cloud::Catalog pool3 = cloud::Catalog::MotivationPool();
  const LatencyModel m = spec.Instantiate(pool3);
  EXPECT_EQ(m.NumTypes(), 3u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooCalibration,
                         ::testing::Values("NCF", "RM2", "WND", "MT-WND",
                                           "DIEN"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(ModelSpecTest, InstantiateMissingTypeThrows) {
  cloud::Catalog odd;
  odd.Add({"exotic", "X9", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  EXPECT_THROW(FindModel("RM2").Instantiate(odd), std::out_of_range);
}

TEST(PredictionNoiseTest, ZeroSigmaIsIdentity) {
  PredictionNoise noise(0.0, Rng(1));
  EXPECT_DOUBLE_EQ(noise.Apply(123.0), 123.0);
}

TEST(PredictionNoiseTest, NoisyButUnbiasedAndNonNegative) {
  PredictionNoise noise(0.05, Rng(2));
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = noise.Apply(100.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 100.0, 0.5);
}

}  // namespace
}  // namespace kairos::latency
