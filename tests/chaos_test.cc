// Chaos subsystem coverage (DESIGN.md Sec. 11): the ChaosRegistry
// contract, seeded fault-timeline determinism, notice-window semantics,
// and the two acceptance properties of the fleet wiring — a zero-chaos
// run is bit-identical to a run without the chaos plane, and a chaos run
// is bit-identical for every serve_threads value.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/injector.h"
#include "chaos/injectors.h"
#include "core/fleet.h"
#include "telemetry/telemetry.h"

namespace kairos::chaos {
namespace {

ChaosSchedule Schedule(double duration_s, std::size_t num_models,
                       std::uint64_t seed = 42) {
  ChaosSchedule schedule;
  schedule.duration_s = duration_s;
  schedule.window_s = duration_s / 4.0;
  schedule.seed = seed;
  schedule.num_models = num_models;
  return schedule;
}

TEST(ChaosRegistryTest, ListsBuiltInInjectors) {
  const std::vector<std::string> names = ChaosRegistry::Global().ListNames();
  for (const char* expected :
       {"COMPOSITE", "DOMAIN_OUTAGE", "INSTANCE_DEATH", "NET_DEGRADE",
        "SPOT_PREEMPTION"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << expected << " not registered";
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  // Lookup is case-insensitive, like every other registry in the repo.
  EXPECT_TRUE(ChaosRegistry::Global().Contains("spot_preemption"));
  const auto info = ChaosRegistry::Global().Info("net_degrade");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->name, "NET_DEGRADE");
  EXPECT_TRUE(info->knobs.count("loss_prob"));
}

TEST(ChaosRegistryTest, UnknownNameIsNotFoundListingAlternatives) {
  const auto built = ChaosRegistry::Global().Build("VOLCANO");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kNotFound);
  EXPECT_NE(built.status().message().find("SPOT_PREEMPTION"),
            std::string::npos);
}

TEST(ChaosRegistryTest, UndeclaredKnobIsRejected) {
  const auto built =
      ChaosRegistry::Global().Build("INSTANCE_DEATH", {{"bogus", 1.0}});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(built.status().message().find("bogus"), std::string::npos);
}

TEST(ChaosRegistryTest, OutOfRangeKnobIsRejected) {
  const auto built =
      ChaosRegistry::Global().Build("SPOT_PREEMPTION", {{"discount", 1.5}});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChaosRegistryTest, CompositeRequiresAtLeastOneChild) {
  const auto none = ChaosRegistry::Global().Build(
      "COMPOSITE", {{"spot", 0.0}, {"death", 0.0}, {"net", 0.0}});
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);

  auto storm = ChaosRegistry::Global().Build(
      "COMPOSITE", {{"spot", 1.0}, {"death", 1.0}, {"net", 1.0}});
  ASSERT_TRUE(storm.ok()) << storm.status().ToString();
  ASSERT_TRUE((*storm)->Arm(Schedule(60.0, 2)).ok());
  // Spot + death timelines plus the net window bounds, merged.
  EXPECT_GE((*storm)->FaultTimes().size(), 1u);
  // The composite quotes the spot child's market for every model.
  ASSERT_NE((*storm)->Market(0), nullptr);
  EXPECT_DOUBLE_EQ((*storm)->Market(0)->discount, 0.35);
}

TEST(SpotPreemptionTest, SameSeedReplaysTheSameTimeline) {
  const KnobMap knobs = {{"rate_per_hour", 720.0}, {"seed", 7.0}};
  auto a = ChaosRegistry::Global().Build("SPOT_PREEMPTION", knobs);
  auto b = ChaosRegistry::Global().Build("SPOT_PREEMPTION", knobs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Arm(Schedule(120.0, 3)).ok());
  ASSERT_TRUE((*b)->Arm(Schedule(120.0, 3)).ok());
  const std::vector<Time> first = (*a)->FaultTimes();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, (*b)->FaultTimes());
  // Arm() fully resets per-run state: re-arming the same injector on the
  // same schedule replays the identical timeline.
  ASSERT_TRUE((*a)->Arm(Schedule(120.0, 3)).ok());
  EXPECT_EQ(first, (*a)->FaultTimes());
  // A different run seed (knob seed 0 = derive from the schedule) moves
  // the faults.
  auto c = ChaosRegistry::Global().Build("SPOT_PREEMPTION",
                                         {{"rate_per_hour", 720.0}});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Arm(Schedule(120.0, 3, 1)).ok());
  const std::vector<Time> seed1 = (*c)->FaultTimes();
  ASSERT_TRUE((*c)->Arm(Schedule(120.0, 3, 2)).ok());
  EXPECT_NE(seed1, (*c)->FaultTimes());
}

TEST(SpotPreemptionTest, RateZeroArmsAsANoOp) {
  auto injector = ChaosRegistry::Global().Build("SPOT_PREEMPTION",
                                                {{"rate_per_hour", 0.0}});
  ASSERT_TRUE(injector.ok()) << injector.status().ToString();
  ASSERT_TRUE((*injector)->Arm(Schedule(60.0, 3)).ok());
  EXPECT_TRUE((*injector)->FaultTimes().empty());
}

TEST(SpotPreemptionTest, InterArrivalGapsMatchThePoissonRate) {
  // One model, 360 reclamations/hr = one every 10s on average; a 20000s
  // horizon gives ~2000 samples, plenty for a 10% tolerance.
  auto injector = ChaosRegistry::Global().Build(
      "SPOT_PREEMPTION", {{"rate_per_hour", 360.0}, {"model", 0.0}});
  ASSERT_TRUE(injector.ok());
  ASSERT_TRUE((*injector)->Arm(Schedule(20000.0, 1)).ok());
  const std::vector<Time> times = (*injector)->FaultTimes();
  ASSERT_GT(times.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
  double sum = times.front();
  for (std::size_t i = 1; i < times.size(); ++i) {
    sum += times[i] - times[i - 1];
  }
  const double mean_gap = sum / static_cast<double>(times.size());
  EXPECT_NEAR(mean_gap, 10.0, 1.0);
}

TEST(SpotPreemptionTest, TargetModelMustBeInRange) {
  auto injector =
      ChaosRegistry::Global().Build("SPOT_PREEMPTION", {{"model", 5.0}});
  ASSERT_TRUE(injector.ok());
  const Status armed = (*injector)->Arm(Schedule(60.0, 3));
  EXPECT_EQ(armed.code(), StatusCode::kInvalidArgument);
}

TEST(SpotPreemptionTest, CorrelationKnobIsValidated) {
  for (const double bad : {-0.1, 1.5}) {
    const auto built = ChaosRegistry::Global().Build("SPOT_PREEMPTION",
                                                     {{"correlation", bad}});
    ASSERT_FALSE(built.ok());
    EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(built.status().message().find("correlation"),
              std::string::npos);
  }
  const auto full = ChaosRegistry::Global().Build("SPOT_PREEMPTION",
                                                  {{"correlation", 1.0}});
  EXPECT_TRUE(full.ok()) << full.status().ToString();
}

TEST(SpotPreemptionTest, CurveKnobsAreValidated) {
  // An amplitude needs a period, and the envelope must stay in (0, 1].
  const auto no_period = ChaosRegistry::Global().Build(
      "SPOT_PREEMPTION", {{"curve_amplitude", 0.1}});
  ASSERT_FALSE(no_period.ok());
  EXPECT_EQ(no_period.status().code(), StatusCode::kInvalidArgument);
  const auto negative_envelope = ChaosRegistry::Global().Build(
      "SPOT_PREEMPTION",
      {{"curve_amplitude", 0.5}, {"curve_period_s", 60.0}});
  ASSERT_FALSE(negative_envelope.ok());
  const auto ok = ChaosRegistry::Global().Build(
      "SPOT_PREEMPTION",
      {{"curve_amplitude", 0.1}, {"curve_period_s", 60.0}});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_TRUE((*ok)->Arm(Schedule(60.0, 1)).ok());
  ASSERT_NE((*ok)->Market(0), nullptr);
  EXPECT_FALSE((*ok)->Market(0)->FlatCurve());
}

TEST(DomainOutageTest, SameSeedReplaysTheSameTimeline) {
  const KnobMap knobs = {{"rate_per_hour", 720.0}, {"seed", 7.0}};
  auto a = ChaosRegistry::Global().Build("DOMAIN_OUTAGE", knobs);
  auto b = ChaosRegistry::Global().Build("DOMAIN_OUTAGE", knobs);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*a)->Arm(Schedule(120.0, 3)).ok());
  ASSERT_TRUE((*b)->Arm(Schedule(120.0, 3)).ok());
  const std::vector<Time> first = (*a)->FaultTimes();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, (*b)->FaultTimes());
  // Re-arming replays; a different run seed moves the outages.
  ASSERT_TRUE((*a)->Arm(Schedule(120.0, 3)).ok());
  EXPECT_EQ(first, (*a)->FaultTimes());
  auto c = ChaosRegistry::Global().Build("DOMAIN_OUTAGE",
                                         {{"rate_per_hour", 720.0}});
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Arm(Schedule(120.0, 3, 1)).ok());
  const std::vector<Time> seed1 = (*c)->FaultTimes();
  ASSERT_TRUE((*c)->Arm(Schedule(120.0, 3, 2)).ok());
  EXPECT_NE(seed1, (*c)->FaultTimes());
  // An outage plane quotes no market: it models infrastructure failure,
  // not spot economics.
  EXPECT_EQ((*a)->Market(0), nullptr);
}

TEST(DomainOutageTest, KnobsAreValidated) {
  const auto negative = ChaosRegistry::Global().Build(
      "DOMAIN_OUTAGE", {{"rate_per_hour", -1.0}});
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);

  auto zero = ChaosRegistry::Global().Build("DOMAIN_OUTAGE",
                                            {{"rate_per_hour", 0.0}});
  ASSERT_TRUE(zero.ok()) << zero.status().ToString();
  ASSERT_TRUE((*zero)->Arm(Schedule(60.0, 3)).ok());
  EXPECT_TRUE((*zero)->FaultTimes().empty());

  auto out_of_range =
      ChaosRegistry::Global().Build("DOMAIN_OUTAGE", {{"model", 5.0}});
  ASSERT_TRUE(out_of_range.ok());
  EXPECT_EQ((*out_of_range)->Arm(Schedule(60.0, 3)).code(),
            StatusCode::kInvalidArgument);
}

TEST(ScriptedChaosTest, RejectsUnschedulableScripts) {
  // kPreemption is the *consequence* of a notice, never a script step.
  auto preemption = MakeScriptedChaos(
      {ScriptedFault{1.0, ChaosEventKind::kPreemption, 0}});
  EXPECT_EQ(preemption->Arm(Schedule(10.0, 1)).code(),
            StatusCode::kInvalidArgument);
  auto negative = MakeScriptedChaos(
      {ScriptedFault{-1.0, ChaosEventKind::kInstanceDeath, 0}});
  EXPECT_EQ(negative->Arm(Schedule(10.0, 1)).code(),
            StatusCode::kInvalidArgument);
  auto out_of_range = MakeScriptedChaos(
      {ScriptedFault{1.0, ChaosEventKind::kInstanceDeath, 7}});
  EXPECT_EQ(out_of_range->Arm(Schedule(10.0, 1)).code(),
            StatusCode::kInvalidArgument);
}

// --- Fleet wiring -----------------------------------------------------

/// The fig12/fig17 fleet: RM2, WND, double-traffic NCF under one $8/hr
/// MARGINAL envelope (the same helper as tests/fleet_serve_test.cc).
core::Fleet MakeFleet() {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto fleet = core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

core::FleetServeOptions ShortServe() {
  core::FleetServeOptions options;
  options.duration_s = 10.0;
  options.base_rate_qps = 15.0;
  options.window_s = 2.5;
  return options;
}

/// Field-by-field equality of everything the serving loop computes —
/// windows, totals, logs, chaos counters, billed spend. Bitwise: any
/// thread-count or chaos-plane leak shows up as an exact mismatch.
void ExpectSameRun(const core::FleetServeResult& a,
                   const core::FleetServeResult& b) {
  ASSERT_EQ(a.models.size(), b.models.size());
  EXPECT_EQ(a.total_qps, b.total_qps);
  EXPECT_EQ(a.total_weighted_qps, b.total_weighted_qps);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.respreads, b.respreads);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.instances_lost, b.instances_lost);
  EXPECT_EQ(a.preemption_notices, b.preemption_notices);
  EXPECT_EQ(a.ondemand_cost_usd, b.ondemand_cost_usd);
  EXPECT_EQ(a.effective_cost_usd, b.effective_cost_usd);
  ASSERT_EQ(a.control_log.size(), b.control_log.size());
  for (std::size_t e = 0; e < a.control_log.size(); ++e) {
    EXPECT_EQ(a.control_log[e].time, b.control_log[e].time);
    EXPECT_EQ(a.control_log[e].kind, b.control_log[e].kind);
    EXPECT_EQ(a.control_log[e].reason, b.control_log[e].reason);
  }
  ASSERT_EQ(a.chaos_log.size(), b.chaos_log.size());
  for (std::size_t e = 0; e < a.chaos_log.size(); ++e) {
    EXPECT_EQ(a.chaos_log[e].time, b.chaos_log[e].time);
    EXPECT_EQ(a.chaos_log[e].kind, b.chaos_log[e].kind);
    EXPECT_EQ(a.chaos_log[e].model, b.chaos_log[e].model);
    EXPECT_EQ(a.chaos_log[e].detail, b.chaos_log[e].detail);
  }
  for (std::size_t j = 0; j < a.models.size(); ++j) {
    const core::FleetModelServe& ma = a.models[j];
    const core::FleetModelServe& mb = b.models[j];
    EXPECT_EQ(ma.totals.offered, mb.totals.offered);
    EXPECT_EQ(ma.totals.served, mb.totals.served);
    EXPECT_EQ(ma.totals.p99_ms, mb.totals.p99_ms);
    EXPECT_EQ(ma.totals.mean_ms, mb.totals.mean_ms);
    EXPECT_EQ(ma.instances_lost, mb.instances_lost);
    EXPECT_EQ(ma.preemption_notices, mb.preemption_notices);
    EXPECT_EQ(ma.ondemand_cost_usd, mb.ondemand_cost_usd);
    EXPECT_EQ(ma.effective_cost_usd, mb.effective_cost_usd);
    ASSERT_EQ(ma.windows.size(), mb.windows.size());
    for (std::size_t w = 0; w < ma.windows.size(); ++w) {
      EXPECT_EQ(ma.windows[w].offered, mb.windows[w].offered);
      EXPECT_EQ(ma.windows[w].served, mb.windows[w].served);
      EXPECT_EQ(ma.windows[w].p99_ms, mb.windows[w].p99_ms);
      EXPECT_EQ(ma.windows[w].mean_ms, mb.windows[w].mean_ms);
    }
  }
}

// The first acceptance property: arming an injector whose timeline is
// empty must not perturb the run in any way — same windows, totals,
// logs and on-demand spend as a run with no chaos plane at all, for
// every serve_threads value.
TEST(FleetChaosTest, RateZeroChaosIsBitIdenticalToNoChaos) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions clean = ShortServe();
  core::FleetServeOptions armed = ShortServe();
  armed.chaos = "SPOT_PREEMPTION";
  armed.chaos_knobs = {{"rate_per_hour", 0.0}, {"discount", 1.0}};
  for (const std::size_t threads : {1u, 4u, 8u}) {
    clean.serve_threads = threads;
    armed.serve_threads = threads;
    const auto a = fleet.ServeAll(*plan, clean);
    const auto b = fleet.ServeAll(*plan, armed);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectSameRun(*a, *b);
    EXPECT_TRUE(b->chaos_log.empty());
    EXPECT_EQ(b->instances_lost, 0u);
    // Without a discount the spot market prices on demand.
    EXPECT_EQ(a->effective_cost_usd, a->ondemand_cost_usd);
    EXPECT_EQ(b->effective_cost_usd, b->ondemand_cost_usd);
  }
}

// The second acceptance property: a *live* storm is bit-identical for
// every serve_threads value — faults land at barriers on the driving
// thread, so thread count can never move a kill.
TEST(FleetChaosTest, ChaosRunsAreBitIdenticalAcrossThreads) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions serve = ShortServe();
  serve.chaos = "SPOT_PREEMPTION";
  serve.chaos_knobs = {{"rate_per_hour", 1440.0}, {"notice_s", 0.5}};

  serve.serve_threads = 1;
  const auto serial = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  // The storm is real: notices were issued, kills landed, and the spot
  // discount shows up in the effective spend.
  EXPECT_GT(serial->preemption_notices, 0u);
  EXPECT_GT(serial->instances_lost, 0u);
  EXPECT_FALSE(serial->chaos_log.empty());
  EXPECT_LT(serial->effective_cost_usd, serial->ondemand_cost_usd);
  bool saw_notice = false, saw_kill = false;
  for (const core::FleetChaosEvent& event : serial->chaos_log) {
    saw_notice |= event.kind == ChaosEventKind::kPreemptionNotice;
    saw_kill |= event.kind == ChaosEventKind::kPreemption;
  }
  EXPECT_TRUE(saw_notice);
  EXPECT_TRUE(saw_kill);

  for (const std::size_t threads : {4u, 8u}) {
    serve.serve_threads = threads;
    const auto threaded = fleet.ServeAll(*plan, serve);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ExpectSameRun(*serial, *threaded);
  }
}

// Notice-window semantics at the fleet level: a notice whose deadline
// lies beyond the run lets the victim drain — the notice is counted but
// no instance is lost. An abrupt death on the same schedule is. The
// target is the planned model with the most instances (a single-instance
// deployment spares its last assignable instance by design).
TEST(FleetChaosTest, GenerousNoticeLetsTheVictimDrain) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  std::size_t target = 0;
  for (std::size_t j = 1; j < plan->models.size(); ++j) {
    if (plan->models[j].outcome.config.TotalInstances() >
        plan->models[target].outcome.config.TotalInstances()) {
      target = j;
    }
  }
  ASSERT_GE(plan->models[target].outcome.config.TotalInstances(), 2);

  core::FleetServeOptions serve = ShortServe();
  serve.injector = MakeScriptedChaos({ScriptedFault{
      2.0, ChaosEventKind::kPreemptionNotice, target, 1, 30.0}});
  const auto noticed = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(noticed.ok()) << noticed.status().ToString();
  EXPECT_EQ(noticed->preemption_notices, 1u);
  EXPECT_EQ(noticed->models[target].preemption_notices, 1u);
  EXPECT_EQ(noticed->instances_lost, 0u);

  serve.injector = MakeScriptedChaos(
      {ScriptedFault{2.0, ChaosEventKind::kInstanceDeath, target}});
  const auto killed = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(killed.ok()) << killed.status().ToString();
  EXPECT_EQ(killed->instances_lost, 1u);
  EXPECT_EQ(killed->models[target].instances_lost, 1u);
  EXPECT_EQ(killed->preemption_notices, 0u);
  bool saw_death = false;
  for (const core::FleetChaosEvent& event : killed->chaos_log) {
    if (event.kind == ChaosEventKind::kInstanceDeath) {
      saw_death = true;
      EXPECT_EQ(event.model, plan->models[target].model);
      EXPECT_EQ(event.time, 2.0);
    }
  }
  EXPECT_TRUE(saw_death);
}

// NET_DEGRADE windows: a heavy fabric over exactly one metrics window
// raises that window's tail; before the degradation the run is
// bit-identical to a clean one (the fabric RNG is untouched until the
// fault lands), and after the restore the tail comes back down.
TEST(FleetChaosTest, NetDegradeRaisesTheTailThenRestores) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  // Light load: the fleet has headroom, so the degraded window's queue
  // drains before the final window and the tail visibly recovers.
  core::FleetServeOptions light = ShortServe();
  light.base_rate_qps = 8.0;
  const auto clean = fleet.ServeAll(*plan, light);
  ASSERT_TRUE(clean.ok());

  // 20ms one-way hops, no jitter, no loss: each execution inside the
  // window pays a deterministic +40ms.
  core::FleetServeOptions serve = light;
  serve.injector = MakeScriptedChaos(
      {ScriptedFault{2.5, ChaosEventKind::kNetDegrade, kAllModels, 1, 0.0,
                     rpc::NetworkModel(20000.0, 0.0, 0.0)},
       ScriptedFault{5.0, ChaosEventKind::kNetRestore, kAllModels}});
  const auto degraded = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();

  ASSERT_EQ(degraded->chaos_log.size(), 6u);  // 3 degrades + 3 restores
  EXPECT_EQ(degraded->chaos_log.front().kind, ChaosEventKind::kNetDegrade);
  EXPECT_EQ(degraded->chaos_log.back().kind, ChaosEventKind::kNetRestore);

  for (std::size_t j = 0; j < 3; ++j) {
    const auto& cw = clean->models[j].windows;
    const auto& dw = degraded->models[j].windows;
    ASSERT_EQ(dw.size(), cw.size());
    // Window 0 predates the fault: bit-identical to the clean run.
    EXPECT_EQ(dw[0].served, cw[0].served);
    EXPECT_EQ(dw[0].p99_ms, cw[0].p99_ms);
    // Window 1 is the degraded one: the tail carries the two hops.
    EXPECT_GT(dw[1].p99_ms, cw[1].p99_ms + 30.0);
    // The last window is clear of the degradation and its backlog.
    EXPECT_LT(dw[3].p99_ms, cw[3].p99_ms + 30.0);
  }
}

// The chaos-aware controller reacts to the storm: notices fire
// kRespread (replacements launch while the victim drains), accumulated
// losses escalate to kFailover.
TEST(FleetChaosTest, FailoverControllerRespreadsAndEscalates) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions serve = ShortServe();
  serve.launch_lag_s = 1.0;
  serve.controller = "FAILOVER";
  serve.controller_knobs = {{"storm_losses", 1.0}};
  serve.chaos = "SPOT_PREEMPTION";
  serve.chaos_knobs = {{"rate_per_hour", 1440.0}, {"notice_s", 0.5}};
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_GT(result->respreads, 0u);
  EXPECT_GT(result->failovers, 0u);
  bool saw_respread = false, saw_failover = false;
  for (const core::FleetControlEvent& event : result->control_log) {
    saw_respread |= event.kind == control::ControlActionKind::kRespread;
    saw_failover |= event.kind == control::ControlActionKind::kFailover;
  }
  EXPECT_TRUE(saw_respread);
  EXPECT_TRUE(saw_failover);

  // Without chaos the controller never fires: the run stays clean.
  core::FleetServeOptions quiet = ShortServe();
  quiet.controller = "FAILOVER";
  const auto idle = fleet.ServeAll(*plan, quiet);
  ASSERT_TRUE(idle.ok()) << idle.status().ToString();
  EXPECT_EQ(idle->respreads, 0u);
  EXPECT_EQ(idle->failovers, 0u);
  EXPECT_TRUE(idle->control_log.empty());
}

/// MakeFleet with every model spread over `domains` failure domains,
/// optionally N-1 sized (core re-planned at (d-1)/d of the share, padded
/// so one domain loss leaves the core intact).
core::Fleet MakeDomainFleet(std::size_t domains, bool n_minus_one = false) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  core::FleetModelOptions rm2;
  rm2.model = "RM2";
  core::FleetModelOptions wnd;
  wnd.model = "WND";
  core::FleetModelOptions ncf;
  ncf.model = "NCF";
  ncf.arrival_scale = 2.0;
  for (core::FleetModelOptions* m : {&rm2, &wnd, &ncf}) {
    m->failure_domains = domains;
    m->plan_n_minus_one = n_minus_one;
  }
  auto fleet = core::Fleet::Create(catalog, {rm2, wnd, ncf}, options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

// Failure domains are pure deployment metadata: a fleet spread over four
// domains with a rate-0 outage plane armed runs bit-identical to the
// domainless fleet with no chaos plane at all, at every thread count.
TEST(FleetChaosTest, RateZeroDomainChaosIsBitIdenticalToNoChaos) {
  const core::Fleet plain = MakeFleet();
  const core::Fleet domained = MakeDomainFleet(4);
  const auto plan = plain.PlanAll();
  const auto domain_plan = domained.PlanAll();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(domain_plan.ok());

  core::FleetServeOptions clean = ShortServe();
  core::FleetServeOptions armed = ShortServe();
  armed.chaos = "DOMAIN_OUTAGE";
  armed.chaos_knobs = {{"rate_per_hour", 0.0}};
  for (const std::size_t threads : {1u, 4u, 8u}) {
    clean.serve_threads = threads;
    armed.serve_threads = threads;
    const auto a = plain.ServeAll(*plan, clean);
    const auto b = domained.ServeAll(*domain_plan, armed);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ExpectSameRun(*a, *b);
    EXPECT_TRUE(b->chaos_log.empty());
    EXPECT_EQ(b->instances_lost, 0u);
  }
}

// A correlated storm reconciles exactly: every hard kill in the result
// counter has a matching ledger entry in the chaos log, the
// whole-domain outage events account for every one of them, and the
// telemetry fault counter equals the log size. Also bit-identical
// across thread counts, like every chaos run.
TEST(FleetChaosTest, DomainOutageKillsReconcileExactly) {
  const core::Fleet fleet = MakeDomainFleet(2);
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions serve = ShortServe();
  serve.chaos = "DOMAIN_OUTAGE";
  serve.chaos_knobs = {{"rate_per_hour", 720.0}};
  auto telemetry = telemetry::Telemetry::Create({"RM2", "WND", "NCF"});
  ASSERT_TRUE(telemetry.ok()) << telemetry.status().ToString();
  serve.telemetry = telemetry->get();
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::size_t outages = 0, outage_instances = 0, hard_kills = 0;
  for (const core::FleetChaosEvent& event : result->chaos_log) {
    if (event.kind == ChaosEventKind::kDomainOutage) ++outages;
    hard_kills += event.kind == ChaosEventKind::kInstanceDeath ||
                  event.kind == ChaosEventKind::kPreemption;
  }
  EXPECT_GT(outages, 0u);
  EXPECT_GT(result->instances_lost, 0u);
  // Every lost instance surfaced through the engine fault ledger...
  EXPECT_EQ(hard_kills, result->instances_lost);
  // ...and the telemetry counter saw every chaos_log entry, no more.
  ASSERT_FALSE(result->telemetry_samples.empty());
  double counted = -1.0;
  for (const telemetry::MetricValue& metric :
       result->telemetry_samples.back().metrics.metrics) {
    if (metric.name == "kairos_chaos_faults_total") counted = metric.value;
  }
  EXPECT_EQ(counted, static_cast<double>(result->chaos_log.size()));
  // The abrupt outage detail carries the per-fault instance count; each
  // of those instances is one ledger kill.
  for (const core::FleetChaosEvent& event : result->chaos_log) {
    if (event.kind != ChaosEventKind::kDomainOutage) continue;
    const std::size_t lost = static_cast<std::size_t>(
        std::stoul(event.detail.substr(event.detail.find('(') + 1)));
    outage_instances += lost;
  }
  EXPECT_EQ(outage_instances, result->instances_lost);

  core::FleetServeOptions threaded_serve = serve;
  threaded_serve.telemetry = nullptr;
  core::FleetServeOptions serial_serve = threaded_serve;
  serial_serve.serve_threads = 1;
  const auto serial = fleet.ServeAll(*plan, serial_serve);
  ASSERT_TRUE(serial.ok());
  for (const std::size_t threads : {4u, 8u}) {
    threaded_serve.serve_threads = threads;
    const auto threaded = fleet.ServeAll(*plan, threaded_serve);
    ASSERT_TRUE(threaded.ok());
    ExpectSameRun(*serial, *threaded);
  }
}

// Recovery dedup: one domain outage costs a model several instances in a
// single fault, but the FAILOVER controller reacts with at most one
// recovery per model per barrier — the notice barrier respreads once,
// the hard-kill barrier once more, regardless of how many instances the
// domain held.
TEST(FleetChaosTest, DomainOutageRecoveryIsDeduplicatedPerBarrier) {
  const core::Fleet fleet = MakeDomainFleet(2);
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  std::size_t target = 0;
  for (std::size_t j = 1; j < plan->models.size(); ++j) {
    if (plan->models[j].outcome.config.TotalInstances() >
        plan->models[target].outcome.config.TotalInstances()) {
      target = j;
    }
  }
  ASSERT_GE(plan->models[target].outcome.config.TotalInstances(), 3);

  core::FleetServeOptions serve = ShortServe();
  serve.launch_lag_s = 1.0;
  serve.controller = "FAILOVER";
  serve.controller_knobs = {{"storm_losses", 100.0}};
  ScriptedFault outage;
  outage.time_s = 2.0;
  outage.kind = ChaosEventKind::kDomainOutage;
  outage.model = target;
  outage.notice_s = 0.5;
  outage.domain = 0;
  serve.injector = MakeScriptedChaos({outage});
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Domain 0 of a >= 3 instance deployment holds >= 2 instances: the
  // outage issued several notices and later landed several kills...
  EXPECT_GE(result->preemption_notices, 2u);
  EXPECT_GE(result->instances_lost, 2u);
  // ...but the controller respread once per affected barrier (the
  // notice barrier at t=2 and the hard-kill barrier at t=2.5), not once
  // per instance.
  EXPECT_EQ(result->respreads, 2u);
  EXPECT_EQ(result->failovers, 0u);
  std::size_t at_notice_barrier = 0;
  for (const core::FleetControlEvent& event : result->control_log) {
    if (event.kind == control::ControlActionKind::kRespread &&
        event.time == 2.0) {
      ++at_notice_barrier;
    }
  }
  EXPECT_EQ(at_notice_barrier, 1u);
}

// The borrowing FAILOVER: a storm escalation borrows headroom from the
// unaffected models, the quiet tail repays it, and the ledger conserves
// exactly — borrowed == repaid bit for bit, with the final shares back
// at the plan's split.
TEST(FleetChaosTest, BorrowedBudgetIsRepaidExactly) {
  const core::Fleet fleet = MakeDomainFleet(2);
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  std::size_t target = 0;
  for (std::size_t j = 1; j < plan->models.size(); ++j) {
    if (plan->models[j].outcome.config.TotalInstances() >
        plan->models[target].outcome.config.TotalInstances()) {
      target = j;
    }
  }

  core::FleetServeOptions serve = ShortServe();
  serve.launch_lag_s = 1.0;
  serve.controller = "FAILOVER";
  serve.controller_knobs = {{"storm_losses", 1.0},
                            {"borrow_fraction", 0.3},
                            {"recovery_windows", 1.0}};
  ScriptedFault outage;
  outage.time_s = 2.0;
  outage.kind = ChaosEventKind::kDomainOutage;
  outage.model = target;
  outage.domain = 0;
  serve.injector = MakeScriptedChaos({outage});
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The abrupt loss escalated straight to a borrowing failover, and the
  // quiet tail repaid the loan before the horizon.
  EXPECT_GE(result->failovers, 1u);
  EXPECT_EQ(result->borrows, 1u);
  EXPECT_EQ(result->paybacks, 1u);
  EXPECT_GT(result->budget_borrowed_per_hour, 0.0);
  EXPECT_EQ(result->budget_borrowed_per_hour,
            result->budget_repaid_per_hour);
  std::size_t borrow_events = 0;
  for (const core::FleetControlEvent& event : result->control_log) {
    borrow_events +=
        event.kind == control::ControlActionKind::kBorrowBudget;
  }
  EXPECT_EQ(borrow_events, 2u);  // the borrow and the repayment
  // Shares end where the plan started: every loan was unwound.
  ASSERT_EQ(result->final_shares_per_hour.size(), plan->models.size());
  for (std::size_t j = 0; j < plan->models.size(); ++j) {
    EXPECT_NEAR(result->final_shares_per_hour[j],
                plan->models[j].budget_per_hour, 1e-9);
  }

  // The all-default controller never borrows under the same storm.
  core::FleetServeOptions plain = serve;
  plain.controller_knobs = {};
  serve.injector = nullptr;
  plain.injector = MakeScriptedChaos({outage});
  const auto unborrowed = fleet.ServeAll(*plan, plain);
  ASSERT_TRUE(unborrowed.ok()) << unborrowed.status().ToString();
  EXPECT_EQ(unborrowed->borrows, 0u);
  EXPECT_EQ(unborrowed->budget_borrowed_per_hour, 0.0);
}

// Notice-flap hysteresis: under a notice-heavy storm that never lands a
// hard kill inside the run, a cooldown suppresses the per-notice
// respread churn the PR 6 controller exhibits.
TEST(FleetChaosTest, CooldownDampsNoticeFlapping) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions flappy = ShortServe();
  flappy.launch_lag_s = 1.0;
  flappy.controller = "FAILOVER";
  flappy.chaos = "SPOT_PREEMPTION";
  // 30s notices: every victim drains past the 10s horizon, so the storm
  // is pure notice flapping, never a loss.
  flappy.chaos_knobs = {{"rate_per_hour", 1440.0}, {"notice_s", 30.0}};
  const auto churning = fleet.ServeAll(*plan, flappy);
  ASSERT_TRUE(churning.ok()) << churning.status().ToString();
  EXPECT_EQ(churning->instances_lost, 0u);
  EXPECT_GT(churning->respreads, 3u);

  core::FleetServeOptions damped = flappy;
  damped.controller_knobs = {{"cooldown_windows", 8.0}};
  const auto calm = fleet.ServeAll(*plan, damped);
  ASSERT_TRUE(calm.ok()) << calm.status().ToString();
  EXPECT_GT(calm->respreads, 0u);
  EXPECT_LT(calm->respreads, churning->respreads);
}

TEST(FleetChaosTest, InvalidChaosOptionsAreRejected) {
  const core::Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions both = ShortServe();
  both.chaos = "SPOT_PREEMPTION";
  both.injector = MakeScriptedChaos({});
  EXPECT_EQ(fleet.ServeAll(*plan, both).status().code(),
            StatusCode::kInvalidArgument);

  core::FleetServeOptions orphan_knobs = ShortServe();
  orphan_knobs.chaos_knobs = {{"rate_per_hour", 10.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, orphan_knobs).status().code(),
            StatusCode::kInvalidArgument);

  core::FleetServeOptions unknown = ShortServe();
  unknown.chaos = "VOLCANO";
  EXPECT_EQ(fleet.ServeAll(*plan, unknown).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace kairos::chaos
