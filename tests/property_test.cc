// Cross-module property tests: invariants that must hold for *any* policy,
// mix, and configuration — the kind of guarantees a downstream user relies
// on when plugging in their own distribution mechanism.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.h"
#include "core/kairos.h"
#include "oracle/oracle.h"
#include "policy/policy.h"
#include "serving/system.h"
#include "ub/upper_bound.h"
#include "workload/mixtures.h"

namespace kairos {
namespace {

using cloud::Catalog;
using cloud::Config;
using latency::LatencyModel;

Catalog TinyCatalog() {
  Catalog c;
  c.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"aux", "A", cloud::InstanceClass::kGeneralPurposeCpu, 0.25, false});
  return c;
}

LatencyModel TinyModel() { return LatencyModel({{10.0, 0.1}, {20.0, 0.4}}); }

// A adversarial fuzz policy: proposes a random valid assignment subset each
// round (sometimes nothing, sometimes everything).
class RandomPolicy final : public policy::Policy {
 public:
  explicit RandomPolicy(std::uint64_t seed, bool early)
      : rng_(seed), early_(early) {}
  std::string Name() const override { return "FUZZ"; }
  bool EarlyBinding() const override { return early_; }

  using policy::Policy::Distribute;
  void Distribute(const policy::RoundContext& ctx,
                  std::vector<policy::Assignment>& out) override {
    out.clear();
    if (ctx.instances.empty()) return;
    std::vector<bool> instance_used(ctx.instances.size(), false);
    for (std::size_t i = 0; i < ctx.waiting.size(); ++i) {
      if (rng_.Bernoulli(0.3)) continue;  // leave some queries waiting
      const auto j = static_cast<std::size_t>(rng_.UniformInt(
          0, static_cast<std::int64_t>(ctx.instances.size()) - 1));
      if (!early_ && instance_used[j]) continue;
      instance_used[j] = true;
      out.push_back(policy::Assignment{i, j});
    }
  }

 private:
  Rng rng_;
  bool early_;
};

class FuzzPolicyInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(FuzzPolicyInvariants, SystemStateStaysConsistent) {
  const auto [seed, early] = GetParam();
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  serving::SystemSpec spec;
  spec.catalog = &catalog;
  spec.config = Config({2, 3});
  spec.truth = &truth;
  spec.qos_ms = 100.0;

  serving::RunOptions run_options;
  run_options.abort_violation_fraction = 0.0;  // serve everything
  run_options.keep_records = true;
  serving::ServingSystem system(spec,
                                std::make_unique<RandomPolicy>(seed, early),
                                serving::PredictorOptions{}, run_options);

  Rng rng(seed ^ 0xF00D);
  const auto mix = workload::LogNormalBatches::Production();
  const auto trace = workload::Trace::Generate(
      workload::PoissonArrivals(60.0), mix, 400, rng);
  const serving::RunResult run = system.Run(trace);

  // Everything offered is eventually served exactly once (fuzz policy may
  // delay but arrivals keep triggering rounds; random assignment always
  // eventually dispatches with probability 1 over this horizon).
  EXPECT_EQ(run.offered, trace.size());
  EXPECT_EQ(run.served, run.latencies_ms.size());
  EXPECT_EQ(run.records.size(), run.served);

  std::size_t per_type_total = 0;
  for (std::size_t s : run.per_type_served) per_type_total += s;
  EXPECT_EQ(per_type_total, run.served);

  std::set<workload::QueryId> ids;
  for (const serving::ServedRecord& rec : run.records) {
    EXPECT_TRUE(ids.insert(rec.id).second) << "query served twice";
    EXPECT_GE(rec.start, rec.arrival);
    // Execution time equals the truth surface exactly.
    EXPECT_NEAR(rec.finish - rec.start, truth.Latency(rec.type, rec.batch),
                1e-12);
    EXPECT_LE(rec.finish, run.makespan + 1e-12);
  }

  // Busy time per type never exceeds nodes * makespan.
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    EXPECT_LE(run.per_type_busy[t],
              spec.config.Count(t) * run.makespan + 1e-9);
  }

  // Violation accounting matches the recorded latencies.
  std::size_t violations = 0;
  for (double ms : run.latencies_ms) {
    if (ms > spec.qos_ms) ++violations;
  }
  EXPECT_EQ(violations, run.violations);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBinding, FuzzPolicyInvariants,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_early" : "_late");
    });

// The upper bound must dominate measured throughput for *any* batch mix,
// not just the paper's two — exercised with the bimodal mixture and a
// heavy-tailed bounded Pareto.
class UbDominatesExoticMixes : public ::testing::TestWithParam<int> {};

TEST_P(UbDominatesExoticMixes, BoundHolds) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const double qos_ms = 150.0;

  std::shared_ptr<const workload::BatchDistribution> mix;
  switch (GetParam()) {
    case 0:
      mix = std::make_shared<workload::MixtureBatches>(
          workload::MixtureBatches::BimodalDefault());
      break;
    case 1:
      mix = std::make_shared<workload::ParetoBatches>(1.1);
      break;
    default:
      mix = std::make_shared<workload::ParetoBatches>(0.6);
      break;
  }

  const auto monitor = core::MonitorFromMix(*mix, 8000, 21);
  const ub::UpperBoundEstimator est(catalog, truth, qos_ms);
  for (const Config& config : {Config({1, 2}), Config({2, 4})}) {
    const double bound = est.QpsMax(config, monitor);
    serving::EvalOptions opt;
    opt.queries = 400;
    opt.rate_guess = std::max(1.0, 0.5 * bound);
    const auto achieved = serving::EvaluateConfig(
        catalog, config, truth, qos_ms, core::MakePolicyFactory("KAIROS"),
        *mix, opt);
    EXPECT_LE(achieved.qps, bound * 1.05)
        << mix->Name() << " " << config.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Mixes, UbDominatesExoticMixes,
                         ::testing::Values(0, 1, 2));

// Oracle throughput is monotone along the sub-configuration order — the
// foundation of Kairos+'s pruning rule, checked on random config pairs.
TEST(OracleMonotonicityProperty, SubConfigNeverBeatsSuperConfig) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  Rng rng(31337);
  for (int trial = 0; trial < 25; ++trial) {
    const int u = static_cast<int>(rng.UniformInt(1, 3));
    const int v = static_cast<int>(rng.UniformInt(0, 5));
    const int du = static_cast<int>(rng.UniformInt(0, 2));
    const int dv = static_cast<int>(rng.UniformInt(0, 3));
    if (du == 0 && dv == 0) continue;
    const double sub = oracle::OracleThroughput(
        catalog, Config({u, v}), truth, 150.0, mix, 1200, 7);
    const double super = oracle::OracleThroughput(
        catalog, Config({u + du, v + dv}), truth, 150.0, mix, 1200, 7);
    EXPECT_GE(super, sub * 0.999)
        << "(" << u << "," << v << ") vs +(" << du << "," << dv << ")";
  }
}

}  // namespace
}  // namespace kairos
