// Control-plane coverage (DESIGN.md Sec. 10): the ControllerRegistry
// contract, WindowedMetrics percentile fields on sparse windows, the
// determinism contract (identical ControlAction sequences for every
// serve_threads), and the closed-loop behavior of the QOS / BACKLOG /
// DRIFT / SHED controllers on a live fleet.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "control/controllers.h"
#include "core/fleet.h"
#include "policy/kairos_policy.h"

namespace kairos::control {
namespace {

// --- Registry contract. ---

TEST(ControllerRegistryTest, ListsTheBuiltInControllers) {
  const std::vector<std::string> names =
      ControllerRegistry::Global().ListNames();
  const std::vector<std::string> expected = {"BACKLOG", "COMPOSITE", "DRIFT",
                                             "PERIODIC", "QOS", "SHED"};
  for (const std::string& name : expected) {
    EXPECT_TRUE(std::count(names.begin(), names.end(), name) == 1)
        << name << " missing from the registry";
  }
  EXPECT_TRUE(ControllerRegistry::Global().Contains("qos"));  // case folds
}

TEST(ControllerRegistryTest, UnknownNameListsAlternatives) {
  auto built = ControllerRegistry::Global().Build("PID");
  EXPECT_EQ(built.status().code(), StatusCode::kNotFound);
  EXPECT_NE(built.status().message().find("PERIODIC"), std::string::npos);
  EXPECT_NE(built.status().message().find("QOS"), std::string::npos);
}

TEST(ControllerRegistryTest, KnobsAreDeclaredAndValidated) {
  const auto info = ControllerRegistry::Global().Info("QOS");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->knobs.count("p99_scale"), 1u);

  auto unknown_knob = ControllerRegistry::Global().Build("QOS", {{"gain", 2.0}});
  EXPECT_EQ(unknown_knob.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(unknown_knob.status().message().find("p99_scale"),
            std::string::npos);

  EXPECT_EQ(ControllerRegistry::Global()
                .Build("PERIODIC", {{"period_s", -1.0}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ControllerRegistry::Global()
                .Build("COMPOSITE",
                       {{"qos", 0.0}, {"backlog", 0.0}, {"drift", 0.0}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  auto tuned = ControllerRegistry::Global().Build(
      "backlog", {{"backlog_s", 0.5}, {"min_backlog", 4.0}});
  ASSERT_TRUE(tuned.ok()) << tuned.status().ToString();
  EXPECT_EQ((*tuned)->Name(), "BACKLOG");

  const auto shed_info = ControllerRegistry::Global().Info("SHED");
  ASSERT_TRUE(shed_info.ok());
  EXPECT_EQ(shed_info->knobs.count("deadline_scale"), 1u);
  EXPECT_EQ(ControllerRegistry::Global()
                .Build("SHED", {{"p99_scale", -1.0}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // FAILOVER v2: the borrowing/hysteresis knobs are declared, bounded,
  // and forwarded by COMPOSITE. A full borrow_fraction of 1 would leave
  // the borrower with nothing of its own to repay from; >= 1 rejected.
  const auto failover_info = ControllerRegistry::Global().Info("FAILOVER");
  ASSERT_TRUE(failover_info.ok());
  EXPECT_EQ(failover_info->knobs.count("borrow_fraction"), 1u);
  EXPECT_EQ(failover_info->knobs.count("cooldown_windows"), 1u);
  EXPECT_EQ(failover_info->knobs.count("recovery_windows"), 1u);
  for (const char* name : {"FAILOVER", "COMPOSITE"}) {
    EXPECT_EQ(ControllerRegistry::Global()
                  .Build(name, {{"borrow_fraction", 1.0}})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << name;
    EXPECT_EQ(ControllerRegistry::Global()
                  .Build(name, {{"borrow_fraction", -0.1}})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << name;
    EXPECT_EQ(ControllerRegistry::Global()
                  .Build(name, {{"cooldown_windows", -1.0}})
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << name;
  }
  EXPECT_EQ(ControllerRegistry::Global()
                .Build("FAILOVER", {{"recovery_windows", 0.0}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  auto tuned_failover = ControllerRegistry::Global().Build(
      "FAILOVER", {{"borrow_fraction", 0.4}, {"cooldown_windows", 4.0}});
  ASSERT_TRUE(tuned_failover.ok()) << tuned_failover.status().ToString();
  EXPECT_EQ((*tuned_failover)->Name(), "FAILOVER");
}

// --- WindowedMetrics on sparse windows. ---

serving::SystemSpec SparseSpec(const cloud::Catalog& catalog,
                               const latency::LatencyModel& model) {
  serving::SystemSpec spec;
  spec.catalog = &catalog;
  spec.config = cloud::Config({1});
  spec.truth = &model;
  spec.qos_ms = 200.0;
  return spec;
}

TEST(SparseWindowTest, EmptyWindowReportsZeroPercentiles) {
  cloud::Catalog catalog;
  catalog.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  const latency::LatencyModel model({{10.0, 0.1}});
  serving::Engine engine(SparseSpec(catalog, model),
                         std::make_unique<policy::KairosPolicy>());

  // A window that saw no arrivals and no completions at all.
  engine.AdvanceTo(5.0);
  const serving::WindowedMetrics empty = engine.TakeWindow();
  EXPECT_EQ(empty.offered, 0u);
  EXPECT_EQ(empty.served, 0u);
  EXPECT_EQ(empty.violations, 0u);
  EXPECT_EQ(empty.p99_ms, 0.0);
  EXPECT_EQ(empty.mean_ms, 0.0);
  EXPECT_EQ(empty.mean_batch, 0.0);
  EXPECT_EQ(empty.qps, 0.0);
  EXPECT_EQ(empty.offered_qps, 0.0);
  EXPECT_EQ(engine.Backlog(), 0u);
}

TEST(SparseWindowTest, SingleCompletionWindowPinsPercentilesToIt) {
  cloud::Catalog catalog;
  catalog.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  const latency::LatencyModel model({{10.0, 0.1}});
  serving::Engine engine(SparseSpec(catalog, model),
                         std::make_unique<policy::KairosPolicy>());

  ASSERT_TRUE(engine.Submit(workload::Query{1, 40, 5.5}).ok());
  EXPECT_EQ(engine.Backlog(), 1u);
  engine.AdvanceTo(10.0);
  const serving::WindowedMetrics one = engine.TakeWindow();
  EXPECT_EQ(one.offered, 1u);
  EXPECT_EQ(one.served, 1u);
  // One completion: every percentile *is* that completion's latency
  // (10ms base + 0.1ms/item * 40 items, no queueing; the sec<->ms round
  // trip through the simulated clock costs a few ulps).
  EXPECT_NEAR(one.p99_ms, 14.0, 1e-9);
  EXPECT_DOUBLE_EQ(one.p99_ms, one.mean_ms);
  EXPECT_DOUBLE_EQ(one.mean_batch, 40.0);
  EXPECT_EQ(one.violations, 0u);
  EXPECT_EQ(engine.Backlog(), 0u);
  EXPECT_EQ(engine.Served(), 1u);
}

// --- Closed-loop fleet behavior. ---

/// The fig17 fleet: RM2 (the model that will spike), WND, and a
/// double-traffic NCF under one $8/hr MARGINAL budget.
core::Fleet SpikeFleet() {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto fleet = core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

/// The fig17 scenario: RM2's arrival rate jumps 6x at t=18s.
core::FleetServeOptions SpikeServe(const std::string& controller) {
  core::FleetServeOptions serve;
  serve.duration_s = 60.0;
  serve.base_rate_qps = 10.0;
  serve.window_s = 3.0;
  serve.launch_lag_s = 1.0;
  serve.shifts = {core::FleetLoadShift{18.0, "RM2", 6.0}};
  serve.controller = controller;
  if (controller == "PERIODIC") serve.realloc_period_s = 40.0;
  return serve;
}

std::size_t ViolationWindows(const core::Fleet& fleet,
                             const core::FleetServeResult& result) {
  std::size_t violations = 0;
  for (const core::FleetModelServe& model : result.models) {
    const auto session = fleet.Session(model.model);
    EXPECT_TRUE(session.ok());
    for (const serving::WindowedMetrics& window : model.windows) {
      if (window.served > 0 && window.p99_ms > (*session)->qos_ms()) {
        ++violations;
      }
    }
  }
  return violations;
}

TEST(FleetControlTest, ControlActionSequenceIsIdenticalAcrossServeThreads) {
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  for (const std::string controller : {"QOS", "BACKLOG", "COMPOSITE", "SHED"}) {
    core::FleetServeOptions serve = SpikeServe(controller);
    serve.serve_threads = 1;
    const auto serial = fleet.ServeAll(*plan, serve);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_FALSE(serial->control_log.empty())
        << controller << " never fired on the spike scenario";
    for (const std::size_t threads : {4u, 8u}) {
      serve.serve_threads = threads;
      const auto threaded = fleet.ServeAll(*plan, serve);
      ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
      EXPECT_EQ(threaded->reallocations, serial->reallocations);
      EXPECT_EQ(threaded->monitor_resets, serial->monitor_resets);
      EXPECT_EQ(threaded->shed_actions, serial->shed_actions);
      EXPECT_EQ(threaded->total_weighted_qps, serial->total_weighted_qps);
      ASSERT_EQ(threaded->control_log.size(), serial->control_log.size())
          << controller << " with " << threads << " threads";
      for (std::size_t e = 0; e < serial->control_log.size(); ++e) {
        const core::FleetControlEvent& a = serial->control_log[e];
        const core::FleetControlEvent& b = threaded->control_log[e];
        EXPECT_EQ(a.time, b.time);
        EXPECT_EQ(a.kind, b.kind);
        EXPECT_EQ(a.model, b.model);
        EXPECT_EQ(a.reason, b.reason);
      }
    }
  }
}

TEST(FleetControlTest, QosControllerReactsFasterThanThePeriodicTimer) {
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  const auto periodic = fleet.ServeAll(*plan, SpikeServe("PERIODIC"));
  ASSERT_TRUE(periodic.ok()) << periodic.status().ToString();
  core::FleetServeOptions qos_serve = SpikeServe("QOS");
  // 10% hysteresis margin (as in fig17): the initial plan runs RM2 close
  // enough to its QoS bound that the default hair-trigger fires on a
  // marginal pre-spike window; with the margin the fire is the spike
  // reaction itself, which is the mechanism this test pins.
  qos_serve.controller_knobs = {{"p99_scale", 1.1}};
  const auto qos = fleet.ServeAll(*plan, qos_serve);
  ASSERT_TRUE(qos.ok()) << qos.status().ToString();

  // Same arrivals, same budget — only the trigger differs.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(qos->models[j].totals.offered,
              periodic->models[j].totals.offered);
  }
  // The closed loop reacts to the t=18s spike within a couple of
  // windows, well before the open-loop timer's t=40s barrier...
  ASSERT_FALSE(qos->control_log.empty());
  EXPECT_GT(qos->control_log.front().time, 18.0);
  EXPECT_LT(qos->control_log.front().time, 40.0);
  EXPECT_NE(qos->control_log.front().reason.find("p99"), std::string::npos);
  // ...and converts that headstart into strictly fewer violation windows
  // at no extra reallocation cost.
  EXPECT_LT(ViolationWindows(fleet, *qos), ViolationWindows(fleet, *periodic));
  EXPECT_LE(qos->reallocations, periodic->reallocations);
  EXPECT_GE(qos->total_weighted_qps, periodic->total_weighted_qps - 1e-9);
}

TEST(FleetControlTest, BacklogControllerScalesOnQueueDepth) {
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  const auto frozen = fleet.ServeAll(*plan, SpikeServe(""));
  ASSERT_TRUE(frozen.ok());
  const auto backlog = fleet.ServeAll(*plan, SpikeServe("BACKLOG"));
  ASSERT_TRUE(backlog.ok()) << backlog.status().ToString();

  EXPECT_EQ(frozen->reallocations, 0u);
  ASSERT_GE(backlog->reallocations, 1u);
  // Fired after the spike (no backlog builds before it) with a stated
  // backlog trigger.
  EXPECT_GT(backlog->control_log.front().time, 18.0);
  EXPECT_NE(backlog->control_log.front().reason.find("backlog"),
            std::string::npos);
  EXPECT_LT(ViolationWindows(fleet, *backlog),
            ViolationWindows(fleet, *frozen));
  EXPECT_GT(backlog->total_weighted_qps, frozen->total_weighted_qps);
}

TEST(FleetControlTest, ShedControllerDegradesGracefullyAtEqualCost) {
  // A transient 6x spike on RM2 (t=18s..36s). The shed-blind baseline
  // lets the queue grow unboundedly: every queued query inherits the
  // wait of everything ahead, so p99 violations persist long after the
  // spike ends while the backlog drains. SHED trades completeness for
  // latency — with deadline_scale 0.9 only queries that can finish
  // inside QoS are kept — and restores full admission once healthy.
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  core::FleetServeOptions frozen_serve = SpikeServe("");
  frozen_serve.shifts.push_back(core::FleetLoadShift{36.0, "RM2", 1.0});
  const auto frozen = fleet.ServeAll(*plan, frozen_serve);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();

  core::FleetServeOptions shed_serve = frozen_serve;
  shed_serve.controller = "SHED";
  // p99_scale 1.1 is the same hysteresis margin the QOS test uses: the
  // initial plan runs RM2 close enough to its bound that the default
  // hair-trigger fires on a marginal pre-spike window.
  shed_serve.controller_knobs = {{"deadline_scale", 0.9}, {"p99_scale", 1.1}};
  const auto shed = fleet.ServeAll(*plan, shed_serve);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();

  // Equal cost: SHED never reallocates, so both runs ride the initial
  // plan and bill identically — degradation is bought with sheds, not
  // dollars.
  EXPECT_EQ(shed->reallocations, 0u);
  EXPECT_DOUBLE_EQ(shed->ondemand_cost_usd, frozen->ondemand_cost_usd);
  EXPECT_DOUBLE_EQ(shed->effective_cost_usd, frozen->effective_cost_usd);

  // The knob was armed on the spike and lifted after recovery.
  ASSERT_GE(shed->shed_actions, 2u);
  ASSERT_FALSE(shed->control_log.empty());
  EXPECT_GT(shed->control_log.front().time, 18.0);
  EXPECT_NE(shed->control_log.front().reason.find("shedding at deadline"),
            std::string::npos);
  bool restored = false;
  for (const core::FleetControlEvent& event : shed->control_log) {
    if (event.reason.find("restoring full admission") != std::string::npos) {
      restored = true;
    }
  }
  EXPECT_TRUE(restored) << "deadline was never lifted after recovery";

  // Same offered load; sheds happened; nothing lost or double-counted.
  std::size_t total_shed = 0;
  for (std::size_t j = 0; j < 3; ++j) {
    const serving::RunResult& totals = shed->models[j].totals;
    EXPECT_EQ(totals.offered, frozen->models[j].totals.offered);
    EXPECT_LE(totals.served + totals.shed + totals.rejected, totals.offered);
    total_shed += totals.shed;
  }
  EXPECT_GT(total_shed, 0u);

  // The gate: strictly fewer p99-violation windows at equal cost.
  EXPECT_LT(ViolationWindows(fleet, *shed), ViolationWindows(fleet, *frozen));
}

TEST(FleetControlTest, DriftControllerResetsMisWarmedMonitors) {
  // Plan against the Gaussian sensitivity mix but serve PRODUCTION
  // traffic: the live mean batch sits ~50% away from the planning-time
  // snapshot, which is exactly the regime change DRIFT watches for.
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto fleet = core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"}},
      options);
  ASSERT_TRUE(fleet.ok());
  fleet->ObserveMixAll(workload::GaussianBatches::Default());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  core::FleetServeOptions serve;
  serve.duration_s = 40.0;
  serve.base_rate_qps = 12.0;
  serve.window_s = 4.0;
  serve.launch_lag_s = 1.0;
  serve.controller = "DRIFT";
  const auto result = fleet->ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_GE(result->monitor_resets, 1u);
  ASSERT_GE(result->reallocations, 1u);
  // The log interleaves per-model resets with the replans they feed; the
  // first event must be a reset (the replan reads the post-reset mix).
  EXPECT_EQ(result->control_log.front().kind,
            ControlActionKind::kResetMonitor);
  EXPECT_FALSE(result->control_log.front().model.empty());
  EXPECT_NE(result->control_log.front().reason.find("drifted"),
            std::string::npos);

  // A well-warmed fleet on the same traffic never trips the detector.
  auto matched = core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"}},
      options);
  ASSERT_TRUE(matched.ok());
  matched->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto matched_plan = matched->PlanAll();
  ASSERT_TRUE(matched_plan.ok());
  const auto quiet = matched->ServeAll(*matched_plan, serve);
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();
  EXPECT_EQ(quiet->monitor_resets, 0u);
  EXPECT_EQ(quiet->reallocations, 0u);
  EXPECT_TRUE(quiet->control_log.empty());
}

TEST(FleetControlTest, CompositeChainsAndDeduplicates) {
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  const auto result = fleet.ServeAll(*plan, SpikeServe("COMPOSITE"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GE(result->reallocations, 1u);
  // Child attribution is part of the reason; at most one reallocation
  // per barrier time survives the dedup.
  std::vector<Time> realloc_times;
  for (const core::FleetControlEvent& event : result->control_log) {
    if (event.kind != ControlActionKind::kReallocate) continue;
    EXPECT_NE(event.reason.find(": "), std::string::npos);
    EXPECT_EQ(std::count(realloc_times.begin(), realloc_times.end(),
                         event.time),
              0);
    realloc_times.push_back(event.time);
  }
}

TEST(FleetControlTest, PeriodicSafetyNetYieldsToClosedLoopSiblings) {
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  // COMPOSITE with a PERIODIC safety net: QOS fires early, so at the
  // 40s grid point the fleet is fresh and the net must skip rather than
  // double-fire a redundant re-split.
  core::FleetServeOptions serve = SpikeServe("COMPOSITE");
  serve.realloc_period_s = 40.0;  // inherited by the PERIODIC child
  const auto chained = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(chained.ok()) << chained.status().ToString();
  ASSERT_GE(chained->reallocations, 1u);
  EXPECT_LT(chained->control_log.front().time, 40.0);
  for (const core::FleetControlEvent& event : chained->control_log) {
    EXPECT_EQ(event.reason.find("PERIODIC"), std::string::npos)
        << "safety net double-fired at " << event.time << "s";
  }

  // With every closed-loop child toggled off the net *is* the cadence:
  // COMPOSITE degenerates to the fixed timer.
  core::FleetServeOptions timer_only = SpikeServe("COMPOSITE");
  timer_only.controller_knobs = {{"qos", 0.0}, {"backlog", 0.0},
                                 {"drift", 0.0}, {"period_s", 20.0}};
  const auto periodic = fleet.ServeAll(*plan, timer_only);
  ASSERT_TRUE(periodic.ok()) << periodic.status().ToString();
  ASSERT_EQ(periodic->reallocations, 2u);  // t = 20, 40 inside 60s
  EXPECT_EQ(periodic->control_log[0].time, 20.0);
  EXPECT_EQ(periodic->control_log[1].time, 40.0);
  EXPECT_NE(periodic->control_log[0].reason.find("PERIODIC: fixed"),
            std::string::npos);
}

TEST(FleetControlTest, UnknownControllerAndBadKnobsSurfaceAsStatus) {
  const core::Fleet fleet = SpikeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  core::FleetServeOptions unknown = SpikeServe("PID");
  EXPECT_EQ(fleet.ServeAll(*plan, unknown).status().code(),
            StatusCode::kNotFound);

  core::FleetServeOptions bad_knob = SpikeServe("QOS");
  bad_knob.controller_knobs = {{"gain", 2.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, bad_knob).status().code(),
            StatusCode::kInvalidArgument);

  // Knobs without a named controller would be silently dropped by the
  // legacy wiring; they are rejected instead.
  core::FleetServeOptions orphan_knobs = SpikeServe("");
  orphan_knobs.realloc_period_s = 10.0;
  orphan_knobs.controller_knobs = {{"p99_scale", 1.1}};
  EXPECT_EQ(fleet.ServeAll(*plan, orphan_knobs).status().code(),
            StatusCode::kInvalidArgument);

  // A period aimed at a controller that cannot honor it is equally loud
  // (QOS declares no period_s knob; COMPOSITE is the supported spelling).
  core::FleetServeOptions orphan_period = SpikeServe("QOS");
  orphan_period.realloc_period_s = 40.0;
  const auto rejected = fleet.ServeAll(*plan, orphan_period);
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.status().message().find("COMPOSITE"),
            std::string::npos);
}

}  // namespace
}  // namespace kairos::control
