#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/kairos.h"
#include "latency/model_zoo.h"
#include "policy/kairos_policy.h"
#include "policy/ribbon_policy.h"
#include "serving/latency_predictor.h"
#include "serving/system.h"
#include "serving/throughput_eval.h"
#include "workload/trace.h"

namespace kairos::serving {
namespace {

using cloud::Catalog;
using cloud::Config;
using latency::LatencyModel;
using workload::Query;
using workload::Trace;

// A tiny two-type catalog: fast base "B", slow aux "A".
Catalog TinyCatalog() {
  Catalog c;
  c.Add({"base", "B", cloud::InstanceClass::kGpuAccelerated, 1.0, true});
  c.Add({"aux", "A", cloud::InstanceClass::kGeneralPurposeCpu, 0.25, false});
  return c;
}

// Base: 10ms + 0.1ms/item; aux: 20ms + 0.4ms/item.
LatencyModel TinyModel() {
  return LatencyModel({{10.0, 0.1}, {20.0, 0.4}});
}

SystemSpec TinySpec(const Catalog& catalog, const LatencyModel& model,
                    std::vector<int> counts, double qos_ms = 200.0) {
  SystemSpec spec;
  spec.catalog = &catalog;
  spec.config = Config(std::move(counts));
  spec.truth = &model;
  spec.qos_ms = qos_ms;
  return spec;
}

// --- LatencyPredictor. ---

TEST(LatencyPredictorTest, PretrainedIsExactForAffineTruth) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  LatencyPredictor pred(catalog, truth, PredictorOptions{});
  for (int b : {1, 7, 50, 333, 1000}) {
    EXPECT_NEAR(pred.PredictMs(0, b), truth.LatencyMs(0, b), 1e-9);
    EXPECT_NEAR(pred.PredictMs(1, b), truth.LatencyMs(1, b), 1e-9);
  }
}

TEST(LatencyPredictorTest, OnlineLearningConvergesAfterHandfulOfQueries) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  LatencyPredictor pred(catalog, truth, PredictorOptions{.pretrained = false});
  EXPECT_FALSE(pred.HasLinearFit(0));
  // Observe a handful of queries, as the paper describes (Sec. 5.1).
  for (int b : {10, 100, 400}) {
    pred.Observe(0, b, truth.LatencyMs(0, b));
  }
  EXPECT_TRUE(pred.HasLinearFit(0));
  EXPECT_NEAR(pred.PredictMs(0, 777), truth.LatencyMs(0, 777), 1e-6);
}

TEST(LatencyPredictorTest, LookupOverridesRegression) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  LatencyPredictor pred(catalog, truth, PredictorOptions{.pretrained = false});
  // Feed non-affine observations at one batch; exact repeats must be
  // served from the lookup table (mean), not a linear fit.
  pred.Observe(0, 50, 100.0);
  pred.Observe(0, 50, 110.0);
  EXPECT_NEAR(pred.PredictMs(0, 50), 105.0, 1e-9);
  EXPECT_EQ(pred.ObservationCount(0), 2u);
}

TEST(LatencyPredictorTest, NoiseIsAppliedOnlyToPredict) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  LatencyPredictor pred(catalog, truth,
                        PredictorOptions{.noise_sigma = 0.05});
  const double noiseless = pred.PredictMsNoiseless(0, 100);
  EXPECT_NEAR(noiseless, truth.LatencyMs(0, 100), 1e-9);
  bool differs = false;
  for (int i = 0; i < 32; ++i) {
    if (std::abs(pred.PredictMs(0, 100) - noiseless) > 1e-9) differs = true;
  }
  EXPECT_TRUE(differs);
}

// --- ServingSystem basics. ---

TEST(ServingSystemTest, SingleQuerySingleInstance) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  ServingSystem sys(TinySpec(catalog, truth, {1, 0}),
                    std::make_unique<policy::RibbonPolicy>());
  const Trace trace({Query{0, 100, 0.0}});
  const RunResult r = sys.Run(trace);
  EXPECT_EQ(r.served, 1u);
  EXPECT_EQ(r.violations, 0u);
  // Latency = serving latency (no queueing): 10 + 0.1*100 = 20 ms.
  EXPECT_NEAR(r.latencies_ms[0], 20.0, 1e-9);
  EXPECT_NEAR(r.makespan, 0.020, 1e-9);
}

TEST(ServingSystemTest, QueueingDelaysAreAccounted) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  ServingSystem sys(TinySpec(catalog, truth, {1, 0}),
                    std::make_unique<policy::RibbonPolicy>());
  // Two simultaneous queries on one instance: second waits for the first.
  const Trace trace({Query{0, 100, 0.0}, Query{1, 100, 0.0}});
  const RunResult r = sys.Run(trace);
  ASSERT_EQ(r.served, 2u);
  EXPECT_NEAR(r.latencies_ms[0], 20.0, 1e-9);
  EXPECT_NEAR(r.latencies_ms[1], 40.0, 1e-9);  // 20 wait + 20 serve
}

TEST(ServingSystemTest, ViolationsCounted) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  // QoS 25 ms: a batch-100 query is fine alone (20ms) but queued is not.
  ServingSystem sys(TinySpec(catalog, truth, {1, 0}, 25.0),
                    std::make_unique<policy::RibbonPolicy>(),
                    PredictorOptions{},
                    RunOptions{.abort_violation_fraction = 0.0});
  const Trace trace({Query{0, 100, 0.0}, Query{1, 100, 0.0}});
  const RunResult r = sys.Run(trace);
  EXPECT_EQ(r.violations, 1u);
  EXPECT_FALSE(r.QosMet(25.0));
}

TEST(ServingSystemTest, EarlyAbortOnViolationOverflow) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  ServingSystem sys(TinySpec(catalog, truth, {1, 0}, 25.0),
                    std::make_unique<policy::RibbonPolicy>(),
                    PredictorOptions{},
                    RunOptions{.abort_violation_fraction = 0.05});
  std::vector<Query> qs;
  for (int i = 0; i < 200; ++i) {
    qs.push_back(Query{static_cast<workload::QueryId>(i), 100, 0.0});
  }
  const RunResult r = sys.Run(Trace(qs));
  EXPECT_TRUE(r.aborted);
  EXPECT_LT(r.served, 200u);
}

TEST(ServingSystemTest, PerTypeStatsSumToTotals) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  ServingSystem sys(TinySpec(catalog, truth, {1, 2}),
                    std::make_unique<policy::KairosPolicy>());
  Rng rng(3);
  const auto mix = workload::LogNormalBatches::Production();
  const Trace trace =
      Trace::Generate(workload::PoissonArrivals(40.0), mix, 300, rng);
  const RunResult r = sys.Run(trace);
  std::size_t total = 0;
  for (std::size_t s : r.per_type_served) total += s;
  EXPECT_EQ(total, r.served);
}

TEST(ServingSystemTest, RecordsKeptWhenRequested) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  ServingSystem sys(TinySpec(catalog, truth, {1, 1}),
                    std::make_unique<policy::KairosPolicy>(),
                    PredictorOptions{}, RunOptions{.keep_records = true});
  const Trace trace({Query{0, 10, 0.0}, Query{1, 600, 0.001}});
  const RunResult r = sys.Run(trace);
  ASSERT_EQ(r.records.size(), 2u);
  for (const ServedRecord& rec : r.records) {
    EXPECT_GE(rec.start, rec.arrival);
    EXPECT_GT(rec.finish, rec.start);
    EXPECT_NEAR(rec.LatencyMs(), SecToMs(rec.finish - rec.arrival), 1e-12);
  }
}

TEST(ServingSystemTest, RunIsRepeatable) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  ServingSystem sys(TinySpec(catalog, truth, {1, 1}),
                    std::make_unique<policy::KairosPolicy>());
  Rng rng(4);
  const auto mix = workload::LogNormalBatches::Production();
  const Trace trace =
      Trace::Generate(workload::PoissonArrivals(30.0), mix, 200, rng);
  const RunResult a = sys.Run(trace);
  const RunResult b = sys.Run(trace);
  EXPECT_EQ(a.served, b.served);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
}

TEST(ServingSystemTest, MissingPiecesThrow) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  SystemSpec bad = TinySpec(catalog, truth, {1, 0});
  bad.catalog = nullptr;
  EXPECT_THROW(ServingSystem(bad, std::make_unique<policy::RibbonPolicy>()),
               std::invalid_argument);
  EXPECT_THROW(
      ServingSystem(TinySpec(catalog, truth, {1, 0}), nullptr),
      std::invalid_argument);
  // Empty configuration must be rejected at run time.
  ServingSystem empty(TinySpec(catalog, truth, {0, 0}),
                      std::make_unique<policy::RibbonPolicy>());
  EXPECT_THROW(empty.Run(Trace({Query{0, 1, 0.0}})), std::logic_error);
}

// --- Allowable-throughput evaluation. ---

TEST(ThroughputEvalTest, SingleServerMatchesLittleLaw) {
  // One base instance, tiny batches (lat ~ 10.1ms): the allowable rate must
  // land below the 1/E[service] saturation point but clearly above half.
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const workload::EmpiricalBatches mix({1});
  EvalOptions opt;
  opt.queries = 400;
  opt.rate_guess = 50.0;
  const auto r = EvaluateConfig(
      catalog, Config({1, 0}), truth, /*qos_ms=*/60.0,
      [] { return std::make_unique<policy::RibbonPolicy>(); }, mix, opt);
  const double saturation = 1000.0 / truth.LatencyMs(0, 1);
  EXPECT_LT(r.qps, saturation);
  EXPECT_GT(r.qps, 0.4 * saturation);
}

TEST(ThroughputEvalTest, MoreInstancesMoreThroughput) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  EvalOptions opt;
  opt.queries = 400;
  opt.rate_guess = 20.0;
  const auto policy = [] { return std::make_unique<policy::KairosPolicy>(); };
  const auto one =
      EvaluateConfig(catalog, Config({1, 0}), truth, 200.0, policy, mix, opt);
  const auto two =
      EvaluateConfig(catalog, Config({2, 0}), truth, 200.0, policy, mix, opt);
  EXPECT_GT(two.qps, 1.5 * one.qps);
}

TEST(ThroughputEvalTest, ImpossibleQosYieldsZero) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const workload::EmpiricalBatches mix({1000});  // 110 ms on base
  EvalOptions opt;
  opt.queries = 100;
  const auto r = EvaluateConfig(
      catalog, Config({1, 0}), truth, /*qos_ms=*/50.0,
      [] { return std::make_unique<policy::RibbonPolicy>(); }, mix, opt);
  EXPECT_DOUBLE_EQ(r.qps, 0.0);
}

// The reference form of AllowableThroughput before the scratch-trace
// optimisation: a fresh Retimed() trace materialized per rate trial. The
// optimized path must reproduce its EvalResult exactly.
EvalResult ReferenceAllowableThroughput(const SystemFactory& factory,
                                        const workload::BatchDistribution& mix,
                                        double qos_ms,
                                        const EvalOptions& options) {
  Rng rng(options.seed);
  const workload::PoissonArrivals unit_rate(1.0);
  const Trace base =
      Trace::Generate(unit_rate, mix, options.queries, rng);

  EvalResult result;
  auto passes = [&](double rate) {
    ++result.trials;
    const Trace trial = base.Retimed(rate);
    const RunResult run = factory()->Run(trial);
    return run.QosMet(qos_ms);
  };

  double lo = 0.0;
  double hi = std::max(1e-3, options.rate_guess);
  if (passes(hi)) {
    for (int i = 0; i < 24; ++i) {
      lo = hi;
      hi *= 2.0;
      if (!passes(hi)) break;
      if (i == 23) return {hi, result.trials};
    }
  } else {
    bool found_passing = false;
    for (int i = 0; i < 24; ++i) {
      hi /= 2.0;
      if (passes(hi)) {
        lo = hi;
        hi *= 2.0;
        found_passing = true;
        break;
      }
      if (hi < 1e-3) break;
    }
    if (!found_passing) return {0.0, result.trials};
  }
  for (int i = 0; i < options.bisect_iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (passes(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.qps = lo;
  return result;
}

TEST(ThroughputEvalTest, ScratchTraceReuseMatchesReferencePath) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto policy = [] { return std::make_unique<policy::KairosPolicy>(); };
  const SystemFactory factory = [&] {
    SystemSpec spec;
    spec.catalog = &catalog;
    spec.config = Config({2, 1});
    spec.truth = &truth;
    spec.qos_ms = 200.0;
    return std::make_unique<ServingSystem>(spec, policy(), PredictorOptions{},
                                           RunOptions{});
  };
  const auto mix = workload::LogNormalBatches::Production();
  for (const double guess : {5.0, 25.0, 80.0}) {
    EvalOptions opt;
    opt.queries = 250;
    opt.rate_guess = guess;
    const EvalResult got = AllowableThroughput(factory, mix, 200.0, opt);
    const EvalResult want =
        ReferenceAllowableThroughput(factory, mix, 200.0, opt);
    EXPECT_EQ(got.qps, want.qps) << "guess " << guess;
    EXPECT_EQ(got.trials, want.trials) << "guess " << guess;
  }
}

TEST(TraceTest, RetimedIntoMatchesRetimed) {
  Rng rng(11);
  const auto mix = workload::LogNormalBatches::Production();
  const workload::PoissonArrivals unit_rate(1.0);
  const Trace base = Trace::Generate(unit_rate, mix, 300, rng);
  Trace scratch;  // reused across rates, like the evaluator's inner loop
  for (const double rate : {0.5, 3.0, 17.0, 250.0}) {
    base.RetimedInto(rate, &scratch);
    const Trace fresh = base.Retimed(rate);
    ASSERT_EQ(scratch.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(scratch.queries()[i].arrival, fresh.queries()[i].arrival);
      EXPECT_EQ(scratch.queries()[i].batch_size, fresh.queries()[i].batch_size);
      EXPECT_EQ(scratch.queries()[i].id, fresh.queries()[i].id);
    }
  }
}

TEST(ThroughputEvalTest, TrialsAreBounded) {
  const Catalog catalog = TinyCatalog();
  const LatencyModel truth = TinyModel();
  const auto mix = workload::LogNormalBatches::Production();
  EvalOptions opt;
  opt.queries = 200;
  opt.bisect_iters = 5;
  opt.rate_guess = 25.0;
  const auto r = EvaluateConfig(
      catalog, Config({2, 1}), truth, 200.0,
      [] { return std::make_unique<policy::KairosPolicy>(); }, mix, opt);
  EXPECT_LE(r.trials, 40);
  EXPECT_GT(r.qps, 0.0);
}

}  // namespace
}  // namespace kairos::serving
