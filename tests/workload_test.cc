#include <gtest/gtest.h>

#include <memory>

#include "common/stats.h"
#include "latency/latency_model.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/monitor.h"
#include "workload/trace.h"

namespace kairos::workload {
namespace {

// --- Batch distributions: shared properties, parameterized over kinds. ---

std::shared_ptr<const BatchDistribution> MakeDist(const std::string& kind) {
  if (kind == "lognormal") {
    return std::make_shared<LogNormalBatches>(LogNormalBatches::Production());
  }
  if (kind == "gaussian") {
    return std::make_shared<GaussianBatches>(GaussianBatches::Default());
  }
  // empirical: a bimodal recorded mix
  std::vector<int> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(20 + i % 40);
  for (int i = 0; i < 100; ++i) samples.push_back(700 + i % 100);
  return std::make_shared<EmpiricalBatches>(std::move(samples));
}

class BatchDistProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchDistProperties, SamplesWithinRange) {
  const auto dist = MakeDist(GetParam());
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const int b = dist->Sample(rng);
    EXPECT_GE(b, 1);
    EXPECT_LE(b, latency::kMaxBatchSize);
  }
}

TEST_P(BatchDistProperties, CdfIsMonotoneAndBounded) {
  const auto dist = MakeDist(GetParam());
  double prev = 0.0;
  for (int b = 0; b <= latency::kMaxBatchSize; b += 50) {
    const double cdf = dist->Cdf(b);
    EXPECT_GE(cdf, prev - 1e-12);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(dist->Cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(dist->Cdf(latency::kMaxBatchSize), 1.0);
}

TEST_P(BatchDistProperties, EmpiricalFractionMatchesCdf) {
  const auto dist = MakeDist(GetParam());
  Rng rng(6);
  const int split = 300;
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist->Sample(rng) <= split) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, dist->Cdf(split), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Kinds, BatchDistProperties,
                         ::testing::Values("lognormal", "gaussian",
                                           "empirical"));

TEST(LogNormalBatchesTest, ProductionIsHeavyTailedButMostlySmall) {
  const auto dist = LogNormalBatches::Production();
  // Most queries are small...
  EXPECT_GT(dist.Cdf(200), 0.80);
  // ...but a real tail of near-cap batches exists.
  EXPECT_LT(dist.Cdf(800), 0.999);
}

TEST(LogNormalBatchesTest, InvalidSigmaThrows) {
  EXPECT_THROW(LogNormalBatches(1.0, 0.0), std::invalid_argument);
}

TEST(GaussianBatchesTest, MeanRoughlyPreserved) {
  const GaussianBatches dist(400.0, 50.0);
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(dist.Sample(rng));
  EXPECT_NEAR(stats.mean(), 400.0, 5.0);
}

TEST(EmpiricalBatchesTest, ReplaysOnlyObservedValues) {
  const EmpiricalBatches dist({10, 20, 30});
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const int b = dist.Sample(rng);
    EXPECT_TRUE(b == 10 || b == 20 || b == 30);
  }
  EXPECT_THROW(EmpiricalBatches({}), std::invalid_argument);
}

// --- Arrival processes. ---

TEST(PoissonArrivalsTest, MeanGapMatchesRate) {
  const PoissonArrivals arrivals(50.0);
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(arrivals.NextGap(rng));
  EXPECT_NEAR(stats.mean(), 0.02, 0.001);
  EXPECT_DOUBLE_EQ(arrivals.Rate(), 50.0);
}

TEST(UniformArrivalsTest, FixedGap) {
  const UniformArrivals arrivals(4.0);
  Rng rng(11);
  EXPECT_DOUBLE_EQ(arrivals.NextGap(rng), 0.25);
  EXPECT_DOUBLE_EQ(arrivals.Rate(), 4.0);
}

TEST(ArrivalsTest, NonPositiveRateThrows) {
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
  EXPECT_THROW(UniformArrivals(-1.0), std::invalid_argument);
}

// --- Traces. ---

TEST(TraceTest, GenerateIsSortedWithSequentialIds) {
  Rng rng(12);
  const auto mix = LogNormalBatches::Production();
  const PoissonArrivals arrivals(100.0);
  const Trace trace = Trace::Generate(arrivals, mix, 500, rng);
  ASSERT_EQ(trace.size(), 500u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace.queries()[i].arrival, trace.queries()[i - 1].arrival);
    EXPECT_EQ(trace.queries()[i].id, i);
  }
}

TEST(TraceTest, OfferedRateNearNominal) {
  Rng rng(13);
  const auto mix = LogNormalBatches::Production();
  const Trace trace = Trace::Generate(PoissonArrivals(80.0), mix, 4000, rng);
  EXPECT_NEAR(trace.OfferedRate(), 80.0, 8.0);
}

TEST(TraceTest, RetimedPreservesBatchesAndHitsRate) {
  Rng rng(14);
  const auto mix = LogNormalBatches::Production();
  const Trace trace = Trace::Generate(PoissonArrivals(10.0), mix, 1000, rng);
  const Trace fast = trace.Retimed(40.0);
  ASSERT_EQ(fast.size(), trace.size());
  EXPECT_NEAR(fast.OfferedRate(), 40.0, 1e-6);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(fast.queries()[i].batch_size, trace.queries()[i].batch_size);
  }
}

TEST(TraceTest, UnsortedConstructionThrows) {
  std::vector<Query> qs = {{0, 10, 2.0}, {1, 10, 1.0}};
  EXPECT_THROW(Trace{qs}, std::invalid_argument);
}

// --- Query monitor. ---

TEST(QueryMonitorTest, FractionAndMeans) {
  QueryMonitor mon(100);
  for (int b : {10, 20, 30, 40, 500}) mon.Observe(b);
  EXPECT_EQ(mon.Count(), 5u);
  EXPECT_DOUBLE_EQ(mon.FractionAtOrBelow(40), 0.8);
  EXPECT_DOUBLE_EQ(mon.MeanBatch(), 120.0);
  EXPECT_DOUBLE_EQ(mon.MeanBatchAtOrBelow(40), 25.0);
  EXPECT_DOUBLE_EQ(mon.MeanBatchAbove(40), 500.0);
}

TEST(QueryMonitorTest, SlidingWindowEvicts) {
  QueryMonitor mon(3);
  mon.Observe(1);
  mon.Observe(2);
  mon.Observe(3);
  mon.Observe(100);  // evicts 1
  EXPECT_EQ(mon.Count(), 3u);
  EXPECT_DOUBLE_EQ(mon.MeanBatch(), 35.0);
  EXPECT_DOUBLE_EQ(mon.FractionAtOrBelow(3), 2.0 / 3.0);
}

TEST(QueryMonitorTest, ClampsOutOfRangeObservations) {
  QueryMonitor mon(10);
  mon.Observe(-5);
  mon.Observe(10000);
  EXPECT_DOUBLE_EQ(mon.MeanBatch(), (1.0 + latency::kMaxBatchSize) / 2.0);
}

TEST(QueryMonitorTest, EmptyWindowIsZeroes) {
  QueryMonitor mon(10);
  EXPECT_DOUBLE_EQ(mon.FractionAtOrBelow(500), 0.0);
  EXPECT_DOUBLE_EQ(mon.MeanBatch(), 0.0);
  // Status-based since PR 5 (was a std::logic_error throw).
  const auto snap = mon.Snapshot();
  EXPECT_EQ(snap.status().code(), StatusCode::kFailedPrecondition);
}

TEST(QueryMonitorTest, SnapshotReplaysWindow) {
  QueryMonitor mon(100);
  for (int i = 0; i < 50; ++i) mon.Observe(42);
  const auto snap = mon.Snapshot();
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  Rng rng(15);
  EXPECT_EQ(snap->Sample(rng), 42);
}

TEST(QueryMonitorTest, BatchMixDriftMeasuresShiftFromPlanningReference) {
  QueryMonitor mon(100);
  for (int i = 0; i < 10; ++i) mon.Observe(100);
  EXPECT_DOUBLE_EQ(mon.BatchMixDrift(), 0.0);  // no reference marked yet
  mon.MarkPlanningReference();
  EXPECT_DOUBLE_EQ(mon.reference_mean_batch(), 100.0);
  EXPECT_DOUBLE_EQ(mon.BatchMixDrift(), 0.0);

  // The live mix shifts lighter: ten 50s join the ten 100s.
  for (int i = 0; i < 10; ++i) mon.Observe(50);
  EXPECT_DOUBLE_EQ(mon.MeanBatch(), 75.0);
  EXPECT_DOUBLE_EQ(mon.BatchMixDrift(), 0.25);

  // An explicit reference (e.g. another monitor's planning-time mean).
  mon.MarkPlanningReference(150.0);
  EXPECT_DOUBLE_EQ(mon.BatchMixDrift(), 0.5);

  // Reset drops the window but keeps the reference: drift reads 0 until
  // fresh samples arrive, then measures against the surviving reference.
  mon.Reset();
  EXPECT_DOUBLE_EQ(mon.BatchMixDrift(), 0.0);
  EXPECT_DOUBLE_EQ(mon.reference_mean_batch(), 150.0);
  mon.Observe(75);
  EXPECT_DOUBLE_EQ(mon.BatchMixDrift(), 0.5);
}

TEST(QueryMonitorTest, ResetClears) {
  QueryMonitor mon(10);
  mon.Observe(5);
  mon.Reset();
  EXPECT_EQ(mon.Count(), 0u);
  EXPECT_DOUBLE_EQ(mon.MeanBatch(), 0.0);
}

TEST(QueryMonitorTest, TracksDistributionShift) {
  // The Fig. 12 scenario: statistics must follow a regime change once the
  // window turns over.
  QueryMonitor mon(1000);
  Rng rng(16);
  const auto lognormal = LogNormalBatches::Production();
  for (int i = 0; i < 1000; ++i) mon.Observe(lognormal.Sample(rng));
  const double f_before = mon.FractionAtOrBelow(300);
  const GaussianBatches gaussian(500.0, 60.0);
  for (int i = 0; i < 1000; ++i) mon.Observe(gaussian.Sample(rng));
  const double f_after = mon.FractionAtOrBelow(300);
  EXPECT_GT(f_before, 0.85);
  EXPECT_LT(f_after, 0.05);
}

}  // namespace
}  // namespace kairos::workload
