// Fleet::ServeAll coverage: all models co-simulated as shards of one
// shared event loop, deterministic replays, and the Fig. 12 acceptance
// property — MARGINAL periodic reallocation under a mid-run arrival-rate
// shift serves at least the total weighted QPS of the frozen-allocation
// baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include "core/fleet.h"
#include "sim/event_queue.h"

namespace kairos::core {
namespace {

/// The Fig. 12 fleet: RM2 (the model whose load will shift), WND, and a
/// double-traffic NCF, under one $8/hr MARGINAL budget.
Fleet MakeFleet() {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto fleet = Fleet::Create(
      catalog,
      {FleetModelOptions{.model = "RM2"}, FleetModelOptions{.model = "WND"},
       FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

FleetServeOptions ShortServe() {
  FleetServeOptions options;
  options.duration_s = 10.0;
  options.base_rate_qps = 15.0;
  options.window_s = 2.5;
  return options;
}

TEST(FleetServeTest, ModelsShareOneClockAndWindowGrid) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto result = fleet.ServeAll(*plan, ShortServe());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->models.size(), 3u);
  EXPECT_DOUBLE_EQ(result->duration_s, 10.0);
  EXPECT_EQ(result->reallocations, 0u);
  for (const FleetModelServe& model : result->models) {
    EXPECT_GT(model.totals.offered, 0u);
    EXPECT_GT(model.qps, 0.0);
    EXPECT_LE(model.totals.makespan, 10.0 + 1e-9);
    ASSERT_EQ(model.windows.size(), 4u);
  }
  // Shards of one event loop: every model's windows close on the shared
  // grid, bit for bit.
  for (std::size_t w = 0; w < 4; ++w) {
    const Time end = result->models[0].windows[w].end;
    EXPECT_EQ(result->models[1].windows[w].end, end);
    EXPECT_EQ(result->models[2].windows[w].end, end);
  }
  const double sum = result->models[0].qps + result->models[1].qps +
                     result->models[2].qps;
  EXPECT_NEAR(result->total_qps, sum, 1e-9);
  // NCF carries arrival_scale 2: the demand-weighted aggregate counts it
  // twice, like FleetMeasurement::total_weighted_qps.
  EXPECT_NEAR(result->total_weighted_qps, sum + result->models[2].qps, 1e-9);
}

TEST(FleetServeTest, ReplaysAreDeterministic) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  const auto a = fleet.ServeAll(*plan, ShortServe());
  const auto b = fleet.ServeAll(*plan, ShortServe());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_weighted_qps, b->total_weighted_qps);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(a->models[j].totals.offered, b->models[j].totals.offered);
    EXPECT_EQ(a->models[j].totals.served, b->models[j].totals.served);
    EXPECT_EQ(a->models[j].totals.p99_ms, b->models[j].totals.p99_ms);
  }
}

// The Fig. 12 acceptance property. One continuous co-simulation; RM2's
// arrival rate jumps 5x at t=30s. The identical arrival schedule is
// served twice: with the initial allocation frozen, and with MARGINAL
// re-invoked every 10s on observed rates. Adaptation must not lose
// throughput — and under this saturating shift it must win outright.
TEST(FleetServeTest, MarginalReallocationBeatsFrozenUnderLoadShift) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  FleetServeOptions serve;
  serve.duration_s = 60.0;
  serve.base_rate_qps = 18.0;
  serve.window_s = 5.0;
  serve.launch_lag_s = 1.0;
  serve.shifts = {FleetLoadShift{30.0, "RM2", 5.0}};

  auto frozen = fleet.ServeAll(plan.value(), serve);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  serve.realloc_period_s = 10.0;
  auto adaptive = fleet.ServeAll(plan.value(), serve);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();

  // Both runs saw the same arrivals — the shift changed offered load, the
  // allocator only changes service.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(adaptive->models[j].totals.offered,
              frozen->models[j].totals.offered);
  }
  EXPECT_EQ(frozen->reallocations, 0u);
  EXPECT_EQ(adaptive->reallocations, 5u);

  EXPECT_GE(adaptive->total_weighted_qps, frozen->total_weighted_qps);
  // The win is substantial, not a tie: frozen RM2 flatlines at its planned
  // capacity while adaptive reallocation absorbs the 5x jump.
  EXPECT_GT(adaptive->total_weighted_qps, 1.1 * frozen->total_weighted_qps);
  EXPECT_GT(adaptive->models[0].qps, 2.0 * frozen->models[0].qps);

  // Reallocation respects the envelope and reacts to RM2's demand.
  double total_share = 0.0;
  for (const double share : adaptive->final_shares_per_hour) {
    total_share += share;
  }
  EXPECT_LE(total_share, fleet.options().budget_per_hour + 1e-9);
  EXPECT_GT(adaptive->final_shares_per_hour[0],
            plan->models[0].budget_per_hour);
}

TEST(FleetServeTest, WindowGridHasNoFloatingPointDuplicateAtHorizon) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  FleetServeOptions serve;
  serve.duration_s = 5.0;
  serve.base_rate_qps = 15.0;
  // 5/12 is not representable in binary: accumulating it must not
  // schedule a spurious zero-width 13th window just below the horizon.
  serve.window_s = 5.0 / 12.0;
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const FleetModelServe& model : result->models) {
    ASSERT_EQ(model.windows.size(), 12u);
    EXPECT_GT(model.windows.back().end - model.windows.back().start, 0.1);
  }
}

TEST(FleetServeTest, ReallocationWorksWithEvaluationDrivenPlanners) {
  // KAIROS+ needs a real evaluator; the rebalance loop must wire one the
  // same way PlanAll does instead of dying with FAILED_PRECONDITION.
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 4.0;
  options.allocator = "MARGINAL";
  options.planner = "KAIROS+";
  auto fleet = Fleet::Create(catalog,
                             {FleetModelOptions{.model = "RM2"},
                              FleetModelOptions{.model = "WND"}},
                             options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  search::SearchOptions search;
  search.max_evals = 4;
  const auto plan = fleet->PlanAll(search);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  FleetServeOptions serve;
  serve.duration_s = 10.0;
  serve.base_rate_qps = 10.0;
  serve.window_s = 5.0;
  serve.realloc_period_s = 5.0;
  serve.search = search;
  const auto result = fleet->ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reallocations, 1u);
}

/// Field-by-field bitwise equality of two serve results (windows, totals,
/// shares): the sharded loop must not leak any thread-count dependence.
void ExpectBitIdentical(const FleetServeResult& a, const FleetServeResult& b) {
  ASSERT_EQ(a.models.size(), b.models.size());
  EXPECT_EQ(a.total_qps, b.total_qps);
  EXPECT_EQ(a.total_weighted_qps, b.total_weighted_qps);
  EXPECT_EQ(a.reallocations, b.reallocations);
  EXPECT_EQ(a.monitor_resets, b.monitor_resets);
  ASSERT_EQ(a.control_log.size(), b.control_log.size());
  for (std::size_t e = 0; e < a.control_log.size(); ++e) {
    EXPECT_EQ(a.control_log[e].time, b.control_log[e].time);
    EXPECT_EQ(a.control_log[e].kind, b.control_log[e].kind);
    EXPECT_EQ(a.control_log[e].model, b.control_log[e].model);
    EXPECT_EQ(a.control_log[e].reason, b.control_log[e].reason);
  }
  ASSERT_EQ(a.final_shares_per_hour.size(), b.final_shares_per_hour.size());
  for (std::size_t j = 0; j < a.final_shares_per_hour.size(); ++j) {
    EXPECT_EQ(a.final_shares_per_hour[j], b.final_shares_per_hour[j]);
  }
  for (std::size_t j = 0; j < a.models.size(); ++j) {
    const FleetModelServe& ma = a.models[j];
    const FleetModelServe& mb = b.models[j];
    EXPECT_EQ(ma.model, mb.model);
    EXPECT_EQ(ma.qps, mb.qps);
    EXPECT_EQ(ma.totals.offered, mb.totals.offered);
    EXPECT_EQ(ma.totals.served, mb.totals.served);
    EXPECT_EQ(ma.totals.violations, mb.totals.violations);
    EXPECT_EQ(ma.totals.p99_ms, mb.totals.p99_ms);
    EXPECT_EQ(ma.totals.mean_ms, mb.totals.mean_ms);
    EXPECT_EQ(ma.totals.makespan, mb.totals.makespan);
    ASSERT_EQ(ma.windows.size(), mb.windows.size());
    for (std::size_t w = 0; w < ma.windows.size(); ++w) {
      EXPECT_EQ(ma.windows[w].start, mb.windows[w].start);
      EXPECT_EQ(ma.windows[w].end, mb.windows[w].end);
      EXPECT_EQ(ma.windows[w].offered, mb.windows[w].offered);
      EXPECT_EQ(ma.windows[w].served, mb.windows[w].served);
      EXPECT_EQ(ma.windows[w].violations, mb.windows[w].violations);
      EXPECT_EQ(ma.windows[w].p99_ms, mb.windows[w].p99_ms);
      EXPECT_EQ(ma.windows[w].mean_ms, mb.windows[w].mean_ms);
      EXPECT_EQ(ma.windows[w].offered_qps, mb.windows[w].offered_qps);
      EXPECT_EQ(ma.windows[w].qps, mb.windows[w].qps);
      EXPECT_EQ(ma.windows[w].mean_batch, mb.windows[w].mean_batch);
    }
  }
}

// The PR 5 refactor contract: the legacy spelling (realloc_period_s > 0,
// no named controller) and the explicit "PERIODIC" controller must be the
// same loop — windows, totals, shares and control log bit-identical for
// every serve_threads. (The pre-refactor fixed-timer loop itself was
// fingerprinted at full precision before the control plane landed and the
// PERIODIC path reproduces it exactly; this test keeps the two spellings
// pinned together from here on.)
TEST(FleetServeTest, ExplicitPeriodicControllerEqualsLegacyWiring) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  FleetServeOptions legacy;
  legacy.duration_s = 30.0;
  legacy.base_rate_qps = 18.0;
  legacy.window_s = 5.0;
  legacy.realloc_period_s = 7.5;  // off the window grid on purpose
  legacy.launch_lag_s = 1.0;
  legacy.shifts = {FleetLoadShift{12.0, "RM2", 4.0}};

  FleetServeOptions explicit_periodic = legacy;
  explicit_periodic.controller = "PERIODIC";  // period_s inherited

  for (const std::size_t threads : {1u, 4u, 8u}) {
    legacy.serve_threads = threads;
    explicit_periodic.serve_threads = threads;
    const auto a = fleet.ServeAll(*plan, legacy);
    const auto b = fleet.ServeAll(*plan, explicit_periodic);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->reallocations, 3u);
    ExpectBitIdentical(*a, *b);
  }
}

TEST(FleetServeTest, ServeThreadsAreBitIdentical) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  // A demanding schedule: load shift + periodic reallocation, so barrier
  // interleaving (windows, rebalances, engine reconfigurations) is all
  // exercised under threading.
  FleetServeOptions serve;
  serve.duration_s = 30.0;
  serve.base_rate_qps = 18.0;
  serve.window_s = 5.0;
  serve.realloc_period_s = 10.0;
  serve.launch_lag_s = 1.0;
  serve.shifts = {FleetLoadShift{12.0, "RM2", 4.0}};

  serve.serve_threads = 1;
  const auto serial = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (const std::size_t threads : {2u, 4u, 8u}) {
    serve.serve_threads = threads;
    const auto threaded = fleet.ServeAll(*plan, serve);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    ExpectBitIdentical(*serial, *threaded);
  }
}

// The calendar wheel replaced the binary heap as the default event
// queue; the heap stays behind a runtime switch as the firing-order
// oracle. A full co-simulation (load shift, periodic reallocation,
// windows, launch lag) must come out bit-identical under both backends
// at every serve_threads — any divergence means the wheel broke the
// FIFO-at-equal-timestamp contract somewhere the microbenches missed.
TEST(FleetServeTest, HeapAndWheelBackendsAreBitIdentical) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  FleetServeOptions serve;
  serve.duration_s = 30.0;
  serve.base_rate_qps = 18.0;
  serve.window_s = 5.0;
  serve.realloc_period_s = 10.0;
  serve.launch_lag_s = 1.0;
  serve.shifts = {FleetLoadShift{12.0, "RM2", 4.0}};

  const sim::QueueBackend previous = sim::DefaultQueueBackend();
  for (const std::size_t threads : {1u, 4u, 8u}) {
    serve.serve_threads = threads;
    sim::SetDefaultQueueBackend(sim::QueueBackend::kCalendar);
    const auto wheel = fleet.ServeAll(*plan, serve);
    sim::SetDefaultQueueBackend(sim::QueueBackend::kHeap);
    const auto heap = fleet.ServeAll(*plan, serve);
    sim::SetDefaultQueueBackend(previous);
    ASSERT_TRUE(wheel.ok()) << wheel.status().ToString();
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    ExpectBitIdentical(*wheel, *heap);
  }
}

TEST(FleetServeTest, AliasesServeTheSameModelAsIndependentShards) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 8.0;
  auto fleet = Fleet::Create(catalog,
                             {FleetModelOptions{.model = "WND", .name = "WND-eu"},
                              FleetModelOptions{.model = "WND", .name = "WND-us"},
                              FleetModelOptions{.model = "NCF"}},
                             options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->models[0].model, "WND-eu");
  EXPECT_EQ(plan->models[1].model, "WND-us");

  FleetServeOptions serve = ShortServe();
  serve.shifts = {FleetLoadShift{2.0, "WND-us", 3.0}};  // by serving name
  const auto result = fleet->ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The shifted shard sees more traffic than its twin; the twin's stream
  // is untouched (independent sources despite the shared zoo model).
  EXPECT_GT(result->models[1].totals.offered, result->models[0].totals.offered);

  // Duplicate serving names stay rejected.
  auto dup = Fleet::Create(catalog,
                           {FleetModelOptions{.model = "WND", .name = "X"},
                            FleetModelOptions{.model = "NCF", .name = "X"}},
                           options);
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

// The perf-opt acceptance property: sharding an 8-model fleet across 8
// threads must cut ServeAll wall-clock by >= 2x vs one thread, with
// bit-identical metrics. Wall-clock needs real cores; skip on small hosts
// (bench/perf_suite measures the same thing into BENCH_perf.json anywhere).
TEST(FleetServeTest, EightShardServeAllScalesAtLeastTwofold) {
  if (std::thread::hardware_concurrency() < 8) {
    GTEST_SKIP() << "needs >= 8 hardware threads for a meaningful speedup";
  }
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 24.0;
  auto fleet = Fleet::Create(
      catalog,
      {FleetModelOptions{.model = "NCF"}, FleetModelOptions{.model = "RM2"},
       FleetModelOptions{.model = "WND"}, FleetModelOptions{.model = "MT-WND"},
       FleetModelOptions{.model = "DIEN"},
       FleetModelOptions{.model = "NCF", .name = "NCF-B"},
       FleetModelOptions{.model = "WND", .name = "WND-B"},
       FleetModelOptions{.model = "RM2", .name = "RM2-B"}},
      options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = fleet->PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  FleetServeOptions serve;
  serve.duration_s = 40.0;
  serve.base_rate_qps = 60.0;
  serve.window_s = 5.0;

  // Best-of-two timing per thread count (after a warm-up pass) so a
  // transient scheduling hiccup on a busy machine cannot fail the ratio.
  const auto timed = [&](std::size_t threads) {
    serve.serve_threads = threads;
    double best_wall = std::numeric_limits<double>::infinity();
    core::FleetServeResult last;
    for (int rep = 0; rep < 2; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      auto result = fleet->ServeAll(*plan, serve);
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      best_wall = std::min(best_wall, wall);
      last = *std::move(result);
    }
    return std::make_pair(std::move(last), best_wall);
  };
  // Warm-up pass so first-touch page faults don't bias the serial timing.
  serve.serve_threads = 1;
  (void)fleet->ServeAll(*plan, serve);
  const auto [serial, serial_wall] = timed(1);
  const auto [threaded, threaded_wall] = timed(8);
  ExpectBitIdentical(serial, threaded);
  EXPECT_GE(serial_wall / threaded_wall, 2.0)
      << "serial " << serial_wall << "s vs 8-thread " << threaded_wall << "s";
}

TEST(FleetServeTest, InvalidOptionsAreRejected) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  FleetServeOptions bad_duration = ShortServe();
  bad_duration.duration_s = 0.0;
  EXPECT_EQ(fleet.ServeAll(*plan, bad_duration).status().code(),
            StatusCode::kInvalidArgument);

  FleetServeOptions unknown_shift = ShortServe();
  unknown_shift.shifts = {FleetLoadShift{1.0, "DIEN", 2.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, unknown_shift).status().code(),
            StatusCode::kNotFound);

  // A fleet member that is not part of the served plan is equally a
  // NotFound, never a silently dropped shift.
  FleetPlan partial = *plan;
  partial.models.erase(partial.models.begin());  // drop RM2
  FleetServeOptions shift_outside_plan = ShortServe();
  shift_outside_plan.shifts = {FleetLoadShift{1.0, "RM2", 2.0}};
  EXPECT_EQ(fleet.ServeAll(partial, shift_outside_plan).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(fleet.ServeAll(partial, ShortServe()).ok());

  FleetServeOptions late_shift = ShortServe();
  late_shift.shifts = {FleetLoadShift{99.0, "RM2", 2.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, late_shift).status().code(),
            StatusCode::kInvalidArgument);

  FleetServeOptions bad_scale = ShortServe();
  bad_scale.shifts = {FleetLoadShift{1.0, "RM2", 0.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, bad_scale).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FleetServeTest, ReallocationNeedsWarmMonitors) {
  const Fleet warm = MakeFleet();
  const auto plan = warm.PlanAll();
  ASSERT_TRUE(plan.ok());

  // A twin fleet whose monitors were never warmed can replay the plan
  // frozen, but periodic reallocation has no mix to probe against.
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto cold = Fleet::Create(
      catalog,
      {FleetModelOptions{.model = "RM2"}, FleetModelOptions{.model = "WND"},
       FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  ASSERT_TRUE(cold.ok());
  FleetServeOptions serve = ShortServe();
  serve.realloc_period_s = 5.0;
  EXPECT_EQ(cold->ServeAll(*plan, serve).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(cold->ServeAll(*plan, ShortServe()).ok());
}

}  // namespace
}  // namespace kairos::core
