// Fleet::ServeAll coverage: all models co-simulated as shards of one
// shared event loop, deterministic replays, and the Fig. 12 acceptance
// property — MARGINAL periodic reallocation under a mid-run arrival-rate
// shift serves at least the total weighted QPS of the frozen-allocation
// baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fleet.h"

namespace kairos::core {
namespace {

/// The Fig. 12 fleet: RM2 (the model whose load will shift), WND, and a
/// double-traffic NCF, under one $8/hr MARGINAL budget.
Fleet MakeFleet() {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto fleet = Fleet::Create(
      catalog,
      {FleetModelOptions{.model = "RM2"}, FleetModelOptions{.model = "WND"},
       FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  EXPECT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  return *std::move(fleet);
}

FleetServeOptions ShortServe() {
  FleetServeOptions options;
  options.duration_s = 10.0;
  options.base_rate_qps = 15.0;
  options.window_s = 2.5;
  return options;
}

TEST(FleetServeTest, ModelsShareOneClockAndWindowGrid) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto result = fleet.ServeAll(*plan, ShortServe());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_EQ(result->models.size(), 3u);
  EXPECT_DOUBLE_EQ(result->duration_s, 10.0);
  EXPECT_EQ(result->reallocations, 0u);
  for (const FleetModelServe& model : result->models) {
    EXPECT_GT(model.totals.offered, 0u);
    EXPECT_GT(model.qps, 0.0);
    EXPECT_LE(model.totals.makespan, 10.0 + 1e-9);
    ASSERT_EQ(model.windows.size(), 4u);
  }
  // Shards of one event loop: every model's windows close on the shared
  // grid, bit for bit.
  for (std::size_t w = 0; w < 4; ++w) {
    const Time end = result->models[0].windows[w].end;
    EXPECT_EQ(result->models[1].windows[w].end, end);
    EXPECT_EQ(result->models[2].windows[w].end, end);
  }
  const double sum = result->models[0].qps + result->models[1].qps +
                     result->models[2].qps;
  EXPECT_NEAR(result->total_qps, sum, 1e-9);
  // NCF carries arrival_scale 2: the demand-weighted aggregate counts it
  // twice, like FleetMeasurement::total_weighted_qps.
  EXPECT_NEAR(result->total_weighted_qps, sum + result->models[2].qps, 1e-9);
}

TEST(FleetServeTest, ReplaysAreDeterministic) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  const auto a = fleet.ServeAll(*plan, ShortServe());
  const auto b = fleet.ServeAll(*plan, ShortServe());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_weighted_qps, b->total_weighted_qps);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(a->models[j].totals.offered, b->models[j].totals.offered);
    EXPECT_EQ(a->models[j].totals.served, b->models[j].totals.served);
    EXPECT_EQ(a->models[j].totals.p99_ms, b->models[j].totals.p99_ms);
  }
}

// The Fig. 12 acceptance property. One continuous co-simulation; RM2's
// arrival rate jumps 5x at t=30s. The identical arrival schedule is
// served twice: with the initial allocation frozen, and with MARGINAL
// re-invoked every 10s on observed rates. Adaptation must not lose
// throughput — and under this saturating shift it must win outright.
TEST(FleetServeTest, MarginalReallocationBeatsFrozenUnderLoadShift) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  FleetServeOptions serve;
  serve.duration_s = 60.0;
  serve.base_rate_qps = 18.0;
  serve.window_s = 5.0;
  serve.launch_lag_s = 1.0;
  serve.shifts = {FleetLoadShift{30.0, "RM2", 5.0}};

  auto frozen = fleet.ServeAll(plan.value(), serve);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();
  serve.realloc_period_s = 10.0;
  auto adaptive = fleet.ServeAll(plan.value(), serve);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();

  // Both runs saw the same arrivals — the shift changed offered load, the
  // allocator only changes service.
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(adaptive->models[j].totals.offered,
              frozen->models[j].totals.offered);
  }
  EXPECT_EQ(frozen->reallocations, 0u);
  EXPECT_EQ(adaptive->reallocations, 5u);

  EXPECT_GE(adaptive->total_weighted_qps, frozen->total_weighted_qps);
  // The win is substantial, not a tie: frozen RM2 flatlines at its planned
  // capacity while adaptive reallocation absorbs the 5x jump.
  EXPECT_GT(adaptive->total_weighted_qps, 1.1 * frozen->total_weighted_qps);
  EXPECT_GT(adaptive->models[0].qps, 2.0 * frozen->models[0].qps);

  // Reallocation respects the envelope and reacts to RM2's demand.
  double total_share = 0.0;
  for (const double share : adaptive->final_shares_per_hour) {
    total_share += share;
  }
  EXPECT_LE(total_share, fleet.options().budget_per_hour + 1e-9);
  EXPECT_GT(adaptive->final_shares_per_hour[0],
            plan->models[0].budget_per_hour);
}

TEST(FleetServeTest, WindowGridHasNoFloatingPointDuplicateAtHorizon) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());
  FleetServeOptions serve;
  serve.duration_s = 5.0;
  serve.base_rate_qps = 15.0;
  // 5/12 is not representable in binary: accumulating it must not
  // schedule a spurious zero-width 13th window just below the horizon.
  serve.window_s = 5.0 / 12.0;
  const auto result = fleet.ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const FleetModelServe& model : result->models) {
    ASSERT_EQ(model.windows.size(), 12u);
    EXPECT_GT(model.windows.back().end - model.windows.back().start, 0.1);
  }
}

TEST(FleetServeTest, ReallocationWorksWithEvaluationDrivenPlanners) {
  // KAIROS+ needs a real evaluator; the rebalance loop must wire one the
  // same way PlanAll does instead of dying with FAILED_PRECONDITION.
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 4.0;
  options.allocator = "MARGINAL";
  options.planner = "KAIROS+";
  auto fleet = Fleet::Create(catalog,
                             {FleetModelOptions{.model = "RM2"},
                              FleetModelOptions{.model = "WND"}},
                             options);
  ASSERT_TRUE(fleet.ok()) << fleet.status().ToString();
  fleet->ObserveMixAll(workload::LogNormalBatches::Production());
  search::SearchOptions search;
  search.max_evals = 4;
  const auto plan = fleet->PlanAll(search);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  FleetServeOptions serve;
  serve.duration_s = 10.0;
  serve.base_rate_qps = 10.0;
  serve.window_s = 5.0;
  serve.realloc_period_s = 5.0;
  serve.search = search;
  const auto result = fleet->ServeAll(*plan, serve);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reallocations, 1u);
}

TEST(FleetServeTest, InvalidOptionsAreRejected) {
  const Fleet fleet = MakeFleet();
  const auto plan = fleet.PlanAll();
  ASSERT_TRUE(plan.ok());

  FleetServeOptions bad_duration = ShortServe();
  bad_duration.duration_s = 0.0;
  EXPECT_EQ(fleet.ServeAll(*plan, bad_duration).status().code(),
            StatusCode::kInvalidArgument);

  FleetServeOptions unknown_shift = ShortServe();
  unknown_shift.shifts = {FleetLoadShift{1.0, "DIEN", 2.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, unknown_shift).status().code(),
            StatusCode::kNotFound);

  // A fleet member that is not part of the served plan is equally a
  // NotFound, never a silently dropped shift.
  FleetPlan partial = *plan;
  partial.models.erase(partial.models.begin());  // drop RM2
  FleetServeOptions shift_outside_plan = ShortServe();
  shift_outside_plan.shifts = {FleetLoadShift{1.0, "RM2", 2.0}};
  EXPECT_EQ(fleet.ServeAll(partial, shift_outside_plan).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(fleet.ServeAll(partial, ShortServe()).ok());

  FleetServeOptions late_shift = ShortServe();
  late_shift.shifts = {FleetLoadShift{99.0, "RM2", 2.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, late_shift).status().code(),
            StatusCode::kInvalidArgument);

  FleetServeOptions bad_scale = ShortServe();
  bad_scale.shifts = {FleetLoadShift{1.0, "RM2", 0.0}};
  EXPECT_EQ(fleet.ServeAll(*plan, bad_scale).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FleetServeTest, ReallocationNeedsWarmMonitors) {
  const Fleet warm = MakeFleet();
  const auto plan = warm.PlanAll();
  ASSERT_TRUE(plan.ok());

  // A twin fleet whose monitors were never warmed can replay the plan
  // frozen, but periodic reallocation has no mix to probe against.
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  FleetOptions options;
  options.budget_per_hour = 8.0;
  options.allocator = "MARGINAL";
  auto cold = Fleet::Create(
      catalog,
      {FleetModelOptions{.model = "RM2"}, FleetModelOptions{.model = "WND"},
       FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  ASSERT_TRUE(cold.ok());
  FleetServeOptions serve = ShortServe();
  serve.realloc_period_s = 5.0;
  EXPECT_EQ(cold->ServeAll(*plan, serve).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(cold->ServeAll(*plan, ShortServe()).ok());
}

}  // namespace
}  // namespace kairos::core
