// Telemetry tour: run a small three-model fleet co-simulation with the
// telemetry plane attached, then export what it saw — a Chrome trace-event
// JSON you can drop into https://ui.perfetto.dev (or chrome://tracing) and
// a Prometheus text exposition of the final barrier snapshot.
//
// The run exercises every instrumented layer: engine submit/advance spans
// per model shard, window/realloc/controller spans on the fleet track,
// chaos fault instants, and the counters/gauges snapshotted at every
// barrier into FleetServeResult::telemetry_samples.
//
//   ./telemetry_tour [TRACE_JSON] [METRICS_PROM]
//   ./telemetry_tour trace.json metrics.prom
#include <iostream>
#include <string>

#include "core/fleet.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

int main(int argc, char** argv) {
  const std::string trace_path = argc > 1 ? argv[1] : "trace.json";
  const std::string prom_path = argc > 2 ? argv[2] : "metrics.prom";

  // 1. A small fleet under one $6/hr budget: RM2, WND, and a
  //    double-traffic NCF, MARGINAL water-filling split.
  const kairos::cloud::Catalog catalog = kairos::cloud::Catalog::PaperPool();
  kairos::core::FleetOptions options;
  options.budget_per_hour = 6.0;
  options.allocator = "MARGINAL";
  auto fleet = kairos::core::Fleet::Create(
      catalog,
      {kairos::core::FleetModelOptions{.model = "RM2"},
       kairos::core::FleetModelOptions{.model = "WND"},
       kairos::core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      options);
  if (!fleet.ok()) {
    std::cerr << fleet.status().ToString() << "\n";
    return 1;
  }
  fleet->ObserveMixAll(kairos::workload::LogNormalBatches::Production());
  auto plan = fleet->PlanAll();
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }

  // 2. The telemetry plane: shard names must match the plan's model
  //    order; a "fleet" track is appended for the driving thread.
  auto telemetry = kairos::telemetry::Telemetry::Create({"RM2", "WND", "NCF"});
  if (!telemetry.ok()) {
    std::cerr << telemetry.status().ToString() << "\n";
    return 1;
  }

  // 3. A busy 20-second run: periodic reallocation, a mid-run load surge
  //    on RM2, and a spot-preemption chaos injector — so the trace has
  //    realloc spans, controller decisions and fault instants to look at.
  kairos::core::FleetServeOptions serve;
  serve.duration_s = 20.0;
  serve.base_rate_qps = 25.0;
  serve.window_s = 2.5;
  serve.realloc_period_s = 7.5;
  serve.shifts = {kairos::core::FleetLoadShift{8.0, "RM2", 4.0}};
  serve.chaos = "SPOT_PREEMPTION";
  serve.telemetry = telemetry->get();
  auto result = fleet->ServeAll(*plan, serve);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "served " << result->total_qps << " qps total across "
            << result->models.size() << " models; "
            << result->telemetry_samples.size() << " barrier samples, "
            << (*telemetry)->tracer().AllEvents().size()
            << " trace events recorded\n";

  // 4. Export. The Chrome trace gets one track per model shard plus the
  //    fleet track; the Prometheus text is the final barrier snapshot.
  const auto write_trace =
      kairos::telemetry::WriteChromeTrace((*telemetry)->tracer(), trace_path);
  if (!write_trace.ok()) {
    std::cerr << write_trace.ToString() << "\n";
    return 1;
  }
  const auto write_prom = kairos::telemetry::WritePrometheus(
      result->telemetry_samples.back().metrics, prom_path);
  if (!write_prom.ok()) {
    std::cerr << write_prom.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << trace_path << " (load it at ui.perfetto.dev) and "
            << prom_path << "\n";

  // 5. A taste of the numbers without leaving the terminal.
  const auto& last = result->telemetry_samples.back().metrics;
  for (const auto& metric : last.metrics) {
    if (metric.name == "kairos_queries_served_total" ||
        metric.name == "kairos_queries_offered_total" ||
        metric.name == "kairos_chaos_faults_total" ||
        metric.name == "kairos_control_actions_total") {
      std::cout << "  " << metric.name << " = " << metric.value << "\n";
    }
  }
  return 0;
}
