// Quickstart: plan a heterogeneous configuration for one model under a
// cost budget, deploy it with the Kairos query distributor, and compare
// its allowable throughput against the best homogeneous deployment.
//
//   ./quickstart [MODEL] [BUDGET_PER_HOUR]
//   ./quickstart RM2 2.5
#include <iostream>
#include <string>

#include "cloud/config_space.h"
#include "common/table.h"
#include "core/kairos.h"

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "RM2";
  const double budget = argc > 2 ? std::stod(argv[2]) : 2.5;

  // 1. The paper's instance pool (Table 4) and workload mix.
  const kairos::cloud::Catalog catalog = kairos::cloud::Catalog::PaperPool();
  const auto mix = kairos::workload::LogNormalBatches::Production();

  // 2. Stand up Kairos for the model and let it observe the workload.
  kairos::core::KairosOptions options;
  options.budget_per_hour = budget;
  kairos::core::Kairos kairos(catalog, model, options);
  kairos.ObserveMix(mix);

  // 3. One-shot planning: no configuration is evaluated online.
  const kairos::core::Plan plan = kairos.PlanConfiguration();
  std::cout << "model " << model << "  qos " << kairos.qos_ms() << " ms"
            << "  budget $" << budget << "/hr\n"
            << "search space: " << plan.ranked.size() << " configurations\n"
            << "chosen config " << plan.config.ToString() << "  (rank "
            << plan.selection.chosen_rank << " by upper bound, "
            << (plan.selection.used_distance_rule ? "min-SSE rule"
                                                  : "top-3 agreement")
            << ", cost $" << plan.config.CostPerHour(catalog) << "/hr)\n";

  // 4. Measure allowable throughput: Kairos pick vs. best homogeneous.
  kairos::serving::EvalOptions eval;
  eval.queries = 1500;
  eval.rate_guess = plan.ranked.front().upper_bound * 0.5;

  const auto hetero = kairos.MeasureThroughput(plan.config, mix, eval);
  const kairos::cloud::Config homo =
      kairos::cloud::BestHomogeneous(catalog, budget);
  const auto homo_result = kairos.MeasureThroughput(homo, mix, eval);
  // The paper scales homogeneous throughput up to the full budget to give
  // the baseline every advantage (Sec. 8.1).
  const double homo_scaled =
      homo_result.qps * budget / homo.CostPerHour(catalog);

  kairos::TextTable table({"deployment", "config", "QPS", "vs homogeneous"});
  table.AddRow({"homogeneous (scaled)", homo.ToString(),
                kairos::TextTable::Num(homo_scaled), "1.00x"});
  table.AddRow({"Kairos", plan.config.ToString(),
                kairos::TextTable::Num(hetero.qps),
                kairos::TextTable::Num(hetero.qps / homo_scaled) + "x"});
  table.Print(std::cout, "quickstart: " + model);

  // 5. Show the top of the upper-bound ranking Kairos planned from.
  kairos::TextTable top({"rank", "config", "upper bound (QPS)"});
  for (std::size_t i = 0; i < 5 && i < plan.ranked.size(); ++i) {
    top.AddRow({std::to_string(i), plan.ranked[i].config.ToString(),
                kairos::TextTable::Num(plan.ranked[i].upper_bound)});
  }
  top.Print(std::cout, "top upper-bound candidates");
  return 0;
}
