// Quickstart: plan a heterogeneous configuration for one model under a
// cost budget, deploy it with the Kairos query distributor, and compare
// its allowable throughput against the best homogeneous deployment.
//
// Uses the registry-driven API end to end: Kairos::Create returns a
// StatusOr (an unknown model prints the Table-3 alternatives instead of
// throwing), and the planning strategy is looked up by name in the
// PlannerRegistry.
//
//   ./quickstart [MODEL] [BUDGET_PER_HOUR] [PLANNER]
//   ./quickstart RM2 2.5 KAIROS
#include <iostream>
#include <string>

#include "cloud/config_space.h"
#include "common/table.h"
#include "core/kairos.h"
#include "core/planner_backend.h"

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "RM2";
  const double budget = argc > 2 ? std::stod(argv[2]) : 2.5;
  const std::string planner = argc > 3 ? argv[3] : "KAIROS";

  // 1. The paper's instance pool (Table 4) and workload mix.
  const kairos::cloud::Catalog catalog = kairos::cloud::Catalog::PaperPool();
  const auto mix = kairos::workload::LogNormalBatches::Production();

  // 2. Stand up Kairos for the model. Errors are Status values, not
  //    exceptions: a typo in MODEL prints the registered alternatives.
  kairos::core::KairosOptions options;
  options.budget_per_hour = budget;
  auto kairos = kairos::core::Kairos::Create(catalog, model, options);
  if (!kairos.ok()) {
    std::cerr << kairos.status().ToString() << "\n";
    return 1;
  }
  kairos->ObserveMix(mix);

  // 3. Plan with a registry-selected backend (one-shot KAIROS by default;
  //    try HOMOGENEOUS to see the baseline this facade beats).
  auto backend = kairos::PlannerRegistry::Global().Build(planner);
  if (!backend.ok()) {
    std::cerr << backend.status().ToString() << "\n";
    return 1;
  }
  kairos::core::PlanRequest request;
  request.monitor = &kairos->monitor();
  if ((*backend)->NeedsEvaluations()) {
    // Evaluation-driven backends measure real throughput per candidate.
    request.eval = [&](const kairos::cloud::Config& config) {
      kairos::serving::EvalOptions eval;
      eval.queries = 400;
      return kairos->MeasureThroughput(config, mix, eval).qps;
    };
    request.search.max_evals = 20;
  }
  const auto outcome = (*backend)->Plan(
      kairos::core::PlannerContext{&catalog, &kairos->truth(),
                                   kairos->qos_ms(), budget},
      request);
  if (!outcome.ok()) {
    std::cerr << (*backend)->Name() << " failed: "
              << outcome.status().ToString() << "\n";
    return 1;
  }
  std::cout << "model " << model << "  qos " << kairos->qos_ms() << " ms"
            << "  budget $" << budget << "/hr  planner "
            << (*backend)->Name() << "\n"
            << "chosen config " << outcome->config.ToString() << "  (cost $"
            << outcome->config.CostPerHour(catalog) << "/hr, "
            << outcome->evaluations << " online evaluations)\n";
  if (outcome->plan.has_value()) {
    std::cout << "search space: " << outcome->plan->ranked.size()
              << " configurations, rank " << outcome->plan->selection.chosen_rank
              << " by upper bound, "
              << (outcome->plan->selection.used_distance_rule
                      ? "min-SSE rule"
                      : "top-3 agreement")
              << "\n";
  }

  // 4. Measure allowable throughput: the planned pick vs. best homogeneous.
  kairos::serving::EvalOptions eval;
  eval.queries = 1500;
  eval.rate_guess =
      outcome->expected_qps > 0.0 ? outcome->expected_qps * 0.5 : 20.0;

  const auto hetero = kairos->MeasureThroughput(outcome->config, mix, eval);
  const kairos::cloud::Config homo =
      kairos::cloud::BestHomogeneous(catalog, budget);
  const auto homo_result = kairos->MeasureThroughput(homo, mix, eval);
  // The paper scales homogeneous throughput up to the full budget to give
  // the baseline every advantage (Sec. 8.1).
  const double homo_scaled =
      homo_result.qps * budget / homo.CostPerHour(catalog);

  kairos::TextTable table({"deployment", "config", "QPS", "vs homogeneous"});
  table.AddRow({"homogeneous (scaled)", homo.ToString(),
                kairos::TextTable::Num(homo_scaled), "1.00x"});
  table.AddRow({"Kairos", outcome->config.ToString(),
                kairos::TextTable::Num(hetero.qps),
                kairos::TextTable::Num(hetero.qps / homo_scaled) + "x"});
  table.Print(std::cout, "quickstart: " + model);

  // 5. Show the top of the upper-bound ranking when the backend ranked one.
  if (outcome->plan.has_value()) {
    kairos::TextTable top({"rank", "config", "upper bound (QPS)"});
    for (std::size_t i = 0; i < 5 && i < outcome->plan->ranked.size(); ++i) {
      top.AddRow({std::to_string(i),
                  outcome->plan->ranked[i].config.ToString(),
                  kairos::TextTable::Num(outcome->plan->ranked[i].upper_bound)});
    }
    top.Print(std::cout, "top upper-bound candidates");
  }
  return 0;
}
