// End-to-end serving scenario: deploy one heterogeneous configuration and
// serve the *same* recorded query trace under every distribution scheme,
// reporting served count, p99 latency, QoS violations, and per-type
// utilization — then show how Kairos re-plans when the workload shifts
// from the production mix to a Gaussian mix (the Fig. 12 situation).
//
// Every scheme registered in the PolicyRegistry is exercised — adding a
// new policy .cc with a registrar automatically adds a row here.
//
//   ./serving_comparison [MODEL] [RATE_QPS]
#include <iostream>
#include <string>

#include "common/table.h"
#include "core/kairos.h"
#include "policy/registry.h"
#include "serving/system.h"
#include "workload/trace.h"

int main(int argc, char** argv) {
  using namespace kairos;
  const std::string model = argc > 1 ? argv[1] : "RM2";
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  auto created = core::Kairos::Create(catalog, model);
  if (!created.ok()) {
    std::cerr << created.status().ToString() << "\n";
    return 1;
  }
  core::Kairos& kairos = *created;
  kairos.ObserveMix(mix);
  const core::Plan plan = kairos.PlanConfiguration();
  const double rate =
      argc > 2 ? std::stod(argv[2]) : plan.ranked.front().upper_bound * 0.6;

  Rng rng(11);
  const workload::Trace trace = workload::Trace::Generate(
      workload::PoissonArrivals(rate), mix, 4000, rng);
  std::cout << "model " << model << ", config " << plan.config.ToString()
            << ", offered load " << TextTable::Num(rate) << " QPS, "
            << trace.size() << " queries\n";

  // A sensible DRS threshold: the largest batch any allocated auxiliary
  // type can serve within QoS (everything above must go to the base pool).
  int drs_threshold = 0;
  for (const cloud::TypeId t : catalog.AuxiliaryTypes()) {
    if (plan.config.Count(t) > 0) {
      drs_threshold = std::max(
          drs_threshold, kairos.truth().MaxQosBatch(t, kairos.qos_ms()));
    }
  }

  TextTable table({"scheme", "served", "violations", "p99 (ms)", "mean (ms)",
                   "GPU busy (%)", "CPU busy (%)"});
  for (const std::string& scheme : PolicyRegistry::Global().ListNames()) {
    policy::KnobMap knobs;
    if (scheme == "DRS") knobs["threshold"] = drs_threshold;
    auto policy = PolicyRegistry::Global().Build(scheme, knobs);
    if (!policy.ok()) {
      std::cerr << policy.status().ToString() << "\n";
      return 1;
    }
    serving::SystemSpec spec;
    spec.catalog = &catalog;
    spec.config = plan.config;
    spec.truth = &kairos.truth();
    spec.qos_ms = kairos.qos_ms();
    serving::RunOptions run_options;
    run_options.abort_violation_fraction = 0.0;  // serve everything
    serving::ServingSystem system(spec, *std::move(policy),
                                  serving::PredictorOptions{}, run_options);
    const serving::RunResult run = system.Run(trace);

    double gpu_busy = 0.0, cpu_busy = 0.0;
    double gpu_count = 0.0, cpu_count = 0.0;
    for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
      const double nodes = plan.config.Count(t);
      if (nodes == 0) continue;
      if (catalog[t].is_base) {
        gpu_busy += run.per_type_busy[t];
        gpu_count += nodes;
      } else {
        cpu_busy += run.per_type_busy[t];
        cpu_count += nodes;
      }
    }
    const double horizon = run.makespan;
    auto pct = [&](double busy, double nodes) {
      return nodes > 0.0 && horizon > 0.0
                 ? TextTable::Num(100.0 * busy / (nodes * horizon), 1)
                 : std::string("-");
    };
    table.AddRow({scheme, std::to_string(run.served),
                  std::to_string(run.violations),
                  TextTable::Num(run.p99_ms, 1), TextTable::Num(run.mean_ms, 1),
                  pct(gpu_busy, gpu_count), pct(cpu_busy, cpu_count)});
  }
  table.Print(std::cout, "one trace, every registered distribution scheme");

  // Workload shift: re-plan on the new mix without any online evaluation.
  const workload::GaussianBatches shifted(850.0, 60.0);
  kairos.ResetMonitor();
  kairos.ObserveMix(shifted);
  const core::Plan replan = kairos.PlanConfiguration();
  std::cout << "\nworkload shifted to " << shifted.Name()
            << ": Kairos re-plans " << plan.config.ToString() << " -> "
            << replan.config.ToString() << " in one shot ("
            << "0 online evaluations)\n";
  return 0;
}
