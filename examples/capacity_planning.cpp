// Capacity planning: sweep the hourly cost budget and show, for each
// budget, the configuration Kairos plans, its estimated upper bound, its
// measured allowable throughput, and the queries-per-dollar efficiency.
// This is the "what do I rent?" workflow a service operator runs before
// launching or rescaling an inference service.
//
//   ./capacity_planning [MODEL]
#include <iostream>
#include <string>

#include "cloud/config_space.h"
#include "common/table.h"
#include "core/kairos.h"

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "DIEN";
  const kairos::cloud::Catalog catalog = kairos::cloud::Catalog::PaperPool();
  const auto mix = kairos::workload::LogNormalBatches::Production();

  kairos::TextTable table({"budget ($/hr)", "planned config", "cost ($/hr)",
                           "upper bound (QPS)", "measured (QPS)",
                           "QPS per $/hr"});
  for (const double budget : {1.0, 1.5, 2.0, 2.5, 4.0, 6.0, 10.0}) {
    kairos::core::KairosOptions options;
    options.budget_per_hour = budget;
    kairos::core::Kairos kairos(catalog, model, options);
    kairos.ObserveMix(mix);

    const kairos::core::Plan plan = kairos.PlanConfiguration();
    kairos::serving::EvalOptions eval;
    eval.queries = 1000;
    eval.rate_guess = plan.ranked.front().upper_bound * 0.5;
    const auto measured = kairos.MeasureThroughput(plan.config, mix, eval);
    const double cost = plan.config.CostPerHour(catalog);
    table.AddRow({kairos::TextTable::Num(budget, 2), plan.config.ToString(),
                  kairos::TextTable::Num(cost, 3),
                  kairos::TextTable::Num(plan.ranked.front().upper_bound),
                  kairos::TextTable::Num(measured.qps),
                  kairos::TextTable::Num(measured.qps / cost, 1)});
  }
  table.Print(std::cout, "capacity planning for " + model +
                             " (production batch mix, Table-3 QoS)");
  std::cout << "Each row is a one-shot plan: no configuration was evaluated "
               "online before the chosen one.\n";
  return 0;
}
