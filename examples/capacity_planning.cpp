// Capacity planning, the "what do I rent?" workflow an inference-service
// operator runs before launching or rescaling:
//
//   1. single-model budget sweep — for each hourly budget, the config a
//      registry-selected planner backend picks, its estimated upper
//      bound, measured allowable throughput, and queries-per-dollar;
//   2. multi-model fleet — several Table-3 models co-planned under ONE
//      global budget by kairos::Fleet: a registry-selected allocator
//      splits the budget (STATIC = by weight, MARGINAL = water-filling
//      on probed marginal QPS per dollar), a registry-selected planner
//      backend (KAIROS, KAIROS+, HOMOGENEOUS, BRUTE-FORCE) plans each
//      model inside its share, and MeasureAll reports the aggregate
//      (the paper's Fig. 14 co-design scenario generalized to
//      multi-tenant serving).
//
//   ./capacity_planning [MODEL] [PLANNER] [ALLOCATOR]
#include <iostream>
#include <string>

#include "cloud/config_space.h"
#include "common/table.h"
#include "core/fleet.h"
#include "core/kairos.h"
#include "core/planner_backend.h"

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "DIEN";
  const std::string planner = argc > 2 ? argv[2] : "KAIROS";
  const std::string allocator = argc > 3 ? argv[3] : "MARGINAL";
  const kairos::cloud::Catalog catalog = kairos::cloud::Catalog::PaperPool();
  const auto mix = kairos::workload::LogNormalBatches::Production();

  auto backend = kairos::PlannerRegistry::Global().Build(planner);
  if (!backend.ok()) {
    std::cerr << backend.status().ToString() << "\n";
    return 1;
  }

  // -------------------------------------------------------------------
  // Part 1: single-model budget sweep.
  // -------------------------------------------------------------------
  kairos::TextTable table({"budget ($/hr)", "planned config", "cost ($/hr)",
                           "expected (QPS)", "measured (QPS)",
                           "QPS per $/hr"});
  for (const double budget : {1.0, 1.5, 2.0, 2.5, 4.0, 6.0, 10.0}) {
    kairos::core::KairosOptions options;
    options.budget_per_hour = budget;
    auto kairos = kairos::core::Kairos::Create(catalog, model, options);
    if (!kairos.ok()) {
      std::cerr << kairos.status().ToString() << "\n";
      return 1;
    }
    kairos->ObserveMix(mix);

    kairos::core::PlanRequest request;
    request.monitor = &kairos->monitor();
    if ((*backend)->NeedsEvaluations()) {
      // KAIROS+ / BRUTE-FORCE measure real throughput per candidate.
      request.eval = [&](const kairos::cloud::Config& config) {
        kairos::serving::EvalOptions eval;
        eval.queries = 400;
        return kairos->MeasureThroughput(config, mix, eval).qps;
      };
      request.search.max_evals = 20;
    }
    const auto outcome = (*backend)->Plan(
        kairos::core::PlannerContext{&catalog, &kairos->truth(),
                                     kairos->qos_ms(), budget},
        request);
    if (!outcome.ok()) {
      // An infeasible budget is an answer too, not a crash.
      table.AddRow({kairos::TextTable::Num(budget, 2),
                    outcome.status().ToString(), "-", "-", "-", "-"});
      continue;
    }
    kairos::serving::EvalOptions eval;
    eval.queries = 1000;
    eval.rate_guess =
        outcome->expected_qps > 0.0 ? outcome->expected_qps * 0.5 : 20.0;
    const auto measured =
        kairos->MeasureThroughput(outcome->config, mix, eval);
    const double cost = outcome->config.CostPerHour(catalog);
    table.AddRow({kairos::TextTable::Num(budget, 2),
                  outcome->config.ToString(),
                  kairos::TextTable::Num(cost, 3),
                  kairos::TextTable::Num(outcome->expected_qps),
                  kairos::TextTable::Num(measured.qps),
                  kairos::TextTable::Num(measured.qps / cost, 1)});
  }
  table.Print(std::cout, "capacity planning for " + model + " (planner " +
                             planner + ", production batch mix)");

  // -------------------------------------------------------------------
  // Part 2: a fleet of models under one shared budget.
  // -------------------------------------------------------------------
  kairos::core::FleetModelOptions rm2;
  rm2.model = "RM2";
  rm2.weight = 2.0;  // the flagship model earns twice the budget share
  kairos::core::FleetModelOptions wnd;
  wnd.model = "WND";
  wnd.weight = 1.0;
  kairos::core::FleetModelOptions dien;
  dien.model = "DIEN";
  dien.weight = 1.0;

  kairos::core::FleetOptions fleet_options;
  fleet_options.budget_per_hour = 7.5;  // one global $/hr envelope
  fleet_options.allocator = allocator;  // STATIC or MARGINAL
  fleet_options.planner = planner;      // same backend as the sweep above
  auto fleet = kairos::Fleet::Create(catalog, {rm2, wnd, dien}, fleet_options);
  if (!fleet.ok()) {
    std::cerr << fleet.status().ToString() << "\n";
    return 1;
  }
  fleet->ObserveMixAll(mix);

  // Evaluation-driven backends (KAIROS+, BRUTE-FORCE) measure real
  // throughput per candidate inside PlanAll; keep that bounded.
  kairos::search::SearchOptions fleet_search;
  fleet_search.max_evals = 20;
  const auto plan = fleet->PlanAll(fleet_search);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  kairos::serving::EvalOptions eval;
  eval.queries = 800;
  const auto measured = fleet->MeasureAll(*plan, mix, eval);
  if (!measured.ok()) {
    std::cerr << measured.status().ToString() << "\n";
    return 1;
  }

  kairos::TextTable fleet_table({"model", "share ($/hr)", "planned config",
                                 "cost ($/hr)", "qos (ms)", "measured (QPS)"});
  for (std::size_t i = 0; i < plan->models.size(); ++i) {
    const auto& m = plan->models[i];
    fleet_table.AddRow({m.model, kairos::TextTable::Num(m.budget_per_hour, 3),
                        m.outcome.config.ToString(),
                        kairos::TextTable::Num(m.cost_per_hour, 3),
                        kairos::TextTable::Num(m.qos_ms, 1),
                        kairos::TextTable::Num(measured->models[i].result.qps)});
  }
  fleet_table.Print(
      std::cout,
      "fleet of " + std::to_string(plan->models.size()) +
          " models under one $" +
          kairos::TextTable::Num(fleet_options.budget_per_hour, 2) +
          "/hr budget (" + allocator + " allocator, total cost $" +
          kairos::TextTable::Num(plan->total_cost_per_hour, 3) +
          "/hr, aggregate " + kairos::TextTable::Num(measured->total_qps) +
          " QPS)");
  std::cout << "Each model was planned inside the share the " << allocator
            << " allocator granted it; the fleet never exceeds the global "
               "budget. Try `capacity_planning " << model << " " << planner
            << " STATIC` to compare against the weight-proportional split.\n";
  return 0;
}
