// Runs the miniature *real* inference engine (embedding tables + MLP
// towers on a thread pool) for each Table-3 model, measures wall-clock
// latency across batch sizes, and verifies the two facts the simulator's
// latency surfaces encode:
//   1. latency grows linearly with batch size (Pearson > 0.99, Sec. 5.1);
//   2. the relative cost structure differs by model class (embedding-heavy
//      RM2 vs. tower-heavy MT-WND).
//
//   ./infer_engine_demo [THREADS]
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "infer/rec_models.h"

int main(int argc, char** argv) {
  using namespace kairos;
  const std::size_t threads =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 0;
  infer::ThreadPool pool(threads);
  std::cout << "thread pool: " << pool.thread_count() << " worker(s)\n";

  const std::vector<std::size_t> batches = {8, 32, 64, 128, 256, 512};
  TextTable table({"model", "lat@8 (ms)", "lat@64", "lat@256", "lat@512",
                   "Pearson(batch, latency)", "ms per item (slope)"});
  for (const std::string name : {"NCF", "RM2", "WND", "MT-WND", "DIEN"}) {
    const auto model = infer::BuildRecModel(name);
    const std::vector<double> lat =
        infer::MeasureLatencyMs(*model, batches, pool, 3);
    std::vector<double> xs(batches.begin(), batches.end());
    const double r = PearsonCorrelation(xs, lat);
    // Least-squares slope as the per-item marginal cost.
    const double mx = Mean(xs), my = Mean(lat);
    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sxy += (xs[i] - mx) * (lat[i] - my);
      sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    table.AddRow({name, TextTable::Num(lat[0], 3), TextTable::Num(lat[2], 3),
                  TextTable::Num(lat[4], 3), TextTable::Num(lat[5], 3),
                  TextTable::Num(r, 4), TextTable::Num(sxy / sxx, 5)});
  }
  table.Print(std::cout,
              "miniature inference engine: latency vs batch size (real "
              "computation, not simulated)");
  std::cout << "The near-1 Pearson correlations are the Sec. 5.1 property "
               "that makes Kairos's latency prediction trivial.\n";
  return 0;
}
