# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/api_test[1]_include.cmake")
include("/root/repo/build/assign_test[1]_include.cmake")
include("/root/repo/build/billing_test[1]_include.cmake")
include("/root/repo/build/cloud_test[1]_include.cmake")
include("/root/repo/build/common_test[1]_include.cmake")
include("/root/repo/build/core_test[1]_include.cmake")
include("/root/repo/build/infer_test[1]_include.cmake")
include("/root/repo/build/integration_test[1]_include.cmake")
include("/root/repo/build/latency_test[1]_include.cmake")
include("/root/repo/build/oracle_test[1]_include.cmake")
include("/root/repo/build/policy_test[1]_include.cmake")
include("/root/repo/build/property_test[1]_include.cmake")
include("/root/repo/build/queueing_test[1]_include.cmake")
include("/root/repo/build/rpc_test[1]_include.cmake")
include("/root/repo/build/search_test[1]_include.cmake")
include("/root/repo/build/serving_test[1]_include.cmake")
include("/root/repo/build/sim_test[1]_include.cmake")
include("/root/repo/build/ub_test[1]_include.cmake")
include("/root/repo/build/workload_io_test[1]_include.cmake")
include("/root/repo/build/workload_test[1]_include.cmake")
