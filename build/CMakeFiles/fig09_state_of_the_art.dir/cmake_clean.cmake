file(REMOVE_RECURSE
  "CMakeFiles/fig09_state_of_the_art.dir/bench/fig09_state_of_the_art.cc.o"
  "CMakeFiles/fig09_state_of_the_art.dir/bench/fig09_state_of_the_art.cc.o.d"
  "fig09_state_of_the_art"
  "fig09_state_of_the_art.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_state_of_the_art.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
