# Empty dependencies file for ablation_kairos_knobs.
# This may be replaced when dependencies are built.
