file(REMOVE_RECURSE
  "CMakeFiles/ablation_kairos_knobs.dir/bench/ablation_kairos_knobs.cc.o"
  "CMakeFiles/ablation_kairos_knobs.dir/bench/ablation_kairos_knobs.cc.o.d"
  "ablation_kairos_knobs"
  "ablation_kairos_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kairos_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
