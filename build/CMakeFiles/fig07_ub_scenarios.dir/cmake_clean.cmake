file(REMOVE_RECURSE
  "CMakeFiles/fig07_ub_scenarios.dir/bench/fig07_ub_scenarios.cc.o"
  "CMakeFiles/fig07_ub_scenarios.dir/bench/fig07_ub_scenarios.cc.o.d"
  "fig07_ub_scenarios"
  "fig07_ub_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ub_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
