# Empty dependencies file for fig07_ub_scenarios.
# This may be replaced when dependencies are built.
