# Empty dependencies file for fig14_codesign.
# This may be replaced when dependencies are built.
