file(REMOVE_RECURSE
  "CMakeFiles/fig14_codesign.dir/bench/fig14_codesign.cc.o"
  "CMakeFiles/fig14_codesign.dir/bench/fig14_codesign.cc.o.d"
  "fig14_codesign"
  "fig14_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
