file(REMOVE_RECURSE
  "CMakeFiles/fig02_annealing_exploration.dir/bench/fig02_annealing_exploration.cc.o"
  "CMakeFiles/fig02_annealing_exploration.dir/bench/fig02_annealing_exploration.cc.o.d"
  "fig02_annealing_exploration"
  "fig02_annealing_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_annealing_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
