# Empty dependencies file for fig02_annealing_exploration.
# This may be replaced when dependencies are built.
