# Empty dependencies file for serving_comparison.
# This may be replaced when dependencies are built.
