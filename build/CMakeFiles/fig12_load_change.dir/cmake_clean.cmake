file(REMOVE_RECURSE
  "CMakeFiles/fig12_load_change.dir/bench/fig12_load_change.cc.o"
  "CMakeFiles/fig12_load_change.dir/bench/fig12_load_change.cc.o.d"
  "fig12_load_change"
  "fig12_load_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_load_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
