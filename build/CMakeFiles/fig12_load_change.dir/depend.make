# Empty dependencies file for fig12_load_change.
# This may be replaced when dependencies are built.
