# Empty dependencies file for fig15_budget_qos.
# This may be replaced when dependencies are built.
