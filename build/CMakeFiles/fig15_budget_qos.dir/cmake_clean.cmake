file(REMOVE_RECURSE
  "CMakeFiles/fig15_budget_qos.dir/bench/fig15_budget_qos.cc.o"
  "CMakeFiles/fig15_budget_qos.dir/bench/fig15_budget_qos.cc.o.d"
  "fig15_budget_qos"
  "fig15_budget_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_budget_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
