# Empty dependencies file for kairos_objects.
# This may be replaced when dependencies are built.
