
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/brute_force.cc" "CMakeFiles/kairos_objects.dir/src/assign/brute_force.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/assign/brute_force.cc.o.d"
  "/root/repo/src/assign/hungarian.cc" "CMakeFiles/kairos_objects.dir/src/assign/hungarian.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/assign/hungarian.cc.o.d"
  "/root/repo/src/assign/jv.cc" "CMakeFiles/kairos_objects.dir/src/assign/jv.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/assign/jv.cc.o.d"
  "/root/repo/src/cloud/billing.cc" "CMakeFiles/kairos_objects.dir/src/cloud/billing.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/cloud/billing.cc.o.d"
  "/root/repo/src/cloud/config.cc" "CMakeFiles/kairos_objects.dir/src/cloud/config.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/cloud/config.cc.o.d"
  "/root/repo/src/cloud/config_space.cc" "CMakeFiles/kairos_objects.dir/src/cloud/config_space.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/cloud/config_space.cc.o.d"
  "/root/repo/src/cloud/instance_type.cc" "CMakeFiles/kairos_objects.dir/src/cloud/instance_type.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/cloud/instance_type.cc.o.d"
  "/root/repo/src/common/env.cc" "CMakeFiles/kairos_objects.dir/src/common/env.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/common/env.cc.o.d"
  "/root/repo/src/common/matrix.cc" "CMakeFiles/kairos_objects.dir/src/common/matrix.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/common/matrix.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/kairos_objects.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/kairos_objects.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/kairos_objects.dir/src/common/table.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/common/table.cc.o.d"
  "/root/repo/src/core/fleet.cc" "CMakeFiles/kairos_objects.dir/src/core/fleet.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/core/fleet.cc.o.d"
  "/root/repo/src/core/kairos.cc" "CMakeFiles/kairos_objects.dir/src/core/kairos.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/core/kairos.cc.o.d"
  "/root/repo/src/core/planner.cc" "CMakeFiles/kairos_objects.dir/src/core/planner.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/core/planner.cc.o.d"
  "/root/repo/src/core/planner_backend.cc" "CMakeFiles/kairos_objects.dir/src/core/planner_backend.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/core/planner_backend.cc.o.d"
  "/root/repo/src/core/runtime.cc" "CMakeFiles/kairos_objects.dir/src/core/runtime.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/core/runtime.cc.o.d"
  "/root/repo/src/infer/net.cc" "CMakeFiles/kairos_objects.dir/src/infer/net.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/infer/net.cc.o.d"
  "/root/repo/src/infer/ops.cc" "CMakeFiles/kairos_objects.dir/src/infer/ops.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/infer/ops.cc.o.d"
  "/root/repo/src/infer/rec_models.cc" "CMakeFiles/kairos_objects.dir/src/infer/rec_models.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/infer/rec_models.cc.o.d"
  "/root/repo/src/infer/tensor.cc" "CMakeFiles/kairos_objects.dir/src/infer/tensor.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/infer/tensor.cc.o.d"
  "/root/repo/src/infer/thread_pool.cc" "CMakeFiles/kairos_objects.dir/src/infer/thread_pool.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/infer/thread_pool.cc.o.d"
  "/root/repo/src/latency/latency_model.cc" "CMakeFiles/kairos_objects.dir/src/latency/latency_model.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/latency/latency_model.cc.o.d"
  "/root/repo/src/latency/model_zoo.cc" "CMakeFiles/kairos_objects.dir/src/latency/model_zoo.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/latency/model_zoo.cc.o.d"
  "/root/repo/src/latency/noise.cc" "CMakeFiles/kairos_objects.dir/src/latency/noise.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/latency/noise.cc.o.d"
  "/root/repo/src/oracle/oracle.cc" "CMakeFiles/kairos_objects.dir/src/oracle/oracle.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/oracle/oracle.cc.o.d"
  "/root/repo/src/policy/clockwork_policy.cc" "CMakeFiles/kairos_objects.dir/src/policy/clockwork_policy.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/policy/clockwork_policy.cc.o.d"
  "/root/repo/src/policy/drs_policy.cc" "CMakeFiles/kairos_objects.dir/src/policy/drs_policy.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/policy/drs_policy.cc.o.d"
  "/root/repo/src/policy/kairos_policy.cc" "CMakeFiles/kairos_objects.dir/src/policy/kairos_policy.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/policy/kairos_policy.cc.o.d"
  "/root/repo/src/policy/partitioned_policy.cc" "CMakeFiles/kairos_objects.dir/src/policy/partitioned_policy.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/policy/partitioned_policy.cc.o.d"
  "/root/repo/src/policy/registry.cc" "CMakeFiles/kairos_objects.dir/src/policy/registry.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/policy/registry.cc.o.d"
  "/root/repo/src/policy/ribbon_policy.cc" "CMakeFiles/kairos_objects.dir/src/policy/ribbon_policy.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/policy/ribbon_policy.cc.o.d"
  "/root/repo/src/queueing/mmc.cc" "CMakeFiles/kairos_objects.dir/src/queueing/mmc.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/queueing/mmc.cc.o.d"
  "/root/repo/src/rpc/channel.cc" "CMakeFiles/kairos_objects.dir/src/rpc/channel.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/rpc/channel.cc.o.d"
  "/root/repo/src/rpc/netem.cc" "CMakeFiles/kairos_objects.dir/src/rpc/netem.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/rpc/netem.cc.o.d"
  "/root/repo/src/search/annealing.cc" "CMakeFiles/kairos_objects.dir/src/search/annealing.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/annealing.cc.o.d"
  "/root/repo/src/search/bayes_opt.cc" "CMakeFiles/kairos_objects.dir/src/search/bayes_opt.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/bayes_opt.cc.o.d"
  "/root/repo/src/search/genetic.cc" "CMakeFiles/kairos_objects.dir/src/search/genetic.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/genetic.cc.o.d"
  "/root/repo/src/search/gp.cc" "CMakeFiles/kairos_objects.dir/src/search/gp.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/gp.cc.o.d"
  "/root/repo/src/search/hill_climb.cc" "CMakeFiles/kairos_objects.dir/src/search/hill_climb.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/hill_climb.cc.o.d"
  "/root/repo/src/search/kairos_plus.cc" "CMakeFiles/kairos_objects.dir/src/search/kairos_plus.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/kairos_plus.cc.o.d"
  "/root/repo/src/search/random_search.cc" "CMakeFiles/kairos_objects.dir/src/search/random_search.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/random_search.cc.o.d"
  "/root/repo/src/search/search.cc" "CMakeFiles/kairos_objects.dir/src/search/search.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/search/search.cc.o.d"
  "/root/repo/src/serving/latency_predictor.cc" "CMakeFiles/kairos_objects.dir/src/serving/latency_predictor.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/serving/latency_predictor.cc.o.d"
  "/root/repo/src/serving/system.cc" "CMakeFiles/kairos_objects.dir/src/serving/system.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/serving/system.cc.o.d"
  "/root/repo/src/serving/throughput_eval.cc" "CMakeFiles/kairos_objects.dir/src/serving/throughput_eval.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/serving/throughput_eval.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "CMakeFiles/kairos_objects.dir/src/sim/event_queue.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "CMakeFiles/kairos_objects.dir/src/sim/simulator.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/sim/simulator.cc.o.d"
  "/root/repo/src/ub/selector.cc" "CMakeFiles/kairos_objects.dir/src/ub/selector.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/ub/selector.cc.o.d"
  "/root/repo/src/ub/upper_bound.cc" "CMakeFiles/kairos_objects.dir/src/ub/upper_bound.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/ub/upper_bound.cc.o.d"
  "/root/repo/src/workload/arrival.cc" "CMakeFiles/kairos_objects.dir/src/workload/arrival.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/workload/arrival.cc.o.d"
  "/root/repo/src/workload/batch_dist.cc" "CMakeFiles/kairos_objects.dir/src/workload/batch_dist.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/workload/batch_dist.cc.o.d"
  "/root/repo/src/workload/mixtures.cc" "CMakeFiles/kairos_objects.dir/src/workload/mixtures.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/workload/mixtures.cc.o.d"
  "/root/repo/src/workload/monitor.cc" "CMakeFiles/kairos_objects.dir/src/workload/monitor.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/workload/monitor.cc.o.d"
  "/root/repo/src/workload/trace.cc" "CMakeFiles/kairos_objects.dir/src/workload/trace.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/workload/trace.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "CMakeFiles/kairos_objects.dir/src/workload/trace_io.cc.o" "gcc" "CMakeFiles/kairos_objects.dir/src/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
