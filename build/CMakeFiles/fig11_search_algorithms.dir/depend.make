# Empty dependencies file for fig11_search_algorithms.
# This may be replaced when dependencies are built.
