file(REMOVE_RECURSE
  "CMakeFiles/fig11_search_algorithms.dir/bench/fig11_search_algorithms.cc.o"
  "CMakeFiles/fig11_search_algorithms.dir/bench/fig11_search_algorithms.cc.o.d"
  "fig11_search_algorithms"
  "fig11_search_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_search_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
