# Empty dependencies file for ablation_pop_partition.
# This may be replaced when dependencies are built.
