file(REMOVE_RECURSE
  "CMakeFiles/ablation_pop_partition.dir/bench/ablation_pop_partition.cc.o"
  "CMakeFiles/ablation_pop_partition.dir/bench/ablation_pop_partition.cc.o.d"
  "ablation_pop_partition"
  "ablation_pop_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pop_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
