file(REMOVE_RECURSE
  "CMakeFiles/micro_assignment.dir/bench/micro_assignment.cc.o"
  "CMakeFiles/micro_assignment.dir/bench/micro_assignment.cc.o.d"
  "micro_assignment"
  "micro_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
