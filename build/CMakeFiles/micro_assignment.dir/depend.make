# Empty dependencies file for micro_assignment.
# This may be replaced when dependencies are built.
