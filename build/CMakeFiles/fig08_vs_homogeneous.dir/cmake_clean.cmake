file(REMOVE_RECURSE
  "CMakeFiles/fig08_vs_homogeneous.dir/bench/fig08_vs_homogeneous.cc.o"
  "CMakeFiles/fig08_vs_homogeneous.dir/bench/fig08_vs_homogeneous.cc.o.d"
  "fig08_vs_homogeneous"
  "fig08_vs_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vs_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
