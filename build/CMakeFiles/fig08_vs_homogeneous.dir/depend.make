# Empty dependencies file for fig08_vs_homogeneous.
# This may be replaced when dependencies are built.
