file(REMOVE_RECURSE
  "CMakeFiles/fig16_distribution_noise.dir/bench/fig16_distribution_noise.cc.o"
  "CMakeFiles/fig16_distribution_noise.dir/bench/fig16_distribution_noise.cc.o.d"
  "fig16_distribution_noise"
  "fig16_distribution_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_distribution_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
