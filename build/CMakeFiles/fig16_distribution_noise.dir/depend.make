# Empty dependencies file for fig16_distribution_noise.
# This may be replaced when dependencies are built.
