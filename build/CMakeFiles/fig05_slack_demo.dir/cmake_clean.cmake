file(REMOVE_RECURSE
  "CMakeFiles/fig05_slack_demo.dir/bench/fig05_slack_demo.cc.o"
  "CMakeFiles/fig05_slack_demo.dir/bench/fig05_slack_demo.cc.o.d"
  "fig05_slack_demo"
  "fig05_slack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_slack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
