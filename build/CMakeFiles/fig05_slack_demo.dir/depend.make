# Empty dependencies file for fig05_slack_demo.
# This may be replaced when dependencies are built.
