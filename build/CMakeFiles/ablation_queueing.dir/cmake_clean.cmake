file(REMOVE_RECURSE
  "CMakeFiles/ablation_queueing.dir/bench/ablation_queueing.cc.o"
  "CMakeFiles/ablation_queueing.dir/bench/ablation_queueing.cc.o.d"
  "ablation_queueing"
  "ablation_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
