# Empty dependencies file for fig03_distribution_schemes.
# This may be replaced when dependencies are built.
