file(REMOVE_RECURSE
  "CMakeFiles/fig03_distribution_schemes.dir/bench/fig03_distribution_schemes.cc.o"
  "CMakeFiles/fig03_distribution_schemes.dir/bench/fig03_distribution_schemes.cc.o.d"
  "fig03_distribution_schemes"
  "fig03_distribution_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_distribution_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
