file(REMOVE_RECURSE
  "CMakeFiles/micro_upper_bound.dir/bench/micro_upper_bound.cc.o"
  "CMakeFiles/micro_upper_bound.dir/bench/micro_upper_bound.cc.o.d"
  "micro_upper_bound"
  "micro_upper_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
