# Empty dependencies file for micro_upper_bound.
# This may be replaced when dependencies are built.
