# Empty dependencies file for fig13_ub_top20.
# This may be replaced when dependencies are built.
