file(REMOVE_RECURSE
  "CMakeFiles/fig13_ub_top20.dir/bench/fig13_ub_top20.cc.o"
  "CMakeFiles/fig13_ub_top20.dir/bench/fig13_ub_top20.cc.o.d"
  "fig13_ub_top20"
  "fig13_ub_top20.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ub_top20.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
