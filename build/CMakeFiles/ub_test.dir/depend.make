# Empty dependencies file for ub_test.
# This may be replaced when dependencies are built.
