file(REMOVE_RECURSE
  "CMakeFiles/ub_test.dir/tests/ub_test.cc.o"
  "CMakeFiles/ub_test.dir/tests/ub_test.cc.o.d"
  "ub_test"
  "ub_test.pdb"
  "ub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
