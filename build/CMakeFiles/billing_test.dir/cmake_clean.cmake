file(REMOVE_RECURSE
  "CMakeFiles/billing_test.dir/tests/billing_test.cc.o"
  "CMakeFiles/billing_test.dir/tests/billing_test.cc.o.d"
  "billing_test"
  "billing_test.pdb"
  "billing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
