file(REMOVE_RECURSE
  "CMakeFiles/infer_engine_demo.dir/examples/infer_engine_demo.cpp.o"
  "CMakeFiles/infer_engine_demo.dir/examples/infer_engine_demo.cpp.o.d"
  "infer_engine_demo"
  "infer_engine_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_engine_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
