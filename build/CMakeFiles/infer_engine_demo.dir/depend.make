# Empty dependencies file for infer_engine_demo.
# This may be replaced when dependencies are built.
