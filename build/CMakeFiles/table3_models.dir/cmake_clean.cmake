file(REMOVE_RECURSE
  "CMakeFiles/table3_models.dir/bench/table3_models.cc.o"
  "CMakeFiles/table3_models.dir/bench/table3_models.cc.o.d"
  "table3_models"
  "table3_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
