# Empty dependencies file for table3_models.
# This may be replaced when dependencies are built.
