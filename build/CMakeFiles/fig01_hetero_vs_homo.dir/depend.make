# Empty dependencies file for fig01_hetero_vs_homo.
# This may be replaced when dependencies are built.
