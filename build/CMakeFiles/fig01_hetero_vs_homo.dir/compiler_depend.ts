# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig01_hetero_vs_homo.
