file(REMOVE_RECURSE
  "CMakeFiles/fig01_hetero_vs_homo.dir/bench/fig01_hetero_vs_homo.cc.o"
  "CMakeFiles/fig01_hetero_vs_homo.dir/bench/fig01_hetero_vs_homo.cc.o.d"
  "fig01_hetero_vs_homo"
  "fig01_hetero_vs_homo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_hetero_vs_homo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
