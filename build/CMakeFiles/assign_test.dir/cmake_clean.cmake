file(REMOVE_RECURSE
  "CMakeFiles/assign_test.dir/tests/assign_test.cc.o"
  "CMakeFiles/assign_test.dir/tests/assign_test.cc.o.d"
  "assign_test"
  "assign_test.pdb"
  "assign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
