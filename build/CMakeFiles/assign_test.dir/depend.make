# Empty dependencies file for assign_test.
# This may be replaced when dependencies are built.
