file(REMOVE_RECURSE
  "CMakeFiles/table4_instances.dir/bench/table4_instances.cc.o"
  "CMakeFiles/table4_instances.dir/bench/table4_instances.cc.o.d"
  "table4_instances"
  "table4_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
