# Empty dependencies file for table4_instances.
# This may be replaced when dependencies are built.
