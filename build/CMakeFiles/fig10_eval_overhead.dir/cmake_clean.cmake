file(REMOVE_RECURSE
  "CMakeFiles/fig10_eval_overhead.dir/bench/fig10_eval_overhead.cc.o"
  "CMakeFiles/fig10_eval_overhead.dir/bench/fig10_eval_overhead.cc.o.d"
  "fig10_eval_overhead"
  "fig10_eval_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_eval_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
