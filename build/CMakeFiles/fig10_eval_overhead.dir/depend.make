# Empty dependencies file for fig10_eval_overhead.
# This may be replaced when dependencies are built.
