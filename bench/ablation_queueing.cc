// Ablation: "why not queueing theory?" (Sec. 5.2). The paper explains that
// the M/M/c framework cannot model Kairos's serving system — batch-size-
// dependent service times, heterogeneous servers, and a matcher that is
// neither FCFS nor pool-partitioned. We quantify that: rank all budgeted
// RM2 configurations by (a) Kairos's upper bound and (b) a naive pooled
// M/M/c estimate, and compare both rankings against measured throughput
// (Kendall tau over the oracle-top shortlist and top-pick quality).
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "queueing/mmc.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const bench::ModelBench mb(catalog, "RM2");
  const auto mix = workload::LogNormalBatches::Production();
  const auto monitor = core::MonitorFromMix(mix, 10000, 7);

  const auto space = mb.Space();
  const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
  const auto ub_bounds = est.EstimateAll(space, monitor);

  // Naive M/M/c estimate per config: base pool over the full mix, each aux
  // pool over the small-query mass it can serve.
  const cloud::TypeId base = catalog.BaseType();
  auto mmc_estimate = [&](const cloud::Config& config) {
    const double qos_s = mb.qos_ms / 1000.0;
    const auto& base_curve = mb.truth.Curve(base);
    const double base_mu =
        1000.0 / base_curve.AtBatch(0) /
        (1.0 + base_curve.per_item_ms * monitor.MeanBatch() /
                   base_curve.base_ms);
    queueing::PoolModel base_pool{config.Count(base), base_mu, qos_s};
    std::vector<queueing::PoolModel> aux_pools;
    for (const cloud::TypeId t : catalog.AuxiliaryTypes()) {
      if (config.Count(t) <= 0) continue;
      const int s = mb.truth.MaxQosBatch(t, mb.qos_ms);
      if (s <= 0) continue;
      const double mean_small = monitor.MeanBatchAtOrBelow(s);
      const auto& curve = mb.truth.Curve(t);
      const double mu =
          1000.0 / (curve.base_ms + curve.per_item_ms * mean_small);
      // The aux pool only ever sees the fraction of traffic below s; its
      // achievable contribution is capped by that mass.
      const double f = monitor.FractionAtOrBelow(s);
      queueing::PoolModel pool{config.Count(t), mu * f, qos_s};
      aux_pools.push_back(pool);
    }
    return queueing::NaivePooledMmcThroughput(
        base_pool, aux_pools.data(), static_cast<int>(aux_pools.size()));
  };

  std::vector<double> mmc_bounds;
  mmc_bounds.reserve(space.size());
  for (const cloud::Config& c : space) mmc_bounds.push_back(mmc_estimate(c));

  // Measure the oracle-top shortlist (measuring all 331 configs is not
  // needed to compare rankings).
  const auto oracle_rank = oracle::OracleSearch(
      catalog, space, mb.truth, mb.qos_ms, mix, ScaledCount(3000, 800), 55);
  std::vector<std::size_t> order(space.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return oracle_rank.per_config_qps[a] > oracle_rank.per_config_qps[b];
  });
  const std::size_t shortlist = std::min<std::size_t>(25, order.size());
  std::vector<double> measured, ub_vals, mmc_vals;
  for (std::size_t i = 0; i < shortlist; ++i) {
    const cloud::Config& c = space[order[i]];
    measured.push_back(
        mb.Throughput(c, "KAIROS", mix, 0.5 * ub_bounds[order[i]] + 1.0));
    ub_vals.push_back(ub_bounds[order[i]]);
    mmc_vals.push_back(mmc_bounds[order[i]]);
  }

  TextTable table({"estimator", "Kendall tau vs measured",
                   "top pick config", "top pick measured QPS"});
  auto top_pick = [&](const std::vector<double>& scores) {
    std::size_t best = 0;
    for (std::size_t i = 0; i < space.size(); ++i) {
      if (scores[i] > scores[best]) best = i;
    }
    return space[best];
  };
  const cloud::Config ub_pick = top_pick(ub_bounds);
  const cloud::Config mmc_pick = top_pick(mmc_bounds);
  const double ub_pick_qps = mb.Throughput(ub_pick, "KAIROS", mix, 80.0);
  const double mmc_pick_qps = mb.Throughput(mmc_pick, "KAIROS", mix, 80.0);
  table.AddRow({"Kairos upper bound (Eq. 15)",
                TextTable::Num(KendallTau(ub_vals, measured), 3),
                ub_pick.ToString(), TextTable::Num(ub_pick_qps)});
  table.AddRow({"naive pooled M/M/c",
                TextTable::Num(KendallTau(mmc_vals, measured), 3),
                mmc_pick.ToString(), TextTable::Num(mmc_pick_qps)});
  table.Print(std::cout,
              "Ablation: config-ranking quality — Kairos UB vs M/M/c "
              "(RM2, oracle-top-" +
                  std::to_string(shortlist) + " shortlist)");
  return 0;
}
