// Fig. 17 (control plane): closed-loop vs open-loop reaction to a load
// spike, served as one continuous online co-simulation per controller.
// The fig12 fleet (RM2, WND, double-traffic NCF; one $8/hr MARGINAL
// envelope) streams Poisson traffic on a shared window grid; RM2's
// arrival rate jumps SPIKE_SCALE x at 30% of the horizon. The identical
// arrival schedule is then served under each registered controller:
//
//   * FROZEN    — no control loop; the initial plan serves the whole run;
//   * PERIODIC  — the pre-control-plane fixed timer (one reallocation at
//                 PERIOD_S, well after the spike: the open-loop baseline);
//   * QOS       — reallocates when a model's windowed p99 violates QoS;
//   * BACKLOG   — reallocates when an engine's backlog exceeds seconds
//                 of work at the observed arrival rate;
//   * DRIFT     — watches batch-mix drift only; the spike changes rate,
//                 not mix, so it correctly does nothing here;
//   * COMPOSITE — QOS + BACKLOG + DRIFT chained.
//
// Every run spends the same global budget and the closed-loop controllers
// use no more reallocations than PERIODIC — the comparison is purely
// *when* the loop reacts. Gate (exit 1 on regression): QOS and BACKLOG
// must each show fewer p99-violation windows than PERIODIC at equal cost,
// and must not lose weighted throughput doing it.
//
//   ./fig17_control_plane [DURATION_S] [BASE_RATE_QPS] [PERIOD_S]
//   ./fig17_control_plane 60 10 40
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/fleet.h"

int main(int argc, char** argv) {
  using namespace kairos;
  const double duration = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double base_rate = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double period = argc > 3 ? std::atof(argv[3]) : 2.0 * duration / 3.0;
  const double window = duration / 20.0;
  const double spike_time = 0.3 * duration;
  const double spike_scale = 6.0;

  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions fleet_options;
  fleet_options.budget_per_hour = 8.0;
  fleet_options.allocator = "MARGINAL";
  auto fleet = bench::OrDie(core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      fleet_options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = bench::OrDie(fleet.PlanAll());

  struct Run {
    std::string label;
    std::string controller;  ///< "" = frozen
    core::FleetServeResult result;
    std::size_t violation_windows = 0;
  };
  std::vector<Run> runs = {{"FROZEN", "", {}, 0},   {"PERIODIC", "PERIODIC", {}, 0},
                           {"QOS", "QOS", {}, 0},   {"BACKLOG", "BACKLOG", {}, 0},
                           {"DRIFT", "DRIFT", {}, 0},
                           {"COMPOSITE", "COMPOSITE", {}, 0}};
  for (Run& run : runs) {
    core::FleetServeOptions serve;
    serve.duration_s = duration;
    serve.base_rate_qps = base_rate;
    serve.window_s = window;
    serve.launch_lag_s = 1.0;
    serve.shifts = {core::FleetLoadShift{spike_time, "RM2", spike_scale}};
    serve.controller = run.controller;
    if (run.controller == "PERIODIC") serve.realloc_period_s = period;
    if (run.controller == "QOS" || run.controller == "COMPOSITE") {
      // A 10% hysteresis margin over the QoS bound: the initial plan runs
      // RM2 within ~1% of its target, so the default hair-trigger would
      // fire on a marginal pre-spike transient and win the comparison by
      // accident. With the margin the fire lands *after* the spike, and
      // the gate measures what it claims to: closed-loop reaction time.
      serve.controller_knobs = {{"p99_scale", 1.1}};
    }
    run.result = bench::OrDie(fleet.ServeAll(plan, serve));
    for (const core::FleetModelServe& model : run.result.models) {
      const double qos_ms =
          bench::OrDie(fleet.Session(model.model))->qos_ms();
      for (const serving::WindowedMetrics& w : model.windows) {
        if (w.served > 0 && w.p99_ms > qos_ms) ++run.violation_windows;
      }
    }
  }

  TextTable table({"controller", "p99-violation windows", "reallocations",
                   "monitor resets", "weighted QPS", "first action (s)"});
  for (const Run& run : runs) {
    table.AddRow({run.label, std::to_string(run.violation_windows),
                  std::to_string(run.result.reallocations),
                  std::to_string(run.result.monitor_resets),
                  TextTable::Num(run.result.total_weighted_qps, 2),
                  run.result.control_log.empty()
                      ? "-"
                      : TextTable::Num(run.result.control_log.front().time,
                                       1)});
  }
  table.Print(std::cout,
              "Fig. 17: control-plane comparison through a live " +
                  TextTable::Num(spike_scale, 0) + "x RM2 arrival jump at t=" +
                  TextTable::Num(spike_time, 0) + "s (" +
                  TextTable::Num(window, 1) + "s windows, $" +
                  TextTable::Num(fleet_options.budget_per_hour, 0) +
                  "/hr envelope; PERIODIC fires at " +
                  TextTable::Num(period, 0) + "s)");

  std::cout << "control log:\n";
  for (const Run& run : runs) {
    for (const core::FleetControlEvent& event : run.result.control_log) {
      std::cout << "  " << run.label << " [" << TextTable::Num(event.time, 1)
                << "s] " << control::ControlActionName(event.kind)
                << (event.model.empty() ? "" : " " + event.model) << ": "
                << event.reason << "\n";
    }
  }

  // The gate: the closed loops must beat the open-loop timer on QoS at
  // equal cost — same budget envelope (shares never exceed it; asserted
  // by the allocator invariants), no more reallocations, no lost
  // throughput, fewer p99-violation windows.
  const Run& periodic = runs[1];
  int failed = 0;
  for (const std::size_t idx : {2u, 3u}) {  // QOS, BACKLOG
    const Run& closed = runs[idx];
    if (closed.violation_windows >= periodic.violation_windows) {
      std::cerr << "FAIL: " << closed.label << " has "
                << closed.violation_windows
                << " p99-violation windows, PERIODIC has "
                << periodic.violation_windows << " (must be fewer)\n";
      failed = 1;
    }
    if (closed.result.reallocations > periodic.result.reallocations) {
      std::cerr << "FAIL: " << closed.label << " used "
                << closed.result.reallocations << " reallocations, PERIODIC "
                << periodic.result.reallocations << " (must not use more)\n";
      failed = 1;
    }
    if (closed.result.total_weighted_qps + 1e-9 <
        periodic.result.total_weighted_qps) {
      std::cerr << "FAIL: " << closed.label << " lost weighted QPS vs "
                << "PERIODIC\n";
      failed = 1;
    }
  }
  if (failed == 0) {
    std::cout << "closed-loop controllers beat the open-loop timer: QOS "
              << runs[2].violation_windows << " and BACKLOG "
              << runs[3].violation_windows
              << " p99-violation windows vs PERIODIC "
              << periodic.violation_windows << " at equal cost\n";
  }
  return failed;
}
