// Sec. 6 controller-overhead claims, measured with google-benchmark:
//  * a 20-query x 20-instance Jonker–Volgenant matching plus the network
//    round trip stays within 0.05 ms;
//  * even hundreds of concurrent queries match well within 1 ms.
#include <benchmark/benchmark.h>

#include "assign/hungarian.h"
#include "assign/jv.h"
#include "common/rng.h"
#include "rpc/netem.h"

namespace {

kairos::Matrix RandomCost(std::size_t m, std::size_t n, kairos::Rng& rng) {
  kairos::Matrix cost(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // Kairos-shaped costs: mostly small latencies, some 10x penalties.
      cost(i, j) = rng.Bernoulli(0.15) ? rng.Uniform(3.0, 3.5)
                                       : rng.Uniform(0.01, 0.35);
    }
  }
  return cost;
}

void BM_JvMatching(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  kairos::Rng rng(42);
  const kairos::Matrix cost = RandomCost(m, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kairos::assign::SolveJv(cost));
  }
  state.SetLabel(std::to_string(m) + "x" + std::to_string(n));
}
BENCHMARK(BM_JvMatching)
    ->Args({5, 10})
    ->Args({20, 20})   // the paper's 20-query-20-instance case
    ->Args({100, 20})
    ->Args({200, 20})  // "hundreds of queries arriving concurrently"
    ->Args({64, 64});

void BM_HungarianMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  kairos::Rng rng(42);
  const kairos::Matrix cost = RandomCost(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kairos::assign::SolveHungarian(cost));
  }
}
BENCHMARK(BM_HungarianMatching)->Arg(20)->Arg(64);

// One full controller decision: matching + two simulated network hops.
void BM_ControllerRoundTrip(benchmark::State& state) {
  kairos::Rng rng(42);
  const kairos::Matrix cost = RandomCost(20, 20, rng);
  const kairos::rpc::NetworkModel net(20.0, 0.1);
  kairos::Rng net_rng(7);
  double accumulated_network = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kairos::assign::SolveJv(cost));
    accumulated_network +=
        net.SampleDelay(net_rng) + net.SampleDelay(net_rng);
  }
  // Report the simulated network time alongside the measured CPU time so
  // the 0.05 ms Sec. 6 budget can be checked end to end.
  state.counters["sim_network_us_per_call"] = benchmark::Counter(
      accumulated_network * 1e6 / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_ControllerRoundTrip);

}  // namespace

BENCHMARK_MAIN();
