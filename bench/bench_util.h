// Shared plumbing for the figure-reproduction harnesses: fidelity scaling,
// standard evaluation options, and the per-scheme throughput evaluators the
// paper's comparisons repeat across figures.
#pragma once

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "cloud/config_space.h"
#include "common/env.h"
#include "common/status.h"
#include "common/table.h"
#include "core/kairos.h"
#include "core/planner_backend.h"
#include "oracle/oracle.h"
#include "policy/registry.h"
#include "search/hill_climb.h"
#include "serving/throughput_eval.h"

namespace kairos::bench {

/// Unwraps a StatusOr in bench context: bench inputs are compiled-in, so
/// a registry miss is a programming error worth dying loudly over.
template <typename T>
T OrDie(StatusOr<T> result) {
  if (!result.ok()) {
    std::cerr << "bench: " << result.status().ToString() << "\n";
    std::abort();
  }
  return *std::move(result);
}

/// Status flavor, for fallible calls without a payload.
inline void OrDie(const Status& status) {
  if (!status.ok()) {
    std::cerr << "bench: " << status.ToString() << "\n";
    std::abort();
  }
}

/// Table-3 model order used by every multi-model figure.
inline const std::vector<std::string>& Models() {
  static const std::vector<std::string> models = {"NCF", "RM2", "WND",
                                                  "MT-WND", "DIEN"};
  return models;
}

/// Standard evaluation fidelity: scaled by KAIROS_BENCH_SCALE.
inline serving::EvalOptions StdEval(double rate_guess) {
  serving::EvalOptions opt;
  opt.queries = ScaledCount(800, 200);
  opt.bisect_iters = 6;
  opt.rate_guess = rate_guess;
  return opt;
}

/// Context for one (model, catalog, budget) experiment.
struct ModelBench {
  ModelBench(const cloud::Catalog& catalog, const std::string& model,
             double budget = 2.5, double qos_scale = 1.0)
      : catalog_(catalog),
        spec(latency::FindModel(model)),
        truth(spec.Instantiate(catalog)),
        qos_ms(spec.qos_ms * qos_scale),
        budget_per_hour(budget) {}

  const cloud::Catalog& catalog() const { return catalog_; }

  /// The budgeted config space (>= 1 base node).
  std::vector<cloud::Config> Space() const {
    return cloud::EnumerateConfigs(
        catalog_, {.budget_per_hour = budget_per_hour,
                   .min_base_instances = 1});
  }

  /// Allowable throughput of `config` under a registry-resolved scheme.
  /// DRS thresholds are tuned separately (see TuneDrsThreshold) and
  /// passed in as the scheme's "threshold" knob.
  double Throughput(const cloud::Config& config, const std::string& scheme,
                    const workload::BatchDistribution& mix, double rate_guess,
                    int drs_threshold = 200,
                    serving::PredictorOptions predictor = {}) const {
    policy::KnobMap knobs;
    if (policy::CanonicalSchemeName(scheme) == "DRS") {
      knobs["threshold"] = static_cast<double>(drs_threshold);
    }
    const auto factory =
        OrDie(PolicyRegistry::Global().MakeFactory(scheme, knobs));
    return serving::EvaluateConfig(catalog_, config, truth, qos_ms, factory,
                                   mix, StdEval(rate_guess), predictor)
        .qps;
  }

  /// Plans one configuration with a registry-selected backend — the one
  /// entry point all planner comparisons share. Evaluation-driven
  /// backends get `eval`; one-shot backends ignore it.
  core::PlannerOutcome PlanWith(const std::string& planner,
                                const workload::QueryMonitor& monitor,
                                const search::EvalFn& eval = nullptr,
                                const search::SearchOptions& search = {}) const {
    const auto backend = OrDie(core::PlannerRegistry::Global().Build(planner));
    core::PlanRequest request;
    request.monitor = &monitor;
    request.eval = eval;
    request.search = search;
    return OrDie(backend->Plan(
        core::PlannerContext{&catalog_, &truth, qos_ms, budget_per_hour},
        request));
  }

  /// Hill-climbs the DRS batch-size threshold for one config; returns the
  /// best threshold and (optionally) the number of probes spent.
  int TuneDrsThreshold(const cloud::Config& config,
                       const workload::BatchDistribution& mix,
                       double rate_guess, std::size_t* probes = nullptr) const {
    const std::vector<int> grid = search::DefaultThresholdGrid();
    auto eval = [&](int threshold) {
      return Throughput(config, "DRS", mix, rate_guess, threshold);
    };
    auto result = search::HillClimb(grid, eval);
    if (result.best_value <= 0.0) {
      // The climb started on a zero plateau (every probed threshold sends
      // QoS-infeasible batches to the aux pool); fall back to a full sweep,
      // which is what DeepRecSys's tuning degenerates to anyway.
      for (std::size_t i = 0; i < grid.size(); ++i) {
        const double v = eval(grid[i]);
        ++result.evals;
        if (v > result.best_value) {
          result.best_value = v;
          result.best_index = i;
        }
      }
    }
    if (probes != nullptr) *probes = result.evals;
    return grid[result.best_index];
  }

  /// Best configuration *for one scheme*, searched offline over a shortlist
  /// of the `shortlist` highest-oracle-throughput configs. This grants the
  /// baselines an even stronger advantage than the paper's oracle-config
  /// grant (Sec. 8.2): each scheme gets the config that maximizes its own
  /// achieved throughput.
  std::pair<cloud::Config, double> BestConfigForScheme(
      const std::string& scheme, const workload::BatchDistribution& mix,
      double rate_guess, std::size_t shortlist = 40) const {
    const auto space = Space();
    const auto oracle_rank = oracle::OracleSearch(
        catalog_, space, truth, qos_ms, mix, ScaledCount(3000, 800), 55);
    std::vector<std::size_t> order(space.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return oracle_rank.per_config_qps[a] > oracle_rank.per_config_qps[b];
    });
    // Shortlist: the oracle-top configs plus the most GPU-heavy configs
    // (FCFS-style schemes often do best near-homogeneous, which the oracle
    // ranking undervalues).
    std::vector<cloud::Config> shortlisted;
    for (std::size_t i = 0; i < std::min(shortlist, order.size()); ++i) {
      shortlisted.push_back(space[order[i]]);
    }
    {
      const cloud::TypeId base = catalog_.BaseType();
      std::vector<std::size_t> by_base = order;
      std::sort(by_base.begin(), by_base.end(),
                [&](std::size_t a, std::size_t b) {
                  if (space[a].Count(base) != space[b].Count(base)) {
                    return space[a].Count(base) > space[b].Count(base);
                  }
                  return space[a].TotalInstances() > space[b].TotalInstances();
                });
      for (std::size_t i = 0; i < std::min<std::size_t>(10, by_base.size());
           ++i) {
        shortlisted.push_back(space[by_base[i]]);
      }
    }
    cloud::Config best_config = shortlisted.front();
    double best_qps = 0.0;
    for (const cloud::Config& c : shortlisted) {
      double qps = 0.0;
      if (scheme == "DRS") {
        const int threshold = TuneDrsThreshold(c, mix, rate_guess);
        qps = Throughput(c, scheme, mix, rate_guess, threshold);
      } else {
        qps = Throughput(c, scheme, mix, rate_guess);
      }
      if (qps > best_qps) {
        best_qps = qps;
        best_config = c;
      }
    }
    return {best_config, best_qps};
  }

  /// Oracle throughput (clairvoyant reference).
  double Oracle(const cloud::Config& config,
                const workload::BatchDistribution& mix) const {
    return oracle::OracleThroughput(catalog_, config, truth, qos_ms, mix,
                                    ScaledCount(4000, 1000), /*seed=*/97);
  }

  /// Scaled best-homogeneous throughput (the paper's conservative baseline:
  /// unused budget is credited back to the homogeneous pool, Sec. 8.1).
  double ScaledHomogeneous(const workload::BatchDistribution& mix,
                           double rate_guess) const {
    const cloud::Config homo =
        cloud::BestHomogeneous(catalog_, budget_per_hour);
    const double raw = Throughput(homo, "KAIROS", mix, rate_guess);
    return raw * budget_per_hour / homo.CostPerHour(catalog_);
  }

  const cloud::Catalog& catalog_;
  const latency::ModelSpec& spec;
  latency::LatencyModel truth;
  double qos_ms;
  double budget_per_hour;
};

}  // namespace kairos::bench
