// Sec. 5.2 warmup cost: "for an order of 1000-configuration search space,
// all upper bounds can be calculated and ranked within 2 seconds". Our
// analytic implementation should beat that by orders of magnitude; this
// binary measures estimate+rank end to end, plus the matching-cost
// construction path of one Kairos round.
#include <benchmark/benchmark.h>

#include "cloud/config_space.h"
#include "core/kairos.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

namespace {

void BM_EstimateAndRankWholeSpace(benchmark::State& state) {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto spec = latency::FindModel("RM2");
  const auto truth = spec.Instantiate(catalog);
  // Budget chosen so the space has the paper's order of 1000 configs.
  const double budget = static_cast<double>(state.range(0)) / 10.0;
  const auto space = cloud::EnumerateConfigs(
      catalog, {.budget_per_hour = budget, .min_base_instances = 1});
  const auto monitor = core::MonitorFromMix(
      workload::LogNormalBatches::Production(), 10000, 7);
  const ub::UpperBoundEstimator est(catalog, truth, spec.qos_ms);
  for (auto _ : state) {
    const auto bounds = est.EstimateAll(space, monitor);
    benchmark::DoNotOptimize(ub::RankByUpperBound(space, bounds));
  }
  state.counters["configs"] =
      benchmark::Counter(static_cast<double>(space.size()));
}
BENCHMARK(BM_EstimateAndRankWholeSpace)
    ->Arg(25)   // $2.5/hr  (~3e2 configs)
    ->Arg(50)   // $5/hr
    ->Arg(100); // $10/hr   (order of 1e4 configs)

void BM_PlanConfigurationEndToEnd(benchmark::State& state) {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::Kairos kairos(catalog, "RM2");
  kairos.ObserveMix(workload::LogNormalBatches::Production());
  for (auto _ : state) {
    benchmark::DoNotOptimize(kairos.PlanConfiguration());
  }
}
BENCHMARK(BM_PlanConfigurationEndToEnd);

}  // namespace

BENCHMARK_MAIN();
