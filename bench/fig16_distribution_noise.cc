// Fig. 16: workload and measurement robustness — (a) Gaussian-distributed
// batch sizes instead of the production log-normal; (b) 5% multiplicative
// Gaussian noise injected into latency *predictions* (cloud performance
// variability). Kairos should keep a clear advantage over the scaled
// homogeneous baseline in both settings.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();

  // --- (a) Gaussian batch-size distribution. ---
  {
    const auto gaussian = workload::GaussianBatches::Default();
    TextTable table({"model", "Kairos config", "Kairos QPS",
                     "homogeneous QPS (scaled)", "ratio"});
    for (const std::string& model : bench::Models()) {
      core::Kairos kairos(catalog, model);
      kairos.ObserveMix(gaussian);
      const core::Plan plan = kairos.PlanConfiguration();
      const bench::ModelBench mb(catalog, model);
      const double guess = plan.ranked.front().upper_bound * 0.5;
      const double hetero =
          mb.Throughput(plan.config, "KAIROS", gaussian, guess);
      const double homo = mb.ScaledHomogeneous(gaussian, guess);
      table.AddRow({model, plan.config.ToString(), TextTable::Num(hetero),
                    TextTable::Num(homo),
                    TextTable::Num(hetero / homo, 2) + "x"});
    }
    table.Print(std::cout, "Fig. 16a: Gaussian batch-size distribution");
  }

  // --- (b) 5% latency-prediction noise. ---
  {
    const auto mix = workload::LogNormalBatches::Production();
    serving::PredictorOptions noisy;
    noisy.noise_sigma = 0.05;
    TextTable table({"model", "Kairos config", "QPS (exact pred.)",
                     "QPS (5% noise)", "noise penalty"});
    for (const std::string& model : bench::Models()) {
      core::Kairos kairos(catalog, model);
      kairos.ObserveMix(mix);
      const core::Plan plan = kairos.PlanConfiguration();
      const bench::ModelBench mb(catalog, model);
      const double guess = plan.ranked.front().upper_bound * 0.5;
      const double clean = mb.Throughput(plan.config, "KAIROS", mix, guess);
      const double noisy_qps =
          mb.Throughput(plan.config, "KAIROS", mix, guess, 200, noisy);
      table.AddRow({model, plan.config.ToString(), TextTable::Num(clean),
                    TextTable::Num(noisy_qps),
                    TextTable::Num((1.0 - noisy_qps / clean) * 100.0, 1) +
                        "%"});
    }
    table.Print(std::cout,
                "Fig. 16b: 5% Gaussian noise in latency prediction");
  }
  return 0;
}
