// Fig. 10: online evaluation overhead. For a fair comparison the paper
// augments *every* competing technique with Kairos+'s upper-bound-guided
// exploration algorithm (Algorithm 1); each scheme still evaluates
// configurations with its own distribution mechanism (DRS additionally
// pays threshold-tuning probes per evaluated configuration). The search
// runs until the candidate pool is exhausted — i.e. the scheme *knows* it
// has found its optimum. Kairos+ prunes aggressively because its achieved
// throughput tracks the upper bounds closely; the baselines' throughput
// sits far below the bounds, so the "UB <= best-so-far" rule fires rarely
// and they must evaluate much more of the space.
#include <iostream>

#include "bench/bench_util.h"
#include "search/kairos_plus.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  TextTable table({"model", "space", "RIBBON evals (%)", "DRS evals (%)",
                   "CLKWRK evals (%)", "KAIROS+ evals (%)"});
  for (const std::string& model : bench::Models()) {
    const bench::ModelBench mb(catalog, model);
    const auto space = mb.Space();
    const double n = static_cast<double>(space.size());

    const auto monitor = core::MonitorFromMix(mix, 10000, 7);
    const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
    const auto bounds = est.EstimateAll(space, monitor);
    const auto ranked = ub::RankByUpperBound(space, bounds);
    const double guess = 0.5 * ranked.front().upper_bound;

    // Each scheme runs Algorithm 1 to candidate-pool exhaustion with its
    // own distribution mechanism as the evaluator.
    auto evals_for = [&](const std::string& scheme,
                         double extra_per_eval) -> double {
      search::EvalFn eval;
      if (scheme == "DRS") {
        eval = [&](const cloud::Config& c) {
          const int threshold = mb.TuneDrsThreshold(c, mix, guess);
          return mb.Throughput(c, "DRS", mix, guess, threshold);
        };
      } else {
        eval = [&, scheme](const cloud::Config& c) {
          return mb.Throughput(c, scheme, mix, guess);
        };
      }
      const auto r = search::KairosPlusSearch(ranked, eval);
      return static_cast<double>(r.evals) * (1.0 + extra_per_eval);
    };

    const double ribbon_evals = evals_for("RIBBON", 0.0);
    // DRS: each evaluated config additionally costs threshold-tuning
    // probes (the hill climb averages ~4 probes per config).
    const double drs_evals = evals_for("DRS", 3.0);
    const double clkwrk_evals = evals_for("CLKWRK", 0.0);
    const double kairos_evals = evals_for("KAIROS", 0.0);

    auto pct = [&](double evals) {
      return TextTable::Num(100.0 * evals / n, 2);
    };
    table.AddRow({model, std::to_string(space.size()), pct(ribbon_evals),
                  pct(drs_evals), pct(clkwrk_evals), pct(kairos_evals)});
  }
  table.Print(std::cout,
              "Fig. 10: evaluations to provably reach each scheme's optimum "
              "(all schemes use Kairos+'s search; % of search space)");
  return 0;
}
