// Fig. 11: Kairos+ vs generic search algorithms — random search (RAND),
// a genetic algorithm (GENE), and Ribbon's Bayesian optimization — all
// *purposely granted* Kairos+'s sub-configuration pruning (Sec. 8.3), all
// searching for the optimal configuration under the KAIROS distribution
// mechanism. Reported as evaluations until the optimum is found, in % of
// the search space.
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "search/bayes_opt.h"
#include "search/genetic.h"
#include "search/random_search.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  TextTable table({"model", "space", "RAND (%)", "GENE (%)", "RIBBON-BO (%)",
                   "KAIROS+ (%)"});
  for (const std::string& model : bench::Models()) {
    const bench::ModelBench mb(catalog, model);
    const auto space = mb.Space();
    const double n = static_cast<double>(space.size());

    const auto monitor = core::MonitorFromMix(mix, 10000, 7);
    const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
    const auto bounds = est.EstimateAll(space, monitor);
    double top_ub = 0.0;
    for (double b : bounds) top_ub = std::max(top_ub, b);
    const double guess = 0.5 * top_ub;

    std::map<cloud::Config, double> memo;
    const search::EvalFn eval = [&](const cloud::Config& c) {
      if (auto it = memo.find(c); it != memo.end()) return it->second;
      const double qps = mb.Throughput(c, "KAIROS", mix, guess);
      memo.emplace(c, qps);
      return qps;
    };
    double optimum = 0.0;
    for (const cloud::Config& c : space) optimum = std::max(optimum, eval(c));

    search::SearchOptions opt;
    opt.target_qps = optimum * 0.999;
    opt.subconfig_pruning = true;  // granted to everyone (Sec. 8.3)

    // Average the stochastic searches over a few seeds.
    double rand_evals = 0.0, gene_evals = 0.0, bo_evals = 0.0;
    const int reps = 3;
    for (std::uint64_t s = 1; s <= reps; ++s) {
      search::SearchOptions seeded = opt;
      seeded.seed = s * 131;
      rand_evals += static_cast<double>(
          search::RandomSearch(space, eval, seeded).evals);
      gene_evals += static_cast<double>(
          search::GeneticSearch(space, eval, seeded).evals);
      bo_evals += static_cast<double>(
          search::BayesOptSearch(space, eval, seeded).evals);
    }
    rand_evals /= reps;
    gene_evals /= reps;
    bo_evals /= reps;

    // Kairos+ through the registry-selected planner backend — the same
    // entry point examples and the Fleet facade use (ranks the identical
    // upper-bound list internally).
    const core::PlannerOutcome kp = mb.PlanWith("KAIROS+", monitor, eval, opt);

    auto pct = [&](double evals) {
      return TextTable::Num(100.0 * evals / n, 2);
    };
    table.AddRow({model, std::to_string(space.size()), pct(rand_evals),
                  pct(gene_evals), pct(bo_evals),
                  pct(static_cast<double>(kp.evaluations))});
  }
  table.Print(std::cout,
              "Fig. 11: evaluations to find the optimum — Kairos+ vs "
              "pruning-augmented search baselines (% of space)");
  return 0;
}
