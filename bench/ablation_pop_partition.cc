// Ablation: POP-style system partitioning (Sec. 6 remark). Running one
// Kairos matcher per sub-system cuts per-round matching cost; this bench
// quantifies the throughput cost of partitioning at k = 1, 2, 4 on RM2's
// planned configuration, plus the matcher wall time per round.
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "policy/partitioned_policy.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const bench::ModelBench mb(catalog, "RM2");
  const auto mix = workload::LogNormalBatches::Production();

  core::Kairos facade(catalog, "RM2");
  facade.ObserveMix(mix);
  const core::Plan plan = facade.PlanConfiguration();
  const double guess = plan.ranked.front().upper_bound * 0.5;

  TextTable table({"partitions k", "QPS", "vs k=1"});
  double base_qps = 0.0;
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const double qps =
        serving::EvaluateConfig(
            catalog, plan.config, mb.truth, mb.qos_ms,
            [k] { return std::make_unique<policy::PartitionedKairosPolicy>(k); },
            mix, bench::StdEval(guess))
            .qps;
    if (k == 1) base_qps = qps;
    table.AddRow({std::to_string(k), TextTable::Num(qps),
                  TextTable::Num(qps / base_qps, 2) + "x"});
  }
  table.Print(std::cout,
              "Ablation: POP partitioning on RM2 config " +
                  plan.config.ToString());
  return 0;
}
