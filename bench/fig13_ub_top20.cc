// Fig. 13: actual throughput of the top-20 upper-bound configurations per
// model (as % of the best measured), with the configuration Kairos's
// similarity rule picks marked by a star. The paper's two observations to
// check: the true optimum always lies within the top-10 candidates, and
// measured throughput broadly tracks the upper-bound order.
#include <iostream>

#include "bench/bench_util.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  for (const std::string& model : bench::Models()) {
    const bench::ModelBench mb(catalog, model);
    const auto monitor = core::MonitorFromMix(mix, 10000, 7);
    const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
    const auto space = mb.Space();
    const auto ranked =
        ub::RankByUpperBound(space, est.EstimateAll(space, monitor));
    const auto selection = ub::SelectConfiguration(ranked, catalog);

    const std::size_t top_n = std::min<std::size_t>(20, ranked.size());
    std::vector<double> measured(top_n);
    double best = 0.0;
    std::size_t best_rank = 0;
    for (std::size_t i = 0; i < top_n; ++i) {
      measured[i] = mb.Throughput(ranked[i].config, "KAIROS", mix,
                                  0.5 * ranked[i].upper_bound);
      if (measured[i] > best) {
        best = measured[i];
        best_rank = i;
      }
    }

    TextTable table({"UB rank", "config", "upper bound", "measured QPS",
                     "% of max", "mark"});
    for (std::size_t i = 0; i < top_n; ++i) {
      std::string mark;
      if (ranked[i].config == selection.chosen) mark += "* Kairos pick ";
      if (i == best_rank) mark += "(best measured)";
      table.AddRow({std::to_string(i), ranked[i].config.ToString(),
                    TextTable::Num(ranked[i].upper_bound),
                    TextTable::Num(measured[i]),
                    TextTable::Num(100.0 * measured[i] / best, 1), mark});
    }
    table.Print(std::cout, "Fig. 13 [" + model +
                               "]: top-20 upper-bound configs, measured "
                               "throughput");
    std::cout << "best measured config sits at UB rank " << best_rank
              << (best_rank < 10 ? " (within top-10, as the paper observes)"
                                 : " (OUTSIDE top-10!)")
              << "\n\n";
  }
  return 0;
}
