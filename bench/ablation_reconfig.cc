// Ablation: what exploration really costs once reconfiguration is priced
// in. Allocating cloud instances takes tens of seconds (Sec. 4), and every
// configuration an online searcher evaluates is a live reconfiguration.
// This bench replays the Fig. 12 regime change with a 30-second launch
// delay and a 60-second evaluation dwell per explored configuration, and
// reports the goodput (QoS-respecting queries served) and dollars spent
// over the transient window for: Kairos (one reconfiguration), Kairos+
// (a few), and BO-driven Ribbon exploration (many).
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "cloud/billing.h"
#include "search/bayes_opt.h"
#include "search/kairos_plus.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const bench::ModelBench mb(catalog, "RM2");
  const workload::GaussianBatches after(250.0, 120.0);
  const auto monitor = core::MonitorFromMix(after, 10000, 7);

  const auto space = mb.Space();
  const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
  const auto bounds = est.EstimateAll(space, monitor);
  const auto ranked = ub::RankByUpperBound(space, bounds);
  const double guess = 0.5 * ranked.front().upper_bound;

  std::map<cloud::Config, double> memo;
  const search::EvalFn eval = [&](const cloud::Config& c) {
    if (auto it = memo.find(c); it != memo.end()) return it->second;
    const double qps = mb.Throughput(c, "KAIROS", after, guess);
    memo.emplace(c, qps);
    return qps;
  };

  const Time launch_delay = 30.0;
  const Time dwell = 60.0;          // time spent measuring each config
  const Time window = 1200.0;       // 20-minute transient window
  const cloud::Config start = cloud::BestHomogeneous(catalog, 2.5);

  struct Transcript {
    std::string name;
    std::vector<cloud::Config> visits;  // in order; last = final choice
  };
  std::vector<Transcript> runs;

  // Kairos: plan once, reconfigure once.
  const auto selection = ub::SelectConfiguration(ranked, catalog);
  runs.push_back({"KAIROS (one-shot)", {selection.chosen}});

  // Kairos+: Algorithm 1's evaluation sequence, then stay on its best.
  const auto kp = search::KairosPlusSearch(ranked, eval);
  {
    Transcript t{"KAIROS+", {}};
    for (const auto& rec : kp.history) t.visits.push_back(rec.config);
    t.visits.push_back(kp.best_config);
    runs.push_back(std::move(t));
  }

  // Ribbon-style BO exploration (Kairos distribution for fairness).
  search::SearchOptions bo_opt;
  bo_opt.subconfig_pruning = false;
  bo_opt.seed = 77;
  bo_opt.max_evals = 15;
  const auto bo = search::BayesOptSearch(space, eval, bo_opt);
  {
    Transcript t{"BO exploration", {}};
    for (const auto& rec : bo.history) t.visits.push_back(rec.config);
    t.visits.push_back(bo.best_config);
    runs.push_back(std::move(t));
  }

  TextTable table({"strategy", "reconfigs", "goodput (queries)",
                   "avg QPS over window", "cost ($)", "queries per $"});
  for (const Transcript& t : runs) {
    cloud::BillingMeter meter(catalog);
    double served = 0.0;
    Time clock = 0.0;
    cloud::Config current = start;
    auto serve_on = [&](const cloud::Config& cfg, Time duration) {
      served += eval(cfg) * duration;  // steady-state QPS x time
    };
    for (std::size_t i = 0; i < t.visits.size() && clock < window; ++i) {
      const cloud::Config& next = t.visits[i];
      const bool final_config = (i + 1 == t.visits.size());
      const Time budget_left = window - clock;
      const Time hold = final_config ? budget_left
                                     : std::min(dwell + launch_delay,
                                                budget_left);
      for (const cloud::ReconfigPhase& phase :
           cloud::PlanReconfiguration(current, next, launch_delay, hold)) {
        serve_on(phase.active, phase.duration);
        bench::OrDie(meter.Accrue(phase.billed, phase.duration));
      }
      current = next;
      clock += hold;
    }
    table.AddRow({t.name, std::to_string(t.visits.size()),
                  TextTable::Num(served, 0),
                  TextTable::Num(served / window),
                  TextTable::Num(meter.TotalCost(), 3),
                  TextTable::Num(served / meter.TotalCost(), 0)});
  }
  table.Print(std::cout,
              "Ablation: transient goodput with priced reconfigurations "
              "(RM2, log-normal -> Gaussian shift, 20-min window)");
  return 0;
}
