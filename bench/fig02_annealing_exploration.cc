// Fig. 2: online exploration with simulated annealing. The paper's point:
// while the walk converges, the majority (~70%) of explored heterogeneous
// configurations yield *less* throughput than the homogeneous baseline —
// each of those steps is a live deployment serving users below target.
// Configurations below 20 QPS are pre-filtered as in the paper.
#include <iostream>

#include "bench/bench_util.h"
#include "search/annealing.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::MotivationPool();
  const bench::ModelBench rm2(catalog, "RM2", 2.5);
  const auto mix = workload::LogNormalBatches::Production();

  const double homo_scaled = rm2.ScaledHomogeneous(mix, 40.0);

  // Pre-filter: drop configs below 20 QPS (paper Sec. 4) using the cheap
  // oracle bound as the filter criterion.
  std::vector<cloud::Config> space;
  for (const cloud::Config& c : rm2.Space()) {
    if (rm2.Oracle(c, mix) >= 20.0) space.push_back(c);
  }

  const search::EvalFn eval = [&](const cloud::Config& c) {
    return rm2.Throughput(c, "RIBBON", mix, homo_scaled);
  };
  search::SearchOptions opt;
  opt.seed = 2023;
  opt.subconfig_pruning = false;  // plain annealing, as in Fig. 2
  search::AnnealingOptions sa;
  sa.steps = 80;
  const search::SearchResult walk =
      search::AnnealingSearch(space, eval, opt, sa);

  TextTable table({"step", "config", "QPS", "gain vs homogeneous (%)"});
  std::size_t below = 0;
  for (std::size_t i = 0; i < walk.history.size(); ++i) {
    const auto& rec = walk.history[i];
    const double gain = (rec.qps / homo_scaled - 1.0) * 100.0;
    if (gain < 0.0) ++below;
    table.AddRow({std::to_string(i), rec.config.ToString(),
                  TextTable::Num(rec.qps), TextTable::Num(gain, 1)});
  }
  table.Print(std::cout,
              "Fig. 2: simulated-annealing exploration (RM2, Ribbon "
              "distribution; homogeneous baseline = " +
                  TextTable::Num(homo_scaled) + " QPS)");
  std::cout << "explored " << walk.history.size() << " configs; "
            << below * 100 / std::max<std::size_t>(1, walk.history.size())
            << "% below homogeneous (paper: ~70%)\n";
  return 0;
}
