// Fig. 12: reaction to a workload change — served as *one continuous
// online simulation*, not stitched batch runs. A 3-model fleet (RM2, WND,
// NCF) streams queries on one shared event loop (Fleet::ServeAll); halfway
// through, RM2's arrival rate jumps by SHIFT_SCALE (the engine stretches
// no trace — Engine::SetArrivalScale rescales the live Poisson source).
// Two runs of the identical arrival schedule are compared:
//
//   * frozen   — the initial MARGINAL allocation serves the whole run;
//   * adaptive — every REALLOC_PERIOD_S the allocator re-splits the
//                budget on *observed* per-model arrival rates and the
//                live engines are reconfigured (launch lag modeled).
//
// The windowed table shows the transient: after the shift the frozen RM2
// flatlines at its planned capacity with an exploding p99, while the
// adaptive run grows RM2's share within a couple of windows and drains
// the backlog. The adaptive total weighted QPS must come out >= frozen.
//
//   ./fig12_load_change [DURATION_S] [BASE_RATE_QPS] [REALLOC_PERIOD_S]
//   ./fig12_load_change 60 18 10
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "core/fleet.h"

int main(int argc, char** argv) {
  using namespace kairos;
  const double duration = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double base_rate = argc > 2 ? std::atof(argv[2]) : 18.0;
  const double period = argc > 3 ? std::atof(argv[3]) : 10.0;
  const double shift_scale = 5.0;
  const double shift_time = duration / 2.0;

  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions fleet_options;
  fleet_options.budget_per_hour = 8.0;
  fleet_options.allocator = "MARGINAL";
  auto fleet = bench::OrDie(core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      fleet_options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = bench::OrDie(fleet.PlanAll());

  core::FleetServeOptions serve;
  serve.duration_s = duration;
  serve.base_rate_qps = base_rate;
  serve.window_s = duration / 12.0;
  serve.launch_lag_s = 1.0;
  serve.shifts = {core::FleetLoadShift{shift_time, "RM2", shift_scale}};

  serve.realloc_period_s = 0.0;
  const auto frozen = bench::OrDie(fleet.ServeAll(plan, serve));
  serve.realloc_period_s = period;
  const auto adaptive = bench::OrDie(fleet.ServeAll(plan, serve));

  // Same shared-clock arrival schedule in both runs; only service differs.
  TextTable table({"window", "t(s)", "RM2 offered", "frozen QPS",
                   "frozen p99(ms)", "adaptive QPS", "adaptive p99(ms)"});
  const auto& fr = frozen.models[0];
  const auto& ad = adaptive.models[0];
  for (std::size_t w = 0; w < fr.windows.size(); ++w) {
    const auto& f = fr.windows[w];
    const auto& a = ad.windows[w];
    const bool after = f.start >= shift_time;
    table.AddRow({std::string(after ? "post " : "pre ") + std::to_string(w),
                  TextTable::Num(f.end, 0), TextTable::Num(f.offered_qps, 1),
                  TextTable::Num(f.qps, 1), TextTable::Num(f.p99_ms, 1),
                  TextTable::Num(a.qps, 1), TextTable::Num(a.p99_ms, 1)});
  }
  table.Print(std::cout,
              "Fig. 12: RM2 windowed service through a live " +
                  TextTable::Num(shift_scale, 0) +
                  "x arrival jump at t=" + TextTable::Num(shift_time, 0) +
                  "s (one continuous co-simulation; frozen vs. adaptive "
                  "allocation)");

  TextTable totals({"model", "offered", "frozen QPS", "adaptive QPS",
                    "final share ($/hr)"});
  for (std::size_t j = 0; j < frozen.models.size(); ++j) {
    totals.AddRow({frozen.models[j].model,
                   std::to_string(frozen.models[j].totals.offered),
                   TextTable::Num(frozen.models[j].qps, 1),
                   TextTable::Num(adaptive.models[j].qps, 1),
                   TextTable::Num(adaptive.final_shares_per_hour[j], 2)});
  }
  totals.Print(std::cout, "Per-model totals over " +
                              TextTable::Num(duration, 0) + "s");

  std::cout << "total weighted QPS: frozen "
            << TextTable::Num(frozen.total_weighted_qps) << ", adaptive "
            << TextTable::Num(adaptive.total_weighted_qps) << " ("
            << adaptive.reallocations
            << " reallocations; adaptive/frozen = "
            << TextTable::Num(adaptive.total_weighted_qps /
                                  frozen.total_weighted_qps,
                              3)
            << ", must be >= 1)\n";
  if (adaptive.total_weighted_qps + 1e-9 < frozen.total_weighted_qps) {
    std::cerr << "FAIL: adaptive reallocation lost throughput vs. the "
                 "frozen allocation\n";
    return 1;
  }
  return 0;
}
