// Fig. 12: reaction to a workload change. The RM2 batch-size distribution
// flips from the production log-normal to a Gaussian; every scheme restarts
// its configuration search. The figure shows the throughput of each
// scheme's successively evaluated configurations (the transient): KAIROS
// lands on a near-optimal configuration in one shot with zero evaluations,
// KAIROS+ finishes its pruned search within a few evaluations, the others
// grind through their exploration at live-traffic quality.
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "search/bayes_opt.h"
#include "search/kairos_plus.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const bench::ModelBench mb(catalog, "RM2");

  // The regime change: log-normal -> Gaussian (Sec. 8.4).
  const workload::GaussianBatches after(250.0, 120.0);
  const auto monitor = core::MonitorFromMix(after, 10000, 7);

  const auto space = mb.Space();
  const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
  const auto bounds = est.EstimateAll(space, monitor);
  const auto ranked = ub::RankByUpperBound(space, bounds);
  const double guess = 0.5 * ranked.front().upper_bound;

  std::map<std::string, std::map<cloud::Config, double>> memo;
  auto eval_for = [&](const std::string& scheme) {
    return [&, scheme](const cloud::Config& c) {
      auto& cache = memo[scheme];
      if (auto it = cache.find(c); it != cache.end()) return it->second;
      const double qps = mb.Throughput(c, scheme, after, guess);
      cache.emplace(c, qps);
      return qps;
    };
  };

  const std::size_t steps = 20;

  // KAIROS: one shot, no evaluations — a flat line at its pick.
  const auto selection = ub::SelectConfiguration(ranked, catalog);
  const double kairos_qps = eval_for("KAIROS")(selection.chosen);

  // KAIROS+: Algorithm 1 transcript.
  const auto kp = search::KairosPlusSearch(ranked, eval_for("KAIROS"));

  // Baselines: BO exploration transcripts (native, no pruning).
  search::SearchOptions bo_opt;
  bo_opt.subconfig_pruning = false;
  bo_opt.seed = 77;
  bo_opt.max_evals = steps;
  const auto ribbon = search::BayesOptSearch(space, eval_for("RIBBON"),
                                             bo_opt);
  const auto drs = search::BayesOptSearch(space, eval_for("DRS"), bo_opt);
  const auto clkwrk = search::BayesOptSearch(space, eval_for("CLKWRK"),
                                             bo_opt);

  auto at_step = [](const search::SearchResult& r, std::size_t i) {
    if (r.history.empty()) return 0.0;
    return i < r.history.size() ? r.history[i].qps : r.history.back().qps;
  };

  TextTable table({"step", "RIBBON", "DRS", "CLKWRK", "KAIROS (one-shot)",
                   "KAIROS+"});
  for (std::size_t i = 0; i < steps; ++i) {
    const std::string kp_cell =
        i < kp.history.size()
            ? TextTable::Num(kp.history[i].qps)
            : TextTable::Num(kp.best_qps) + " (done)";
    table.AddRow({std::to_string(i), TextTable::Num(at_step(ribbon, i)),
                  TextTable::Num(at_step(drs, i)),
                  TextTable::Num(at_step(clkwrk, i)),
                  TextTable::Num(kairos_qps), kp_cell});
  }
  table.Print(std::cout,
              "Fig. 12: transient after the log-normal -> Gaussian load "
              "change (RM2; throughput of each evaluated config)");
  std::cout << "KAIROS one-shot config " << selection.chosen.ToString()
            << " reaches " << TextTable::Num(kairos_qps)
            << " QPS with 0 evaluations; KAIROS+ finished after "
            << kp.evals << " evaluations (all other configs pruned)\n";
  return 0;
}
