// Fig. 3: the same heterogeneous configuration performs very differently
// under different query-distribution mechanisms (RIBBON / DRS / CLKWRK vs.
// the clairvoyant ORCL) — intelligent distribution, not heterogeneity
// alone, unlocks the throughput.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::MotivationPool();
  const bench::ModelBench rm2(catalog, "RM2", 2.5);
  const auto mix = workload::LogNormalBatches::Production();

  const std::vector<cloud::Config> configs = {
      cloud::Config({4, 0, 0}), cloud::Config({2, 0, 9}),
      cloud::Config({3, 1, 3})};

  TextTable table({"config", "RIBBON", "DRS", "CLKWRK", "ORCL"});
  for (const cloud::Config& config : configs) {
    const double ribbon = rm2.Throughput(config, "RIBBON", mix, 40.0);
    const int threshold = rm2.TuneDrsThreshold(config, mix, 40.0);
    const double drs = rm2.Throughput(config, "DRS", mix, 40.0, threshold);
    const double clk = rm2.Throughput(config, "CLKWRK", mix, 40.0);
    const double orcl = rm2.Oracle(config, mix);
    table.AddRow({config.ToString(), TextTable::Num(ribbon),
                  TextTable::Num(drs), TextTable::Num(clk),
                  TextTable::Num(orcl)});
  }
  table.Print(std::cout,
              "Fig. 3: throughput by query-distribution mechanism (RM2)");
  return 0;
}
