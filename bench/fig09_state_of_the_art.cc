// Fig. 9: Kairos and Kairos+ against the state of the art. Following the
// paper's deliberately conservative protocol (Sec. 8.2) — and going one
// step further:
//  * RIBBON / DRS / CLKWRK are each handed the configuration that maximizes
//    *their own* throughput, found by offline search over an oracle-ranked
//    shortlist, for free (their exploration overhead is ignored here —
//    Fig. 10 charges it). DRS additionally gets its threshold tuned by hill
//    climbing, for free;
//  * KAIROS uses its own one-shot planned configuration (no evaluation);
//  * KAIROS+ runs Algorithm 1 with real evaluations;
//  * ORCL is the clairvoyant reference at the oracle-optimal config.
// Throughput is normalized to RIBBON per model, as in the figure.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  TextTable table({"model", "RIBBON", "DRS", "CLKWRK", "KAIROS", "KAIROS+",
                   "ORCL"});
  TextTable abs_table({"model", "scheme", "config", "QPS"});
  for (const std::string& model : bench::Models()) {
    const bench::ModelBench mb(catalog, model);
    core::Kairos kairos(catalog, model);
    kairos.ObserveMix(mix);
    const core::Plan plan = kairos.PlanConfiguration();
    const double guess = plan.ranked.front().upper_bound * 0.5;

    const auto [ribbon_cfg, ribbon] =
        mb.BestConfigForScheme("RIBBON", mix, guess);
    const auto [drs_cfg, drs] = mb.BestConfigForScheme("DRS", mix, guess);
    const auto [clk_cfg, clkwrk] =
        mb.BestConfigForScheme("CLKWRK", mix, guess);
    const double kairos_qps =
        mb.Throughput(plan.config, "KAIROS", mix, guess);

    // Kairos+ with real evaluations over the UB-ranked space.
    const search::EvalFn eval = [&](const cloud::Config& c) {
      return mb.Throughput(c, "KAIROS", mix, guess);
    };
    const auto plus = kairos.PlanWithEvaluations(eval);

    // Oracle at its own optimal configuration.
    const auto oracle_search = oracle::OracleSearch(
        catalog, mb.Space(), mb.truth, mb.qos_ms, mix,
        ScaledCount(3000, 800), 55);
    const double orcl = oracle_search.best_qps;

    auto norm = [&](double v) { return TextTable::Num(v / ribbon, 2); };
    table.AddRow({model, norm(ribbon), norm(drs), norm(clkwrk),
                  norm(kairos_qps), norm(plus.best_qps), norm(orcl)});
    abs_table.AddRow({model, "RIBBON@own-best", ribbon_cfg.ToString(),
                      TextTable::Num(ribbon)});
    abs_table.AddRow({model, "DRS@own-best", drs_cfg.ToString(),
                      TextTable::Num(drs)});
    abs_table.AddRow({model, "CLKWRK@own-best", clk_cfg.ToString(),
                      TextTable::Num(clkwrk)});
    abs_table.AddRow({model, "KAIROS@planned", plan.config.ToString(),
                      TextTable::Num(kairos_qps)});
    abs_table.AddRow({model, "KAIROS+@searched", plus.best_config.ToString(),
                      TextTable::Num(plus.best_qps)});
    abs_table.AddRow({model, "ORCL@oracle-best",
                      oracle_search.best_config.ToString(),
                      TextTable::Num(orcl)});
  }
  table.Print(std::cout,
              "Fig. 9: normalized throughput vs state of the art "
              "(normalized to RIBBON)");
  abs_table.Print(std::cout, "Fig. 9 appendix: absolute QPS and configs");
  return 0;
}
