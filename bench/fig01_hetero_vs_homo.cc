// Fig. 1: throughput vs. cost of heterogeneous configurations against the
// best homogeneous one, for RM2 over the G1/C1/C2 motivation pool at the
// $2.5/hr budget. As in the paper's motivation study, queries are
// distributed with Ribbon's simple FCFS mechanism, the homogeneous
// throughput is proportionally scaled up to the full budget, and the
// expected shape is: (3,1,3) beats homogeneous while (2,0,9) and (1,4,2)
// fall below it — heterogeneity alone is not sufficient.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::MotivationPool();
  const bench::ModelBench rm2(catalog, "RM2", /*budget=*/2.5);
  const auto mix = workload::LogNormalBatches::Production();

  const cloud::Config homo({4, 0, 0});
  const std::vector<cloud::Config> heteros = {
      cloud::Config({3, 1, 3}), cloud::Config({2, 0, 9}),
      cloud::Config({1, 4, 2})};

  TextTable table(
      {"config", "cost ($/hr)", "QPS (Ribbon dist.)", "vs homogeneous"});
  const double homo_raw = rm2.Throughput(homo, "RIBBON", mix, 40.0);
  const double homo_scaled = homo_raw * 2.5 / homo.CostPerHour(catalog);
  table.AddRow({homo.ToString() + " homogeneous (scaled)",
                TextTable::Num(2.5, 3), TextTable::Num(homo_scaled),
                "1.00x"});
  for (const cloud::Config& config : heteros) {
    const double qps = rm2.Throughput(config, "RIBBON", mix, homo_scaled);
    table.AddRow({config.ToString(),
                  TextTable::Num(config.CostPerHour(catalog), 3),
                  TextTable::Num(qps),
                  TextTable::Num(qps / homo_scaled, 2) + "x"});
  }
  table.Print(std::cout,
              "Fig. 1: heterogeneous configs vs best homogeneous (RM2, "
              "budget $2.5/hr, Ribbon FCFS distribution)");
  return 0;
}
