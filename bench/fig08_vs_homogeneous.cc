// Fig. 8: Kairos's one-shot planned configuration vs. the optimal
// homogeneous configuration, per model, same QoS and budget. The paper
// reports 1.25x-2.03x with RM2 the largest win; the homogeneous baseline
// is proportionally scaled up to the full budget (conservative), while
// Kairos's own budget slack is wasted.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();
  const double paper_ratio[] = {1.68, 2.03, 1.34, 1.25, 1.43};

  TextTable table({"model", "Kairos config", "Kairos QPS",
                   "homogeneous QPS (scaled)", "ratio", "paper"});
  std::size_t i = 0;
  for (const std::string& model : bench::Models()) {
    const bench::ModelBench mb(catalog, model);
    // One-shot planning through the registry-selected backend — the same
    // entry point the examples and the Fleet facade use.
    const auto monitor = core::MonitorFromMix(mix, 10000, 7);
    const core::PlannerOutcome outcome = mb.PlanWith("KAIROS", monitor);
    const double guess = outcome.plan->ranked.front().upper_bound * 0.5;
    const double hetero = mb.Throughput(outcome.config, "KAIROS", mix, guess);
    const double homo = mb.ScaledHomogeneous(mix, guess);
    table.AddRow({model, outcome.config.ToString(), TextTable::Num(hetero),
                  TextTable::Num(homo), TextTable::Num(hetero / homo, 2) + "x",
                  TextTable::Num(paper_ratio[i], 2) + "x"});
    ++i;
  }
  table.Print(std::cout,
              "Fig. 8: Kairos vs optimal homogeneous (budget $2.5/hr)");
  return 0;
}
