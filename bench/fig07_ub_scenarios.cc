// Fig. 7: the two worked upper-bound scenarios, evaluated by the actual
// Eq. 9-15 implementation. Scenario 1 has the base instance as the
// bottleneck (QPSmax = 225); scenario 2 leaves base slack (QPSmax = 233).
#include <array>
#include <iostream>

#include "bench/bench_util.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  struct Scenario {
    const char* name;
    double q_b, q_b_splus, q_a, f;
    double paper_qpsmax;
  };
  const std::array<Scenario, 2> scenarios = {{
      {"Scenario 1 (base bottleneck)", 100.0, 90.0, 150.0, 0.6, 225.0},
      {"Scenario 2 (aux bottleneck)", 100.0, 90.0, 140.0, 0.7, 233.33},
  }};

  TextTable table({"scenario", "Qb", "Qb_s+", "Qa", "f", "QPSmax (ours)",
                   "QPSmax (paper)"});
  for (const Scenario& s : scenarios) {
    const std::array<std::pair<int, double>, 1> aux = {{{1, s.q_a}}};
    const double qps = ub::UpperBoundGeneral(1, s.q_b, s.q_b_splus, aux, s.f);
    table.AddRow({s.name, TextTable::Num(s.q_b, 0),
                  TextTable::Num(s.q_b_splus, 0), TextTable::Num(s.q_a, 0),
                  TextTable::Num(s.f, 1), TextTable::Num(qps),
                  TextTable::Num(s.paper_qpsmax)});
  }
  table.Print(std::cout, "Fig. 7: upper-bound worked examples (Eq. 9-15)");
  return 0;
}
