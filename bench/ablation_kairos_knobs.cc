// Ablation of Kairos's distribution-mechanism design choices (DESIGN.md
// Sec. 6): the heterogeneity coefficient C_j (Definition 1), the QoS
// penalty factor (Eq. 8's 10x), and the matcher window (an implementation
// guard). Measured on RM2 at Kairos's planned configuration.
#include <iostream>

#include "bench/bench_util.h"
#include "policy/kairos_policy.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const bench::ModelBench mb(catalog, "RM2");
  const auto mix = workload::LogNormalBatches::Production();

  core::Kairos kairos(catalog, "RM2");
  kairos.ObserveMix(mix);
  const core::Plan plan = kairos.PlanConfiguration();
  const double guess = plan.ranked.front().upper_bound * 0.5;

  auto qps_with = [&](policy::KairosPolicyOptions opts,
                      serving::RunOptions run = {}) {
    return serving::EvaluateConfig(
               catalog, plan.config, mb.truth, mb.qos_ms,
               [opts] { return std::make_unique<policy::KairosPolicy>(opts); },
               mix, bench::StdEval(guess), serving::PredictorOptions{}, run)
        .qps;
  };

  TextTable table({"variant", "QPS", "vs default"});
  const double base_qps = qps_with(policy::KairosPolicyOptions{});
  table.AddRow({"default (C_j on, penalty 10x, xi 0.98)",
                TextTable::Num(base_qps), "1.00x"});

  auto add = [&](const std::string& label, double qps) {
    table.AddRow({label, TextTable::Num(qps),
                  TextTable::Num(qps / base_qps, 2) + "x"});
  };

  {
    policy::KairosPolicyOptions o;
    o.use_heterogeneity_coefficient = false;
    add("no heterogeneity coefficient (C_j = 1)", qps_with(o));
  }
  for (double pf : {1.5, 3.0, 30.0}) {
    policy::KairosPolicyOptions o;
    o.penalty_factor = pf;
    add("penalty factor " + TextTable::Num(pf, 1) + "x", qps_with(o));
  }
  for (double xi : {0.90, 1.00}) {
    policy::KairosPolicyOptions o;
    o.xi = xi;
    add("xi = " + TextTable::Num(xi, 2), qps_with(o));
  }
  for (std::size_t window : {std::size_t{4}, std::size_t{16}}) {
    serving::RunOptions run;
    run.matcher_window = window;
    add("matcher window " + std::to_string(window),
        qps_with(policy::KairosPolicyOptions{}, run));
  }
  table.Print(std::cout,
              "Ablation: Kairos distribution-mechanism knobs (RM2, config " +
                  plan.config.ToString() + ")");
  return 0;
}
