// Table 3: models and QoS targets, plus each model's calibrated latency
// surface over the paper's instance pool (the reproduction's substitution
// for real model serving — see DESIGN.md).
#include <iostream>

#include "bench/bench_util.h"
#include "latency/model_zoo.h"

int main() {
  using namespace kairos;
  TextTable table({"Model", "Description", "Application", "QoS (ms)"});
  for (const auto& spec : latency::ModelZoo()) {
    table.AddRow({spec.name, spec.description, spec.application,
                  TextTable::Num(spec.qos_ms, 0)});
  }
  table.Print(std::cout, "Table 3: models and QoS targets");

  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  TextTable curves({"Model", "Type", "base_ms", "per_item_ms",
                    "lat(1000) ms", "QoS region s_j"});
  for (const auto& spec : latency::ModelZoo()) {
    const auto truth = spec.Instantiate(catalog);
    for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
      const auto& c = truth.Curve(t);
      curves.AddRow({spec.name, catalog[t].short_name,
                     TextTable::Num(c.base_ms, 2),
                     TextTable::Num(c.per_item_ms, 4),
                     TextTable::Num(c.AtBatch(1000), 1),
                     std::to_string(truth.MaxQosBatch(t, spec.qos_ms))});
    }
  }
  curves.Print(std::cout, "Calibrated latency surfaces (substitution)");
  return 0;
}
