// The tracked perf-bench suite: machine-readable throughput numbers for
// every hot path this repo optimizes, emitted as BENCH_perf.json so the
// perf trajectory is diffable across commits (CI's perf-smoke job fails on
// a >2x regression vs bench/baselines/perf_baseline.json).
//
// Metrics:
//   * sim_events_per_sec           — raw discrete-event loop throughput
//                                    (calendar-queue backend)
//   * sim_events_per_sec_heap      — same workload on the binary-heap
//                                    oracle backend, raced side by side
//   * eq_churn_{1k,100k,1m}[_heap]_events_per_sec — steady-state event-
//                                    queue churn (fire one / schedule one)
//                                    at a held occupancy, per backend
//   * eval_trials_per_sec          — AllowableThroughput simulation trials/s
//   * evals_per_sec_kairos_plus    — KAIROS+ planning, serial evaluation
//   * evals_per_sec_kairos_plus_batched — same plan, batched eval frontier
//   * plans_per_sec_kairos         — one-shot (zero-evaluation) planning
//   * serve_all_wall_s_{1,2,4,8}t  — 8-shard fleet co-simulation wall-clock
//   * serve_all_speedup_8t         — wall(1 thread) / wall(8 threads)
//   * serve_all_wall_telemetry_s   — the 1-thread run with the telemetry
//                                    plane attached (metrics + spans +
//                                    barrier snapshots)
//   * serve_all_telemetry_overhead — wall(telemetry) / wall(1 thread); the
//                                    overhead contract gates this at <3%
//                                    in full mode (tiny walls are timer
//                                    noise; the baseline diff still
//                                    watches them at every size)
//   * sustained_queries_per_sec    — STREAM-fed overload run, arrivals/s wall
//   * sustained_shed_rate          — deadline-shed fraction of that run
//   * sustained_p99_ms             — worst windowed p99 of that run
//   * sustained_peak_rss_mb        — peak resident set after that run
//   * sustained_steady_allocs      — operator-new calls over the warm
//                                    second half of the sustained run's
//                                    windows; the zero-alloc contract
//                                    FATALs when it is not exactly 0
//   * sustained_telemetry_overhead — the same sustained run instrumented,
//                                    wall ratio; gated at <3% in sustained
//                                    mode (the 10M-query contract)
//
// Every run also races the calendar queue against the heap oracle on a
// randomized schedule/cancel/fire workload and FATALs on any divergence in
// firing order, so perf numbers are only ever reported for a queue that is
// bit-identical to the reference.
//
// The co-simulation runs also assert the sharding contract: every thread
// count must reproduce the 1-thread totals bit for bit, or the bench exits
// non-zero. The sustained run asserts the scale contract: every generated
// query is offered through the bounded-memory STREAM path and peak RSS
// stays under a hard bound (DESIGN.md Sec. 12), or the bench exits
// non-zero.
//
// Usage: perf_suite [output.json] [tiny|full|sustained]
//   tiny      — CI-sized inputs (seconds); the committed baseline uses tiny.
//   full      — larger inputs for local measurement.
//   sustained — tiny-sized inputs plus a 10M-query sustained streaming run
//               (also accepted as --sustained). KAIROS_SUSTAINED_QUERIES
//               overrides the query count in any mode (sanitizer jobs run
//               the sustained path at a tiny scale this way).
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <fstream>
#include <new>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/fleet.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/batch_dist.h"

#if defined(__SANITIZE_ADDRESS__)
#define KAIROS_PERF_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KAIROS_PERF_ASAN 1
#endif
#endif
#ifndef KAIROS_PERF_ASAN
#define KAIROS_PERF_ASAN 0
#endif

namespace kairos::bench {
/// Process-wide count of operator-new calls (scalar, array and aligned
/// forms). The sustained bench snapshots it at every window barrier to
/// assert the zero-steady-state-allocation contract; everything else
/// ignores it, and the relaxed counter costs one uncontended atomic add
/// per allocation — noise on a path that just called malloc.
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace kairos::bench

namespace {
void* CountedAlloc(std::size_t n, std::size_t align) {
  kairos::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  if (align <= alignof(std::max_align_t)) return std::malloc(n);
  void* p = nullptr;
  if (posix_memalign(&p, align, n) != 0) return nullptr;
  return p;
}
}  // namespace

void* operator new(std::size_t n) {
  void* p = CountedAlloc(n, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  void* p = CountedAlloc(n, static_cast<std::size_t>(al));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return CountedAlloc(n, 0);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return CountedAlloc(n, 0);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace kairos::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Metric {
  std::string name;
  double value = 0.0;
  bool higher_is_better = true;
};

/// No-payload event for queue microbenches: trivially copyable, so EventFn
/// stores it inline and relocates with memcpy.
struct NoopEvent {
  void operator()() const {}
};

/// Shared state of one SimEventsPerSec run; the hop events hold a pointer.
struct ChainBench {
  sim::Simulator* sim = nullptr;
  std::size_t fired = 0;
  std::size_t total = 0;
};

/// One self-rescheduling hop: schedule-and-cancel a doomed companion, then
/// reschedule itself. Trivially copyable on purpose — the previous
/// std::function-based hop spent a third of the bench wall inside its own
/// capture allocation and indirect dispatch (gprof), swamping the queue
/// under test; this functor rides EventFn's inline memcpy path.
struct HopEvent {
  ChainBench* chain;
  double gap;
  void operator()() const {
    sim::Simulator& sim = *chain->sim;
    const sim::EventId doomed = sim.After(gap * 2.0, NoopEvent{});
    sim.Cancel(doomed);
    if (++chain->fired < chain->total) sim.After(gap, HopEvent{chain, gap});
  }
};

/// Raw event-loop throughput: several interleaved self-rescheduling chains
/// (the shape of engine source pulls + completions), with a cancellation on
/// every hop to exercise the free list. Best of three passes, because a
/// sub-second wall on a shared machine swings far more than the queues
/// differ. Runs on the given backend so the calendar queue and the heap
/// oracle are reported side by side.
Metric SimEventsPerSec(std::size_t total_events, sim::QueueBackend backend,
                       const char* name) {
  constexpr std::size_t kChains = 16;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    sim::Simulator sim(backend);
    ChainBench chain{&sim, 0, total_events};
    const auto start = Clock::now();
    for (std::size_t c = 0; c < kChains; ++c) {
      const double gap = 0.9 + 0.01 * static_cast<double>(c);
      sim.After(gap, HopEvent{&chain, gap});
    }
    sim.RunUntil();
    const double wall = SecondsSince(start);
    // Count the cancelled companions too: Schedule+Cancel is queue work.
    best = std::max(best, 2.0 * static_cast<double>(chain.fired) / wall);
  }
  return {name, best, true};
}

/// Fired event that folds its tag into a running FNV hash — the firing
/// *order* becomes the hash value.
struct MarkEvent {
  std::uint64_t* hash;
  std::uint64_t tag;
  void operator()() const {
    *hash ^= tag;
    *hash *= 1099511628211ull;
  }
};

/// Hash of the complete firing order of a randomized schedule / cancel /
/// fire workload on one backend. Identical seeds must hash identically on
/// every backend (the bit-identical-ordering contract); Main races the
/// calendar queue against the heap oracle and FATALs on divergence, so a
/// perf number is only ever reported for a queue that still matches the
/// reference.
std::uint64_t FiringOrderFingerprint(sim::QueueBackend backend) {
  sim::EventQueue queue(backend);
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t lcg = 0x5DEECE66Dull;
  const auto rnd = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  std::vector<sim::EventId> live;
  live.reserve(8192);
  Time now = 0.0;
  std::uint64_t tag = 0;
  for (int i = 0; i < 50000; ++i) {
    switch (rnd() % 4) {
      case 0:
      case 1: {  // schedule (twice as likely: the queue should stay busy)
        const Time at = now + static_cast<double>(rnd() % 4096) * 0.001;
        live.push_back(queue.Schedule(at, MarkEvent{&hash, ++tag}));
        break;
      }
      case 2: {  // cancel a random handle (often already fired: no-op)
        if (!live.empty()) queue.Cancel(live[rnd() % live.size()]);
        break;
      }
      default: {  // fire the earliest
        if (!queue.Empty()) {
          now = queue.NextTime();
          queue.RunNext();
          hash ^= std::bit_cast<std::uint64_t>(now);
          hash *= 1099511628211ull;
        }
        break;
      }
    }
  }
  while (!queue.Empty()) {
    now = queue.NextTime();
    queue.RunNext();
    hash ^= std::bit_cast<std::uint64_t>(now);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Steady-state event-queue churn at a held occupancy: `pending` events in
/// flight, then fire-one / schedule-one for a fixed op count. This is the
/// regime the calendar queue exists for — occupancy-independent cost where
/// the heap pays log(pending) per op — measured at three occupancies on
/// both backends.
std::vector<Metric> EventQueueChurn(bool tiny) {
  struct Case {
    const char* label;
    std::size_t pending;
  };
  constexpr Case kCases[] = {{"1k", 1000}, {"100k", 100000}, {"1m", 1000000}};
  std::vector<Metric> metrics;
  for (const Case& c : kCases) {
    const std::size_t ops = tiny ? 200000 : 1000000;
    for (const sim::QueueBackend backend :
         {sim::QueueBackend::kCalendar, sim::QueueBackend::kHeap}) {
      double best = 0.0;
      for (int rep = 0; rep < 2; ++rep) {
        sim::EventQueue queue(backend);
        std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
        const auto u01 = [&lcg] {
          lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
          return static_cast<double>(lcg >> 11) * 0x1.0p-53;
        };
        const double horizon = static_cast<double>(c.pending);
        for (std::size_t i = 0; i < c.pending; ++i) {
          queue.Schedule(u01() * horizon, NoopEvent{});
        }
        const auto start = Clock::now();
        for (std::size_t i = 0; i < ops; ++i) {
          const Time fired_at = queue.RunNext();
          queue.Schedule(fired_at + horizon * (0.5 + 0.5 * u01()),
                         NoopEvent{});
        }
        const double wall = SecondsSince(start);
        best = std::max(best, 2.0 * static_cast<double>(ops) / wall);
      }
      metrics.push_back(
          {std::string("eq_churn_") + c.label +
               (backend == sim::QueueBackend::kHeap ? "_heap" : "") +
               "_events_per_sec",
           best, true});
    }
  }
  return metrics;
}

/// AllowableThroughput trials/sec on the paper pool — the expensive unit
/// every search evaluation is made of.
Metric EvalTrialsPerSec(std::size_t queries, int rounds) {
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  ModelBench bench(catalog, "WND", /*budget=*/2.5);
  const auto mix = workload::LogNormalBatches::Production();
  const auto factory =
      OrDie(policy::PolicyRegistry::Global().MakeFactory("KAIROS", {}));
  serving::EvalOptions opt;
  opt.queries = queries;
  opt.rate_guess = 30.0;
  int trials = 0;
  const auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    const auto result =
        serving::EvaluateConfig(catalog, cloud::Config({2, 1, 1, 0}),
                                bench.truth, bench.qos_ms, factory, mix, opt);
    trials += result.trials;
  }
  const double wall = SecondsSince(start);
  return {"eval_trials_per_sec", static_cast<double>(trials) / wall, true};
}

/// KAIROS+ planning throughput in evaluations/sec, serial vs batched
/// frontier (same SearchResult by construction; asserted here).
std::vector<Metric> PlannerEvalsPerSec(std::size_t queries,
                                       std::size_t max_evals) {
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  ModelBench bench(catalog, "WND", /*budget=*/3.0);
  const auto mix = workload::LogNormalBatches::Production();
  const auto monitor = core::MonitorFromMix(mix, 4000, /*seed=*/7);
  const auto factory =
      OrDie(policy::PolicyRegistry::Global().MakeFactory("KAIROS", {}));
  serving::EvalOptions eval_opt;
  eval_opt.queries = queries;
  eval_opt.rate_guess = 30.0;
  const search::EvalFn eval = [&](const cloud::Config& c) {
    return serving::EvaluateConfig(catalog, c, bench.truth, bench.qos_ms,
                                   factory, mix, eval_opt)
        .qps;
  };

  std::vector<Metric> metrics;
  // The batched frontier must never cost evaluations/sec: it regressed
  // once (staging overhead with a serial frontier) and EvaluateBatch's
  // serial fallback exists precisely to keep that from recurring, so the
  // bench gates batched >= 0.95x serial in-binary. Wall noise on a loaded
  // runner can fake a miss, so remeasure up to three interleaved pairs and
  // gate on the best rate seen on each side.
  constexpr double kBatchedFloor = 0.95;
  double serial_rate = 0.0, batched_rate = 0.0;
  core::PlannerOutcome serial_outcome, batched_outcome;
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (const bool batched : {false, true}) {
      search::SearchOptions search;
      search.max_evals = max_evals;
      search.eval_threads = batched ? 0 : 1;  // 0 = hardware concurrency
      const auto start = Clock::now();
      const auto outcome = bench.PlanWith("KAIROS+", monitor, eval, search);
      const double wall = SecondsSince(start);
      const double rate = static_cast<double>(outcome.evaluations) / wall;
      if (batched) {
        batched_rate = std::max(batched_rate, rate);
        batched_outcome = outcome;
      } else {
        serial_rate = std::max(serial_rate, rate);
        serial_outcome = outcome;
      }
    }
    if (!(serial_outcome.config == batched_outcome.config) ||
        serial_outcome.evaluations != batched_outcome.evaluations) {
      std::cerr << "FATAL: batched KAIROS+ diverged from serial ("
                << serial_outcome.config.ToString() << "/"
                << serial_outcome.evaluations << " vs "
                << batched_outcome.config.ToString() << "/"
                << batched_outcome.evaluations << ")\n";
      std::exit(1);
    }
    if (batched_rate >= kBatchedFloor * serial_rate) break;
  }
  metrics.push_back({"evals_per_sec_kairos_plus", serial_rate, true});
  metrics.push_back(
      {"evals_per_sec_kairos_plus_batched", batched_rate, true});
  if (batched_rate < kBatchedFloor * serial_rate) {
    std::cerr << "FATAL: batched KAIROS+ evaluation rate " << batched_rate
              << "/s fell below " << kBatchedFloor << "x the serial rate "
              << serial_rate << "/s (the batched frontier must never cost "
              << "throughput; see CountingEvaluator::EvaluateBatch)\n";
    std::exit(1);
  }

  // One-shot planning passes (zero evaluations) for the registry default.
  {
    int plans = 0;
    const auto start = Clock::now();
    double wall = 0.0;
    while ((wall = SecondsSince(start)) < 0.5) {
      (void)bench.PlanWith("KAIROS", monitor);
      ++plans;
    }
    metrics.push_back(
        {"plans_per_sec_kairos", static_cast<double>(plans) / wall, true});
  }
  return metrics;
}

/// The telemetry overhead contract (DESIGN.md Sec. 13): an enabled plane
/// may cost at most this factor on a serve wall-clock.
constexpr double kTelemetryOverheadBound = 1.03;

/// 8-shard fleet co-simulation wall-clock at 1/2/4/8 serve threads, with a
/// bit-identity check of every run against the 1-thread totals, plus the
/// same run with the telemetry plane attached (gated at <3% overhead when
/// `gate_overhead` — full mode, where the wall is large enough to trust).
std::vector<Metric> ServeAllWallClock(double duration_s, bool gate_overhead) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 24.0;
  auto fleet = OrDie(core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "NCF"},
       core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "MT-WND"},
       core::FleetModelOptions{.model = "DIEN"},
       core::FleetModelOptions{.model = "NCF", .name = "NCF-B"},
       core::FleetModelOptions{.model = "WND", .name = "WND-B"},
       core::FleetModelOptions{.model = "RM2", .name = "RM2-B"}},
      options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = OrDie(fleet.PlanAll());

  core::FleetServeOptions serve;
  serve.duration_s = duration_s;
  serve.base_rate_qps = 60.0;
  serve.window_s = 5.0;

  std::vector<Metric> metrics;
  double wall_1t = 0.0, wall_8t = 0.0;
  core::FleetServeResult reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    serve.serve_threads = threads;
    if (threads == 1) (void)OrDie(fleet.ServeAll(plan, serve));  // warm-up
    const auto start = Clock::now();
    auto result = OrDie(fleet.ServeAll(plan, serve));
    const double wall = SecondsSince(start);
    if (threads == 1) {
      wall_1t = wall;
      reference = std::move(result);
    } else if (result.total_weighted_qps != reference.total_weighted_qps ||
               result.models.size() != reference.models.size()) {
      std::cerr << "FATAL: ServeAll with " << threads
                << " threads diverged from the 1-thread run\n";
      std::exit(1);
    }
    if (threads == 8) wall_8t = wall;
    metrics.push_back({"serve_all_wall_s_" + std::to_string(threads) + "t",
                       wall, /*higher_is_better=*/false});
  }
  // A real multi-core gate: on hardware with >= 8 threads the 8-way shard
  // must actually buy wall-clock (>= 1.5x over 1 thread), in-binary, so a
  // serialization bug cannot hide behind a single-core baseline. One
  // remeasured pair absorbs scheduler hiccups before declaring failure.
  constexpr double kSpeedupFloor = 1.5;
  double speedup_8t = wall_1t / wall_8t;
  if (std::thread::hardware_concurrency() >= 8 &&
      speedup_8t < kSpeedupFloor) {
    serve.serve_threads = 1;
    const auto retry_1t = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    const double best_1t = std::min(wall_1t, SecondsSince(retry_1t));
    serve.serve_threads = 8;
    const auto retry_8t = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    const double best_8t = std::min(wall_8t, SecondsSince(retry_8t));
    speedup_8t = best_1t / best_8t;
  }
  metrics.push_back({"serve_all_speedup_8t", speedup_8t, true});
  if (std::thread::hardware_concurrency() >= 8 &&
      speedup_8t < kSpeedupFloor) {
    std::cerr << "FATAL: serve_all_speedup_8t " << speedup_8t
              << "x is below the " << kSpeedupFloor
              << "x floor on a machine with "
              << std::thread::hardware_concurrency()
              << " hardware threads\n";
    std::exit(1);
  }

  // The same 1-thread run with the telemetry plane attached: per-engine
  // counters and spans, barrier snapshots, the lot. Best of two runs, so
  // one scheduler hiccup cannot fail the gate.
  auto telemetry = OrDie(telemetry::Telemetry::Create(
      {"NCF", "RM2", "WND", "MT-WND", "DIEN", "NCF-B", "WND-B", "RM2-B"}));
  serve.serve_threads = 1;
  serve.telemetry = telemetry.get();
  double wall_tel = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    telemetry->Reset();
    const auto start = Clock::now();
    const auto result = OrDie(fleet.ServeAll(plan, serve));
    wall_tel = std::min(wall_tel, SecondsSince(start));
    if (result.total_weighted_qps != reference.total_weighted_qps ||
        result.telemetry_samples.empty()) {
      std::cerr << "FATAL: telemetry-enabled ServeAll diverged from the "
                   "uninstrumented run (pure-observer contract broken)\n";
      std::exit(1);
    }
  }
  double overhead = wall_tel / wall_1t;
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    // Wall noise can exceed 3% on its own. Before declaring a breach,
    // measure one more interleaved pair and gate on the best of each side.
    serve.telemetry = nullptr;
    const auto retry_base = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    const double wall_base = std::min(wall_1t, SecondsSince(retry_base));
    serve.telemetry = telemetry.get();
    telemetry->Reset();
    const auto retry_tel = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    wall_tel = std::min(wall_tel, SecondsSince(retry_tel));
    overhead = wall_tel / wall_base;
  }
  metrics.push_back({"serve_all_wall_telemetry_s", wall_tel, false});
  metrics.push_back({"serve_all_telemetry_overhead", overhead, false});
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    std::cerr << "FATAL: telemetry overhead " << overhead
              << "x on serve_all_wall crossed the "
              << kTelemetryOverheadBound << "x bound\n";
    std::exit(1);
  }
  return metrics;
}

/// Peak resident set size of this process so far, in MB (Linux ru_maxrss
/// is in KB).
double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// The million-user scale path under load: generates an overload trace CSV
/// of `n_queries` rows, streams it through Fleet::ServeAll via the STREAM
/// source (bounded-memory chunks, no materialization) with deadline
/// shedding armed, and reports wall-clock arrival throughput, the shed
/// fraction, the worst windowed p99 and peak RSS. Exits non-zero when a
/// query is lost before admission (offered != n_queries) or peak RSS
/// crosses the hard bound — the scale contract this bench exists to keep.
/// The run is then repeated with the telemetry plane attached; the wall
/// ratio is gated at <3% when `gate_overhead` (sustained mode — the
/// 10M-query half of the overhead contract).
std::vector<Metric> SustainedStreaming(std::size_t n_queries,
                                       bool gate_overhead) {
  constexpr double kRssBoundMb = 1024.0;
  const std::string trace_path = "perf_sustained_trace.csv";

  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  // A small config on purpose: saturated-regime wall cost is
  // O(matcher_window x instances) per policy round, and this bench
  // measures the streaming/admission path, not matcher scaling.
  options.budget_per_hour = 1.0;
  core::FleetModelOptions model;
  model.model = "NCF";
  model.trace = "STREAM";
  model.trace_path = trace_path;
  auto fleet = OrDie(core::Fleet::Create(catalog, {model}, options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = OrDie(fleet.PlanAll());

  // Offered rate: 2x the planner's expected allowable throughput, so the
  // run is a sustained overload and the shed path actually runs.
  const double expected_qps = plan.models[0].outcome.expected_qps;
  const double rate_qps = 2.0 * (expected_qps > 0.0 ? expected_qps : 100.0);
  {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "FATAL: cannot write " << trace_path << "\n";
      std::exit(1);
    }
    std::fputs("id,arrival_s,batch\n", f);
    for (std::size_t i = 0; i < n_queries; ++i) {
      // Uniform arrivals; batches cycle 1..8 (a deterministic stand-in
      // for the production mix the plan was built against).
      std::fprintf(f, "%zu,%.9f,%d\n", i + 1,
                   static_cast<double>(i + 1) / rate_qps,
                   static_cast<int>(i % 8) + 1);
    }
    std::fclose(f);
  }

  core::FleetServeOptions serve;
  serve.duration_s = 1.05 * static_cast<double>(n_queries) / rate_qps;
  serve.window_s = serve.duration_s / 25.0;
  serve.base_rate_qps = rate_qps;  // ignored by STREAM; must be positive
  serve.keep_latencies = false;
  // Degradation doctrine: shed what cannot meet 3x QoS, with a hard
  // queue-depth backstop so resident memory is bounded whatever the
  // overload factor.
  serve.admission.deadline_s = 3.0 * plan.models[0].qos_ms / 1000.0;
  serve.admission.max_queue = 100000;
  serve.serve_threads = 1;

  // Steady-state allocation audit (the zero-alloc contract): snapshot the
  // process-wide operator-new counter at every window barrier. The first
  // half of the run is warm-up — slabs, ring buffers and policy scratch
  // grow to their high-water marks — after which the serving path must
  // touch the heap exactly zero times per window: every event lives in the
  // simulator slab, every queued query in a ring, every policy round in
  // reused scratch, and the streaming reader in its steady chunk buffer.
  std::vector<std::uint64_t> allocs_at_window;
  allocs_at_window.reserve(64);
  serve.window_probe = [&allocs_at_window](std::size_t,
                                           const serving::WindowedMetrics&) {
    allocs_at_window.push_back(
        g_heap_allocs.load(std::memory_order_relaxed));
  };

  const auto start = Clock::now();
  const auto result = OrDie(fleet.ServeAll(plan, serve));
  const double wall = SecondsSince(start);
  serve.window_probe = nullptr;

  double steady_allocs = 0.0;
  if (allocs_at_window.size() >= 4) {
    const std::size_t warm = allocs_at_window.size() / 2;
    steady_allocs =
        static_cast<double>(allocs_at_window.back() - allocs_at_window[warm]);
  }
  if (steady_allocs > 0.0) {
    std::cerr << (KAIROS_PERF_ASAN ? "warning" : "FATAL")
              << ": sustained run made " << steady_allocs
              << " heap allocations across its warm second half ("
              << allocs_at_window.size()
              << " windows); the steady-state serving path must be "
                 "allocation-free\n";
    if (!KAIROS_PERF_ASAN) std::exit(1);
  }

  // The instrumented replay of the same stream: identical totals required
  // (pure observer), wall ratio reported and — in sustained mode — gated.
  auto telemetry = OrDie(telemetry::Telemetry::Create({"NCF"}));
  serve.telemetry = telemetry.get();
  const auto tel_start = Clock::now();
  const auto tel_result = OrDie(fleet.ServeAll(plan, serve));
  double wall_tel = SecondsSince(tel_start);
  if (tel_result.models[0].totals.offered != result.models[0].totals.offered ||
      tel_result.models[0].totals.served != result.models[0].totals.served ||
      tel_result.models[0].totals.shed != result.models[0].totals.shed) {
    std::cerr << "FATAL: telemetry-enabled sustained run diverged from the "
                 "uninstrumented run (pure-observer contract broken)\n";
    std::exit(1);
  }
  double wall_best = wall;
  double overhead = wall_tel / wall_best;
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    // Run-to-run wall noise on a shared machine can exceed 3% on its own.
    // Before declaring a contract breach, measure one more interleaved
    // pair and gate on the best of each side.
    serve.telemetry = nullptr;
    const auto retry_base = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    wall_best = std::min(wall_best, SecondsSince(retry_base));
    serve.telemetry = telemetry.get();
    telemetry->Reset();
    const auto retry_tel = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    wall_tel = std::min(wall_tel, SecondsSince(retry_tel));
    overhead = wall_tel / wall_best;
  }
  std::remove(trace_path.c_str());
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    std::cerr << "FATAL: telemetry overhead " << overhead
              << "x on the sustained run crossed the "
              << kTelemetryOverheadBound << "x bound\n";
    std::exit(1);
  }

  const serving::RunResult& totals = result.models[0].totals;
  if (totals.offered != n_queries) {
    std::cerr << "FATAL: sustained run offered " << totals.offered << " of "
              << n_queries << " generated queries (stream lost data)\n";
    std::exit(1);
  }
  if (totals.served + totals.shed + totals.rejected > totals.offered) {
    std::cerr << "FATAL: sustained run accounting is inconsistent: served "
              << totals.served << " + shed " << totals.shed << " + rejected "
              << totals.rejected << " > offered " << totals.offered << "\n";
    std::exit(1);
  }
  double worst_p99 = 0.0;
  for (const serving::WindowedMetrics& w : result.models[0].windows) {
    worst_p99 = std::max(worst_p99, w.p99_ms);
  }
  const double peak_rss = PeakRssMb();
  if (peak_rss > kRssBoundMb) {
    std::cerr << "FATAL: peak RSS " << peak_rss << " MB crossed the "
              << kRssBoundMb << " MB sustained-mode bound\n";
    std::exit(1);
  }
  std::cout << "  sustained: " << totals.offered << " offered, "
            << totals.served << " served, " << totals.shed << " shed, "
            << totals.rejected << " rejected in " << wall << "s wall\n";
  return {
      {"sustained_queries_per_sec",
       static_cast<double>(totals.offered) / wall, true},
      {"sustained_shed_rate",
       static_cast<double>(totals.shed) /
           static_cast<double>(totals.offered), false},
      {"sustained_p99_ms", worst_p99, false},
      {"sustained_peak_rss_mb", peak_rss, false},
      {"sustained_steady_allocs", steady_allocs, false},
      {"sustained_telemetry_overhead", overhead, false},
  };
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  std::string mode = argc > 2 ? argv[2] : "full";
  if (mode == "--sustained") mode = "sustained";
  const bool sustained = mode == "sustained";
  // Sustained mode sizes everything but the streaming run like tiny: the
  // point is the 10M-query stream, not longer planner loops.
  const bool tiny = mode == "tiny" || sustained;
  if (mode != "tiny" && mode != "full" && !sustained) {
    std::cerr << "usage: perf_suite [output.json] [tiny|full|sustained]\n";
    return 2;
  }

  std::vector<Metric> metrics;
  std::cout << "perf_suite (" << mode << ") on "
            << std::thread::hardware_concurrency() << " hardware threads\n";

  // Determinism race first: no perf number is worth reporting from a
  // calendar queue that stopped matching the heap oracle's firing order.
  {
    const std::uint64_t wheel =
        FiringOrderFingerprint(sim::QueueBackend::kCalendar);
    const std::uint64_t heap =
        FiringOrderFingerprint(sim::QueueBackend::kHeap);
    if (wheel != heap) {
      std::cerr << "FATAL: calendar-queue firing order diverged from the "
                   "heap oracle (fingerprints "
                << wheel << " vs " << heap << ")\n";
      return 1;
    }
  }

  const std::size_t sim_events = tiny ? 200000 : 2000000;
  metrics.push_back(SimEventsPerSec(sim_events, sim::QueueBackend::kCalendar,
                                    "sim_events_per_sec"));
  metrics.push_back(SimEventsPerSec(sim_events, sim::QueueBackend::kHeap,
                                    "sim_events_per_sec_heap"));
  metrics.push_back(EvalTrialsPerSec(tiny ? 150 : 600, tiny ? 3 : 8));
  for (Metric& m : PlannerEvalsPerSec(tiny ? 150 : 500, tiny ? 8 : 24)) {
    metrics.push_back(std::move(m));
  }
  // The <3% telemetry-overhead contract is enforced in-binary only where
  // the wall is long enough for 3% to beat timer noise: full mode for the
  // co-simulation wall, sustained mode for the 10M-query stream. Tiny
  // runs still *report* the overhead metrics, and CI's baseline diff
  // watches them like every other metric.
  for (Metric& m : ServeAllWallClock(tiny ? 120.0 : 480.0,
                                     /*gate_overhead=*/mode == "full")) {
    metrics.push_back(std::move(m));
  }
  std::size_t sustained_queries = sustained ? 10000000
                                 : tiny      ? 200000
                                             : 2000000;
  if (const char* env = std::getenv("KAIROS_SUSTAINED_QUERIES")) {
    // Sanitizer jobs drive the sustained path at a tiny scale this way.
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) sustained_queries = static_cast<std::size_t>(parsed);
  }
  for (Metric& m : SustainedStreaming(sustained_queries,
                                      /*gate_overhead=*/sustained)) {
    metrics.push_back(std::move(m));
  }
  // After the sustained run on purpose: PeakRssMb() is a process-lifetime
  // high-water mark, and the 1M-occupancy case would otherwise pollute the
  // sustained_peak_rss_mb bound.
  for (Metric& m : EventQueueChurn(tiny)) {
    metrics.push_back(std::move(m));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"perf_suite\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", metrics[i].value);
    out << "    \"" << metrics[i].name << "\": {\"value\": " << value
        << ", \"higher_is_better\": "
        << (metrics[i].higher_is_better ? "true" : "false") << "}"
        << (i + 1 < metrics.size() ? "," : "") << "\n";
    std::cout << "  " << metrics[i].name << " = " << value << "\n";
  }
  out << "  }\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace kairos::bench

int main(int argc, char** argv) { return kairos::bench::Main(argc, argv); }
