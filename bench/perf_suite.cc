// The tracked perf-bench suite: machine-readable throughput numbers for
// every hot path this repo optimizes, emitted as BENCH_perf.json so the
// perf trajectory is diffable across commits (CI's perf-smoke job fails on
// a >2x regression vs bench/baselines/perf_baseline.json).
//
// Metrics:
//   * sim_events_per_sec           — raw discrete-event loop throughput
//   * eval_trials_per_sec          — AllowableThroughput simulation trials/s
//   * evals_per_sec_kairos_plus    — KAIROS+ planning, serial evaluation
//   * evals_per_sec_kairos_plus_batched — same plan, batched eval frontier
//   * plans_per_sec_kairos         — one-shot (zero-evaluation) planning
//   * serve_all_wall_s_{1,2,4,8}t  — 8-shard fleet co-simulation wall-clock
//   * serve_all_speedup_8t         — wall(1 thread) / wall(8 threads)
//   * serve_all_wall_telemetry_s   — the 1-thread run with the telemetry
//                                    plane attached (metrics + spans +
//                                    barrier snapshots)
//   * serve_all_telemetry_overhead — wall(telemetry) / wall(1 thread); the
//                                    overhead contract gates this at <3%
//                                    in full mode (tiny walls are timer
//                                    noise; the baseline diff still
//                                    watches them at every size)
//   * sustained_queries_per_sec    — STREAM-fed overload run, arrivals/s wall
//   * sustained_shed_rate          — deadline-shed fraction of that run
//   * sustained_p99_ms             — worst windowed p99 of that run
//   * sustained_peak_rss_mb        — peak resident set after that run
//   * sustained_telemetry_overhead — the same sustained run instrumented,
//                                    wall ratio; gated at <3% in sustained
//                                    mode (the 10M-query contract)
//
// The co-simulation runs also assert the sharding contract: every thread
// count must reproduce the 1-thread totals bit for bit, or the bench exits
// non-zero. The sustained run asserts the scale contract: every generated
// query is offered through the bounded-memory STREAM path and peak RSS
// stays under a hard bound (DESIGN.md Sec. 12), or the bench exits
// non-zero.
//
// Usage: perf_suite [output.json] [tiny|full|sustained]
//   tiny      — CI-sized inputs (seconds); the committed baseline uses tiny.
//   full      — larger inputs for local measurement.
//   sustained — tiny-sized inputs plus a 10M-query sustained streaming run
//               (also accepted as --sustained).
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/fleet.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/batch_dist.h"

namespace kairos::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Metric {
  std::string name;
  double value = 0.0;
  bool higher_is_better = true;
};

/// Raw event-loop throughput: several interleaved self-rescheduling chains
/// (the shape of engine source pulls + completions), with a cancellation on
/// every hop to exercise the free list.
Metric SimEventsPerSec(std::size_t total_events) {
  sim::Simulator sim;
  constexpr std::size_t kChains = 16;
  std::size_t fired = 0;
  std::function<void(double)> hop = [&](double gap) {
    sim::EventId doomed = sim.After(gap * 2.0, [] {});
    sim.Cancel(doomed);
    ++fired;
    if (fired < total_events) sim.After(gap, [&, gap] { hop(gap); });
  };
  const auto start = Clock::now();
  for (std::size_t c = 0; c < kChains; ++c) {
    const double gap = 0.9 + 0.01 * static_cast<double>(c);
    sim.After(gap, [&, gap] { hop(gap); });
  }
  sim.RunUntil();
  const double wall = SecondsSince(start);
  // Count the cancelled companions too: Schedule+Cancel is queue work.
  return {"sim_events_per_sec", 2.0 * static_cast<double>(fired) / wall, true};
}

/// AllowableThroughput trials/sec on the paper pool — the expensive unit
/// every search evaluation is made of.
Metric EvalTrialsPerSec(std::size_t queries, int rounds) {
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  ModelBench bench(catalog, "WND", /*budget=*/2.5);
  const auto mix = workload::LogNormalBatches::Production();
  const auto factory =
      OrDie(policy::PolicyRegistry::Global().MakeFactory("KAIROS", {}));
  serving::EvalOptions opt;
  opt.queries = queries;
  opt.rate_guess = 30.0;
  int trials = 0;
  const auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    const auto result =
        serving::EvaluateConfig(catalog, cloud::Config({2, 1, 1, 0}),
                                bench.truth, bench.qos_ms, factory, mix, opt);
    trials += result.trials;
  }
  const double wall = SecondsSince(start);
  return {"eval_trials_per_sec", static_cast<double>(trials) / wall, true};
}

/// KAIROS+ planning throughput in evaluations/sec, serial vs batched
/// frontier (same SearchResult by construction; asserted here).
std::vector<Metric> PlannerEvalsPerSec(std::size_t queries,
                                       std::size_t max_evals) {
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  ModelBench bench(catalog, "WND", /*budget=*/3.0);
  const auto mix = workload::LogNormalBatches::Production();
  const auto monitor = core::MonitorFromMix(mix, 4000, /*seed=*/7);
  const auto factory =
      OrDie(policy::PolicyRegistry::Global().MakeFactory("KAIROS", {}));
  serving::EvalOptions eval_opt;
  eval_opt.queries = queries;
  eval_opt.rate_guess = 30.0;
  const search::EvalFn eval = [&](const cloud::Config& c) {
    return serving::EvaluateConfig(catalog, c, bench.truth, bench.qos_ms,
                                   factory, mix, eval_opt)
        .qps;
  };

  std::vector<Metric> metrics;
  core::PlannerOutcome serial_outcome, batched_outcome;
  for (const bool batched : {false, true}) {
    search::SearchOptions search;
    search.max_evals = max_evals;
    search.eval_threads = batched ? 0 : 1;  // 0 = hardware concurrency
    const auto start = Clock::now();
    const auto outcome = bench.PlanWith("KAIROS+", monitor, eval, search);
    const double wall = SecondsSince(start);
    metrics.push_back({batched ? "evals_per_sec_kairos_plus_batched"
                               : "evals_per_sec_kairos_plus",
                       static_cast<double>(outcome.evaluations) / wall, true});
    (batched ? batched_outcome : serial_outcome) = outcome;
  }
  if (!(serial_outcome.config == batched_outcome.config) ||
      serial_outcome.evaluations != batched_outcome.evaluations) {
    std::cerr << "FATAL: batched KAIROS+ diverged from serial ("
              << serial_outcome.config.ToString() << "/"
              << serial_outcome.evaluations << " vs "
              << batched_outcome.config.ToString() << "/"
              << batched_outcome.evaluations << ")\n";
    std::exit(1);
  }

  // One-shot planning passes (zero evaluations) for the registry default.
  {
    int plans = 0;
    const auto start = Clock::now();
    double wall = 0.0;
    while ((wall = SecondsSince(start)) < 0.5) {
      (void)bench.PlanWith("KAIROS", monitor);
      ++plans;
    }
    metrics.push_back(
        {"plans_per_sec_kairos", static_cast<double>(plans) / wall, true});
  }
  return metrics;
}

/// The telemetry overhead contract (DESIGN.md Sec. 13): an enabled plane
/// may cost at most this factor on a serve wall-clock.
constexpr double kTelemetryOverheadBound = 1.03;

/// 8-shard fleet co-simulation wall-clock at 1/2/4/8 serve threads, with a
/// bit-identity check of every run against the 1-thread totals, plus the
/// same run with the telemetry plane attached (gated at <3% overhead when
/// `gate_overhead` — full mode, where the wall is large enough to trust).
std::vector<Metric> ServeAllWallClock(double duration_s, bool gate_overhead) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 24.0;
  auto fleet = OrDie(core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "NCF"},
       core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "MT-WND"},
       core::FleetModelOptions{.model = "DIEN"},
       core::FleetModelOptions{.model = "NCF", .name = "NCF-B"},
       core::FleetModelOptions{.model = "WND", .name = "WND-B"},
       core::FleetModelOptions{.model = "RM2", .name = "RM2-B"}},
      options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = OrDie(fleet.PlanAll());

  core::FleetServeOptions serve;
  serve.duration_s = duration_s;
  serve.base_rate_qps = 60.0;
  serve.window_s = 5.0;

  std::vector<Metric> metrics;
  double wall_1t = 0.0;
  core::FleetServeResult reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    serve.serve_threads = threads;
    if (threads == 1) (void)OrDie(fleet.ServeAll(plan, serve));  // warm-up
    const auto start = Clock::now();
    auto result = OrDie(fleet.ServeAll(plan, serve));
    const double wall = SecondsSince(start);
    if (threads == 1) {
      wall_1t = wall;
      reference = std::move(result);
    } else if (result.total_weighted_qps != reference.total_weighted_qps ||
               result.models.size() != reference.models.size()) {
      std::cerr << "FATAL: ServeAll with " << threads
                << " threads diverged from the 1-thread run\n";
      std::exit(1);
    }
    metrics.push_back({"serve_all_wall_s_" + std::to_string(threads) + "t",
                       wall, /*higher_is_better=*/false});
    if (threads == 8) {
      metrics.push_back({"serve_all_speedup_8t", wall_1t / wall, true});
    }
  }

  // The same 1-thread run with the telemetry plane attached: per-engine
  // counters and spans, barrier snapshots, the lot. Best of two runs, so
  // one scheduler hiccup cannot fail the gate.
  auto telemetry = OrDie(telemetry::Telemetry::Create(
      {"NCF", "RM2", "WND", "MT-WND", "DIEN", "NCF-B", "WND-B", "RM2-B"}));
  serve.serve_threads = 1;
  serve.telemetry = telemetry.get();
  double wall_tel = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 2; ++rep) {
    telemetry->Reset();
    const auto start = Clock::now();
    const auto result = OrDie(fleet.ServeAll(plan, serve));
    wall_tel = std::min(wall_tel, SecondsSince(start));
    if (result.total_weighted_qps != reference.total_weighted_qps ||
        result.telemetry_samples.empty()) {
      std::cerr << "FATAL: telemetry-enabled ServeAll diverged from the "
                   "uninstrumented run (pure-observer contract broken)\n";
      std::exit(1);
    }
  }
  double overhead = wall_tel / wall_1t;
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    // Wall noise can exceed 3% on its own. Before declaring a breach,
    // measure one more interleaved pair and gate on the best of each side.
    serve.telemetry = nullptr;
    const auto retry_base = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    const double wall_base = std::min(wall_1t, SecondsSince(retry_base));
    serve.telemetry = telemetry.get();
    telemetry->Reset();
    const auto retry_tel = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    wall_tel = std::min(wall_tel, SecondsSince(retry_tel));
    overhead = wall_tel / wall_base;
  }
  metrics.push_back({"serve_all_wall_telemetry_s", wall_tel, false});
  metrics.push_back({"serve_all_telemetry_overhead", overhead, false});
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    std::cerr << "FATAL: telemetry overhead " << overhead
              << "x on serve_all_wall crossed the "
              << kTelemetryOverheadBound << "x bound\n";
    std::exit(1);
  }
  return metrics;
}

/// Peak resident set size of this process so far, in MB (Linux ru_maxrss
/// is in KB).
double PeakRssMb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// The million-user scale path under load: generates an overload trace CSV
/// of `n_queries` rows, streams it through Fleet::ServeAll via the STREAM
/// source (bounded-memory chunks, no materialization) with deadline
/// shedding armed, and reports wall-clock arrival throughput, the shed
/// fraction, the worst windowed p99 and peak RSS. Exits non-zero when a
/// query is lost before admission (offered != n_queries) or peak RSS
/// crosses the hard bound — the scale contract this bench exists to keep.
/// The run is then repeated with the telemetry plane attached; the wall
/// ratio is gated at <3% when `gate_overhead` (sustained mode — the
/// 10M-query half of the overhead contract).
std::vector<Metric> SustainedStreaming(std::size_t n_queries,
                                       bool gate_overhead) {
  constexpr double kRssBoundMb = 1024.0;
  const std::string trace_path = "perf_sustained_trace.csv";

  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  // A small config on purpose: saturated-regime wall cost is
  // O(matcher_window x instances) per policy round, and this bench
  // measures the streaming/admission path, not matcher scaling.
  options.budget_per_hour = 1.0;
  core::FleetModelOptions model;
  model.model = "NCF";
  model.trace = "STREAM";
  model.trace_path = trace_path;
  auto fleet = OrDie(core::Fleet::Create(catalog, {model}, options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = OrDie(fleet.PlanAll());

  // Offered rate: 2x the planner's expected allowable throughput, so the
  // run is a sustained overload and the shed path actually runs.
  const double expected_qps = plan.models[0].outcome.expected_qps;
  const double rate_qps = 2.0 * (expected_qps > 0.0 ? expected_qps : 100.0);
  {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::cerr << "FATAL: cannot write " << trace_path << "\n";
      std::exit(1);
    }
    std::fputs("id,arrival_s,batch\n", f);
    for (std::size_t i = 0; i < n_queries; ++i) {
      // Uniform arrivals; batches cycle 1..8 (a deterministic stand-in
      // for the production mix the plan was built against).
      std::fprintf(f, "%zu,%.9f,%d\n", i + 1,
                   static_cast<double>(i + 1) / rate_qps,
                   static_cast<int>(i % 8) + 1);
    }
    std::fclose(f);
  }

  core::FleetServeOptions serve;
  serve.duration_s = 1.05 * static_cast<double>(n_queries) / rate_qps;
  serve.window_s = serve.duration_s / 25.0;
  serve.base_rate_qps = rate_qps;  // ignored by STREAM; must be positive
  serve.keep_latencies = false;
  // Degradation doctrine: shed what cannot meet 3x QoS, with a hard
  // queue-depth backstop so resident memory is bounded whatever the
  // overload factor.
  serve.admission.deadline_s = 3.0 * plan.models[0].qos_ms / 1000.0;
  serve.admission.max_queue = 100000;
  serve.serve_threads = 1;

  const auto start = Clock::now();
  const auto result = OrDie(fleet.ServeAll(plan, serve));
  const double wall = SecondsSince(start);

  // The instrumented replay of the same stream: identical totals required
  // (pure observer), wall ratio reported and — in sustained mode — gated.
  auto telemetry = OrDie(telemetry::Telemetry::Create({"NCF"}));
  serve.telemetry = telemetry.get();
  const auto tel_start = Clock::now();
  const auto tel_result = OrDie(fleet.ServeAll(plan, serve));
  double wall_tel = SecondsSince(tel_start);
  if (tel_result.models[0].totals.offered != result.models[0].totals.offered ||
      tel_result.models[0].totals.served != result.models[0].totals.served ||
      tel_result.models[0].totals.shed != result.models[0].totals.shed) {
    std::cerr << "FATAL: telemetry-enabled sustained run diverged from the "
                 "uninstrumented run (pure-observer contract broken)\n";
    std::exit(1);
  }
  double wall_best = wall;
  double overhead = wall_tel / wall_best;
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    // Run-to-run wall noise on a shared machine can exceed 3% on its own.
    // Before declaring a contract breach, measure one more interleaved
    // pair and gate on the best of each side.
    serve.telemetry = nullptr;
    const auto retry_base = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    wall_best = std::min(wall_best, SecondsSince(retry_base));
    serve.telemetry = telemetry.get();
    telemetry->Reset();
    const auto retry_tel = Clock::now();
    (void)OrDie(fleet.ServeAll(plan, serve));
    wall_tel = std::min(wall_tel, SecondsSince(retry_tel));
    overhead = wall_tel / wall_best;
  }
  std::remove(trace_path.c_str());
  if (gate_overhead && overhead > kTelemetryOverheadBound) {
    std::cerr << "FATAL: telemetry overhead " << overhead
              << "x on the sustained run crossed the "
              << kTelemetryOverheadBound << "x bound\n";
    std::exit(1);
  }

  const serving::RunResult& totals = result.models[0].totals;
  if (totals.offered != n_queries) {
    std::cerr << "FATAL: sustained run offered " << totals.offered << " of "
              << n_queries << " generated queries (stream lost data)\n";
    std::exit(1);
  }
  if (totals.served + totals.shed + totals.rejected > totals.offered) {
    std::cerr << "FATAL: sustained run accounting is inconsistent: served "
              << totals.served << " + shed " << totals.shed << " + rejected "
              << totals.rejected << " > offered " << totals.offered << "\n";
    std::exit(1);
  }
  double worst_p99 = 0.0;
  for (const serving::WindowedMetrics& w : result.models[0].windows) {
    worst_p99 = std::max(worst_p99, w.p99_ms);
  }
  const double peak_rss = PeakRssMb();
  if (peak_rss > kRssBoundMb) {
    std::cerr << "FATAL: peak RSS " << peak_rss << " MB crossed the "
              << kRssBoundMb << " MB sustained-mode bound\n";
    std::exit(1);
  }
  std::cout << "  sustained: " << totals.offered << " offered, "
            << totals.served << " served, " << totals.shed << " shed, "
            << totals.rejected << " rejected in " << wall << "s wall\n";
  return {
      {"sustained_queries_per_sec",
       static_cast<double>(totals.offered) / wall, true},
      {"sustained_shed_rate",
       static_cast<double>(totals.shed) /
           static_cast<double>(totals.offered), false},
      {"sustained_p99_ms", worst_p99, false},
      {"sustained_peak_rss_mb", peak_rss, false},
      {"sustained_telemetry_overhead", overhead, false},
  };
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  std::string mode = argc > 2 ? argv[2] : "full";
  if (mode == "--sustained") mode = "sustained";
  const bool sustained = mode == "sustained";
  // Sustained mode sizes everything but the streaming run like tiny: the
  // point is the 10M-query stream, not longer planner loops.
  const bool tiny = mode == "tiny" || sustained;
  if (mode != "tiny" && mode != "full" && !sustained) {
    std::cerr << "usage: perf_suite [output.json] [tiny|full|sustained]\n";
    return 2;
  }

  std::vector<Metric> metrics;
  std::cout << "perf_suite (" << mode << ") on "
            << std::thread::hardware_concurrency() << " hardware threads\n";

  metrics.push_back(SimEventsPerSec(tiny ? 200000 : 2000000));
  metrics.push_back(EvalTrialsPerSec(tiny ? 150 : 600, tiny ? 3 : 8));
  for (Metric& m : PlannerEvalsPerSec(tiny ? 150 : 500, tiny ? 8 : 24)) {
    metrics.push_back(std::move(m));
  }
  // The <3% telemetry-overhead contract is enforced in-binary only where
  // the wall is long enough for 3% to beat timer noise: full mode for the
  // co-simulation wall, sustained mode for the 10M-query stream. Tiny
  // runs still *report* the overhead metrics, and CI's baseline diff
  // watches them like every other metric.
  for (Metric& m : ServeAllWallClock(tiny ? 120.0 : 480.0,
                                     /*gate_overhead=*/mode == "full")) {
    metrics.push_back(std::move(m));
  }
  for (Metric& m : SustainedStreaming(sustained ? 10000000
                                                : tiny ? 200000 : 2000000,
                                      /*gate_overhead=*/sustained)) {
    metrics.push_back(std::move(m));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"perf_suite\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", metrics[i].value);
    out << "    \"" << metrics[i].name << "\": {\"value\": " << value
        << ", \"higher_is_better\": "
        << (metrics[i].higher_is_better ? "true" : "false") << "}"
        << (i + 1 < metrics.size() ? "," : "") << "\n";
    std::cout << "  " << metrics[i].name << " = " << value << "\n";
  }
  out << "  }\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace kairos::bench

int main(int argc, char** argv) { return kairos::bench::Main(argc, argv); }
