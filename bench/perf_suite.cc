// The tracked perf-bench suite: machine-readable throughput numbers for
// every hot path this repo optimizes, emitted as BENCH_perf.json so the
// perf trajectory is diffable across commits (CI's perf-smoke job fails on
// a >2x regression vs bench/baselines/perf_baseline.json).
//
// Metrics:
//   * sim_events_per_sec           — raw discrete-event loop throughput
//   * eval_trials_per_sec          — AllowableThroughput simulation trials/s
//   * evals_per_sec_kairos_plus    — KAIROS+ planning, serial evaluation
//   * evals_per_sec_kairos_plus_batched — same plan, batched eval frontier
//   * plans_per_sec_kairos         — one-shot (zero-evaluation) planning
//   * serve_all_wall_s_{1,2,4,8}t  — 8-shard fleet co-simulation wall-clock
//   * serve_all_speedup_8t         — wall(1 thread) / wall(8 threads)
//
// The co-simulation runs also assert the sharding contract: every thread
// count must reproduce the 1-thread totals bit for bit, or the bench exits
// non-zero.
//
// Usage: perf_suite [output.json] [tiny|full]
//   tiny — CI-sized inputs (seconds); the committed baseline uses tiny.
//   full — larger inputs for local measurement.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/fleet.h"
#include "sim/simulator.h"
#include "workload/batch_dist.h"

namespace kairos::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Metric {
  std::string name;
  double value = 0.0;
  bool higher_is_better = true;
};

/// Raw event-loop throughput: several interleaved self-rescheduling chains
/// (the shape of engine source pulls + completions), with a cancellation on
/// every hop to exercise the free list.
Metric SimEventsPerSec(std::size_t total_events) {
  sim::Simulator sim;
  constexpr std::size_t kChains = 16;
  std::size_t fired = 0;
  std::function<void(double)> hop = [&](double gap) {
    sim::EventId doomed = sim.After(gap * 2.0, [] {});
    sim.Cancel(doomed);
    ++fired;
    if (fired < total_events) sim.After(gap, [&, gap] { hop(gap); });
  };
  const auto start = Clock::now();
  for (std::size_t c = 0; c < kChains; ++c) {
    const double gap = 0.9 + 0.01 * static_cast<double>(c);
    sim.After(gap, [&, gap] { hop(gap); });
  }
  sim.RunUntil();
  const double wall = SecondsSince(start);
  // Count the cancelled companions too: Schedule+Cancel is queue work.
  return {"sim_events_per_sec", 2.0 * static_cast<double>(fired) / wall, true};
}

/// AllowableThroughput trials/sec on the paper pool — the expensive unit
/// every search evaluation is made of.
Metric EvalTrialsPerSec(std::size_t queries, int rounds) {
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  ModelBench bench(catalog, "WND", /*budget=*/2.5);
  const auto mix = workload::LogNormalBatches::Production();
  const auto factory =
      OrDie(policy::PolicyRegistry::Global().MakeFactory("KAIROS", {}));
  serving::EvalOptions opt;
  opt.queries = queries;
  opt.rate_guess = 30.0;
  int trials = 0;
  const auto start = Clock::now();
  for (int r = 0; r < rounds; ++r) {
    const auto result =
        serving::EvaluateConfig(catalog, cloud::Config({2, 1, 1, 0}),
                                bench.truth, bench.qos_ms, factory, mix, opt);
    trials += result.trials;
  }
  const double wall = SecondsSince(start);
  return {"eval_trials_per_sec", static_cast<double>(trials) / wall, true};
}

/// KAIROS+ planning throughput in evaluations/sec, serial vs batched
/// frontier (same SearchResult by construction; asserted here).
std::vector<Metric> PlannerEvalsPerSec(std::size_t queries,
                                       std::size_t max_evals) {
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  ModelBench bench(catalog, "WND", /*budget=*/3.0);
  const auto mix = workload::LogNormalBatches::Production();
  const auto monitor = core::MonitorFromMix(mix, 4000, /*seed=*/7);
  const auto factory =
      OrDie(policy::PolicyRegistry::Global().MakeFactory("KAIROS", {}));
  serving::EvalOptions eval_opt;
  eval_opt.queries = queries;
  eval_opt.rate_guess = 30.0;
  const search::EvalFn eval = [&](const cloud::Config& c) {
    return serving::EvaluateConfig(catalog, c, bench.truth, bench.qos_ms,
                                   factory, mix, eval_opt)
        .qps;
  };

  std::vector<Metric> metrics;
  core::PlannerOutcome serial_outcome, batched_outcome;
  for (const bool batched : {false, true}) {
    search::SearchOptions search;
    search.max_evals = max_evals;
    search.eval_threads = batched ? 0 : 1;  // 0 = hardware concurrency
    const auto start = Clock::now();
    const auto outcome = bench.PlanWith("KAIROS+", monitor, eval, search);
    const double wall = SecondsSince(start);
    metrics.push_back({batched ? "evals_per_sec_kairos_plus_batched"
                               : "evals_per_sec_kairos_plus",
                       static_cast<double>(outcome.evaluations) / wall, true});
    (batched ? batched_outcome : serial_outcome) = outcome;
  }
  if (!(serial_outcome.config == batched_outcome.config) ||
      serial_outcome.evaluations != batched_outcome.evaluations) {
    std::cerr << "FATAL: batched KAIROS+ diverged from serial ("
              << serial_outcome.config.ToString() << "/"
              << serial_outcome.evaluations << " vs "
              << batched_outcome.config.ToString() << "/"
              << batched_outcome.evaluations << ")\n";
    std::exit(1);
  }

  // One-shot planning passes (zero evaluations) for the registry default.
  {
    int plans = 0;
    const auto start = Clock::now();
    double wall = 0.0;
    while ((wall = SecondsSince(start)) < 0.5) {
      (void)bench.PlanWith("KAIROS", monitor);
      ++plans;
    }
    metrics.push_back(
        {"plans_per_sec_kairos", static_cast<double>(plans) / wall, true});
  }
  return metrics;
}

/// 8-shard fleet co-simulation wall-clock at 1/2/4/8 serve threads, with a
/// bit-identity check of every run against the 1-thread totals.
std::vector<Metric> ServeAllWallClock(double duration_s) {
  static const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions options;
  options.budget_per_hour = 24.0;
  auto fleet = OrDie(core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "NCF"},
       core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "MT-WND"},
       core::FleetModelOptions{.model = "DIEN"},
       core::FleetModelOptions{.model = "NCF", .name = "NCF-B"},
       core::FleetModelOptions{.model = "WND", .name = "WND-B"},
       core::FleetModelOptions{.model = "RM2", .name = "RM2-B"}},
      options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = OrDie(fleet.PlanAll());

  core::FleetServeOptions serve;
  serve.duration_s = duration_s;
  serve.base_rate_qps = 60.0;
  serve.window_s = 5.0;

  std::vector<Metric> metrics;
  double wall_1t = 0.0;
  core::FleetServeResult reference;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    serve.serve_threads = threads;
    if (threads == 1) (void)OrDie(fleet.ServeAll(plan, serve));  // warm-up
    const auto start = Clock::now();
    auto result = OrDie(fleet.ServeAll(plan, serve));
    const double wall = SecondsSince(start);
    if (threads == 1) {
      wall_1t = wall;
      reference = std::move(result);
    } else if (result.total_weighted_qps != reference.total_weighted_qps ||
               result.models.size() != reference.models.size()) {
      std::cerr << "FATAL: ServeAll with " << threads
                << " threads diverged from the 1-thread run\n";
      std::exit(1);
    }
    metrics.push_back({"serve_all_wall_s_" + std::to_string(threads) + "t",
                       wall, /*higher_is_better=*/false});
    if (threads == 8) {
      metrics.push_back({"serve_all_speedup_8t", wall_1t / wall, true});
    }
  }
  return metrics;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  const std::string mode = argc > 2 ? argv[2] : "full";
  const bool tiny = mode == "tiny";
  if (!tiny && mode != "full") {
    std::cerr << "usage: perf_suite [output.json] [tiny|full]\n";
    return 2;
  }

  std::vector<Metric> metrics;
  std::cout << "perf_suite (" << mode << ") on "
            << std::thread::hardware_concurrency() << " hardware threads\n";

  metrics.push_back(SimEventsPerSec(tiny ? 200000 : 2000000));
  metrics.push_back(EvalTrialsPerSec(tiny ? 150 : 600, tiny ? 3 : 8));
  for (Metric& m : PlannerEvalsPerSec(tiny ? 150 : 500, tiny ? 8 : 24)) {
    metrics.push_back(std::move(m));
  }
  for (Metric& m : ServeAllWallClock(tiny ? 120.0 : 480.0)) {
    metrics.push_back(std::move(m));
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"perf_suite\",\n";
  out << "  \"mode\": \"" << mode << "\",\n";
  out << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  out << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    char value[64];
    std::snprintf(value, sizeof(value), "%.6g", metrics[i].value);
    out << "    \"" << metrics[i].name << "\": {\"value\": " << value
        << ", \"higher_is_better\": "
        << (metrics[i].higher_is_better ? "true" : "false") << "}"
        << (i + 1 < metrics.size() ? "," : "") << "\n";
    std::cout << "  " << metrics[i].name << " = " << value << "\n";
  }
  out << "  }\n}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace kairos::bench

int main(int argc, char** argv) { return kairos::bench::Main(argc, argv); }
