// Fig. 18 (chaos): serving through a spot preemption storm, chaos-blind
// vs chaos-aware, as one continuous online co-simulation per controller.
// The fig17 fleet (RM2, WND, double-traffic NCF; one $8/hr MARGINAL
// envelope) rents every model from a preemptible market — DISCOUNT x the
// on-demand price, Poisson reclamations at RECLAIM_PER_HOUR per model,
// NOTICE_S of warning before each hard kill. The identical storm (one
// seeded SPOT_PREEMPTION timeline) hits each run:
//
//   * FROZEN    — no control loop: losses accumulate, nothing replaces
//                 them;
//   * PERIODIC  — the fixed timer: replacements only appear when the
//                 timer happens to fire (the chaos-blind baseline);
//   * COMPOSITE — QOS + FAILOVER: every reclamation notice triggers a
//                 kRespread, so the replacement's launch lag overlaps the
//                 victim's notice window; accumulated losses escalate to
//                 a per-model kFailover replan.
//
// Cost is *effective*: billed instance-seconds at on-demand prices times
// the spot discount (cloud::SpotCost) — the preemptible bargain both
// sides of the comparison enjoy equally — divided over *goodput*, the
// queries completed inside QoS-compliant windows. A chaos-blind fleet is
// always cheaper per raw query (running degraded rents less), but the
// queries it delivers late are the preemption damage; goodput prices
// that damage in. Gate (exit 1 on regression): COMPOSITE must show fewer
// p99-violation windows than PERIODIC and pay no more effective dollars
// per 1k QoS-compliant queries.
//
// A second phase replays the storm *correlated*: the fleet spread over 4
// failure domains, every reclamation domain-wide (correlation = 1).
// BASELINE (PR 6's reactive FAILOVER) vs N-1+BORROW (chaos-aware N-1
// planning + storm-time budget borrowing, DESIGN.md Sec. 11). Gate:
// N-1+BORROW must show fewer p99-violation windows at no more effective
// dollars per 1k QoS-compliant completions, with borrowed == repaid
// bit-for-bit.
//
//   ./fig18_chaos [DURATION_S] [BASE_RATE_QPS] [PERIOD_S] [RECLAIM_PER_HOUR]
//   ./fig18_chaos 60 30 40 720
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/injector.h"
#include "core/fleet.h"

int main(int argc, char** argv) {
  using namespace kairos;
  const double duration = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double base_rate = argc > 2 ? std::atof(argv[2]) : 30.0;
  const double period = argc > 3 ? std::atof(argv[3]) : 2.0 * duration / 3.0;
  const double reclaim_per_hour = argc > 4 ? std::atof(argv[4]) : 720.0;
  const double window = duration / 20.0;
  const double notice_s = 1.5;
  const double discount = 0.35;

  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  core::FleetOptions fleet_options;
  fleet_options.budget_per_hour = 8.0;
  fleet_options.allocator = "MARGINAL";
  auto fleet = bench::OrDie(core::Fleet::Create(
      catalog,
      {core::FleetModelOptions{.model = "RM2"},
       core::FleetModelOptions{.model = "WND"},
       core::FleetModelOptions{.model = "NCF", .arrival_scale = 2.0}},
      fleet_options));
  fleet.ObserveMixAll(workload::LogNormalBatches::Production());
  const auto plan = bench::OrDie(fleet.PlanAll());

  struct Run {
    std::string label;
    std::string controller;  ///< "" = frozen
    core::FleetServeResult result;
    std::size_t violation_windows = 0;
    std::size_t goodput = 0;  ///< completions inside QoS-compliant windows
    double usd_per_1k = 0.0;  ///< effective dollars per 1k goodput
  };
  std::vector<Run> runs = {{"FROZEN", "", {}, 0, 0, 0.0},
                           {"PERIODIC", "PERIODIC", {}, 0, 0, 0.0},
                           {"COMPOSITE", "COMPOSITE", {}, 0, 0, 0.0}};
  for (Run& run : runs) {
    core::FleetServeOptions serve;
    serve.duration_s = duration;
    serve.base_rate_qps = base_rate;
    serve.window_s = window;
    serve.launch_lag_s = 1.0;
    serve.controller = run.controller;
    if (run.controller == "PERIODIC") serve.realloc_period_s = period;
    if (run.controller == "COMPOSITE") {
      // QOS with fig17's hysteresis margin, plus the chaos-aware FAILOVER
      // child; BACKLOG / DRIFT add nothing to a capacity-loss story.
      serve.controller_knobs = {{"failover", 1.0},
                                {"p99_scale", 1.1},
                                {"backlog", 0.0},
                                {"drift", 0.0}};
    }
    // The same seeded storm for every run: the fleet seed is fixed, so
    // the SPOT_PREEMPTION timelines are identical across controllers.
    serve.chaos = "SPOT_PREEMPTION";
    serve.chaos_knobs = {{"rate_per_hour", reclaim_per_hour},
                         {"notice_s", notice_s},
                         {"discount", discount}};
    run.result = bench::OrDie(fleet.ServeAll(plan, serve));
    for (const core::FleetModelServe& model : run.result.models) {
      const double qos_ms =
          bench::OrDie(fleet.Session(model.model))->qos_ms();
      for (const serving::WindowedMetrics& w : model.windows) {
        if (w.served > 0 && w.p99_ms > qos_ms) {
          ++run.violation_windows;
        } else {
          run.goodput += w.served;
        }
      }
    }
    run.usd_per_1k = run.goodput > 0
                         ? run.result.effective_cost_usd /
                               (static_cast<double>(run.goodput) / 1000.0)
                         : 0.0;
  }

  TextTable table({"controller", "p99-violation windows", "lost", "notices",
                   "respreads", "failovers", "goodput",
                   "effective $", "on-demand $", "$/1k goodput"});
  for (const Run& run : runs) {
    table.AddRow({run.label, std::to_string(run.violation_windows),
                  std::to_string(run.result.instances_lost),
                  std::to_string(run.result.preemption_notices),
                  std::to_string(run.result.respreads),
                  std::to_string(run.result.failovers),
                  std::to_string(run.goodput),
                  TextTable::Num(run.result.effective_cost_usd, 4),
                  TextTable::Num(run.result.ondemand_cost_usd, 4),
                  TextTable::Num(run.usd_per_1k, 4)});
  }
  table.Print(std::cout,
              "Fig. 18: serving through a spot preemption storm (" +
                  TextTable::Num(reclaim_per_hour, 0) +
                  " reclamations/hr/model, " + TextTable::Num(notice_s, 1) +
                  "s notice, " + TextTable::Num(100.0 * discount, 0) +
                  "% of on-demand price; " + TextTable::Num(window, 1) +
                  "s windows, $" +
                  TextTable::Num(fleet_options.budget_per_hour, 0) +
                  "/hr envelope; PERIODIC fires at " +
                  TextTable::Num(period, 0) + "s)");

  std::cout << "chaos log (COMPOSITE run):\n";
  for (const core::FleetChaosEvent& event : runs[2].result.chaos_log) {
    std::cout << "  [" << TextTable::Num(event.time, 2) << "s] "
              << chaos::ChaosEventName(event.kind) << " " << event.model
              << ": " << event.detail << "\n";
  }
  std::cout << "control log (COMPOSITE run):\n";
  for (const core::FleetControlEvent& event : runs[2].result.control_log) {
    std::cout << "  [" << TextTable::Num(event.time, 2) << "s] "
              << control::ControlActionName(event.kind)
              << (event.model.empty() ? "" : " " + event.model) << ": "
              << event.reason << "\n";
  }

  // The gate: chaos-aware control must beat the chaos-blind timer on QoS
  // under the identical storm, without paying more effective dollars for
  // the queries it served. The spot discount itself must also be real:
  // effective spend strictly below on-demand spend.
  const Run& periodic = runs[1];
  const Run& composite = runs[2];
  int failed = 0;
  if (composite.violation_windows >= periodic.violation_windows) {
    std::cerr << "FAIL: COMPOSITE has " << composite.violation_windows
              << " p99-violation windows, PERIODIC has "
              << periodic.violation_windows << " (must be fewer)\n";
    failed = 1;
  }
  if (composite.usd_per_1k > periodic.usd_per_1k + 1e-9) {
    std::cerr << "FAIL: COMPOSITE pays $" << composite.usd_per_1k
              << " per 1k QoS-compliant queries, PERIODIC $"
              << periodic.usd_per_1k << " (must not pay more)\n";
    failed = 1;
  }
  for (const Run& run : runs) {
    if (run.result.effective_cost_usd >=
        run.result.ondemand_cost_usd - 1e-12) {
      std::cerr << "FAIL: " << run.label
                << " shows no spot discount (effective $"
                << run.result.effective_cost_usd << " vs on-demand $"
                << run.result.ondemand_cost_usd << ")\n";
      failed = 1;
    }
  }
  if (failed == 0) {
    std::cout << "chaos-aware control beats the chaos-blind timer: "
              << "COMPOSITE " << composite.violation_windows
              << " p99-violation windows at $"
              << TextTable::Num(composite.usd_per_1k, 4)
              << "/1k goodput vs PERIODIC " << periodic.violation_windows
              << " windows at $" << TextTable::Num(periodic.usd_per_1k, 4)
              << "/1k\n";
  }

  // ---- Phase 2: the correlated storm (DESIGN.md Sec. 11). The same
  // fleet spread over 4 failure domains, every reclamation now
  // domain-wide (correlation = 1): one fault takes a whole rack of a
  // model at once. BASELINE is PR 6's reactive FAILOVER; N-1+BORROW adds
  // chaos-aware N-1 planning (pad the deployment so losing the largest
  // domain leaves the QoS core) and budget borrowing during the storm
  // (repaid at recovery; conservation asserted below). The storm
  // timeline is seeded identically for both runs.
  constexpr std::size_t kDomains = 4;
  struct DomainRun {
    std::string label;
    bool n_minus_one = false;
    double borrow_fraction = 0.0;
    double cooldown_windows = 0.0;
    core::FleetServeResult result;
    std::size_t violation_windows = 0;
    std::size_t goodput = 0;
    double usd_per_1k = 0.0;
  };
  std::vector<DomainRun> domain_runs = {
      {"BASELINE", false, 0.0, 0.0, {}, 0, 0, 0.0},
      {"N-1+BORROW", true, 0.4, 2.0, {}, 0, 0, 0.0}};
  for (DomainRun& run : domain_runs) {
    auto domain_fleet = bench::OrDie(core::Fleet::Create(
        catalog,
        {core::FleetModelOptions{.model = "RM2",
                                 .failure_domains = kDomains,
                                 .plan_n_minus_one = run.n_minus_one},
         core::FleetModelOptions{.model = "WND",
                                 .failure_domains = kDomains,
                                 .plan_n_minus_one = run.n_minus_one},
         core::FleetModelOptions{.model = "NCF",
                                 .arrival_scale = 2.0,
                                 .failure_domains = kDomains,
                                 .plan_n_minus_one = run.n_minus_one}},
        fleet_options));
    domain_fleet.ObserveMixAll(workload::LogNormalBatches::Production());
    const auto domain_plan = bench::OrDie(domain_fleet.PlanAll());

    core::FleetServeOptions serve;
    serve.duration_s = duration;
    serve.base_rate_qps = base_rate;
    serve.window_s = window;
    serve.launch_lag_s = 1.0;
    serve.controller = "COMPOSITE";
    serve.controller_knobs = {{"failover", 1.0},
                              {"p99_scale", 1.1},
                              {"backlog", 0.0},
                              {"drift", 0.0},
                              {"borrow_fraction", run.borrow_fraction},
                              {"cooldown_windows", run.cooldown_windows}};
    serve.chaos = "SPOT_PREEMPTION";
    serve.chaos_knobs = {{"rate_per_hour", reclaim_per_hour},
                         {"notice_s", notice_s},
                         {"discount", discount},
                         {"correlation", 1.0}};
    run.result = bench::OrDie(domain_fleet.ServeAll(domain_plan, serve));
    for (const core::FleetModelServe& model : run.result.models) {
      const double qos_ms =
          bench::OrDie(domain_fleet.Session(model.model))->qos_ms();
      for (const serving::WindowedMetrics& w : model.windows) {
        if (w.served > 0 && w.p99_ms > qos_ms) {
          ++run.violation_windows;
        } else {
          run.goodput += w.served;
        }
      }
    }
    run.usd_per_1k = run.goodput > 0
                         ? run.result.effective_cost_usd /
                               (static_cast<double>(run.goodput) / 1000.0)
                         : 0.0;
  }

  TextTable domain_table({"controller", "p99-violation windows", "lost",
                          "respreads", "failovers", "borrows", "paybacks",
                          "goodput", "effective $", "$/1k goodput"});
  for (const DomainRun& run : domain_runs) {
    domain_table.AddRow(
        {run.label, std::to_string(run.violation_windows),
         std::to_string(run.result.instances_lost),
         std::to_string(run.result.respreads),
         std::to_string(run.result.failovers),
         std::to_string(run.result.borrows),
         std::to_string(run.result.paybacks),
         std::to_string(run.goodput),
         TextTable::Num(run.result.effective_cost_usd, 4),
         TextTable::Num(run.usd_per_1k, 4)});
  }
  domain_table.Print(
      std::cout,
      "Fig. 18 (correlated): domain-wide reclamations across " +
          std::to_string(kDomains) + " failure domains (" +
          TextTable::Num(reclaim_per_hour, 0) +
          " domain outages/hr/model; N-1 planning + budget borrowing vs "
          "the reactive FAILOVER baseline)");

  // The correlated-storm gate: proactive N-1 sizing plus storm-time
  // borrowing must beat the reactive baseline on QoS windows under the
  // identical domain-correlated storm, at no more effective dollars per
  // 1k QoS-compliant completions — and every borrowed dollar must come
  // back (bitwise, not approximately).
  const DomainRun& reactive = domain_runs[0];
  const DomainRun& proactive = domain_runs[1];
  if (proactive.violation_windows >= reactive.violation_windows) {
    std::cerr << "FAIL: N-1+BORROW has " << proactive.violation_windows
              << " p99-violation windows under the correlated storm, "
              << "BASELINE has " << reactive.violation_windows
              << " (must be fewer)\n";
    failed = 1;
  }
  if (proactive.usd_per_1k > reactive.usd_per_1k + 1e-9) {
    std::cerr << "FAIL: N-1+BORROW pays $" << proactive.usd_per_1k
              << " per 1k QoS-compliant queries, BASELINE $"
              << reactive.usd_per_1k << " (must not pay more)\n";
    failed = 1;
  }
  if (proactive.result.borrows == 0) {
    std::cerr << "FAIL: the storm never exercised budget borrowing "
              << "(borrows == 0)\n";
    failed = 1;
  }
  if (proactive.result.budget_borrowed_per_hour !=
      proactive.result.budget_repaid_per_hour) {
    std::cerr << "FAIL: borrowed budget was not conserved: borrowed $"
              << proactive.result.budget_borrowed_per_hour
              << "/hr, repaid $"
              << proactive.result.budget_repaid_per_hour << "/hr\n";
    failed = 1;
  }
  if (failed == 0) {
    std::cout << "N-1 planning + borrowing survives the correlated storm: "
              << proactive.violation_windows << " p99-violation windows vs "
              << reactive.violation_windows << " reactive at $"
              << TextTable::Num(proactive.usd_per_1k, 4) << "/1k (borrowed $"
              << TextTable::Num(proactive.result.budget_borrowed_per_hour, 4)
              << "/hr, repaid in full)\n";
  }
  return failed;
}
