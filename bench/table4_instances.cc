// Table 4: the heterogeneous instance pool and prices, plus the resulting
// configuration-space sizes at the paper's budgets.
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  TextTable table({"Instance Type", "Short", "Instance Class", "Price ($/hr)",
                   "Role"});
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    const auto& it = catalog[t];
    table.AddRow({it.name, it.short_name, ToString(it.klass),
                  TextTable::Num(it.price_per_hour, 4),
                  it.is_base ? "base" : "auxiliary"});
  }
  table.Print(std::cout, "Table 4: heterogeneous instance pool");

  TextTable sizes({"Budget ($/hr)", "Configurations under budget"});
  for (double budget : {1.0, 2.5, 5.0, 10.0}) {
    const auto space = cloud::EnumerateConfigs(
        catalog, {.budget_per_hour = budget, .min_base_instances = 1});
    sizes.AddRow({TextTable::Num(budget, 1), std::to_string(space.size())});
  }
  sizes.Print(std::cout, "Search-space size vs budget (Sec. 5.2)");
  return 0;
}
