// Fig. 15: parameter robustness — (a) the cost budget scaled 4x ($10/hr),
// where the search space grows by an order of magnitude and non-Kairos
// schemes would struggle even more; (b) QoS targets set 20% higher. In
// both settings Kairos should keep a similar advantage over the scaled
// homogeneous baseline as at the defaults (Fig. 8).
//
// Extension: an allocator A/B over a three-model fleet at one fixed
// global budget — the STATIC weight split against the MARGINAL
// water-filling allocator (core/allocator.h). With weights mismatched to
// marginal value, STATIC strands budget on the model that cannot use it
// and MARGINAL should match or beat its total measured QPS.
#include <iostream>

#include "bench/bench_util.h"
#include "core/fleet.h"

namespace {

void RunVariant(const std::string& title, double budget, double qos_scale) {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  TextTable table({"model", "Kairos config", "Kairos QPS",
                   "homogeneous QPS (scaled)", "ratio"});
  for (const std::string& model : bench::Models()) {
    core::KairosOptions options;
    options.budget_per_hour = budget;
    options.qos_scale = qos_scale;
    core::Kairos kairos(catalog, model, options);
    kairos.ObserveMix(mix);
    const core::Plan plan = kairos.PlanConfiguration();

    const bench::ModelBench mb(catalog, model, budget, qos_scale);
    const double guess = plan.ranked.front().upper_bound * 0.5;
    const double hetero = mb.Throughput(plan.config, "KAIROS", mix, guess);
    const double homo = mb.ScaledHomogeneous(mix, guess);
    table.AddRow({model, plan.config.ToString(), TextTable::Num(hetero),
                  TextTable::Num(homo),
                  TextTable::Num(hetero / homo, 2) + "x"});
  }
  table.Print(std::cout, title);
}

void RunAllocatorAb(double budget) {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  // Weights deliberately mismatched to marginal value: NCF (tiny model,
  // 5 ms QoS, saturates early) is given half the static split.
  std::vector<core::FleetModelOptions> models;
  for (const char* name : {"RM2", "WND", "NCF"}) {
    core::FleetModelOptions m;
    m.model = name;
    m.weight = std::string(name) == "NCF" ? 2.0 : 1.0;
    m.monitor_warmup = 4000;
    models.push_back(m);
  }

  TextTable table({"allocator", "RM2 ($/hr)", "WND ($/hr)", "NCF ($/hr)",
                   "total cost ($/hr)", "total measured QPS"});
  double static_qps = 0.0;
  double marginal_qps = 0.0;
  for (const std::string& allocator : {"STATIC", "MARGINAL"}) {
    core::FleetOptions options;
    options.budget_per_hour = budget;
    options.allocator = allocator;
    auto fleet = bench::OrDie(Fleet::Create(catalog, models, options));
    fleet.ObserveMixAll(mix);
    const auto plan = bench::OrDie(fleet.PlanAll());
    const auto measured =
        bench::OrDie(fleet.MeasureAll(plan, mix, bench::StdEval(25.0)));
    table.AddRow({allocator, TextTable::Num(plan.models[0].budget_per_hour, 3),
                  TextTable::Num(plan.models[1].budget_per_hour, 3),
                  TextTable::Num(plan.models[2].budget_per_hour, 3),
                  TextTable::Num(plan.total_cost_per_hour, 3),
                  TextTable::Num(measured.total_qps)});
    (allocator == "STATIC" ? static_qps : marginal_qps) = measured.total_qps;
  }
  table.Print(std::cout, "Allocator A/B: 3-model fleet (RM2/WND/NCF 1:1:2) at $" +
                             TextTable::Num(budget, 2) + "/hr global budget");
  std::cout << "MARGINAL / STATIC total QPS: "
            << TextTable::Num(marginal_qps / static_qps, 3) << "x ("
            << (marginal_qps >= static_qps ? "MARGINAL >= STATIC"
                                           : "REGRESSION: STATIC won")
            << ")\n";
}

}  // namespace

int main() {
  RunVariant("Fig. 15a: 4x cost budget ($10/hr)", 10.0, 1.0);
  RunVariant("Fig. 15b: QoS targets scaled 1.2x (budget $2.5/hr)", 2.5, 1.2);
  RunAllocatorAb(8.0);
  return 0;
}
