// Fig. 15: parameter robustness — (a) the cost budget scaled 4x ($10/hr),
// where the search space grows by an order of magnitude and non-Kairos
// schemes would struggle even more; (b) QoS targets set 20% higher. In
// both settings Kairos should keep a similar advantage over the scaled
// homogeneous baseline as at the defaults (Fig. 8).
#include <iostream>

#include "bench/bench_util.h"

namespace {

void RunVariant(const std::string& title, double budget, double qos_scale) {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const auto mix = workload::LogNormalBatches::Production();

  TextTable table({"model", "Kairos config", "Kairos QPS",
                   "homogeneous QPS (scaled)", "ratio"});
  for (const std::string& model : bench::Models()) {
    core::KairosOptions options;
    options.budget_per_hour = budget;
    options.qos_scale = qos_scale;
    core::Kairos kairos(catalog, model, options);
    kairos.ObserveMix(mix);
    const core::Plan plan = kairos.PlanConfiguration();

    const bench::ModelBench mb(catalog, model, budget, qos_scale);
    const double guess = plan.ranked.front().upper_bound * 0.5;
    const double hetero = mb.Throughput(plan.config, "KAIROS", mix, guess);
    const double homo = mb.ScaledHomogeneous(mix, guess);
    table.AddRow({model, plan.config.ToString(), TextTable::Num(hetero),
                  TextTable::Num(homo),
                  TextTable::Num(hetero / homo, 2) + "x"});
  }
  table.Print(std::cout, title);
}

}  // namespace

int main() {
  RunVariant("Fig. 15a: 4x cost budget ($10/hr)", 10.0, 1.0);
  RunVariant("Fig. 15b: QoS targets scaled 1.2x (budget $2.5/hr)", 2.5, 1.2);
  return 0;
}
