// Fig. 14: the query-distribution mechanism and the upper-bound config
// search are co-designed. For RM2's top-12 upper-bound configurations,
// measure the throughput under RIBBON / DRS / CLKWRK / KAIROS, print the
// upper bound (UB) itself, and the Oracle reference. Expected shape:
// KAIROS tracks UB closely (the bound is meaningful *because* the
// distributor exploits heterogeneity); swapping in any other distributor
// lands far below the bound.
#include <iostream>

#include "bench/bench_util.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"

int main() {
  using namespace kairos;
  const cloud::Catalog catalog = cloud::Catalog::PaperPool();
  const bench::ModelBench mb(catalog, "RM2");
  const auto mix = workload::LogNormalBatches::Production();

  const auto monitor = core::MonitorFromMix(mix, 10000, 7);
  const ub::UpperBoundEstimator est(catalog, mb.truth, mb.qos_ms);
  const auto space = mb.Space();
  const auto ranked =
      ub::RankByUpperBound(space, est.EstimateAll(space, monitor));

  // Oracle reference over the whole space (the dashed line).
  const auto oracle_best = oracle::OracleSearch(
      catalog, space, mb.truth, mb.qos_ms, mix, ScaledCount(3000, 800), 55);

  TextTable table({"UB rank", "config", "RIBBON", "DRS", "CLKWRK", "KAIROS",
                   "UB"});
  const std::size_t top_n = std::min<std::size_t>(12, ranked.size());
  for (std::size_t i = 0; i < top_n; ++i) {
    const cloud::Config& config = ranked[i].config;
    const double guess = 0.5 * ranked[i].upper_bound;
    const double ribbon = mb.Throughput(config, "RIBBON", mix, guess);
    const int threshold = mb.TuneDrsThreshold(config, mix, guess);
    const double drs = mb.Throughput(config, "DRS", mix, guess, threshold);
    const double clk = mb.Throughput(config, "CLKWRK", mix, guess);
    const double kairos = mb.Throughput(config, "KAIROS", mix, guess);
    table.AddRow({std::to_string(i), config.ToString(),
                  TextTable::Num(ribbon), TextTable::Num(drs),
                  TextTable::Num(clk), TextTable::Num(kairos),
                  TextTable::Num(ranked[i].upper_bound)});
  }
  table.Print(std::cout,
              "Fig. 14: RM2 top upper-bound configs under each distribution "
              "scheme (Oracle reference = " +
                  TextTable::Num(oracle_best.best_qps) + " QPS)");
  return 0;
}
