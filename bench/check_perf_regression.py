#!/usr/bin/env python3
"""Guard the perf trajectory: compare a fresh BENCH_perf.json against the
committed baseline and fail on any metric that regressed by more than the
given factor (default 2x, direction-aware via each metric's
higher_is_better flag).

Two absolute gates ride along when the current run has >= 8 hardware
threads: serve_all_speedup_8t must reach 1.5x and a single-core baseline
becomes a hard failure (a multi-core runner must not be anchored to a
starved baseline — refresh it instead).

Usage: check_perf_regression.py CURRENT BASELINE [--factor 2.0]

The metric key sets must match: a metric present in only one of the files
fails the check with the missing/extra names listed (a new metric needs a
baseline refresh in the same change; a retired one needs cleanup), so a
silently renamed metric can never sail through unenforced.
"""
import argparse
import json
import os
import sys


def load_doc(path: str, role: str) -> dict:
    """Reads {"metrics": {name: {"value": ...}}} with clear errors instead
    of KeyError tracebacks on malformed files."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {role} file {path}: {err}")
    if (not isinstance(doc, dict) or "metrics" not in doc
            or not isinstance(doc["metrics"], dict)):
        sys.exit(f"error: {role} file {path} has no top-level \"metrics\" "
                 "object (is it a BENCH_perf.json?)")
    metrics = doc["metrics"]
    for name, entry in metrics.items():
        if (not isinstance(entry, dict) or "value" not in entry
                or isinstance(entry["value"], bool)
                or not isinstance(entry["value"], (int, float))):
            sys.exit(f"error: {role} metric \"{name}\" in {path} has no "
                     "numeric \"value\" field")
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_perf.json")
    parser.add_argument("baseline", help="committed perf_baseline.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor (default 2.0)")
    args = parser.parse_args()

    current_doc = load_doc(args.current, "current")
    baseline_doc = load_doc(args.baseline, "baseline")
    current = current_doc["metrics"]
    baseline = baseline_doc["metrics"]

    hard_failures = []

    # A single-core baseline cannot anchor the threaded-speedup metrics:
    # serve_all_speedup_* degenerates to ~1x however good the sharded loop
    # is. On a single-core runner the best we can do is warn so a baseline
    # refreshed on a starved machine is caught at review; once the current
    # run actually has cores to compare against, a stale single-core
    # baseline silently lowers the bar for every threaded metric, so it
    # escalates to a hard failure. The warning is emitted as a GitHub
    # Actions annotation (::warning::) so it surfaces on the run summary
    # and the PR checks page, not just in the job log.
    current_threads = current_doc.get("hardware_concurrency")
    if baseline_doc.get("hardware_concurrency") == 1:
        message = ("baseline was recorded with hardware_concurrency=1 "
                   "(single-core machine); threaded speedup metrics are "
                   "meaningless at this concurrency — refresh "
                   "bench/baselines/perf_baseline.json on a multi-core "
                   "machine when one is available")
        if isinstance(current_threads, int) and current_threads > 1:
            hard_failures.append(
                f"single-core baseline on a {current_threads}-thread "
                "runner: " + message)
        else:
            if os.environ.get("GITHUB_ACTIONS") == "true":
                print(f"::warning title=Single-core perf baseline::{message}")
            print(f"warning: {message}", file=sys.stderr)

    # Absolute multi-core scaling floor: with 8+ hardware threads the
    # 8-shard ServeAll must beat the single-shard wall by at least 1.5x.
    # Relative-to-baseline checks can never catch a scaling collapse that
    # was already baked into the baseline, hence an absolute gate.
    if isinstance(current_threads, int) and current_threads >= 8:
        speedup = current.get("serve_all_speedup_8t", {}).get("value")
        if speedup is None:
            hard_failures.append(
                "current run has >= 8 hardware threads but no "
                "serve_all_speedup_8t metric")
        elif speedup < 1.5:
            hard_failures.append(
                f"serve_all_speedup_8t = {speedup:.3g} < 1.5 on a "
                f"{current_threads}-thread runner")

    missing_from_current = sorted(set(baseline) - set(current))
    missing_from_baseline = sorted(set(current) - set(baseline))

    failures = []
    print(f"{'metric':40} {'baseline':>12} {'current':>12}  verdict")
    for name in sorted(set(current) & set(baseline)):
        base = baseline[name]["value"]
        cur = current[name]["value"]
        higher = baseline[name].get("higher_is_better", True)
        if base <= 0:
            verdict = "skipped (non-positive baseline)"
        elif not higher and cur <= 0:
            # A zero wall-clock can only be timer resolution on a
            # degenerate run — never a regression, never divide by it.
            verdict = "skipped (non-positive current)"
        elif higher and cur < base / args.factor:
            verdict = f"FAIL (<{1 / args.factor:.2g}x baseline)"
            failures.append(name)
        elif not higher and cur > base * args.factor:
            verdict = f"FAIL (>{args.factor:.2g}x baseline)"
            failures.append(name)
        else:
            ratio = cur / base if higher else base / cur
            verdict = f"ok ({ratio:.2f}x)"
        print(f"{name:40} {base:12.6g} {cur:12.6g}  {verdict}")

    status = 0
    if missing_from_current or missing_from_baseline:
        print("\nmetric key sets diverge between baseline and current:",
              file=sys.stderr)
        if missing_from_current:
            print("  missing from current (retired? clean the baseline): "
                  + ", ".join(missing_from_current), file=sys.stderr)
        if missing_from_baseline:
            print("  missing from baseline (new? refresh "
                  "bench/baselines/perf_baseline.json from this run): "
                  + ", ".join(missing_from_baseline), file=sys.stderr)
        status = 1
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}", file=sys.stderr)
        status = 1
    for message in hard_failures:
        print(f"\nhard gate failure: {message}", file=sys.stderr)
        status = 1
    if status == 0:
        print("\nno perf regressions")
    return status


if __name__ == "__main__":
    sys.exit(main())
