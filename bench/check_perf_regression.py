#!/usr/bin/env python3
"""Guard the perf trajectory: compare a fresh BENCH_perf.json against the
committed baseline and fail on any metric that regressed by more than the
given factor (default 2x, direction-aware via each metric's
higher_is_better flag).

Usage: check_perf_regression.py CURRENT BASELINE [--factor 2.0]

Metrics present in only one of the files are reported but never fail the
check (new metrics need a baseline refresh, retired ones need cleanup).
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_perf.json")
    parser.add_argument("baseline", help="committed perf_baseline.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor (default 2.0)")
    args = parser.parse_args()

    with open(args.current) as f:
        current = json.load(f)["metrics"]
    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]

    failures = []
    print(f"{'metric':40} {'baseline':>12} {'current':>12}  verdict")
    for name in sorted(set(current) | set(baseline)):
        if name not in current:
            print(f"{name:40} {baseline[name]['value']:12.6g} {'-':>12}  "
                  "missing from current (not enforced)")
            continue
        if name not in baseline:
            print(f"{name:40} {'-':>12} {current[name]['value']:12.6g}  "
                  "not in baseline (not enforced)")
            continue
        base = baseline[name]["value"]
        cur = current[name]["value"]
        higher = baseline[name].get("higher_is_better", True)
        if base <= 0:
            verdict = "skipped (non-positive baseline)"
        elif higher and cur < base / args.factor:
            verdict = f"FAIL (<{1 / args.factor:.2g}x baseline)"
            failures.append(name)
        elif not higher and cur > base * args.factor:
            verdict = f"FAIL (>{args.factor:.2g}x baseline)"
            failures.append(name)
        else:
            ratio = cur / base if higher else base / cur
            verdict = f"ok ({ratio:.2f}x)"
        print(f"{name:40} {base:12.6g} {cur:12.6g}  {verdict}")

    if failures:
        print(f"\nperf regression in: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("\nno perf regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
