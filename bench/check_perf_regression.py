#!/usr/bin/env python3
"""Guard the perf trajectory: compare a fresh BENCH_perf.json against the
committed baseline and fail on any metric that regressed by more than the
given factor (default 2x, direction-aware via each metric's
higher_is_better flag).

Usage: check_perf_regression.py CURRENT BASELINE [--factor 2.0]

The metric key sets must match: a metric present in only one of the files
fails the check with the missing/extra names listed (a new metric needs a
baseline refresh in the same change; a retired one needs cleanup), so a
silently renamed metric can never sail through unenforced.
"""
import argparse
import json
import os
import sys


def load_doc(path: str, role: str) -> dict:
    """Reads {"metrics": {name: {"value": ...}}} with clear errors instead
    of KeyError tracebacks on malformed files."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {role} file {path}: {err}")
    if (not isinstance(doc, dict) or "metrics" not in doc
            or not isinstance(doc["metrics"], dict)):
        sys.exit(f"error: {role} file {path} has no top-level \"metrics\" "
                 "object (is it a BENCH_perf.json?)")
    metrics = doc["metrics"]
    for name, entry in metrics.items():
        if (not isinstance(entry, dict) or "value" not in entry
                or isinstance(entry["value"], bool)
                or not isinstance(entry["value"], (int, float))):
            sys.exit(f"error: {role} metric \"{name}\" in {path} has no "
                     "numeric \"value\" field")
    return doc


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_perf.json")
    parser.add_argument("baseline", help="committed perf_baseline.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor (default 2.0)")
    args = parser.parse_args()

    current_doc = load_doc(args.current, "current")
    baseline_doc = load_doc(args.baseline, "baseline")
    current = current_doc["metrics"]
    baseline = baseline_doc["metrics"]

    # A single-core baseline cannot anchor the threaded-speedup metrics:
    # serve_all_speedup_* degenerates to ~1x however good the sharded loop
    # is. Warn (non-fatal) so a baseline refreshed on a starved machine is
    # caught at review instead of silently lowering the bar. Emitted as a
    # GitHub Actions workflow annotation (::warning::) so it surfaces on
    # the run summary and the PR checks page, not just in the job log.
    if baseline_doc.get("hardware_concurrency") == 1:
        message = ("baseline was recorded with hardware_concurrency=1 "
                   "(single-core machine); threaded speedup metrics are "
                   "meaningless at this concurrency — refresh "
                   "bench/baselines/perf_baseline.json on a multi-core "
                   "machine when one is available")
        if os.environ.get("GITHUB_ACTIONS") == "true":
            print(f"::warning title=Single-core perf baseline::{message}")
        print(f"warning: {message}", file=sys.stderr)

    missing_from_current = sorted(set(baseline) - set(current))
    missing_from_baseline = sorted(set(current) - set(baseline))

    failures = []
    print(f"{'metric':40} {'baseline':>12} {'current':>12}  verdict")
    for name in sorted(set(current) & set(baseline)):
        base = baseline[name]["value"]
        cur = current[name]["value"]
        higher = baseline[name].get("higher_is_better", True)
        if base <= 0:
            verdict = "skipped (non-positive baseline)"
        elif not higher and cur <= 0:
            # A zero wall-clock can only be timer resolution on a
            # degenerate run — never a regression, never divide by it.
            verdict = "skipped (non-positive current)"
        elif higher and cur < base / args.factor:
            verdict = f"FAIL (<{1 / args.factor:.2g}x baseline)"
            failures.append(name)
        elif not higher and cur > base * args.factor:
            verdict = f"FAIL (>{args.factor:.2g}x baseline)"
            failures.append(name)
        else:
            ratio = cur / base if higher else base / cur
            verdict = f"ok ({ratio:.2f}x)"
        print(f"{name:40} {base:12.6g} {cur:12.6g}  {verdict}")

    status = 0
    if missing_from_current or missing_from_baseline:
        print("\nmetric key sets diverge between baseline and current:",
              file=sys.stderr)
        if missing_from_current:
            print("  missing from current (retired? clean the baseline): "
                  + ", ".join(missing_from_current), file=sys.stderr)
        if missing_from_baseline:
            print("  missing from baseline (new? refresh "
                  "bench/baselines/perf_baseline.json from this run): "
                  + ", ".join(missing_from_baseline), file=sys.stderr)
        status = 1
    if failures:
        print(f"\nperf regression in: {', '.join(failures)}", file=sys.stderr)
        status = 1
    if status == 0:
        print("\nno perf regressions")
    return status


if __name__ == "__main__":
    sys.exit(main())
