// Fig. 5: the two-instance slack illustration. Four queries arrive in
// order; naive FCFS burns the fast instance on the small leader and loses
// a query to QoS, while Kairos's speedup-aware matching serves all four on
// identical hardware — a 33% throughput gap from distribution alone.
#include <iostream>

#include "bench/bench_util.h"
#include "policy/registry.h"
#include "serving/system.h"

int main() {
  using namespace kairos;
  cloud::Catalog catalog;
  catalog.Add({"gpu", "GPU", cloud::InstanceClass::kGpuAccelerated, 1.0,
               true});
  catalog.Add({"cpu", "CPU", cloud::InstanceClass::kGeneralPurposeCpu, 0.25,
               false});
  const latency::LatencyModel truth({{40.0, 0.26}, {55.0, 0.95}});

  serving::SystemSpec spec;
  spec.catalog = &catalog;
  spec.config = cloud::Config({1, 1});
  spec.truth = &truth;
  spec.qos_ms = 350.0;

  const workload::Trace trace({workload::Query{1, 100, 0.000},
                               workload::Query{2, 900, 0.010},
                               workload::Query{3, 100, 0.020},
                               workload::Query{4, 100, 0.030}});

  serving::RunOptions keep;
  keep.abort_violation_fraction = 0.0;
  keep.keep_records = true;

  for (const auto& [label, scheme] :
       {std::pair<std::string, std::string>{"Naive FCFS", "RIBBON"},
        {"KAIROS", "KAIROS"}}) {
    serving::ServingSystem sys(spec,
                               bench::OrDie(PolicyRegistry::Global().Build(scheme)),
                               serving::PredictorOptions{}, keep);
    const serving::RunResult run = sys.Run(trace);
    TextTable table({"query", "batch", "served on", "latency (ms)",
                     "meets QoS (350 ms)"});
    for (const serving::ServedRecord& rec : run.records) {
      table.AddRow({std::to_string(rec.id), std::to_string(rec.batch),
                    catalog[rec.type].short_name,
                    TextTable::Num(rec.LatencyMs(), 1),
                    rec.LatencyMs() <= spec.qos_ms ? "yes" : "NO (violation)"});
    }
    table.Print(std::cout, "Fig. 5 — " + label + ": " +
                               std::to_string(run.served - run.violations) +
                               "/4 queries within QoS");
  }
  return 0;
}
