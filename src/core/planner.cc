#include "core/planner.h"

#include <stdexcept>

namespace kairos::core {

Planner::Planner(PlannerContext ctx) : ctx_(ctx) {
  if (ctx_.catalog == nullptr || ctx_.truth == nullptr) {
    throw std::invalid_argument("Planner: catalog/truth required");
  }
  if (ctx_.qos_ms <= 0.0 || ctx_.budget_per_hour <= 0.0) {
    throw std::invalid_argument("Planner: qos_ms and budget must be positive");
  }
}

std::vector<cloud::Config> Planner::ConfigSpace() const {
  cloud::ConfigSpaceOptions options;
  options.budget_per_hour = ctx_.budget_per_hour;
  options.min_base_instances = 1;
  return cloud::EnumerateConfigs(*ctx_.catalog, options);
}

Plan Planner::PlanConfiguration(const workload::QueryMonitor& monitor) const {
  return PlanConfiguration(monitor, ConfigSpace());
}

Plan Planner::PlanConfiguration(
    const workload::QueryMonitor& monitor,
    const std::vector<cloud::Config>& space) const {
  const ub::UpperBoundEstimator estimator(*ctx_.catalog, *ctx_.truth,
                                          ctx_.qos_ms);
  const std::vector<double> bounds = estimator.EstimateAll(space, monitor);

  Plan plan;
  plan.ranked = ub::RankByUpperBound(space, bounds);
  plan.selection = ub::SelectConfiguration(plan.ranked, *ctx_.catalog);
  plan.config = plan.selection.chosen;
  return plan;
}

search::SearchResult Planner::PlanWithEvaluations(
    const workload::QueryMonitor& monitor, const search::EvalFn& eval,
    const search::SearchOptions& options) const {
  return PlanWithEvaluations(monitor, eval, options, ConfigSpace());
}

search::SearchResult Planner::PlanWithEvaluations(
    const workload::QueryMonitor& monitor, const search::EvalFn& eval,
    const search::SearchOptions& options,
    const std::vector<cloud::Config>& space) const {
  const ub::UpperBoundEstimator estimator(*ctx_.catalog, *ctx_.truth,
                                          ctx_.qos_ms);
  const std::vector<double> bounds = estimator.EstimateAll(space, monitor);
  const std::vector<ub::RankedConfig> ranked =
      ub::RankByUpperBound(space, bounds);
  return search::KairosPlusSearch(ranked, eval, options);
}

}  // namespace kairos::core
