#include "core/kairos.h"

#include <stdexcept>

#include "policy/registry.h"

namespace kairos::core {

Kairos::Kairos(const cloud::Catalog& catalog, const std::string& model,
               KairosOptions options)
    : catalog_(catalog),
      spec_(latency::FindModel(model)),
      truth_(spec_.Instantiate(catalog)),
      qos_ms_(spec_.qos_ms * options.qos_scale),
      options_(options),
      monitor_(options.monitor_warmup) {
  if (options.qos_scale <= 0.0) {
    throw std::invalid_argument("Kairos: qos_scale must be positive");
  }
}

void Kairos::ObserveMix(const workload::BatchDistribution& mix) {
  Rng rng(options_.seed);
  for (std::size_t i = 0; i < options_.monitor_warmup; ++i) {
    monitor_.Observe(mix.Sample(rng));
  }
}

Plan Kairos::PlanConfiguration() const {
  PlannerContext ctx{&catalog_, &truth_, qos_ms_, options_.budget_per_hour};
  return Planner(ctx).PlanConfiguration(monitor_);
}

search::SearchResult Kairos::PlanWithEvaluations(
    const search::EvalFn& eval, const search::SearchOptions& options) const {
  PlannerContext ctx{&catalog_, &truth_, qos_ms_, options_.budget_per_hour};
  return Planner(ctx).PlanWithEvaluations(monitor_, eval, options);
}

Runtime Kairos::Deploy(const cloud::Config& config) const {
  return Runtime(catalog_, config, truth_, qos_ms_, options_.runtime);
}

serving::EvalResult Kairos::MeasureThroughput(
    const cloud::Config& config, const workload::BatchDistribution& mix,
    const serving::EvalOptions& eval_options) const {
  return Deploy(config).MeasureThroughput(mix, eval_options);
}

StatusOr<Kairos> Kairos::Create(const cloud::Catalog& catalog,
                                const std::string& model,
                                KairosOptions options) {
  if (latency::TryFindModel(model) == nullptr) {
    return Status::NotFound("unknown model \"" + model +
                            "\"; Table-3 models: " + latency::ModelZooNames());
  }
  if (options.qos_scale <= 0.0) {
    return Status::InvalidArgument("qos_scale must be positive");
  }
  return Kairos(catalog, model, options);
}

serving::PolicyFactory MakePolicyFactory(const std::string& name,
                                         int drs_threshold) {
  policy::KnobMap knobs;
  if (policy::CanonicalSchemeName(name) == "DRS") {
    knobs["threshold"] = static_cast<double>(drs_threshold);
  }
  auto factory = PolicyRegistry::Global().MakeFactory(name, knobs);
  if (!factory.ok()) {
    // Pre-registry callers expect the throwing contract; the message is
    // the registry Status rendered by the shared formatter, so shim and
    // registry callers read identical error text ("NOT_FOUND: ...").
    throw std::out_of_range(factory.status().ToString());
  }
  return *std::move(factory);
}

workload::QueryMonitor MonitorFromMix(const workload::BatchDistribution& mix,
                                      std::size_t count, std::uint64_t seed) {
  workload::QueryMonitor monitor(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) monitor.Observe(mix.Sample(rng));
  return monitor;
}

}  // namespace kairos::core
