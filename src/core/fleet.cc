#include "core/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "common/parallel.h"
#include "common/strings.h"
#include "latency/model_zoo.h"
#include "policy/registry.h"
#include "sim/simulator.h"
#include "workload/query_source.h"

namespace kairos::core {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// Cheapest way to rent one base instance, the floor for a feasible share.
StatusOr<double> MinBasePrice(const cloud::Catalog& catalog) {
  double min_price = std::numeric_limits<double>::infinity();
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    if (catalog[t].is_base) min_price = std::min(min_price, catalog[t].price_per_hour);
  }
  if (!std::isfinite(min_price)) {
    return Status::InvalidArgument("catalog has no base instance type");
  }
  return min_price;
}

/// Builds a named per-model trace; nullptr for "" (caller-provided mix).
StatusOr<std::unique_ptr<workload::BatchDistribution>> MakeTrace(
    const std::string& name) {
  const std::string canonical = policy::CanonicalSchemeName(name);
  if (canonical.empty()) {
    return std::unique_ptr<workload::BatchDistribution>(nullptr);
  }
  if (canonical == "PRODUCTION") {
    return std::unique_ptr<workload::BatchDistribution>(
        std::make_unique<workload::LogNormalBatches>(
            workload::LogNormalBatches::Production()));
  }
  if (canonical == "GAUSSIAN") {
    return std::unique_ptr<workload::BatchDistribution>(
        std::make_unique<workload::GaussianBatches>(
            workload::GaussianBatches::Default()));
  }
  return Status::NotFound("unknown trace \"" + name +
                          "\"; named traces: GAUSSIAN, PRODUCTION "
                          "(or \"\" for the caller-provided mix)");
}

}  // namespace

Fleet::Fleet(const cloud::Catalog& catalog, FleetOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

StatusOr<Fleet> Fleet::Create(const cloud::Catalog& catalog,
                              std::vector<FleetModelOptions> models,
                              FleetOptions options) {
  if (models.empty()) {
    return Status::InvalidArgument("fleet needs at least one model");
  }
  if (options.budget_per_hour <= 0.0) {
    return Status::InvalidArgument("fleet budget must be positive, got " +
                                   FormatDollarsPerHour(options.budget_per_hour));
  }
  if (!PlannerRegistry::Global().Contains(options.planner)) {
    // Reuse the registry's error so the message lists the alternatives.
    return PlannerRegistry::Global().Build(options.planner).status();
  }
  auto allocator = AllocatorRegistry::Global().Build(options.allocator);
  if (!allocator.ok()) return allocator.status();

  // The fleet-unique serving name: the alias when given, the Table-3 name
  // otherwise. Aliases let one fleet shard the same model several times.
  const auto serve_name = [](const FleetModelOptions& m) -> const std::string& {
    return m.name.empty() ? m.model : m.name;
  };

  double total_weight = 0.0;
  for (const FleetModelOptions& m : models) {
    if (latency::TryFindModel(m.model) == nullptr) {
      return Status::NotFound("unknown model \"" + m.model +
                              "\"; Table-3 models: " +
                              latency::ModelZooNames());
    }
    if (m.weight <= 0.0) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     ": weight must be positive");
    }
    if (m.arrival_scale <= 0.0) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     ": arrival_scale must be positive");
    }
    if (m.qos_scale <= 0.0) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     ": qos_scale must be positive");
    }
    if (m.min_budget_per_hour < 0.0 || m.max_budget_per_hour < 0.0) {
      return Status::InvalidArgument(
          "model " + serve_name(m) + ": budget bounds must be non-negative");
    }
    const auto dup = std::count_if(models.begin(), models.end(),
                                   [&](const FleetModelOptions& other) {
                                     return serve_name(other) == serve_name(m);
                                   });
    if (dup > 1) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     " listed more than once");
    }
    total_weight += m.weight;
  }

  const auto min_base = MinBasePrice(catalog);
  if (!min_base.ok()) return min_base.status();

  Fleet fleet(catalog, options);
  for (const FleetModelOptions& m : models) {
    const double floor = std::max(m.min_budget_per_hour, *min_base);
    const double ceiling = m.max_budget_per_hour > 0.0
                               ? m.max_budget_per_hour
                               : std::numeric_limits<double>::infinity();
    if (floor > ceiling) {
      return Status::InvalidArgument(
          "model " + serve_name(m) + ": max budget " +
          FormatDollarsPerHour(ceiling) +
          " is below the effective floor " + FormatDollarsPerHour(floor) +
          " (cheapest base instance " + FormatDollarsPerHour(*min_base) + ")");
    }
    auto trace = MakeTrace(m.trace);
    if (!trace.ok()) {
      return Status(trace.status().code(),
                    "model " + serve_name(m) + ": " + trace.status().message());
    }
    fleet.names_.push_back(serve_name(m));
    fleet.budgets_.push_back(options.budget_per_hour * m.weight / total_weight);
    fleet.floors_.push_back(floor);
    fleet.ceilings_.push_back(ceiling);
    fleet.mixes_.push_back(*std::move(trace));
    fleet.model_options_.push_back(m);
  }

  // Surface infeasible constraints at construction time. Probe-free
  // allocators (STATIC) can run in full; probe-driven ones (MARGINAL)
  // re-split at every PlanAll(), so only their floors are checked here.
  std::vector<double> create_shares = fleet.budgets_;
  if (!(*allocator)->NeedsProbes()) {
    AllocationProblem problem;
    problem.budget_per_hour = options.budget_per_hour;
    for (std::size_t i = 0; i < models.size(); ++i) {
      problem.models.push_back(AllocModel{fleet.names_[i], models[i].weight,
                                          models[i].arrival_scale,
                                          fleet.floors_[i], fleet.ceilings_[i]});
    }
    auto shares = (*allocator)->Allocate(problem);
    if (!shares.ok()) return shares.status();
    create_shares = *std::move(shares);
  } else {
    double floor_sum = 0.0;
    for (const double floor : fleet.floors_) floor_sum += floor;
    if (floor_sum > options.budget_per_hour + 1e-9) {
      return Status::Infeasible(
          "per-model budget floors sum to " + FormatDollarsPerHour(floor_sum) +
          ", more than the global budget " +
          FormatDollarsPerHour(options.budget_per_hour) +
          " (cheapest base instance " + FormatDollarsPerHour(*min_base) +
          " per model); raise the budget or drop a model");
    }
    // Seed the sessions with a feasible prior — every floor honored, the
    // spendable remainder split by weight — so direct Session() callers
    // never see shares that together overspend the envelope. The
    // allocator re-splits on every PlanAll().
    const double spendable =
        std::max(0.0, options.budget_per_hour - floor_sum);
    for (std::size_t i = 0; i < create_shares.size(); ++i) {
      create_shares[i] =
          std::min(fleet.floors_[i] +
                       spendable * models[i].weight / total_weight,
                   fleet.ceilings_[i]);
    }
  }

  for (std::size_t i = 0; i < models.size(); ++i) {
    KairosOptions session_options;
    session_options.budget_per_hour = create_shares[i];
    session_options.qos_scale = models[i].qos_scale;
    session_options.monitor_warmup = models[i].monitor_warmup;
    session_options.seed = options.seed;
    session_options.runtime = options.runtime;
    fleet.sessions_.emplace_back(catalog, models[i].model, session_options);
  }
  return fleet;
}

std::size_t Fleet::IndexOf(const std::string& model) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == model) return i;
  }
  return kNpos;
}

const workload::BatchDistribution& Fleet::MixFor(
    std::size_t i, const workload::BatchDistribution& fallback) const {
  return mixes_[i] != nullptr ? *mixes_[i] : fallback;
}

StatusOr<const Kairos*> Fleet::Session(const std::string& model) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return &sessions_[i];
}

StatusOr<double> Fleet::BudgetFor(const std::string& model) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return budgets_[i];
}

Status Fleet::ObserveMix(const std::string& model,
                         const workload::BatchDistribution& mix) {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  sessions_[i].ObserveMix(MixFor(i, mix));
  return Status::Ok();
}

void Fleet::ObserveMixAll(const workload::BatchDistribution& mix) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    sessions_[i].ObserveMix(MixFor(i, mix));
  }
}

StatusOr<FleetPlan> Fleet::PlanAll(const search::SearchOptions& search) const {
  auto backend = PlannerRegistry::Global().Build(options_.planner);
  if (!backend.ok()) return backend.status();
  auto allocator = AllocatorRegistry::Global().Build(options_.allocator);
  if (!allocator.ok()) return allocator.status();

  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].monitor().Count() == 0) {
      return Status::FailedPrecondition(
          "model " + names_[i] +
          ": monitor is empty; call ObserveMix before PlanAll");
    }
  }

  // Split the budget. The probe answers "what would the backend achieve
  // for model i at budget b" analytically (PlannerBackend::Probe), so the
  // MARGINAL allocator can afford one probe per candidate per increment;
  // probes of independent models run concurrently.
  AllocationProblem problem;
  problem.budget_per_hour = options_.budget_per_hour;
  problem.step_per_hour = options_.allocation_step_per_hour;
  problem.threads = options_.planning_threads;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    problem.models.push_back(AllocModel{names_[i], model_options_[i].weight,
                                        model_options_[i].arrival_scale,
                                        floors_[i], ceilings_[i]});
  }
  problem.probe = [&](std::size_t i, double budget) -> StatusOr<double> {
    const Kairos& session = sessions_[i];
    PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(), budget};
    PlanRequest request;
    request.monitor = &session.monitor();
    request.search = search;
    auto outcome = (*backend)->Probe(ctx, request);
    if (!outcome.ok()) return outcome.status();
    return outcome->expected_qps;
  };
  auto shares = (*allocator)->Allocate(problem);
  if (!shares.ok()) return shares.status();

  // Plan every model inside its share, concurrently: sessions, planner
  // backends and allocators are stateless const objects, and each worker
  // writes only its own slot.
  const std::size_t n = sessions_.size();
  std::vector<Status> statuses(n);
  std::vector<PlannerOutcome> outcomes(n);
  ParallelFor(n, options_.planning_threads, [&](std::size_t i) {
    const Kairos& session = sessions_[i];
    PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                       (*shares)[i]};
    PlanRequest request;
    request.monitor = &session.monitor();
    request.search = search;
    if ((*backend)->NeedsEvaluations()) {
      // Evaluate against the model's own monitored workload.
      const workload::EmpiricalBatches mix = session.monitor().Snapshot();
      request.eval = [&session, mix](const cloud::Config& config) {
        serving::EvalOptions eval_options;
        return session.MeasureThroughput(config, mix, eval_options).qps;
      };
    }
    auto outcome = (*backend)->Plan(ctx, request);
    if (!outcome.ok()) {
      statuses[i] = outcome.status();
    } else {
      outcomes[i] = *std::move(outcome);
    }
  });

  FleetPlan plan;
  plan.budget_per_hour = options_.budget_per_hour;
  for (std::size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(),
                    "model " + names_[i] + ": " + statuses[i].message());
    }
    FleetModelPlan model_plan;
    model_plan.model = names_[i];
    model_plan.budget_per_hour = (*shares)[i];
    model_plan.qos_ms = sessions_[i].qos_ms();
    model_plan.outcome = std::move(outcomes[i]);
    model_plan.cost_per_hour = model_plan.outcome.config.CostPerHour(catalog_);
    plan.total_cost_per_hour += model_plan.cost_per_hour;
    plan.models.push_back(std::move(model_plan));
  }
  return plan;
}

StatusOr<FleetServeResult> Fleet::ServeAll(const FleetPlan& plan,
                                           FleetServeOptions options) const {
  if (options.duration_s <= 0.0 || options.base_rate_qps <= 0.0 ||
      options.window_s <= 0.0) {
    return Status::InvalidArgument(
        "ServeAll needs positive duration_s, base_rate_qps and window_s");
  }
  if (options.realloc_period_s < 0.0) {
    return Status::InvalidArgument("realloc_period_s must be >= 0");
  }
  std::vector<std::size_t> indices;
  indices.reserve(plan.models.size());
  for (const FleetModelPlan& model_plan : plan.models) {
    const std::size_t i = IndexOf(model_plan.model);
    if (i == kNpos) {
      return Status::NotFound("model " + model_plan.model +
                              " is not in this fleet");
    }
    indices.push_back(i);
  }
  for (const FleetLoadShift& shift : options.shifts) {
    // Must name a model of the *served plan* — a fleet member outside
    // the plan would be a silently dropped no-op, not a load change.
    const auto in_plan = std::find_if(
        indices.begin(), indices.end(),
        [&](std::size_t i) { return names_[i] == shift.model; });
    if (in_plan == indices.end()) {
      return Status::NotFound("load shift at " + std::to_string(shift.time_s) +
                              "s names model " + shift.model +
                              ", which is not in the served plan");
    }
    if (shift.arrival_scale <= 0.0) {
      return Status::InvalidArgument("load shift for " + shift.model +
                                     ": arrival_scale must be positive");
    }
    if (shift.time_s < 0.0 || shift.time_s > options.duration_s) {
      return Status::InvalidArgument(
          "load shift for " + shift.model + " at " +
          std::to_string(shift.time_s) + "s is outside the horizon");
    }
  }

  const bool realloc = options.realloc_period_s > 0.0;
  auto backend = PlannerRegistry::Global().Build(options_.planner);
  if (!backend.ok()) return backend.status();
  auto allocator = AllocatorRegistry::Global().Build(options_.allocator);
  if (!allocator.ok()) return allocator.status();
  if (realloc) {
    for (const std::size_t i : indices) {
      if (sessions_[i].monitor().Count() == 0) {
        return Status::FailedPrecondition(
            "model " + names_[i] +
            ": monitor is empty; call ObserveMix before ServeAll with "
            "periodic reallocation");
      }
    }
  }

  const std::size_t n = plan.models.size();
  // Each model is one shard: its own engine on its own clock. Shards meet
  // only at barriers — the merged grid of window boundaries and
  // reallocation points — where the driving thread snapshots windows and
  // re-splits the budget; between barriers they share no mutable state, so
  // they advance concurrently and the outcome is bit-identical for every
  // serve_threads value (and to the serial walk). Clocks are declared
  // before the engines so in-flight events (which hold engine pointers)
  // are freed after the engines themselves.
  std::vector<std::unique_ptr<sim::Simulator>> clocks;
  std::vector<std::unique_ptr<serving::Engine>> engines;
  std::vector<std::unique_ptr<workload::QuerySource>> streams;
  std::vector<std::vector<serving::WindowedMetrics>> windows(n);
  clocks.reserve(n);
  engines.reserve(n);
  streams.reserve(n);

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t i = indices[j];
    auto runtime = Deploy(names_[i], plan.models[j].outcome.config);
    if (!runtime.ok()) return runtime.status();
    serving::EngineOptions engine_options;
    // Overload is an expected transient here (that is what reallocation
    // reacts to), so the batch early-abort heuristic is off.
    engine_options.run.abort_violation_fraction = 0.0;
    engine_options.launch_lag_s = options.launch_lag_s;
    engine_options.seed = options_.seed + 1000003 * (j + 1);
    clocks.push_back(std::make_unique<sim::Simulator>());
    auto engine = runtime->MakeEngine(engine_options, clocks.back().get());
    if (!engine.ok()) return engine.status();

    workload::QuerySourceSpec source_spec;
    source_spec.source = model_options_[i].trace.empty()
                             ? "PRODUCTION"
                             : model_options_[i].trace;
    source_spec.rate_qps =
        options.base_rate_qps * model_options_[i].arrival_scale;
    auto stream = workload::QuerySourceRegistry::Global().Build(source_spec);
    if (!stream.ok()) {
      return Status(stream.status().code(),
                    "model " + names_[i] + ": " + stream.status().message());
    }
    const Status attached = (*engine)->SubmitSource(**stream);
    if (!attached.ok()) return attached;
    engines.push_back(*std::move(engine));
    streams.push_back(*std::move(stream));
  }

  // Load shifts are per-shard events: scheduled on the owning shard's own
  // clock, they fire inside that shard's barrier-to-barrier advance.
  for (const FleetLoadShift& shift : options.shifts) {
    for (std::size_t j = 0; j < n; ++j) {
      if (names_[indices[j]] != shift.model) continue;
      serving::Engine* engine = engines[j].get();
      const double scale = shift.arrival_scale;
      clocks[j]->At(shift.time_s, [engine, scale] {
        (void)engine->SetArrivalScale(scale);
      });
    }
  }

  // The barrier grid: window boundaries shared by every model (the horizon
  // always closes the last, possibly partial, window) merged with the
  // reallocation points. Boundaries are computed as k * period — not
  // accumulated — so a non-representable width cannot drift into a
  // duplicate boundary just below the horizon; a coinciding window and
  // reallocation boundary runs the window snapshot first.
  enum : unsigned { kWindowBarrier = 1u, kReallocBarrier = 2u };
  std::map<Time, unsigned> barriers;
  for (std::size_t k = 1;; ++k) {
    const double t = static_cast<double>(k) * options.window_s;
    if (t >= options.duration_s - 1e-9) break;
    barriers[t] |= kWindowBarrier;
  }
  barriers[options.duration_s] |= kWindowBarrier;
  if (realloc) {
    for (std::size_t k = 1;; ++k) {
      const double t = static_cast<double>(k) * options.realloc_period_s;
      if (t >= options.duration_s - 1e-9) break;
      barriers[t] |= kReallocBarrier;
    }
  }

  // Periodic allocator re-invocation: observed arrival rates become the
  // demand weights, the global budget is re-split, each model re-planned
  // inside its new share, and the engines reconfigured in place.
  std::size_t reallocations = 0;
  std::vector<double> shares(n);
  for (std::size_t j = 0; j < n; ++j) {
    shares[j] = plan.models[j].budget_per_hour;
  }
  Status realloc_status;  // first failure inside the loop, if any
  std::vector<std::size_t> offered_before(n, 0);
  auto rebalance = [&] {
    AllocationProblem problem;
    problem.budget_per_hour = options_.budget_per_hour;
    problem.step_per_hour = options_.allocation_step_per_hour;
    problem.threads = options_.planning_threads;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = indices[j];
      const std::size_t offered_now = engines[j]->Offered();
      const double observed_rate =
          static_cast<double>(offered_now - offered_before[j]) /
          options.realloc_period_s;
      offered_before[j] = offered_now;
      problem.models.push_back(
          AllocModel{names_[i], model_options_[i].weight,
                     std::max(observed_rate, 1e-6), floors_[i],
                     ceilings_[i]});
    }
    problem.probe = [&](std::size_t j, double budget) -> StatusOr<double> {
      const Kairos& session = sessions_[indices[j]];
      PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                         budget};
      PlanRequest request;
      request.monitor = &session.monitor();
      request.search = options.search;
      auto outcome = (*backend)->Probe(ctx, request);
      if (!outcome.ok()) return outcome.status();
      return outcome->expected_qps;
    };
    auto split = (*allocator)->Allocate(problem);
    if (!split.ok()) {
      realloc_status = split.status();
      return;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const Kairos& session = sessions_[indices[j]];
      PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                         (*split)[j]};
      PlanRequest request;
      request.monitor = &session.monitor();
      request.search = options.search;
      if ((*backend)->NeedsEvaluations()) {
        // Same wiring as PlanAll: evaluation-driven backends measure
        // against the model's monitored mix (in a nested simulation —
        // the co-simulation clock is untouched).
        const workload::EmpiricalBatches mix = session.monitor().Snapshot();
        request.eval = [&session, mix](const cloud::Config& config) {
          serving::EvalOptions eval_options;
          return session.MeasureThroughput(config, mix, eval_options).qps;
        };
      }
      auto outcome = (*backend)->Plan(ctx, request);
      if (!outcome.ok()) {
        realloc_status =
            Status(outcome.status().code(), "model " + names_[indices[j]] +
                                                ": " +
                                                outcome.status().message());
        return;
      }
      const Status reconfigured =
          engines[j]->Reconfigure(outcome->config);
      if (!reconfigured.ok()) {
        realloc_status = reconfigured;
        return;
      }
    }
    shares = *std::move(split);
    ++reallocations;
  };

  // The barrier drive loop. Advancing a shard fires its own arrivals,
  // completions, policy rounds and load shifts up to the barrier — work
  // that never touches another shard — so the shards run concurrently on
  // a pool reused across barriers. Window snapshots and reallocation run
  // joined, on this thread, exactly as the single-threaded walk would.
  const std::size_t workers = ParallelismFor(options.serve_threads, n);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  auto advance_all = [&](Time t) {
    if (pool != nullptr) {
      ParallelFor(*pool, n,
                  [&engines, t](std::size_t j) { engines[j]->AdvanceTo(t); });
    } else {
      for (std::size_t j = 0; j < n; ++j) engines[j]->AdvanceTo(t);
    }
  };
  for (const auto& [t, kinds] : barriers) {
    advance_all(t);
    if ((kinds & kWindowBarrier) != 0) {
      for (std::size_t j = 0; j < n; ++j) {
        windows[j].push_back(engines[j]->TakeWindow());
      }
    }
    if ((kinds & kReallocBarrier) != 0) {
      rebalance();
      if (!realloc_status.ok()) return realloc_status;
    }
  }

  FleetServeResult result;
  result.duration_s = options.duration_s;
  result.reallocations = reallocations;
  result.final_shares_per_hour = std::move(shares);
  for (std::size_t j = 0; j < n; ++j) {
    FleetModelServe serve;
    serve.model = names_[indices[j]];
    serve.totals = engines[j]->Totals();
    serve.windows = std::move(windows[j]);
    serve.qps = static_cast<double>(serve.totals.served) / options.duration_s;
    result.total_qps += serve.qps;
    result.total_weighted_qps +=
        model_options_[indices[j]].arrival_scale * serve.qps;
    result.models.push_back(std::move(serve));
  }
  return result;
}

StatusOr<Runtime> Fleet::Deploy(const std::string& model,
                                const cloud::Config& config) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return sessions_[i].Deploy(config);
}

StatusOr<FleetMeasurement> Fleet::MeasureAll(
    const FleetPlan& plan, const workload::BatchDistribution& mix,
    serving::EvalOptions eval_options) const {
  std::vector<std::size_t> indices;
  indices.reserve(plan.models.size());
  for (const FleetModelPlan& model_plan : plan.models) {
    const std::size_t i = IndexOf(model_plan.model);
    if (i == kNpos) {
      return Status::NotFound("model " + model_plan.model +
                              " is not in this fleet");
    }
    indices.push_back(i);
  }

  // Measurements of independent models share nothing; run them in
  // parallel, each under the model's own trace when one is set.
  std::vector<serving::EvalResult> results(plan.models.size());
  ParallelFor(plan.models.size(), options_.planning_threads,
              [&](std::size_t j) {
                const FleetModelPlan& model_plan = plan.models[j];
                const std::size_t i = indices[j];
                serving::EvalOptions per_model = eval_options;
                if (model_plan.outcome.expected_qps > 0.0) {
                  per_model.rate_guess = 0.5 * model_plan.outcome.expected_qps;
                }
                results[j] = sessions_[i].MeasureThroughput(
                    model_plan.outcome.config, MixFor(i, mix), per_model);
              });

  FleetMeasurement measurement;
  for (std::size_t j = 0; j < plan.models.size(); ++j) {
    FleetModelMeasurement m;
    m.model = plan.models[j].model;
    m.result = results[j];
    measurement.total_qps += m.result.qps;
    measurement.total_weighted_qps +=
        model_options_[indices[j]].arrival_scale * m.result.qps;
    measurement.models.push_back(std::move(m));
  }
  return measurement;
}

}  // namespace kairos::core
