#include "core/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "chaos/injector.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "control/controllers.h"
#include "latency/model_zoo.h"
#include "policy/registry.h"
#include "rpc/netem.h"
#include "sim/simulator.h"
#include "workload/query_source.h"

namespace kairos::core {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// Cheapest way to rent one base instance, the floor for a feasible share.
StatusOr<double> MinBasePrice(const cloud::Catalog& catalog) {
  double min_price = std::numeric_limits<double>::infinity();
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    if (catalog[t].is_base) min_price = std::min(min_price, catalog[t].price_per_hour);
  }
  if (!std::isfinite(min_price)) {
    return Status::InvalidArgument("catalog has no base instance type");
  }
  return min_price;
}

/// Builds a named per-model trace; nullptr for "" (caller-provided mix).
StatusOr<std::unique_ptr<workload::BatchDistribution>> MakeTrace(
    const std::string& name) {
  const std::string canonical = policy::CanonicalSchemeName(name);
  if (canonical.empty()) {
    return std::unique_ptr<workload::BatchDistribution>(nullptr);
  }
  if (canonical == "PRODUCTION") {
    return std::unique_ptr<workload::BatchDistribution>(
        std::make_unique<workload::LogNormalBatches>(
            workload::LogNormalBatches::Production()));
  }
  if (canonical == "GAUSSIAN") {
    return std::unique_ptr<workload::BatchDistribution>(
        std::make_unique<workload::GaussianBatches>(
            workload::GaussianBatches::Default()));
  }
  return Status::NotFound("unknown trace \"" + name +
                          "\"; named traces: GAUSSIAN, PRODUCTION, and the "
                          "file-backed STREAM / TRACE (with trace_path set; "
                          "\"\" keeps the caller-provided mix)");
}

/// True for the trace names that replay a CSV named by trace_path.
bool IsFileBackedTrace(const std::string& canonical) {
  return canonical == "STREAM" || canonical == "TRACE";
}

/// Wires the real-measurement evaluator of an evaluation-driven backend
/// (KAIROS+, BRUTE-FORCE) into `request`: configs are measured against a
/// snapshot of `monitor`'s mix in a nested simulation. An empty window
/// comes back as a Status without model context — each caller prefixes
/// the model name exactly once. Shared by PlanAll and the in-serve
/// rebalance so the two paths cannot drift.
Status WireEvaluator(const Kairos& session,
                     const workload::QueryMonitor& monitor,
                     PlanRequest& request) {
  auto mix = monitor.Snapshot();
  if (!mix.ok()) return mix.status();
  request.eval = [&session,
                  mix = *std::move(mix)](const cloud::Config& config) {
    serving::EvalOptions eval_options;
    return session.MeasureThroughput(config, mix, eval_options).qps;
  };
  return Status::Ok();
}

/// Chaos-aware N-1 padding (DESIGN.md Sec. 11). Instances are assigned
/// to `domains` failure domains round-robin in launch order, so a
/// contiguous block of m instances of one type loses at most
/// ceil(m / domains) of them to a single domain outage. Padding each
/// type's planned count c to the smallest m with m - ceil(m / domains)
/// >= c therefore keeps the planned capacity alive through the loss of
/// the largest domain. The padded config is trimmed back — most
/// expensive type first, never below the planned core — until it fits
/// `share_per_hour`, so the share invariant (config cost <= share)
/// still holds.
cloud::Config PadForDomainLoss(const cloud::Config& core,
                               std::size_t domains, double share_per_hour,
                               const cloud::Catalog& catalog) {
  if (domains < 2) return core;
  std::vector<int> counts(core.NumTypes());
  std::vector<int> padded(core.NumTypes());
  for (cloud::TypeId t = 0; t < core.NumTypes(); ++t) {
    counts[t] = core.Count(t);
    int m = counts[t];
    if (m > 0) {
      const int d = static_cast<int>(domains);
      while (m - (m + d - 1) / d < counts[t]) ++m;
    }
    padded[t] = m;
  }
  double cost = cloud::Config(padded).CostPerHour(catalog);
  while (cost > share_per_hour + 1e-9) {
    cloud::TypeId trim = core.NumTypes();
    double trim_price = -1.0;
    for (cloud::TypeId t = 0; t < core.NumTypes(); ++t) {
      if (padded[t] > counts[t] && catalog[t].price_per_hour > trim_price) {
        trim = t;
        trim_price = catalog[t].price_per_hour;
      }
    }
    if (trim == core.NumTypes()) break;  // back at the core: stop trimming
    --padded[trim];
    cost -= trim_price;
  }
  return cloud::Config(std::move(padded));
}

}  // namespace

Fleet::Fleet(const cloud::Catalog& catalog, FleetOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

StatusOr<Fleet> Fleet::Create(const cloud::Catalog& catalog,
                              std::vector<FleetModelOptions> models,
                              FleetOptions options) {
  if (models.empty()) {
    return Status::InvalidArgument("fleet needs at least one model");
  }
  if (options.budget_per_hour <= 0.0) {
    return Status::InvalidArgument("fleet budget must be positive, got " +
                                   FormatDollarsPerHour(options.budget_per_hour));
  }
  if (!PlannerRegistry::Global().Contains(options.planner)) {
    // Reuse the registry's error so the message lists the alternatives.
    return PlannerRegistry::Global().Build(options.planner).status();
  }
  auto allocator = AllocatorRegistry::Global().Build(options.allocator);
  if (!allocator.ok()) return allocator.status();

  // The fleet-unique serving name: the alias when given, the Table-3 name
  // otherwise. Aliases let one fleet shard the same model several times.
  const auto serve_name = [](const FleetModelOptions& m) -> const std::string& {
    return m.name.empty() ? m.model : m.name;
  };

  double total_weight = 0.0;
  for (const FleetModelOptions& m : models) {
    if (latency::TryFindModel(m.model) == nullptr) {
      return Status::NotFound("unknown model \"" + m.model +
                              "\"; Table-3 models: " +
                              latency::ModelZooNames());
    }
    if (m.weight <= 0.0) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     ": weight must be positive");
    }
    if (m.arrival_scale <= 0.0) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     ": arrival_scale must be positive");
    }
    if (m.qos_scale <= 0.0) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     ": qos_scale must be positive");
    }
    if (m.min_budget_per_hour < 0.0 || m.max_budget_per_hour < 0.0) {
      return Status::InvalidArgument(
          "model " + serve_name(m) + ": budget bounds must be non-negative");
    }
    const auto dup = std::count_if(models.begin(), models.end(),
                                   [&](const FleetModelOptions& other) {
                                     return serve_name(other) == serve_name(m);
                                   });
    if (dup > 1) {
      return Status::InvalidArgument("model " + serve_name(m) +
                                     " listed more than once");
    }
    total_weight += m.weight;
  }

  const auto min_base = MinBasePrice(catalog);
  if (!min_base.ok()) return min_base.status();

  Fleet fleet(catalog, options);
  for (const FleetModelOptions& m : models) {
    const double floor = std::max(m.min_budget_per_hour, *min_base);
    const double ceiling = m.max_budget_per_hour > 0.0
                               ? m.max_budget_per_hour
                               : std::numeric_limits<double>::infinity();
    if (floor > ceiling) {
      return Status::InvalidArgument(
          "model " + serve_name(m) + ": max budget " +
          FormatDollarsPerHour(ceiling) +
          " is below the effective floor " + FormatDollarsPerHour(floor) +
          " (cheapest base instance " + FormatDollarsPerHour(*min_base) + ")");
    }
    // File-backed traces (STREAM / TRACE) carry no batch mix of their
    // own: ObserveMix / MeasureAll fall back to the caller-provided mix
    // (nullptr entry), and ServeAll replays the file.
    std::unique_ptr<workload::BatchDistribution> mix;
    if (IsFileBackedTrace(policy::CanonicalSchemeName(m.trace))) {
      if (m.trace_path.empty()) {
        return Status::InvalidArgument(
            "model " + serve_name(m) + ": trace \"" + m.trace +
            "\" replays a file; set trace_path to a trace CSV");
      }
    } else {
      auto trace = MakeTrace(m.trace);
      if (!trace.ok()) {
        return Status(trace.status().code(), "model " + serve_name(m) + ": " +
                                                 trace.status().message());
      }
      mix = *std::move(trace);
    }
    fleet.names_.push_back(serve_name(m));
    fleet.budgets_.push_back(options.budget_per_hour * m.weight / total_weight);
    fleet.floors_.push_back(floor);
    fleet.ceilings_.push_back(ceiling);
    fleet.mixes_.push_back(std::move(mix));
    fleet.model_options_.push_back(m);
  }

  // Surface infeasible constraints at construction time. Probe-free
  // allocators (STATIC) can run in full; probe-driven ones (MARGINAL)
  // re-split at every PlanAll(), so only their floors are checked here.
  std::vector<double> create_shares = fleet.budgets_;
  if (!(*allocator)->NeedsProbes()) {
    AllocationProblem problem;
    problem.budget_per_hour = options.budget_per_hour;
    for (std::size_t i = 0; i < models.size(); ++i) {
      problem.models.push_back(AllocModel{fleet.names_[i], models[i].weight,
                                          models[i].arrival_scale,
                                          fleet.floors_[i], fleet.ceilings_[i]});
    }
    auto shares = (*allocator)->Allocate(problem);
    if (!shares.ok()) return shares.status();
    create_shares = *std::move(shares);
  } else {
    double floor_sum = 0.0;
    for (const double floor : fleet.floors_) floor_sum += floor;
    if (floor_sum > options.budget_per_hour + 1e-9) {
      return Status::Infeasible(
          "per-model budget floors sum to " + FormatDollarsPerHour(floor_sum) +
          ", more than the global budget " +
          FormatDollarsPerHour(options.budget_per_hour) +
          " (cheapest base instance " + FormatDollarsPerHour(*min_base) +
          " per model); raise the budget or drop a model");
    }
    // Seed the sessions with a feasible prior — every floor honored, the
    // spendable remainder split by weight — so direct Session() callers
    // never see shares that together overspend the envelope. The
    // allocator re-splits on every PlanAll().
    const double spendable =
        std::max(0.0, options.budget_per_hour - floor_sum);
    for (std::size_t i = 0; i < create_shares.size(); ++i) {
      create_shares[i] =
          std::min(fleet.floors_[i] +
                       spendable * models[i].weight / total_weight,
                   fleet.ceilings_[i]);
    }
  }

  for (std::size_t i = 0; i < models.size(); ++i) {
    KairosOptions session_options;
    session_options.budget_per_hour = create_shares[i];
    session_options.qos_scale = models[i].qos_scale;
    session_options.monitor_warmup = models[i].monitor_warmup;
    session_options.seed = options.seed;
    session_options.runtime = options.runtime;
    fleet.sessions_.emplace_back(catalog, models[i].model, session_options);
  }
  return fleet;
}

std::size_t Fleet::IndexOf(const std::string& model) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == model) return i;
  }
  return kNpos;
}

const workload::BatchDistribution& Fleet::MixFor(
    std::size_t i, const workload::BatchDistribution& fallback) const {
  return mixes_[i] != nullptr ? *mixes_[i] : fallback;
}

StatusOr<const Kairos*> Fleet::Session(const std::string& model) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return &sessions_[i];
}

StatusOr<double> Fleet::BudgetFor(const std::string& model) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return budgets_[i];
}

Status Fleet::ObserveMix(const std::string& model,
                         const workload::BatchDistribution& mix) {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  sessions_[i].ObserveMix(MixFor(i, mix));
  return Status::Ok();
}

void Fleet::ObserveMixAll(const workload::BatchDistribution& mix) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    sessions_[i].ObserveMix(MixFor(i, mix));
  }
}

StatusOr<FleetPlan> Fleet::PlanAll(const search::SearchOptions& search) const {
  auto backend = PlannerRegistry::Global().Build(options_.planner);
  if (!backend.ok()) return backend.status();
  auto allocator = AllocatorRegistry::Global().Build(options_.allocator);
  if (!allocator.ok()) return allocator.status();

  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].monitor().Count() == 0) {
      return Status::FailedPrecondition(
          "model " + names_[i] +
          ": monitor is empty; call ObserveMix before PlanAll");
    }
  }

  // Split the budget. The probe answers "what would the backend achieve
  // for model i at budget b" analytically (PlannerBackend::Probe), so the
  // MARGINAL allocator can afford one probe per candidate per increment;
  // probes of independent models run concurrently.
  AllocationProblem problem;
  problem.budget_per_hour = options_.budget_per_hour;
  problem.step_per_hour = options_.allocation_step_per_hour;
  problem.threads = options_.planning_threads;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    problem.models.push_back(AllocModel{names_[i], model_options_[i].weight,
                                        model_options_[i].arrival_scale,
                                        floors_[i], ceilings_[i]});
  }
  problem.probe = [&](std::size_t i, double budget) -> StatusOr<double> {
    const Kairos& session = sessions_[i];
    PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(), budget};
    PlanRequest request;
    request.monitor = &session.monitor();
    request.search = search;
    auto outcome = (*backend)->Probe(ctx, request);
    if (!outcome.ok()) return outcome.status();
    return outcome->expected_qps;
  };
  auto shares = (*allocator)->Allocate(problem);
  if (!shares.ok()) return shares.status();

  // Plan every model inside its share, concurrently: sessions, planner
  // backends and allocators are stateless const objects, and each worker
  // writes only its own slot.
  const std::size_t n = sessions_.size();
  std::vector<Status> statuses(n);
  std::vector<PlannerOutcome> outcomes(n);
  ParallelFor(n, options_.planning_threads, [&](std::size_t i) {
    const Kairos& session = sessions_[i];
    PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                       (*shares)[i]};
    PlanRequest request;
    request.monitor = &session.monitor();
    request.search = search;
    if ((*backend)->NeedsEvaluations()) {
      // Evaluate against the model's own monitored workload. The empty-
      // window precondition was checked above, so a failure here would be
      // a programming error — still surfaced as this model's Status.
      // The result loop below adds the "model X:" prefix.
      statuses[i] = WireEvaluator(session, session.monitor(), request);
      if (!statuses[i].ok()) return;
    }
    auto outcome = (*backend)->Plan(ctx, request);
    if (!outcome.ok()) {
      statuses[i] = outcome.status();
    } else {
      outcomes[i] = *std::move(outcome);
    }
  });

  FleetPlan plan;
  plan.budget_per_hour = options_.budget_per_hour;
  for (std::size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) {
      return Status(statuses[i].code(),
                    "model " + names_[i] + ": " + statuses[i].message());
    }
    FleetModelPlan model_plan;
    model_plan.model = names_[i];
    model_plan.budget_per_hour = (*shares)[i];
    model_plan.qos_ms = sessions_[i].qos_ms();
    model_plan.outcome = std::move(outcomes[i]);
    model_plan.cost_per_hour = model_plan.outcome.config.CostPerHour(catalog_);
    plan.total_cost_per_hour += model_plan.cost_per_hour;
    plan.models.push_back(std::move(model_plan));
  }
  return plan;
}

StatusOr<FleetServeResult> Fleet::ServeAll(const FleetPlan& plan,
                                           FleetServeOptions options) const {
  if (options.duration_s <= 0.0 || options.base_rate_qps <= 0.0 ||
      options.window_s <= 0.0) {
    return Status::InvalidArgument(
        "ServeAll needs positive duration_s, base_rate_qps and window_s");
  }
  if (options.realloc_period_s < 0.0) {
    return Status::InvalidArgument("realloc_period_s must be >= 0");
  }
  if (options.admission.max_queue_s < 0.0 ||
      options.admission.deadline_s < 0.0) {
    return Status::InvalidArgument(
        "FleetServeOptions::admission: max_queue_s and deadline_s must "
        "be >= 0");
  }
  std::vector<std::size_t> indices;
  indices.reserve(plan.models.size());
  for (const FleetModelPlan& model_plan : plan.models) {
    const std::size_t i = IndexOf(model_plan.model);
    if (i == kNpos) {
      return Status::NotFound("model " + model_plan.model +
                              " is not in this fleet");
    }
    indices.push_back(i);
  }
  for (const FleetLoadShift& shift : options.shifts) {
    // Must name a model of the *served plan* — a fleet member outside
    // the plan would be a silently dropped no-op, not a load change.
    const auto in_plan = std::find_if(
        indices.begin(), indices.end(),
        [&](std::size_t i) { return names_[i] == shift.model; });
    if (in_plan == indices.end()) {
      return Status::NotFound("load shift at " + std::to_string(shift.time_s) +
                              "s names model " + shift.model +
                              ", which is not in the served plan");
    }
    if (shift.arrival_scale <= 0.0) {
      return Status::InvalidArgument("load shift for " + shift.model +
                                     ": arrival_scale must be positive");
    }
    if (shift.time_s < 0.0 || shift.time_s > options.duration_s) {
      return Status::InvalidArgument(
          "load shift for " + shift.model + " at " +
          std::to_string(shift.time_s) + "s is outside the horizon");
    }
  }

  // Resolve the control plane. "" keeps the legacy wiring: a PERIODIC
  // controller at realloc_period_s when positive, no control loop
  // otherwise (frozen allocation). A named controller that declares a
  // "period_s" knob inherits realloc_period_s unless overridden.
  std::unique_ptr<control::FleetController> controller;
  if (options.controller.empty() && !options.controller_knobs.empty()) {
    // Knobs without a controller would be dropped silently — the legacy
    // PERIODIC wiring takes no knobs; misconfiguration fails loudly like
    // every other knob path.
    return Status::InvalidArgument(
        "controller_knobs were given but no controller is named; set "
        "FleetServeOptions::controller (registered controllers: " +
        JoinComma(control::ControllerRegistry::Global().ListNames()) + ")");
  }
  if (!options.controller.empty()) {
    control::KnobMap knobs = options.controller_knobs;
    auto info = control::ControllerRegistry::Global().Info(options.controller);
    if (!info.ok()) return info.status();
    if (options.realloc_period_s > 0.0) {
      // The period must land somewhere: a controller without a period_s
      // knob (QOS, BACKLOG, DRIFT) cannot honor it, and dropping it
      // silently would strip the periodic safety net the caller asked
      // for. COMPOSITE chains such a controller with a PERIODIC net.
      if (info->knobs.count("period_s") == 0) {
        return Status::InvalidArgument(
            "controller " + info->name +
            " has no period_s knob, so realloc_period_s would be ignored; "
            "drop it, or chain the controller with a PERIODIC safety net "
            "via COMPOSITE");
      }
      if (knobs.count("period_s") == 0) {
        knobs["period_s"] = options.realloc_period_s;
      }
    }
    auto built =
        control::ControllerRegistry::Global().Build(options.controller, knobs);
    if (!built.ok()) return built.status();
    controller = *std::move(built);
  } else if (options.realloc_period_s > 0.0) {
    controller = control::MakePeriodicController(options.realloc_period_s);
  }

  // Resolve the chaos plane. No injector means no chaos code runs at all:
  // no extra barriers, no fault reads, no network fabric — the run is
  // bit-identical to a chaos-free build (tests/chaos_test.cc).
  if (!options.chaos.empty() && options.injector != nullptr) {
    return Status::InvalidArgument(
        "both FleetServeOptions::chaos and ::injector are set; name a "
        "registered injector or pass a programmatic one, not both");
  }
  if (options.chaos.empty() && !options.chaos_knobs.empty()) {
    return Status::InvalidArgument(
        "chaos_knobs were given but no chaos injector is named; set "
        "FleetServeOptions::chaos (registered injectors: " +
        JoinComma(chaos::ChaosRegistry::Global().ListNames()) + ")");
  }
  std::shared_ptr<chaos::ChaosInjector> injector = options.injector;
  if (!options.chaos.empty()) {
    auto built = chaos::ChaosRegistry::Global().Build(options.chaos,
                                                      options.chaos_knobs);
    if (!built.ok()) return built.status();
    injector = *std::move(built);
  }

  auto backend = PlannerRegistry::Global().Build(options_.planner);
  if (!backend.ok()) return backend.status();
  auto allocator = AllocatorRegistry::Global().Build(options_.allocator);
  if (!allocator.ok()) return allocator.status();
  if (controller != nullptr) {
    for (const std::size_t i : indices) {
      if (sessions_[i].monitor().Count() == 0) {
        return Status::FailedPrecondition(
            "model " + names_[i] +
            ": monitor is empty; call ObserveMix before ServeAll with a "
            "reallocation controller");
      }
    }
  }

  const std::size_t n = plan.models.size();
  // The telemetry plane (DESIGN.md Sec. 13). `tel` == nullptr disables
  // everything telemetry-related — no instrument attach, no spans, no
  // snapshots — so a disabled run is bit-identical to a build without
  // the subsystem (tests/telemetry_test.cc).
  telemetry::Telemetry* const tel = options.telemetry;
  if (tel != nullptr) {
    if (tel->num_model_shards() != n) {
      return Status::InvalidArgument(
          "FleetServeOptions::telemetry was created for " +
          std::to_string(tel->num_model_shards()) +
          " model shards, but the served plan has " + std::to_string(n));
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (tel->tracer().shard_names()[j] != names_[indices[j]]) {
        return Status::InvalidArgument(
            "FleetServeOptions::telemetry shard " + std::to_string(j) +
            " is named \"" + tel->tracer().shard_names()[j] +
            "\" but the served plan's model " + std::to_string(j) +
            " is \"" + names_[indices[j]] +
            "\"; create the Telemetry with the plan's model names in "
            "plan order");
      }
    }
  }
  // Each model is one shard: its own engine on its own clock. Shards meet
  // only at barriers — the merged grid of window boundaries and
  // reallocation points — where the driving thread snapshots windows and
  // re-splits the budget; between barriers they share no mutable state, so
  // they advance concurrently and the outcome is bit-identical for every
  // serve_threads value (and to the serial walk). Clocks are declared
  // before the engines so in-flight events (which hold engine pointers)
  // are freed after the engines themselves.
  std::vector<std::unique_ptr<sim::Simulator>> clocks;
  std::vector<std::unique_ptr<serving::Engine>> engines;
  std::vector<std::unique_ptr<workload::QuerySource>> streams;
  std::vector<std::vector<serving::WindowedMetrics>> windows(n);
  clocks.reserve(n);
  engines.reserve(n);
  streams.reserve(n);
  if (options.window_s > 0.0) {
    // Reserve the whole window schedule up front so barrier snapshots
    // never reallocate mid-run (part of the zero-steady-state-alloc
    // contract the sustained perf gate asserts).
    const auto expected = static_cast<std::size_t>(
        options.duration_s / options.window_s) + 2;
    for (std::size_t j = 0; j < n; ++j) windows[j].reserve(expected);
  }

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t i = indices[j];
    cloud::Config config = plan.models[j].outcome.config;
    const std::size_t domains =
        std::max<std::size_t>(model_options_[i].failure_domains, 1);
    if (model_options_[i].plan_n_minus_one && domains >= 2) {
      // Chaos-aware N-1 sizing (DESIGN.md Sec. 11): re-plan the core
      // inside (d-1)/d of the share, then pad each type so losing the
      // largest failure domain leaves the core intact. replan_model
      // below applies the same rule, so in-serve replans keep the
      // deployment N-1 sized.
      const double share = plan.models[j].budget_per_hour;
      // The core never plans below the model's floor (the cheapest
      // feasible deployment) — a small share shrunk by (d-1)/d must not
      // turn an otherwise feasible model infeasible.
      const double core_budget =
          std::max(share * static_cast<double>(domains - 1) /
                       static_cast<double>(domains),
                   std::min(share, floors_[i]));
      PlannerContext ctx{&catalog_, &sessions_[i].truth(),
                         sessions_[i].qos_ms(), core_budget};
      PlanRequest request;
      request.monitor = &sessions_[i].monitor();
      request.search = options.search;
      if ((*backend)->NeedsEvaluations()) {
        const Status wired =
            WireEvaluator(sessions_[i], sessions_[i].monitor(), request);
        if (!wired.ok()) {
          return Status(wired.code(),
                        "model " + names_[i] + ": " + wired.message());
        }
      }
      auto core = (*backend)->Plan(ctx, request);
      if (!core.ok()) {
        return Status(core.status().code(),
                      "model " + names_[i] + ": " + core.status().message());
      }
      config = PadForDomainLoss(core->config, domains, share, catalog_);
    }
    auto runtime = Deploy(names_[i], config);
    if (!runtime.ok()) return runtime.status();
    serving::EngineOptions engine_options;
    // Overload is an expected transient here (that is what reallocation
    // reacts to), so the batch early-abort heuristic is off.
    engine_options.run.abort_violation_fraction = 0.0;
    engine_options.run.keep_latencies = options.keep_latencies;
    engine_options.admission = options.admission;
    engine_options.launch_lag_s = options.launch_lag_s;
    engine_options.failure_domains = domains;
    engine_options.seed = options_.seed + 1000003 * (j + 1);
    clocks.push_back(std::make_unique<sim::Simulator>());
    auto engine = runtime->MakeEngine(engine_options, clocks.back().get());
    if (!engine.ok()) return engine.status();

    workload::QuerySourceSpec source_spec;
    const std::string trace_name =
        policy::CanonicalSchemeName(model_options_[i].trace);
    if (trace_name == "STREAM") {
      source_spec.source = "STREAM";
      source_spec.path = model_options_[i].trace_path;
      source_spec.chunk_bytes = model_options_[i].trace_chunk_bytes;
    } else if (trace_name == "TRACE") {
      // The materialized oracle of the STREAM path: same file, read
      // eagerly through the same parser, replayed from memory.
      auto trace = workload::ReadTraceCsv(model_options_[i].trace_path);
      if (!trace.ok()) {
        return Status(trace.status().code(),
                      "model " + names_[i] + ": " + trace.status().message());
      }
      source_spec.source = "TRACE";
      source_spec.trace = *std::move(trace);
    } else {
      source_spec.source = trace_name.empty() ? "PRODUCTION" : trace_name;
    }
    source_spec.rate_qps =
        options.base_rate_qps * model_options_[i].arrival_scale;
    auto stream = workload::QuerySourceRegistry::Global().Build(source_spec);
    if (!stream.ok()) {
      return Status(stream.status().code(),
                    "model " + names_[i] + ": " + stream.status().message());
    }
    const Status attached = (*engine)->SubmitSource(**stream);
    if (!attached.ok()) return attached;
    engines.push_back(*std::move(engine));
    streams.push_back(*std::move(stream));
  }

  // Attach instruments after every engine exists: the vector is sized
  // once, so the pointers the engines hold stay valid for the whole run.
  std::vector<telemetry::EngineInstruments> instruments;
  if (tel != nullptr) {
    instruments.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      instruments.push_back(tel->InstrumentsFor(j));
      engines[j]->SetTelemetry(&instruments[j]);
    }
  }

  // Load shifts are per-shard events: scheduled on the owning shard's own
  // clock, they fire inside that shard's barrier-to-barrier advance.
  for (const FleetLoadShift& shift : options.shifts) {
    for (std::size_t j = 0; j < n; ++j) {
      if (names_[indices[j]] != shift.model) continue;
      serving::Engine* engine = engines[j].get();
      const double scale = shift.arrival_scale;
      clocks[j]->At(shift.time_s, [engine, scale] {
        (void)engine->SetArrivalScale(scale);
      });
    }
  }

  // The chaos plane. Serving names in plan order label chaos events; the
  // fabric vector owns each model's installed degraded NetworkModel (the
  // engine only borrows a pointer). Faults are applied through this
  // adapter at barriers, on the driving thread, with every shard
  // quiesced, so chaos runs stay bit-identical for every serve_threads.
  std::vector<std::string> serve_names(n);
  for (std::size_t j = 0; j < n; ++j) serve_names[j] = names_[indices[j]];
  std::vector<std::unique_ptr<rpc::NetworkModel>> fabrics(n);
  class ShardChaosTarget final : public chaos::ChaosTarget {
   public:
    ShardChaosTarget(const std::vector<std::unique_ptr<serving::Engine>>& e,
                     const std::vector<std::string>& names,
                     std::vector<std::unique_ptr<rpc::NetworkModel>>& f)
        : engines_(e), names_(names), fabrics_(f) {}
    std::size_t NumModels() const override { return engines_.size(); }
    const std::string& ModelName(std::size_t m) const override {
      return names_[m];
    }
    std::size_t LiveInstances(std::size_t m) const override {
      return engines_[m]->AssignableInstances();
    }
    std::size_t Preempt(std::size_t m, std::size_t count,
                        double notice_s) override {
      return engines_[m]->PreemptInstances(count, notice_s);
    }
    std::size_t Kill(std::size_t m, std::size_t count) override {
      return engines_[m]->KillInstances(count);
    }
    std::size_t NumDomains(std::size_t m) const override {
      return engines_[m]->NumDomains();
    }
    std::size_t PreemptDomain(std::size_t m, std::size_t domain,
                              double notice_s) override {
      return engines_[m]->PreemptDomain(domain, notice_s);
    }
    std::size_t KillDomain(std::size_t m, std::size_t domain) override {
      return engines_[m]->KillDomain(domain);
    }
    void DegradeNetwork(std::size_t m,
                        const rpc::NetworkModel& net) override {
      fabrics_[m] = std::make_unique<rpc::NetworkModel>(net);
      engines_[m]->SetNetwork(fabrics_[m].get());
    }
    void RestoreNetwork(std::size_t m) override {
      engines_[m]->SetNetwork(nullptr);
    }

   private:
    const std::vector<std::unique_ptr<serving::Engine>>& engines_;
    const std::vector<std::string>& names_;
    std::vector<std::unique_ptr<rpc::NetworkModel>>& fabrics_;
  };
  ShardChaosTarget chaos_target(engines, serve_names, fabrics);
  if (injector != nullptr) {
    const chaos::ChaosSchedule schedule{options.duration_s, options.window_s,
                                        options_.seed, n};
    const Status armed = injector->Arm(schedule);
    if (!armed.ok()) return armed;
  }

  // Live batch-mix monitors, one per shard, fed in-shard (one Observe per
  // arrival, between barriers, by the shard's own worker) so they stay
  // deterministic under any serve_threads. Their planning reference is
  // the session monitor's mean — what the initial plan was built against;
  // a kResetMonitor swaps the shard's planning mix to this live window.
  // Only mix-reading controllers (DRIFT, a COMPOSITE containing it) pay
  // the per-arrival tap; everyone else keeps the arrival path untouched.
  std::vector<workload::QueryMonitor> live_monitors;
  if (controller != nullptr && controller->NeedsLiveMix()) {
    live_monitors.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = indices[j];
      live_monitors.emplace_back(model_options_[i].monitor_warmup);
      live_monitors.back().MarkPlanningReference(
          sessions_[i].monitor().MeanBatch());
      engines[j]->SetMonitorTap(&live_monitors.back());
    }
  }

  // The barrier grid: window boundaries shared by every model (the horizon
  // always closes the last, possibly partial, window) merged with the
  // controller's own decision times. Boundaries are computed as k * width
  // — not accumulated — so a non-representable width cannot drift into a
  // duplicate boundary just below the horizon; a coinciding window and
  // decision boundary runs the window snapshot first, so controllers see
  // the freshly closed window.
  enum : unsigned { kWindowBarrier = 1u, kDecisionBarrier = 2u,
                    kChaosBarrier = 4u };
  std::map<Time, unsigned> barriers;
  for (std::size_t k = 1;; ++k) {
    const double t = static_cast<double>(k) * options.window_s;
    if (t >= options.duration_s - 1e-9) break;
    barriers[t] |= kWindowBarrier;
  }
  barriers[options.duration_s] |= kWindowBarrier;
  if (controller != nullptr) {
    const control::ControlSchedule schedule{options.duration_s,
                                            options.window_s};
    for (const Time t : controller->DecisionTimes(schedule)) {
      if (t <= 0.0 || t >= options.duration_s - 1e-9) continue;
      barriers[t] |= kDecisionBarrier;
    }
  }
  if (injector != nullptr) {
    // Armed fault times become barriers of their own, so faults land at
    // their scheduled time, not rounded to the next window boundary.
    // Faults at t <= 0 are applied by the pre-loop drain below.
    for (const Time t : injector->FaultTimes()) {
      if (t <= 0.0 || t >= options.duration_s - 1e-9) continue;
      barriers[t] |= kChaosBarrier;
    }
  }

  // Control-plane state. The planning mix of model j starts as its
  // session monitor (what the initial plan was built against) and moves
  // to the live sliding window after a kResetMonitor.
  std::size_t reallocations = 0;
  std::size_t monitor_resets = 0;
  std::size_t respreads = 0;
  std::size_t failovers = 0;
  std::size_t shed_actions = 0;
  // The loan ledger (kBorrowBudget, DESIGN.md Sec. 11): per borrower, the
  // (donor, $/hr) grants currently outstanding. Every grant is repaid —
  // by an amount-0 action, by a reallocation re-deriving every share, or
  // by the horizon force-repay — so borrowed == repaid holds exactly.
  // The reported totals fold `loan_events` once, in borrow order, at the
  // end of the run: summing the same grants through two independently
  // ordered accumulators could differ in the last ulp, and the
  // conservation invariant is asserted bit-for-bit.
  std::size_t borrows = 0;
  std::size_t paybacks = 0;
  struct LoanEvent {
    double granted = 0.0;  ///< $/hr moved to the borrower at grant time
    bool repaid = false;
  };
  std::vector<LoanEvent> loan_events;
  std::vector<std::vector<std::size_t>> loan_event_ids(n);  // per borrower
  std::vector<std::vector<std::pair<std::size_t, double>>> loans(n);
  std::vector<FleetControlEvent> control_log;
  std::vector<FleetChaosEvent> chaos_log;
  /// Engine fault-ledger entries already copied into chaos_log, per model.
  std::vector<std::size_t> faults_drained(n, 0);
  std::vector<double> shares(n);
  for (std::size_t j = 0; j < n; ++j) {
    shares[j] = plan.models[j].budget_per_hour;
  }
  std::vector<const workload::QueryMonitor*> plan_monitors(n);
  for (std::size_t j = 0; j < n; ++j) {
    plan_monitors[j] = &sessions_[indices[j]].monitor();
  }
  Status control_status;  // first failure inside the loop, if any
  Time last_realloc_time = 0.0;
  std::vector<std::size_t> offered_at_realloc(n, 0);

  // Re-plans model j inside `budget` against its planning mix and
  // reconfigures its live engine in place. Shared by the fleet-wide
  // rebalance and the per-model kFailover recovery so the two replan
  // paths cannot drift.
  auto replan_model = [&](std::size_t j, double budget) -> Status {
    const Kairos& session = sessions_[indices[j]];
    // N-1 sized models re-plan their core inside (d-1)/d of the share
    // and pad afterwards — the same rule the initial deployment used.
    const std::size_t domains =
        std::max<std::size_t>(model_options_[indices[j]].failure_domains, 1);
    const bool n_minus_one =
        model_options_[indices[j]].plan_n_minus_one && domains >= 2;
    const double core_budget =
        n_minus_one ? std::max(budget * static_cast<double>(domains - 1) /
                                   static_cast<double>(domains),
                               std::min(budget, floors_[indices[j]]))
                    : budget;
    PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                       core_budget};
    PlanRequest request;
    request.monitor = plan_monitors[j];
    request.search = options.search;
    if ((*backend)->NeedsEvaluations()) {
      // Same wiring as PlanAll, against the model's planning mix (the
      // nested measurement never touches the co-simulation clock).
      const Status wired = WireEvaluator(session, *plan_monitors[j], request);
      if (!wired.ok()) {
        return Status(wired.code(),
                      "model " + names_[indices[j]] + ": " + wired.message());
      }
    }
    std::optional<telemetry::ScopedSpan> replan_span;
    std::shared_ptr<std::atomic<std::uint64_t>> trials;
    if (tel != nullptr) {
      replan_span.emplace(&tel->tracer(), tel->fleet_shard(),
                          "fleet.replan");
      replan_span->AddArg("model", names_[indices[j]]);
      replan_span->AddArg("budget_per_hour", std::to_string(budget));
      if (request.eval != nullptr) {
        // Per-trial evaluation spans. Trials may run on the search pool
        // (eval_threads > 1): span emission rides the tracer's per-shard
        // mutex, and the trial count accumulates in a shared atomic that
        // lands on the fleet shard's counter once, back on this thread.
        trials = std::make_shared<std::atomic<std::uint64_t>>(0);
        search::EvalFn inner = std::move(request.eval);
        telemetry::TraceRecorder* const tracer = &tel->tracer();
        const std::size_t shard = tel->fleet_shard();
        const std::string model_name = names_[indices[j]];
        request.eval = [inner = std::move(inner), tracer, shard, trials,
                        model_name](const cloud::Config& config) {
          telemetry::ScopedSpan span(tracer, shard, "planner.eval");
          span.AddArg("model", model_name);
          span.AddArg("instances", std::to_string(config.TotalInstances()));
          trials->fetch_add(1, std::memory_order_relaxed);
          return inner(config);
        };
      }
    }
    auto outcome = (*backend)->Plan(ctx, request);
    if (trials != nullptr) {
      tel->metrics().Add(tel->planner_trials(), tel->fleet_shard(),
                         static_cast<double>(
                             trials->load(std::memory_order_relaxed)));
    }
    if (!outcome.ok()) {
      return Status(outcome.status().code(),
                    "model " + names_[indices[j]] + ": " +
                        outcome.status().message());
    }
    const Status reconfigured = engines[j]->Reconfigure(
        n_minus_one ? PadForDomainLoss(outcome->config, domains, budget,
                                       catalog_)
                    : outcome->config);
    if (!reconfigured.ok()) return reconfigured;
    // A model already moved to the live window was just replanned
    // against it: the window's current mean is the new planning-time
    // reference, or plan_mean_batch / drift would keep describing a
    // configuration this re-plan just replaced.
    if (!live_monitors.empty() && plan_monitors[j] == &live_monitors[j]) {
      live_monitors[j].MarkPlanningReference();
    }
    return Status::Ok();
  };

  // kReallocate: observed arrival rates over `interval_s` become the
  // demand weights, the global budget is re-split, each model re-planned
  // inside its new share against its planning mix, and the engines
  // reconfigured in place.
  auto rebalance = [&](double interval_s) {
    std::optional<telemetry::ScopedSpan> realloc_span;
    if (tel != nullptr) {
      realloc_span.emplace(&tel->tracer(), tel->fleet_shard(),
                           "fleet.realloc");
      realloc_span->AddArg("interval_s", std::to_string(interval_s));
    }
    AllocationProblem problem;
    problem.budget_per_hour = options_.budget_per_hour;
    problem.step_per_hour = options_.allocation_step_per_hour;
    problem.threads = options_.planning_threads;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = indices[j];
      const std::size_t offered_now = engines[j]->Offered();
      const double observed_rate =
          static_cast<double>(offered_now - offered_at_realloc[j]) /
          interval_s;
      offered_at_realloc[j] = offered_now;
      problem.models.push_back(
          AllocModel{names_[i], model_options_[i].weight,
                     std::max(observed_rate, 1e-6), floors_[i],
                     ceilings_[i]});
    }
    problem.probe = [&](std::size_t j, double budget) -> StatusOr<double> {
      const Kairos& session = sessions_[indices[j]];
      PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                         budget};
      PlanRequest request;
      request.monitor = plan_monitors[j];
      request.search = options.search;
      auto outcome = (*backend)->Probe(ctx, request);
      if (!outcome.ok()) return outcome.status();
      return outcome->expected_qps;
    };
    auto split = (*allocator)->Allocate(problem);
    if (!split.ok()) {
      control_status = split.status();
      return;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const Status replanned = replan_model(j, (*split)[j]);
      if (!replanned.ok()) {
        control_status = replanned;
        return;
      }
    }
    shares = *std::move(split);
    ++reallocations;
  };

  // Runs the chaos plane's barrier step: applies every armed fault due at
  // `t` (on this thread, shards quiesced), then copies freshly landed
  // hard kills out of each engine's fault ledger — those fire on shard
  // clocks between barriers (a notice's delayed kill), so the ledger is
  // the only deterministic way to observe them. chaos_log is re-sorted by
  // time once, after the loop.
  auto drain_chaos = [&](Time t) {
    if (injector == nullptr) return;
    if (t < options.duration_s - 1e-9) {
      for (chaos::ChaosEvent& event : injector->Apply(t, chaos_target)) {
        if (tel != nullptr) {
          tel->metrics().Add(tel->chaos_faults(), tel->fleet_shard());
          tel->tracer().EmitInstant(
              event.model < n ? event.model : tel->fleet_shard(),
              "chaos.fault",
              {{"kind", chaos::ChaosEventName(event.kind)},
               {"detail", event.detail}});
        }
        chaos_log.push_back(FleetChaosEvent{event.time, event.kind,
                                            serve_names[event.model],
                                            std::move(event.detail)});
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::vector<serving::Engine::InstanceFault>& faults =
          engines[j]->Faults();
      for (; faults_drained[j] < faults.size(); ++faults_drained[j]) {
        const serving::Engine::InstanceFault& fault =
            faults[faults_drained[j]];
        FleetChaosEvent event;
        event.time = fault.time;
        event.kind = fault.preemption ? chaos::ChaosEventKind::kPreemption
                                      : chaos::ChaosEventKind::kInstanceDeath;
        event.model = serve_names[j];
        event.detail = "hard kill; " + std::to_string(fault.requeued) +
                       " in-flight quer" +
                       (fault.requeued == 1 ? "y" : "ies") + " requeued";
        if (tel != nullptr) {
          tel->metrics().Add(tel->chaos_faults(), tel->fleet_shard());
          tel->tracer().EmitInstant(j, "chaos.fault",
                                    {{"kind", chaos::ChaosEventName(event.kind)},
                                     {"detail", event.detail}});
        }
        chaos_log.push_back(std::move(event));
      }
    }
  };

  // Applies one barrier's worth of controller decisions. Monitor resets
  // run before the barrier's reallocation no matter how the controller
  // ordered the list — a same-barrier re-plan must read the post-reset
  // mix (under COMPOSITE a QOS-triggered reallocation can precede
  // DRIFT's resets in the list). At most one reallocation per barrier is
  // honored (a re-split already replans every model).
  auto apply_actions = [&](Time t,
                           const std::vector<control::ControlAction>& actions) {
    for (const control::ControlAction& action : actions) {
      if (action.kind != control::ControlActionKind::kResetMonitor) continue;
      if (action.model >= n) {
        control_status = Status::InvalidArgument(
            "controller " + controller->Name() +
            " reset the monitor of model index " +
            std::to_string(action.model) + ", but the served plan has " +
            std::to_string(n) + " models");
        return;
      }
      if (live_monitors.empty()) {
        // Per the FleetController contract a reset-emitting controller
        // must declare NeedsLiveMix(); silently dropping the reset here
        // would leave replans on the stale mix with no trace.
        control_status = Status::FailedPrecondition(
            "controller " + controller->Name() +
            " emitted kResetMonitor but NeedsLiveMix() is false, so no "
            "live mix exists to reset to");
        return;
      }
      // An empty live window would leave nothing to plan against; the
      // reset waits until the stream has produced samples.
      if (live_monitors[action.model].Count() == 0) continue;
      plan_monitors[action.model] = &live_monitors[action.model];
      live_monitors[action.model].MarkPlanningReference();
      ++monitor_resets;
      control_log.push_back(FleetControlEvent{
          t, action.kind, names_[indices[action.model]], action.reason});
    }
    bool reallocated_here = false;
    for (const control::ControlAction& action : actions) {
      if (action.kind != control::ControlActionKind::kReallocate) continue;
      const double interval = action.interval_s > 0.0
                                  ? action.interval_s
                                  : std::max(t - last_realloc_time, 1e-9);
      rebalance(interval);
      if (!control_status.ok()) return;
      last_realloc_time = t;
      reallocated_here = true;
      // A re-split re-derives every share from the global budget, which
      // returns all borrowed headroom to the pool: the ledger clears and
      // the cleared grants count as repaid, keeping borrowed == repaid
      // exact.
      for (std::size_t m = 0; m < n; ++m) {
        if (loans[m].empty()) continue;
        for (const std::size_t id : loan_event_ids[m]) {
          loan_events[id].repaid = true;
        }
        loan_event_ids[m].clear();
        loans[m].clear();
        ++paybacks;
      }
      control_log.push_back(
          FleetControlEvent{t, action.kind, "", action.reason});
      break;  // one re-split already replanned every model
    }
    // Loan-ledger changes (kBorrowBudget), after any reallocation (whose
    // re-split just cleared the ledger) and before the recoveries, so a
    // same-barrier kFailover replans the borrower at its enlarged share.
    // One ledger change per model per barrier (the first action wins).
    std::vector<bool> loaned(n, false);
    for (const control::ControlAction& action : actions) {
      if (action.kind != control::ControlActionKind::kBorrowBudget) continue;
      if (action.model >= n) {
        control_status = Status::InvalidArgument(
            "controller " + controller->Name() + " targeted model index " +
            std::to_string(action.model) + " with " +
            control::ControlActionName(action.kind) +
            ", but the served plan has " + std::to_string(n) + " models");
        return;
      }
      if (action.amount_per_hour < 0.0) {
        control_status = Status::InvalidArgument(
            "controller " + controller->Name() +
            " emitted BORROW_BUDGET with a negative amount (" +
            FormatDollarsPerHour(action.amount_per_hour) + ")");
        return;
      }
      if (loaned[action.model]) continue;
      loaned[action.model] = true;
      if (reallocated_here) continue;  // shares were just re-derived
      const std::size_t j = action.model;
      // When a same-barrier kFailover will replan this model anyway, the
      // ledger only moves the shares here and lets that replan pick the
      // enlarged (or restored) share up — one replan, not two.
      bool replanned_later = false;
      for (const control::ControlAction& other : actions) {
        if (other.kind == control::ControlActionKind::kFailover &&
            other.model == j) {
          replanned_later = true;
          break;
        }
      }
      if (action.amount_per_hour > 0.0) {
        // Borrow: take proportionally from the other models' headroom
        // (share above floor; a model with outstanding loans of its own
        // does not donate).
        std::vector<double> headroom(n, 0.0);
        double headroom_total = 0.0;
        for (std::size_t m = 0; m < n; ++m) {
          if (m == j || !loans[m].empty()) continue;
          headroom[m] = std::max(shares[m] - floors_[indices[m]], 0.0);
          headroom_total += headroom[m];
        }
        const double grant = std::min(action.amount_per_hour, headroom_total);
        if (grant <= 1e-9) continue;  // no headroom anywhere: loan declined
        // `granted` re-accumulates the individual takes so the repayment
        // (which sums the same ledger entries) matches it bit for bit.
        double granted = 0.0;
        for (std::size_t m = 0; m < n; ++m) {
          if (headroom[m] <= 0.0) continue;
          const double take = grant * headroom[m] / headroom_total;
          if (take <= 0.0) continue;
          shares[m] -= take;
          loans[j].push_back({m, take});
          granted += take;
          // The donor's plan only fits its shrunk share after a replan;
          // do it now so the share invariant never lapses.
          const Status replanned = replan_model(m, shares[m]);
          if (!replanned.ok()) {
            control_status = replanned;
            return;
          }
        }
        shares[j] += granted;
        loan_event_ids[j].push_back(loan_events.size());
        loan_events.push_back({granted, false});
        ++borrows;
        if (!replanned_later) {
          const Status replanned = replan_model(j, shares[j]);
          if (!replanned.ok()) {
            control_status = replanned;
            return;
          }
        }
      } else {
        // Amount 0: repay every outstanding loan of this model.
        if (loans[j].empty()) continue;
        const std::vector<std::pair<std::size_t, double>> repaid_loans =
            std::move(loans[j]);
        loans[j].clear();
        double repaid = 0.0;
        for (const auto& loan : repaid_loans) {
          shares[loan.first] += loan.second;
          repaid += loan.second;
        }
        shares[j] -= repaid;
        for (const std::size_t id : loan_event_ids[j]) {
          loan_events[id].repaid = true;
        }
        loan_event_ids[j].clear();
        ++paybacks;
        // The borrower shrinks back inside its restored share first; the
        // donors then replan up to reclaim theirs.
        if (!replanned_later) {
          const Status replanned = replan_model(j, shares[j]);
          if (!replanned.ok()) {
            control_status = replanned;
            return;
          }
        }
        for (const auto& loan : repaid_loans) {
          const Status replanned = replan_model(loan.first, shares[loan.first]);
          if (!replanned.ok()) {
            control_status = replanned;
            return;
          }
        }
      }
      control_log.push_back(FleetControlEvent{
          t, action.kind, names_[indices[j]], action.reason});
    }
    // Chaos recoveries, after any reallocation: one per model per barrier
    // (the first action on a model wins), and all of them skipped when a
    // same-barrier re-split already replanned and reconfigured everything.
    std::vector<bool> recovered(n, false);
    for (const control::ControlAction& action : actions) {
      if (action.kind != control::ControlActionKind::kRespread &&
          action.kind != control::ControlActionKind::kFailover) {
        continue;
      }
      if (action.model >= n) {
        control_status = Status::InvalidArgument(
            "controller " + controller->Name() + " targeted model index " +
            std::to_string(action.model) + " with " +
            control::ControlActionName(action.kind) +
            ", but the served plan has " + std::to_string(n) + " models");
        return;
      }
      if (recovered[action.model]) continue;
      recovered[action.model] = true;
      if (reallocated_here) continue;
      const std::size_t j = action.model;
      if (action.kind == control::ControlActionKind::kFailover) {
        const Status replanned = replan_model(j, shares[j]);
        if (!replanned.ok()) {
          control_status = replanned;
          return;
        }
        ++failovers;
      } else {
        // Re-issue the current target: lost (and retiring) capacity drops
        // out of the live count, so the engine schedules replacement
        // launches now — fired on a notice, the launch lag overlaps the
        // victim's notice window.
        const Status respread =
            engines[j]->Reconfigure(engines[j]->target_config());
        if (!respread.ok()) {
          control_status = respread;
          return;
        }
        ++respreads;
      }
      control_log.push_back(FleetControlEvent{
          t, action.kind, names_[indices[j]], action.reason});
    }
    // Shed-knob changes, last and unconditionally: shedding is an
    // admission regime, not capacity, so a same-barrier reallocation
    // does not supersede it. One change per model per barrier (the
    // first action on a model wins); only the deadline knob moves — the
    // run-level bounded-queue settings stay as configured.
    std::vector<bool> shed_set(n, false);
    for (const control::ControlAction& action : actions) {
      if (action.kind != control::ControlActionKind::kSetShed) continue;
      if (action.model >= n) {
        control_status = Status::InvalidArgument(
            "controller " + controller->Name() + " targeted model index " +
            std::to_string(action.model) + " with " +
            control::ControlActionName(action.kind) +
            ", but the served plan has " + std::to_string(n) + " models");
        return;
      }
      if (shed_set[action.model]) continue;
      shed_set[action.model] = true;
      const std::size_t j = action.model;
      serving::AdmissionOptions admission = engines[j]->admission();
      admission.deadline_s = action.deadline_s;
      const Status set = engines[j]->SetAdmission(admission);
      if (!set.ok()) {
        control_status = set;
        return;
      }
      ++shed_actions;
      control_log.push_back(FleetControlEvent{
          t, action.kind, names_[indices[j]], action.reason});
    }
  };

  // One FleetTelemetry reused across barriers; the per-model window
  // vectors are stable (outer vector sized once), so the pointers stay
  // valid for the duration of each Decide() call.
  control::FleetTelemetry telemetry;
  telemetry.duration_s = options.duration_s;
  telemetry.window_s = options.window_s;
  telemetry.budget_per_hour = options_.budget_per_hour;
  telemetry.models.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Run-invariant fields, filled once; the per-barrier snapshot below
    // only refreshes what actually moves.
    const std::size_t i = indices[j];
    telemetry.models[j].model = names_[i];
    telemetry.models[j].arrival_scale = model_options_[i].arrival_scale;
    telemetry.models[j].qos_ms = sessions_[i].qos_ms();
    telemetry.models[j].windows = &windows[j];
  }
  auto snapshot_telemetry = [&](Time t, bool window_closed) {
    telemetry.now = t;
    telemetry.window_closed = window_closed;
    telemetry.windows_closed = n > 0 ? windows[0].size() : 0;
    telemetry.last_reallocation = last_realloc_time;
    for (std::size_t j = 0; j < n; ++j) {
      control::ModelTelemetry& model = telemetry.models[j];
      model.share_per_hour = shares[j];
      model.offered = engines[j]->Offered();
      model.served = engines[j]->Served();
      model.backlog = engines[j]->Backlog();
      const double elapsed = std::max(t - last_realloc_time, 1e-9);
      model.observed_rate_qps =
          static_cast<double>(model.offered - offered_at_realloc[j]) /
          elapsed;
      // After a kResetMonitor the planning monitor *is* the live window;
      // what the current configuration was planned against is then the
      // frozen reference, not the window's moving mean (which would make
      // plan_mean_batch track live_mean_batch and contradict `drift`).
      model.plan_mean_batch =
          !live_monitors.empty() && plan_monitors[j] == &live_monitors[j]
              ? live_monitors[j].reference_mean_batch()
              : plan_monitors[j]->MeanBatch();
      if (!live_monitors.empty()) {
        model.live_mean_batch = live_monitors[j].MeanBatch();
        model.live_queries = live_monitors[j].Count();
        model.drift = live_monitors[j].BatchMixDrift();
      } else {
        model.live_mean_batch = 0.0;
        model.live_queries = 0;
        model.drift = 0.0;
      }
      model.live_instances = engines[j]->AssignableInstances();
      model.target_instances = static_cast<std::size_t>(
          engines[j]->target_config().TotalInstances());
      model.pending_instances = engines[j]->PendingInstances();
      model.instances_lost = engines[j]->InstancesLost();
      model.preemption_notices = engines[j]->PreemptionNotices();
      model.rejected = engines[j]->Rejected();
      model.shed = engines[j]->Shed();
      model.shed_deadline_s = engines[j]->admission().deadline_s;
      // The spot discount this model's capacity is renting at right now
      // (1.0 = on-demand): the injector's market quote evaluated on its
      // curve at the barrier time.
      const cloud::SpotMarket* market =
          injector != nullptr ? injector->Market(j) : nullptr;
      model.spot_discount = market != nullptr ? market->DiscountAt(t) : 1.0;
    }
  };

  // The barrier drive loop. Advancing a shard fires its own arrivals,
  // completions, policy rounds, load shifts and live-monitor taps up to
  // the barrier — work that never touches another shard — so the shards
  // run concurrently on a pool reused across barriers. The shared step —
  // window snapshots, telemetry, controller decisions, action
  // application — runs joined, on this thread, exactly as the
  // single-threaded walk would; the whole control loop is therefore
  // bit-identical for every serve_threads value.
  const std::size_t workers = ParallelismFor(options.serve_threads, n);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  auto advance_all = [&](Time t) {
    if (pool != nullptr) {
      ParallelFor(*pool, n,
                  [&engines, t](std::size_t j) { engines[j]->AdvanceTo(t); });
    } else {
      for (std::size_t j = 0; j < n; ++j) engines[j]->AdvanceTo(t);
    }
  };
  // Faults armed at t <= 0 (e.g. a NET_DEGRADE window opening at the
  // start) land before the first arrival fires.
  drain_chaos(0.0);
  telemetry::TelemetrySink sink(tel);
  for (const auto& [t, kinds] : barriers) {
    advance_all(t);
    if ((kinds & kWindowBarrier) != 0) {
      std::optional<telemetry::ScopedSpan> window_span;
      if (tel != nullptr) {
        window_span.emplace(&tel->tracer(), tel->fleet_shard(),
                            "window.snapshot");
        window_span->AddArg("t_s", std::to_string(t));
      }
      for (std::size_t j = 0; j < n; ++j) {
        windows[j].push_back(engines[j]->TakeWindow());
        if (options.window_probe) {
          options.window_probe(j, windows[j].back());
        }
      }
    }
    // Chaos lands before the controller looks: a loss applied here is in
    // the telemetry of the same barrier's Decide(), so a chaos-aware
    // controller reacts with zero barrier lag.
    drain_chaos(t);
    // The horizon barrier only closes the final window: an action applied
    // there could never serve a query, so the controller is not consulted
    // — centrally, rather than as a guard every controller must remember.
    if (controller != nullptr && t < options.duration_s - 1e-9) {
      snapshot_telemetry(t, (kinds & kWindowBarrier) != 0);
      std::optional<telemetry::ScopedSpan> decide_span;
      if (tel != nullptr) {
        decide_span.emplace(&tel->tracer(), tel->fleet_shard(),
                            "control.decide");
        decide_span->AddArg("controller", controller->Name());
      }
      const std::vector<control::ControlAction> actions =
          controller->Decide(telemetry);
      if (decide_span.has_value()) {
        // The chosen actions ride the span as args — this is how a trace
        // answers "why did the controller fire here?".
        decide_span->AddArg("actions", std::to_string(actions.size()));
        for (std::size_t a = 0; a < actions.size(); ++a) {
          decide_span->AddArg(
              "action" + std::to_string(a),
              std::string(control::ControlActionName(actions[a].kind)) +
                  (actions[a].model < n
                       ? " " + names_[indices[actions[a].model]]
                       : std::string()) +
                  (actions[a].reason.empty() ? "" : ": " + actions[a].reason));
        }
        tel->metrics().Add(tel->control_actions(), tel->fleet_shard(),
                           static_cast<double>(actions.size()));
      }
      apply_actions(t, actions);
      if (!control_status.ok()) return control_status;
      decide_span.reset();
    }
    if (tel != nullptr) {
      // Fleet-shard bookkeeping at quiescence: the per-shard event-queue
      // depth gauge, the barrier counter, and the sink's registry
      // snapshot into FleetServeResult::telemetry_samples.
      for (std::size_t j = 0; j < n; ++j) {
        tel->metrics().Set(tel->sim_pending_events(), j,
                           static_cast<double>(clocks[j]->PendingEvents()));
      }
      tel->metrics().Add(tel->barriers(), tel->fleet_shard());
      sink.AtBarrier(t, kinds);
    }
  }

  // Loans still outstanding at the horizon force-repay into the totals —
  // the run is over and the borrowed headroom returns to its donors — so
  // the conservation invariant borrowed == repaid holds exactly and
  // final_shares_per_hour reports the unborrowed split.
  for (std::size_t j = 0; j < n; ++j) {
    if (loans[j].empty()) continue;
    double repaid = 0.0;
    for (const auto& loan : loans[j]) {
      shares[loan.first] += loan.second;
      repaid += loan.second;
    }
    shares[j] -= repaid;
    for (const std::size_t id : loan_event_ids[j]) {
      loan_events[id].repaid = true;
    }
    loan_event_ids[j].clear();
    ++paybacks;
    loans[j].clear();
  }

  // Fold the loan ledger once, in borrow order, for both totals: when
  // every grant was repaid (always, by construction) the two sums add
  // the identical doubles in the identical order and compare equal
  // bit-for-bit.
  double budget_borrowed = 0.0;
  double budget_repaid = 0.0;
  for (const LoanEvent& event : loan_events) {
    budget_borrowed += event.granted;
    if (event.repaid) budget_repaid += event.granted;
  }

  FleetServeResult result;
  result.duration_s = options.duration_s;
  result.telemetry_samples = sink.TakeSamples();
  result.telemetry_samples_dropped = sink.dropped_samples();
  result.reallocations = reallocations;
  result.monitor_resets = monitor_resets;
  result.respreads = respreads;
  result.failovers = failovers;
  result.shed_actions = shed_actions;
  result.borrows = borrows;
  result.paybacks = paybacks;
  result.budget_borrowed_per_hour = budget_borrowed;
  result.budget_repaid_per_hour = budget_repaid;
  result.control_log = std::move(control_log);
  // Ledger-drained kills interleave with injector events out of order
  // (they fire on shard clocks between barriers); one stable sort
  // restores time order deterministically.
  std::stable_sort(chaos_log.begin(), chaos_log.end(),
                   [](const FleetChaosEvent& a, const FleetChaosEvent& b) {
                     return a.time < b.time;
                   });
  result.chaos_log = std::move(chaos_log);
  result.final_shares_per_hour = std::move(shares);
  for (std::size_t j = 0; j < n; ++j) {
    FleetModelServe serve;
    serve.model = names_[indices[j]];
    serve.totals = engines[j]->Totals();
    serve.windows = std::move(windows[j]);
    serve.qps = static_cast<double>(serve.totals.served) / options.duration_s;
    serve.instances_lost = engines[j]->InstancesLost();
    serve.preemption_notices = engines[j]->PreemptionNotices();
    // Billed spend at on-demand prices from the engine's census, then the
    // injector's spot market (when it quotes one for this model) applies
    // its discount — integrated over the run when the market carries a
    // time-varying curve — the "effective cost" a preemptible fleet
    // actually pays for the capacity it rented.
    const std::vector<double> billed = engines[j]->BilledSecondsPerType();
    double ondemand_usd = 0.0;
    for (cloud::TypeId type = 0; type < catalog_.size(); ++type) {
      ondemand_usd += billed[type] * catalog_[type].price_per_hour / 3600.0;
    }
    serve.ondemand_cost_usd = ondemand_usd;
    const cloud::SpotMarket* market =
        injector != nullptr ? injector->Market(j) : nullptr;
    serve.effective_cost_usd =
        market != nullptr
            ? cloud::SpotCost(*market, ondemand_usd, options.duration_s)
            : ondemand_usd;
    result.total_qps += serve.qps;
    result.total_weighted_qps +=
        model_options_[indices[j]].arrival_scale * serve.qps;
    result.instances_lost += serve.instances_lost;
    result.preemption_notices += serve.preemption_notices;
    result.ondemand_cost_usd += serve.ondemand_cost_usd;
    result.effective_cost_usd += serve.effective_cost_usd;
    result.models.push_back(std::move(serve));
  }
  result.effective_cost_per_hour =
      result.effective_cost_usd * 3600.0 / options.duration_s;
  return result;
}

StatusOr<Runtime> Fleet::Deploy(const std::string& model,
                                const cloud::Config& config) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return sessions_[i].Deploy(config);
}

StatusOr<FleetMeasurement> Fleet::MeasureAll(
    const FleetPlan& plan, const workload::BatchDistribution& mix,
    serving::EvalOptions eval_options) const {
  std::vector<std::size_t> indices;
  indices.reserve(plan.models.size());
  for (const FleetModelPlan& model_plan : plan.models) {
    const std::size_t i = IndexOf(model_plan.model);
    if (i == kNpos) {
      return Status::NotFound("model " + model_plan.model +
                              " is not in this fleet");
    }
    indices.push_back(i);
  }

  // Measurements of independent models share nothing; run them in
  // parallel, each under the model's own trace when one is set.
  std::vector<serving::EvalResult> results(plan.models.size());
  ParallelFor(plan.models.size(), options_.planning_threads,
              [&](std::size_t j) {
                const FleetModelPlan& model_plan = plan.models[j];
                const std::size_t i = indices[j];
                serving::EvalOptions per_model = eval_options;
                if (model_plan.outcome.expected_qps > 0.0) {
                  per_model.rate_guess = 0.5 * model_plan.outcome.expected_qps;
                }
                results[j] = sessions_[i].MeasureThroughput(
                    model_plan.outcome.config, MixFor(i, mix), per_model);
              });

  FleetMeasurement measurement;
  for (std::size_t j = 0; j < plan.models.size(); ++j) {
    FleetModelMeasurement m;
    m.model = plan.models[j].model;
    m.result = results[j];
    measurement.total_qps += m.result.qps;
    measurement.total_weighted_qps +=
        model_options_[indices[j]].arrival_scale * m.result.qps;
    measurement.models.push_back(std::move(m));
  }
  return measurement;
}

}  // namespace kairos::core
