#include "core/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"
#include "latency/model_zoo.h"

namespace kairos::core {
namespace {

constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();

/// Cheapest way to rent one base instance, the floor for a feasible share.
StatusOr<double> MinBasePrice(const cloud::Catalog& catalog) {
  double min_price = std::numeric_limits<double>::infinity();
  for (cloud::TypeId t = 0; t < catalog.size(); ++t) {
    if (catalog[t].is_base) min_price = std::min(min_price, catalog[t].price_per_hour);
  }
  if (!std::isfinite(min_price)) {
    return Status::InvalidArgument("catalog has no base instance type");
  }
  return min_price;
}

}  // namespace

Fleet::Fleet(const cloud::Catalog& catalog, FleetOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

StatusOr<Fleet> Fleet::Create(const cloud::Catalog& catalog,
                              std::vector<FleetModelOptions> models,
                              FleetOptions options) {
  if (models.empty()) {
    return Status::InvalidArgument("fleet needs at least one model");
  }
  if (options.budget_per_hour <= 0.0) {
    return Status::InvalidArgument("fleet budget must be positive, got " +
                                   FormatDollarsPerHour(options.budget_per_hour));
  }
  if (!PlannerRegistry::Global().Contains(options.planner)) {
    // Reuse the registry's error so the message lists the alternatives.
    return PlannerRegistry::Global().Build(options.planner).status();
  }

  double total_weight = 0.0;
  for (const FleetModelOptions& m : models) {
    if (latency::TryFindModel(m.model) == nullptr) {
      return Status::NotFound("unknown model \"" + m.model +
                              "\"; Table-3 models: " +
                              latency::ModelZooNames());
    }
    if (m.weight <= 0.0) {
      return Status::InvalidArgument("model " + m.model +
                                     ": weight must be positive");
    }
    if (m.qos_scale <= 0.0) {
      return Status::InvalidArgument("model " + m.model +
                                     ": qos_scale must be positive");
    }
    const auto dup = std::count_if(
        models.begin(), models.end(),
        [&](const FleetModelOptions& other) { return other.model == m.model; });
    if (dup > 1) {
      return Status::InvalidArgument("model " + m.model +
                                     " listed more than once");
    }
    total_weight += m.weight;
  }

  const auto min_base = MinBasePrice(catalog);
  if (!min_base.ok()) return min_base.status();

  Fleet fleet(catalog, options);
  for (const FleetModelOptions& m : models) {
    const double share =
        options.budget_per_hour * m.weight / total_weight;
    if (share < *min_base) {
      return Status::Infeasible(
          "model " + m.model + ": budget share " + FormatDollarsPerHour(share) +
          " cannot rent one base instance (cheapest base " +
          FormatDollarsPerHour(*min_base) + "); raise the global budget or its weight");
    }
    KairosOptions session_options;
    session_options.budget_per_hour = share;
    session_options.qos_scale = m.qos_scale;
    session_options.monitor_warmup = m.monitor_warmup;
    session_options.seed = options.seed;
    session_options.runtime = options.runtime;
    fleet.names_.push_back(m.model);
    fleet.budgets_.push_back(share);
    fleet.sessions_.emplace_back(catalog, m.model, session_options);
  }
  return fleet;
}

std::size_t Fleet::IndexOf(const std::string& model) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == model) return i;
  }
  return kNpos;
}

StatusOr<const Kairos*> Fleet::Session(const std::string& model) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return &sessions_[i];
}

StatusOr<double> Fleet::BudgetFor(const std::string& model) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return budgets_[i];
}

Status Fleet::ObserveMix(const std::string& model,
                         const workload::BatchDistribution& mix) {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  sessions_[i].ObserveMix(mix);
  return Status::Ok();
}

void Fleet::ObserveMixAll(const workload::BatchDistribution& mix) {
  for (Kairos& session : sessions_) session.ObserveMix(mix);
}

StatusOr<FleetPlan> Fleet::PlanAll(const search::SearchOptions& search) const {
  auto backend = PlannerRegistry::Global().Build(options_.planner);
  if (!backend.ok()) return backend.status();

  FleetPlan plan;
  plan.budget_per_hour = options_.budget_per_hour;
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    const Kairos& session = sessions_[i];
    if (session.monitor().Count() == 0) {
      return Status::FailedPrecondition(
          "model " + names_[i] +
          ": monitor is empty; call ObserveMix before PlanAll");
    }

    PlannerContext ctx{&catalog_, &session.truth(), session.qos_ms(),
                       budgets_[i]};
    PlanRequest request;
    request.monitor = &session.monitor();
    request.search = search;
    if ((*backend)->NeedsEvaluations()) {
      // Evaluate against the model's own monitored workload.
      const workload::EmpiricalBatches mix = session.monitor().Snapshot();
      request.eval = [&session, mix](const cloud::Config& config) {
        serving::EvalOptions eval_options;
        return session.MeasureThroughput(config, mix, eval_options).qps;
      };
    }

    auto outcome = (*backend)->Plan(ctx, request);
    if (!outcome.ok()) {
      return Status(outcome.status().code(),
                    "model " + names_[i] + ": " + outcome.status().message());
    }

    FleetModelPlan model_plan;
    model_plan.model = names_[i];
    model_plan.budget_per_hour = budgets_[i];
    model_plan.qos_ms = session.qos_ms();
    model_plan.outcome = *std::move(outcome);
    model_plan.cost_per_hour = model_plan.outcome.config.CostPerHour(catalog_);
    plan.total_cost_per_hour += model_plan.cost_per_hour;
    plan.models.push_back(std::move(model_plan));
  }
  return plan;
}

StatusOr<Runtime> Fleet::Deploy(const std::string& model,
                                const cloud::Config& config) const {
  const std::size_t i = IndexOf(model);
  if (i == kNpos) {
    return Status::NotFound("model " + model + " is not in this fleet");
  }
  return sessions_[i].Deploy(config);
}

StatusOr<FleetMeasurement> Fleet::MeasureAll(
    const FleetPlan& plan, const workload::BatchDistribution& mix,
    serving::EvalOptions eval_options) const {
  FleetMeasurement measurement;
  for (const FleetModelPlan& model_plan : plan.models) {
    const std::size_t i = IndexOf(model_plan.model);
    if (i == kNpos) {
      return Status::NotFound("model " + model_plan.model +
                              " is not in this fleet");
    }
    serving::EvalOptions per_model = eval_options;
    if (model_plan.outcome.expected_qps > 0.0) {
      per_model.rate_guess = 0.5 * model_plan.outcome.expected_qps;
    }
    FleetModelMeasurement m;
    m.model = model_plan.model;
    m.result = sessions_[i].MeasureThroughput(model_plan.outcome.config, mix,
                                              per_model);
    measurement.total_qps += m.result.qps;
    measurement.models.push_back(std::move(m));
  }
  return measurement;
}

}  // namespace kairos::core
