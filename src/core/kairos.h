// Public facade of the Kairos library. Downstream users (and this repo's
// examples and benches) interact mainly through this header:
//
//   * Kairos        — plan a heterogeneous configuration under a budget and
//                     deploy it with the Kairos query distributor;
//   * Kairos::Create — the Status-returning construction path (unknown
//                     model names come back as kNotFound, not exceptions);
//   * MonitorFromMix — warm a QueryMonitor from a batch distribution, the
//                     paper's query-monitoring warmup.
//
// Distribution schemes are built by name through kairos::PolicyRegistry
// (policy/registry.h: KAIROS, RIBBON, DRS, CLKWRK, PARTITIONED),
// planning strategies through kairos::PlannerRegistry
// (core/planner_backend.h: KAIROS, KAIROS+, HOMOGENEOUS, BRUTE-FORCE),
// fleet budget splitting through kairos::AllocatorRegistry
// (core/allocator.h: STATIC, MARGINAL), streaming query sources through
// kairos::QuerySourceRegistry (workload/query_source.h: TRACE, POISSON,
// UNIFORM, GAUSSIAN, PRODUCTION), fleet control-plane strategies through
// kairos::ControllerRegistry (control/controller.h: PERIODIC, QOS,
// BACKLOG, DRIFT, COMPOSITE), and multi-model serving under one
// budget through kairos::Fleet (core/fleet.h). Online serving is the
// serving::Engine (serving/engine.h, built via Runtime::MakeEngine or
// co-simulated fleet-wide via Fleet::ServeAll); Runtime::Serve remains
// as the batch compatibility shim. MakePolicyFactory below survives as
// a deprecated shim over the policy registry, and
// QueryMonitor::Snapshot() now returns StatusOr instead of throwing —
// the same Status migration, applied to the monitoring surface.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "core/planner.h"
#include "core/runtime.h"
#include "latency/model_zoo.h"
#include "serving/throughput_eval.h"
#include "workload/batch_dist.h"
#include "workload/monitor.h"

namespace kairos::core {

/// Facade options; defaults reproduce the paper's setup (Sec. 7).
struct KairosOptions {
  double budget_per_hour = 2.5;
  /// Multiplier on the model's Table-3 QoS target (Fig. 15b uses 1.2).
  double qos_scale = 1.0;
  /// Queries observed to warm the monitor before planning.
  std::size_t monitor_warmup = 10000;
  std::uint64_t seed = 7;
  RuntimeOptions runtime;
};

/// End-to-end Kairos for one model on one catalog.
class Kairos {
 public:
  /// `catalog` must outlive the facade. `model` is a Table-3 name.
  /// Throws std::out_of_range for an unknown model; prefer Create() in
  /// code that wants Status-based errors.
  Kairos(const cloud::Catalog& catalog, const std::string& model,
         KairosOptions options = {});

  /// Status-returning construction: kNotFound (listing the Table-3 names)
  /// for an unknown model, kInvalidArgument for bad options.
  static StatusOr<Kairos> Create(const cloud::Catalog& catalog,
                                 const std::string& model,
                                 KairosOptions options = {});

  /// Observes workload (warms the monitor) from a batch distribution.
  void ObserveMix(const workload::BatchDistribution& mix);

  /// Observes a single live query batch size.
  void ObserveQuery(int batch_size) { monitor_.Observe(batch_size); }

  /// Drops stale workload statistics (e.g. after a regime change).
  void ResetMonitor() { monitor_.Reset(); }

  /// One-shot Kairos planning (no online evaluation).
  Plan PlanConfiguration() const;

  /// Kairos+ planning; `eval` measures real throughput of a config.
  search::SearchResult PlanWithEvaluations(
      const search::EvalFn& eval,
      const search::SearchOptions& options = {}) const;

  /// Deploys a configuration with the Kairos distributor.
  Runtime Deploy(const cloud::Config& config) const;

  /// Allowable throughput of a config under the Kairos distributor.
  serving::EvalResult MeasureThroughput(
      const cloud::Config& config, const workload::BatchDistribution& mix,
      const serving::EvalOptions& eval_options) const;

  const workload::QueryMonitor& monitor() const { return monitor_; }
  const latency::ModelSpec& model_spec() const { return spec_; }
  const latency::LatencyModel& truth() const { return truth_; }
  double qos_ms() const { return qos_ms_; }
  const KairosOptions& options() const { return options_; }
  const cloud::Catalog& catalog() const { return catalog_; }

 private:
  const cloud::Catalog& catalog_;
  const latency::ModelSpec& spec_;
  latency::LatencyModel truth_;
  double qos_ms_;
  KairosOptions options_;
  workload::QueryMonitor monitor_;
};

/// Deprecated shim over PolicyRegistry::MakeFactory: builds a registered
/// distribution scheme (KAIROS, RIBBON, DRS, CLKWRK, PARTITIONED) by
/// case-insensitive name; `drs_threshold` is forwarded as DRS's
/// "threshold" knob. Kept source-compatible with the pre-registry API:
/// throws std::out_of_range for unknown names, with a message listing
/// the registered schemes. New code should call
/// PolicyRegistry::Global().MakeFactory() and handle the Status — and
/// knobs beyond DRS's threshold (e.g. PARTITIONED's "partitions") are
/// only reachable through the registry's KnobMap, not through this shim.
serving::PolicyFactory MakePolicyFactory(const std::string& name,
                                         int drs_threshold = 200);

/// Fills a fresh QueryMonitor with `count` draws from `mix`.
workload::QueryMonitor MonitorFromMix(const workload::BatchDistribution& mix,
                                      std::size_t count, std::uint64_t seed);

}  // namespace kairos::core
