// The Kairos central controller runtime (Fig. 4 left half): a serving
// deployment wired with the Kairos query-distribution policy, plus
// convenience entry points for serving traces and measuring allowable
// throughput. Online callers stream through MakeEngine() (DESIGN.md
// Sec. 8); Serve() survives as the batch compatibility path.
#pragma once

#include <memory>

#include "common/status.h"
#include "policy/kairos_policy.h"
#include "serving/engine.h"
#include "serving/system.h"
#include "serving/throughput_eval.h"

namespace kairos::core {

/// Runtime construction knobs.
struct RuntimeOptions {
  policy::KairosPolicyOptions policy;
  serving::PredictorOptions predictor;
  serving::RunOptions run;
};

/// A deployed Kairos serving system for one (catalog, config, model, QoS).
class Runtime {
 public:
  /// `catalog` and `truth` must outlive the runtime.
  Runtime(const cloud::Catalog& catalog, cloud::Config config,
          const latency::LatencyModel& truth, double qos_ms,
          RuntimeOptions options = {});

  /// Serves a trace to completion on a fresh system.
  ///
  /// \deprecated Compatibility shim over serving::Engine: submits the
  /// whole trace upfront and drains — identical results to the
  /// pre-engine implementation, but closed-world. Streaming callers
  /// (continuous arrivals, windowed metrics, mid-run mutation) should
  /// use MakeEngine() instead.
  serving::RunResult Serve(const workload::Trace& trace) const;

  /// Builds a streaming engine over this deployment (the Kairos policy,
  /// this runtime's predictor/run options). Pass a `shared_clock` to
  /// co-simulate several deployments on one event loop, as
  /// Fleet::ServeAll does; the clock must outlive the engine.
  StatusOr<std::unique_ptr<serving::Engine>> MakeEngine(
      serving::EngineOptions engine_options = {},
      sim::Simulator* shared_clock = nullptr) const;

  /// Allowable throughput of this deployment under the given mix.
  serving::EvalResult MeasureThroughput(
      const workload::BatchDistribution& mix,
      const serving::EvalOptions& eval_options) const;

  const cloud::Config& config() const { return config_; }
  double qos_ms() const { return qos_ms_; }

 private:
  std::unique_ptr<serving::ServingSystem> MakeSystem() const;

  const cloud::Catalog& catalog_;
  cloud::Config config_;
  const latency::LatencyModel& truth_;
  double qos_ms_;
  RuntimeOptions options_;
};

}  // namespace kairos::core
