// The Kairos resource allocator (Sec. 5.2, Fig. 4 right half): enumerate
// the budgeted configuration space, estimate every upper bound from the
// monitored workload, rank, and apply the similarity rule — no online
// evaluation. PlanWithEvaluations() is the Kairos+ variant that spends a
// bounded number of real evaluations guided by the same bounds.
#pragma once

#include <vector>

#include "cloud/config_space.h"
#include "search/kairos_plus.h"
#include "search/search.h"
#include "ub/selector.h"
#include "ub/upper_bound.h"
#include "workload/monitor.h"

namespace kairos::core {

/// Everything the planner needs to know about the deployment problem.
struct PlannerContext {
  const cloud::Catalog* catalog = nullptr;
  const latency::LatencyModel* truth = nullptr;
  double qos_ms = 0.0;
  double budget_per_hour = 2.5;  ///< paper default
};

/// A one-shot plan: the chosen configuration plus full diagnostics.
struct Plan {
  cloud::Config config;               ///< Kairos's pick
  ub::SelectionResult selection;      ///< how it was picked
  std::vector<ub::RankedConfig> ranked;  ///< all candidates, UB-descending
};

/// Stateless planner bound to one PlannerContext.
class Planner {
 public:
  explicit Planner(PlannerContext ctx);

  /// The budgeted configuration space (>= 1 base instance).
  std::vector<cloud::Config> ConfigSpace() const;

  /// One-shot Kairos planning from monitored workload statistics.
  Plan PlanConfiguration(const workload::QueryMonitor& monitor) const;

  /// Same, over a pre-enumerated candidate space (callers that already
  /// hold ConfigSpace() avoid re-enumerating). `space` must be non-empty.
  Plan PlanConfiguration(const workload::QueryMonitor& monitor,
                         const std::vector<cloud::Config>& space) const;

  /// Kairos+: upper-bound-guided online search using `eval` for real
  /// throughput measurements (Algorithm 1).
  search::SearchResult PlanWithEvaluations(
      const workload::QueryMonitor& monitor, const search::EvalFn& eval,
      const search::SearchOptions& options = {}) const;

  /// Same, over a pre-enumerated candidate space.
  search::SearchResult PlanWithEvaluations(
      const workload::QueryMonitor& monitor, const search::EvalFn& eval,
      const search::SearchOptions& options,
      const std::vector<cloud::Config>& space) const;

  const PlannerContext& context() const { return ctx_; }

 private:
  PlannerContext ctx_;
};

}  // namespace kairos::core
