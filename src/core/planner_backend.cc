#include "core/planner_backend.h"

#include <algorithm>
#include <utility>

#include "cloud/config_space.h"
#include "common/strings.h"
#include "policy/registry.h"

namespace kairos::core {
namespace {

/// Shared validation: every backend needs a well-formed context and a
/// warmed monitor.
Status ValidateRequest(const PlannerContext& ctx, const PlanRequest& request) {
  if (ctx.catalog == nullptr || ctx.truth == nullptr) {
    return Status::InvalidArgument("planner context needs catalog and truth");
  }
  if (ctx.qos_ms <= 0.0) {
    return Status::InvalidArgument("planner context needs a positive QoS");
  }
  if (ctx.budget_per_hour <= 0.0) {
    return Status::InvalidArgument("planner context needs a positive budget");
  }
  if (request.monitor == nullptr) {
    return Status::InvalidArgument("plan request needs a query monitor");
  }
  return Status::Ok();
}

/// The budgeted space (enumerated once, reused by the planner), or
/// kInfeasible when not even one base instance fits.
StatusOr<std::vector<cloud::Config>> BudgetedSpace(const PlannerContext& ctx) {
  std::vector<cloud::Config> space = Planner(ctx).ConfigSpace();
  if (space.empty()) {
    return Status::Infeasible("no configuration with a base instance fits " +
                              FormatDollarsPerHour(ctx.budget_per_hour));
  }
  return space;
}

/// The one-shot Sec. 5.2 pass shared by KairosBackend::Plan and the
/// default PlannerBackend::Probe: rank upper bounds, apply the similarity
/// rule, spend zero evaluations.
StatusOr<PlannerOutcome> OneShotPlan(const PlannerContext& ctx,
                                     const PlanRequest& request) {
  if (Status s = ValidateRequest(ctx, request); !s.ok()) return s;
  auto space = BudgetedSpace(ctx);
  if (!space.ok()) return space.status();
  PlannerOutcome outcome;
  outcome.plan = Planner(ctx).PlanConfiguration(*request.monitor, *space);
  outcome.config = outcome.plan->config;
  outcome.expected_qps =
      outcome.plan->ranked[outcome.plan->selection.chosen_rank].upper_bound;
  return outcome;
}

/// One-shot Kairos: rank upper bounds, apply the similarity rule, spend
/// zero evaluations (Sec. 5.2).
class KairosBackend final : public PlannerBackend {
 public:
  std::string Name() const override { return "KAIROS"; }

  StatusOr<PlannerOutcome> Plan(const PlannerContext& ctx,
                                const PlanRequest& request) const override {
    return OneShotPlan(ctx, request);
  }
};

/// Kairos+ (Algorithm 1): upper-bound-guided online search over real
/// throughput evaluations.
class KairosPlusBackend final : public PlannerBackend {
 public:
  std::string Name() const override { return "KAIROS+"; }
  bool NeedsEvaluations() const override { return true; }

  StatusOr<PlannerOutcome> Plan(const PlannerContext& ctx,
                                const PlanRequest& request) const override {
    if (Status s = ValidateRequest(ctx, request); !s.ok()) return s;
    if (request.eval == nullptr) {
      return Status::FailedPrecondition(
          "backend KAIROS+ needs PlanRequest::eval");
    }
    auto space = BudgetedSpace(ctx);
    if (!space.ok()) return space.status();
    const search::SearchResult result = Planner(ctx).PlanWithEvaluations(
        *request.monitor, request.eval, request.search, *space);
    PlannerOutcome outcome;
    outcome.config = result.best_config;
    outcome.expected_qps = result.best_qps;
    outcome.evaluations = result.evals;
    return outcome;
  }
};

/// The paper's Sec. 4 baseline: as many base instances as the budget buys.
class HomogeneousBackend final : public PlannerBackend {
 public:
  std::string Name() const override { return "HOMOGENEOUS"; }

  StatusOr<PlannerOutcome> Plan(const PlannerContext& ctx,
                                const PlanRequest& request) const override {
    if (Status s = ValidateRequest(ctx, request); !s.ok()) return s;
    const cloud::Config config =
        cloud::BestHomogeneous(*ctx.catalog, ctx.budget_per_hour);
    if (config.TotalInstances() == 0) {
      return Status::Infeasible("budget " +
                                FormatDollarsPerHour(ctx.budget_per_hour) +
                                " does not buy one base instance");
    }
    PlannerOutcome outcome;
    outcome.config = config;
    if (request.eval != nullptr) {
      outcome.expected_qps = request.eval(config);
      outcome.evaluations = 1;
    }
    return outcome;
  }

  /// Probes with the baseline's own pick — the UB estimate of the
  /// max-base-instances config, not the heterogeneous ranking's winner —
  /// so allocators see what HOMOGENEOUS would actually deploy.
  StatusOr<PlannerOutcome> Probe(const PlannerContext& ctx,
                                 const PlanRequest& request) const override {
    if (Status s = ValidateRequest(ctx, request); !s.ok()) return s;
    const cloud::Config config =
        cloud::BestHomogeneous(*ctx.catalog, ctx.budget_per_hour);
    if (config.TotalInstances() == 0) {
      return Status::Infeasible("budget " +
                                FormatDollarsPerHour(ctx.budget_per_hour) +
                                " does not buy one base instance");
    }
    PlannerOutcome outcome;
    outcome.config = config;
    outcome.expected_qps =
        ub::UpperBoundEstimator(*ctx.catalog, *ctx.truth, ctx.qos_ms)
            .QpsMax(config, *request.monitor);
    return outcome;
  }
};

/// Exhaustive baseline: really evaluate every budgeted configuration
/// (bounded by SearchOptions::max_evals) and keep the best.
class BruteForceBackend final : public PlannerBackend {
 public:
  std::string Name() const override { return "BRUTE-FORCE"; }
  bool NeedsEvaluations() const override { return true; }

  StatusOr<PlannerOutcome> Plan(const PlannerContext& ctx,
                                const PlanRequest& request) const override {
    if (Status s = ValidateRequest(ctx, request); !s.ok()) return s;
    if (request.eval == nullptr) {
      return Status::FailedPrecondition(
          "backend BRUTE-FORCE needs PlanRequest::eval");
    }
    auto space = BudgetedSpace(ctx);
    if (!space.ok()) return space.status();
    PlannerOutcome outcome;
    double best = -1.0;
    for (const cloud::Config& config : *space) {
      if (outcome.evaluations >= request.search.max_evals) break;
      const double qps = request.eval(config);
      ++outcome.evaluations;
      if (qps > best) {
        best = qps;
        outcome.config = config;
        outcome.expected_qps = qps;
      }
      if (request.search.target_qps > 0.0 &&
          best >= request.search.target_qps) {
        break;
      }
    }
    return outcome;
  }
};

const PlannerRegistrar kKairos(
    "KAIROS", "one-shot upper-bound ranking + similarity rule (Sec. 5.2)",
    [] { return std::make_unique<KairosBackend>(); });
const PlannerRegistrar kKairosPlus(
    "KAIROS+", "upper-bound-guided online search, Algorithm 1",
    [] { return std::make_unique<KairosPlusBackend>(); });
const PlannerRegistrar kHomogeneous(
    "HOMOGENEOUS", "max base instances within budget (Sec. 4 baseline)",
    [] { return std::make_unique<HomogeneousBackend>(); });
const PlannerRegistrar kBruteForce(
    "BRUTE-FORCE", "evaluate every budgeted configuration, keep the best",
    [] { return std::make_unique<BruteForceBackend>(); });

}  // namespace

StatusOr<PlannerOutcome> PlannerBackend::Probe(
    const PlannerContext& ctx, const PlanRequest& request) const {
  // Analytic for every backend: a probe runs once per (model, budget
  // increment) during allocation, so real evaluations here would dwarf
  // the planning pass they are meant to guide.
  auto outcome = OneShotPlan(ctx, request);
  if (!outcome.ok()) return outcome;
  // Report the *best* upper bound in the budgeted space, not the
  // similarity-rule pick: the space only grows with budget, so this
  // estimate is monotone in ctx.budget_per_hour — exactly the property
  // marginal-utility water-filling needs (a locally dipping estimate
  // makes greedy allocation abandon a model that still scales).
  outcome->expected_qps = outcome->plan->ranked.front().upper_bound;
  return outcome;
}

PlannerRegistry& PlannerRegistry::Global() {
  static PlannerRegistry* registry = new PlannerRegistry();
  return *registry;
}

Status PlannerRegistry::Register(
    std::string name, std::string summary,
    std::function<std::unique_ptr<PlannerBackend>()> make) {
  const std::string canonical = policy::CanonicalSchemeName(name);
  if (canonical.empty()) {
    return Status::InvalidArgument("planner registration with empty name");
  }
  if (make == nullptr) {
    return Status::InvalidArgument("planner " + canonical +
                                   " registered without a factory");
  }
  const auto [it, inserted] = entries_.emplace(
      canonical, Entry{std::move(summary), std::move(make)});
  if (!inserted) {
    return Status::InvalidArgument("planner " + it->first +
                                   " registered twice");
  }
  return Status::Ok();
}

std::vector<std::string> PlannerRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool PlannerRegistry::Contains(const std::string& name) const {
  return entries_.count(policy::CanonicalSchemeName(name)) > 0;
}

StatusOr<std::string> PlannerRegistry::Summary(const std::string& name) const {
  const auto it = entries_.find(policy::CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown planner \"" + name +
                            "\"; registered planners: " +
                            JoinComma(ListNames()));
  }
  return it->second.summary;
}

StatusOr<std::unique_ptr<PlannerBackend>> PlannerRegistry::Build(
    const std::string& name) const {
  const auto it = entries_.find(policy::CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown planner \"" + name +
                            "\"; registered planners: " +
                            JoinComma(ListNames()));
  }
  return it->second.make();
}

}  // namespace kairos::core
