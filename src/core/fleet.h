// Multi-model fleet facade: several Kairos sessions — one per served
// model — under a single global $/hr budget. The fleet splits the budget
// across models with a registry-selected allocator (STATIC weights or
// MARGINAL water-filling on probed QPS-per-dollar), plans each model's
// heterogeneous configuration with a registry-selected planner backend
// (independent models planned concurrently on a small thread pool), and
// offers aggregate deploy / measure entry points over per-model workload
// mixes. This generalizes the paper's co-design scenario (Fig. 14) to
// multi-tenant serving: the operator states one budget and a model mix,
// the fleet answers "what do I rent for each model?".
//
// All fallible entry points return Status / StatusOr (unknown model,
// planner, allocator or trace names, infeasible budget shares) — nothing
// here throws.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "chaos/injector.h"
#include "common/status.h"
#include "control/controller.h"
#include "core/allocator.h"
#include "core/kairos.h"
#include "core/planner_backend.h"
#include "serving/engine.h"
#include "telemetry/telemetry.h"

namespace kairos::core {

/// One model served by the fleet.
struct FleetModelOptions {
  std::string model;   ///< Table-3 name ("RM2", "DIEN", ...)
  /// Fleet-unique serving name; "" defaults to `model`. Aliases let one
  /// fleet serve several *independent* streams of the same Table-3 model
  /// (multi-tenant shards, e.g. {"RM2-eu", "RM2-us"}), each with its own
  /// session, budget share and traffic; every lookup (Session, Deploy,
  /// load shifts, plan/serve results) goes by this name.
  std::string name;
  /// Allocation prior: under STATIC the model receives
  /// weight / sum(weights) of the global budget; under MARGINAL the
  /// weight only breaks ties between equal marginal utilities. Must be
  /// positive.
  double weight = 1.0;
  /// This model's share of fleet arrival traffic relative to the others.
  /// MARGINAL multiplies the model's marginal QPS by this factor, and
  /// MeasureAll() reports an arrival-weighted aggregate next to the raw
  /// sum. Must be positive.
  double arrival_scale = 1.0;
  /// Per-model workload mix by name: "" (use the distribution the caller
  /// passes to ObserveMixAll / MeasureAll), "PRODUCTION" (log-normal
  /// production trace) or "GAUSSIAN" (the Fig. 12/16 sensitivity mix).
  /// Lets one fleet mix models that see different traffic shapes. Two
  /// file-backed names route ServeAll's arrival stream to `trace_path`
  /// instead of a synthetic process: "STREAM" pulls the CSV through a
  /// StreamingTraceReader in bounded-memory chunks (the million-user
  /// scale path, DESIGN.md Sec. 12) and "TRACE" materializes the same
  /// file up front — the two replay bit-identical query sequences, so
  /// TRACE is the oracle STREAM is tested against. Both fall back to
  /// the caller-provided mix for ObserveMix / MeasureAll.
  std::string trace;
  /// Trace CSV file backing this model's arrival stream; required
  /// non-empty when `trace` is "STREAM" or "TRACE" (".gz" accepted when
  /// zlib is built in), ignored otherwise.
  std::string trace_path;
  /// STREAM refill size in bytes; 0 reads the whole file in one chunk.
  /// Any value produces the identical query sequence.
  std::size_t trace_chunk_bytes = 65536;
  /// Lower bound on this model's budget share in $/hr; the effective
  /// floor is max(min_budget_per_hour, cheapest base instance price).
  double min_budget_per_hour = 0.0;
  /// Upper bound on this model's budget share in $/hr; 0 = uncapped.
  double max_budget_per_hour = 0.0;
  /// Multiplier on the model's Table-3 QoS target.
  double qos_scale = 1.0;
  /// Sliding window of the model's query monitor.
  std::size_t monitor_warmup = 10000;
  /// Failure domains (racks / AZs) this model's instances are spread over
  /// at deploy time, round-robin in launch order (DESIGN.md Sec. 11).
  /// Pure chaos metadata: 1 (the default; 0 behaves as 1) puts everything
  /// in one domain and changes nothing else — runs that configure domains
  /// but inject no chaos stay bit-identical.
  std::size_t failure_domains = 1;
  /// Chaos-aware N-1 planning: when true (and failure_domains >= 2),
  /// every plan/replan of this model sizes the configuration so that
  /// losing its largest failure domain still leaves at least the
  /// QoS-feasible core — the core is planned at (d-1)/d of the share and
  /// each instance count is padded so ceil(count/d) survivors per type
  /// remain after a domain loss, trimmed back (most expensive type first)
  /// if padding would overrun the share. Proactive resilience instead of
  /// reacting after the kill.
  bool plan_n_minus_one = false;
};

/// Fleet-wide knobs.
struct FleetOptions {
  /// Global hourly budget shared by every model.
  double budget_per_hour = 5.0;
  /// Planner backend (PlannerRegistry name) used by PlanAll().
  std::string planner = "KAIROS";
  /// Budget allocator (AllocatorRegistry name): "STATIC" reproduces the
  /// weight-proportional split, "MARGINAL" water-fills on probed marginal
  /// QPS per dollar (see core/allocator.h).
  std::string allocator = "STATIC";
  /// MARGINAL's water-filling increment in $/hr; 0 = auto.
  double allocation_step_per_hour = 0.0;
  /// Threads used to probe / plan / measure independent models
  /// concurrently; 0 = hardware concurrency, 1 = serial.
  std::size_t planning_threads = 0;
  std::uint64_t seed = 7;
  /// Deploy-time runtime knobs, shared by all sessions.
  RuntimeOptions runtime;
};

/// One model's slice of a fleet plan.
struct FleetModelPlan {
  std::string model;
  double budget_per_hour = 0.0;  ///< the share the allocator granted
  double qos_ms = 0.0;           ///< effective QoS target
  PlannerOutcome outcome;        ///< what the backend chose
  double cost_per_hour = 0.0;    ///< actual cost of the chosen config
};

/// The fleet-wide answer. Invariants (asserted by tests/api_test.cc and
/// tests/fleet_allocator_test.cc), for every model i:
///
///   1. floor_i <= models[i].budget_per_hour <= ceiling_i, where floor_i
///      is max(min_budget_per_hour, cheapest base price) and ceiling_i is
///      max_budget_per_hour (infinity when 0);
///   2. sum_i models[i].budget_per_hour <= budget_per_hour — allocators
///      may leave budget unspent (all marginals zero / all models
///      capped), never overspend;
///   3. models[i].cost_per_hour <= models[i].budget_per_hour — each
///      chosen config fits inside its own share, so the fleet as a whole
///      fits the global budget;
///   4. every chosen config keeps >= 1 base instance (QoS feasibility for
///      the largest batches, paper Sec. 4);
///   5. models[] preserves the order models were listed in at Create().
struct FleetPlan {
  std::vector<FleetModelPlan> models;
  double budget_per_hour = 0.0;     ///< the global budget
  double total_cost_per_hour = 0.0; ///< sum of chosen-config costs
};

/// One model's measured allowable throughput.
struct FleetModelMeasurement {
  std::string model;
  serving::EvalResult result;
};

/// Aggregate measurement over a FleetPlan.
struct FleetMeasurement {
  std::vector<FleetModelMeasurement> models;
  double total_qps = 0.0;  ///< sum of per-model allowable throughputs
  /// Arrival-weighted aggregate: sum of arrival_scale_i * qps_i. Equals
  /// total_qps when every model keeps the default arrival_scale of 1.
  double total_weighted_qps = 0.0;
};

/// One scheduled mid-run arrival-rate change inside Fleet::ServeAll
/// (Fig. 12's load change, expressed as a co-simulation event).
struct FleetLoadShift {
  double time_s = 0.0;         ///< simulated time of the change
  std::string model;           ///< whose arrival stream to rescale
  double arrival_scale = 1.0;  ///< new multiplier on the model's base rate
};

/// Knobs of the fleet co-simulation (ServeAll).
struct FleetServeOptions {
  /// Simulated horizon in seconds; completions after it do not count.
  double duration_s = 60.0;
  /// Model i's offered arrival rate is base_rate_qps * arrival_scale_i
  /// (times any FleetLoadShift in effect).
  double base_rate_qps = 40.0;
  /// Cadence of per-model WindowedMetrics snapshots.
  double window_s = 5.0;
  /// Cadence of the "PERIODIC" controller when no `controller` is named:
  /// every period the fleet reads each model's observed arrival rate over
  /// the elapsed period, re-splits the global budget with the configured
  /// allocator (demand-weighted), re-plans every model inside its new
  /// share, and reconfigures the live engines (instance launches obey
  /// launch_lag_s). 0 = frozen allocation — the initial plan serves the
  /// whole run. With a named `controller` this only seeds its "period_s"
  /// knob (when declared and not overridden in controller_knobs).
  double realloc_period_s = 0.0;
  /// Control-plane strategy (ControllerRegistry name: PERIODIC, QOS,
  /// BACKLOG, DRIFT, COMPOSITE). "" keeps the legacy wiring — "PERIODIC"
  /// when realloc_period_s > 0, no control loop otherwise. The controller
  /// is consulted at every barrier of the merged window/decision grid
  /// with a FleetTelemetry snapshot and its ControlActions are applied to
  /// the live engines (see control/controller.h).
  std::string controller;
  /// Knob overrides for the named controller (e.g. QOS's "p99_scale").
  control::KnobMap controller_knobs;
  /// Chaos injector (ChaosRegistry name: SPOT_PREEMPTION, INSTANCE_DEATH,
  /// NET_DEGRADE, COMPOSITE). "" = no chaos — the run is bit-identical to
  /// a build without the chaos subsystem (tests/chaos_test.cc). The
  /// injector is armed on the run's schedule, its fault times become
  /// extra barriers, and its faults are applied on the driving thread
  /// with every shard quiesced, so chaos runs are bit-identical for every
  /// serve_threads value too.
  std::string chaos;
  /// Knob overrides for the named injector (e.g. "rate_per_hour").
  chaos::KnobMap chaos_knobs;
  /// Programmatic injector (e.g. MakeScriptedChaos); mutually exclusive
  /// with `chaos`. Shared so one injector can be compared across runs;
  /// Arm() fully resets it per run.
  std::shared_ptr<chaos::ChaosInjector> injector;
  /// Engine launch lag for mid-run reconfigurations, simulated seconds.
  double launch_lag_s = 1.0;
  /// Threads advancing the per-model shards concurrently between barriers
  /// (0 = hardware concurrency, 1 = serial). Any value produces
  /// bit-identical results — shards only meet at barriers, so the windowed
  /// metrics, totals and final allocations never depend on the thread
  /// count (asserted by tests/fleet_serve_test.cc).
  std::size_t serve_threads = 0;
  /// Scheduled arrival-rate changes.
  std::vector<FleetLoadShift> shifts;
  /// Planning knobs for the periodic re-plans.
  search::SearchOptions search;
  /// Admission control applied to every model's engine (bounded queue,
  /// static shed deadline). All-zero (the default) admits everything —
  /// bit-identical to a run without admission control. A SHED controller
  /// adjusts only the deadline knob per model on top of this base.
  serving::AdmissionOptions admission;
  /// When false, engines drop per-query latency samples after folding
  /// them into the running mean — RunResult::latencies_ms stays empty
  /// (cumulative p99 reads 0; windowed p99 is unaffected). The
  /// sustained-throughput path: resident memory stays bounded while
  /// streaming tens of millions of queries.
  bool keep_latencies = true;
  /// Observation hook called on the driving thread right after each
  /// window barrier snapshot, once per model in plan order: probe(model
  /// index, the model's just-closed window). Pure observer — it must not
  /// mutate the fleet — letting a harness watch steady-state behavior
  /// (e.g. perf_suite's allocation-per-window audit) without buffering
  /// every window itself. Null (the default) disables the hook and is
  /// bit-identical to a build without it.
  std::function<void(std::size_t, const serving::WindowedMetrics&)>
      window_probe;
  /// Telemetry plane (telemetry/telemetry.h): when set, every shard's
  /// engine is instrumented, the driving thread emits barrier spans, and
  /// the registry is snapshotted at every barrier into
  /// FleetServeResult::telemetry_samples. Must have been Create()d with
  /// exactly this fleet's model names (plan order) — kInvalidArgument
  /// otherwise. nullptr (the default) disables the plane entirely; a
  /// disabled run is bit-identical to a build without telemetry
  /// (tests/telemetry_test.cc). The Telemetry must outlive the call.
  telemetry::Telemetry* telemetry = nullptr;
};

/// One model's outcome of a fleet co-simulation.
struct FleetModelServe {
  std::string model;
  /// Cumulative engine totals at the horizon (includes every completion
  /// with finish <= duration_s; queued work is not credited).
  serving::RunResult totals;
  /// Windowed snapshots, one per window_s slice (shared boundaries across
  /// all models — they ride one clock).
  std::vector<serving::WindowedMetrics> windows;
  /// totals.served / duration_s.
  double qps = 0.0;
  /// Instances lost to chaos (preemption hard kills + abrupt deaths).
  std::size_t instances_lost = 0;
  /// Spot reclamation notices issued against this model.
  std::size_t preemption_notices = 0;
  /// Billed spend at the catalog's on-demand prices over the run, from
  /// the engine's billing census (pending launches bill while booting,
  /// retired instances stop billing at the kill — the same doctrine as
  /// cloud::PlanReconfiguration).
  double ondemand_cost_usd = 0.0;
  /// The same spend with the model's spot market discount applied when
  /// the injector quotes one (cloud::SpotCost); equals ondemand_cost_usd
  /// on on-demand models. "Equal effective cost" comparisons between
  /// chaos-aware and chaos-blind runs use this.
  double effective_cost_usd = 0.0;
};

/// One applied control-plane decision (FleetServeResult::control_log).
struct FleetControlEvent {
  Time time = 0.0;                  ///< barrier the action fired at
  control::ControlActionKind kind = control::ControlActionKind::kReallocate;
  std::string model;                ///< target serving name; "" = fleet-wide
  std::string reason;               ///< the controller's stated trigger
};

/// One applied chaos fault (FleetServeResult::chaos_log).
struct FleetChaosEvent {
  Time time = 0.0;  ///< when the fault landed (notice / kill / degrade)
  chaos::ChaosEventKind kind = chaos::ChaosEventKind::kInstanceDeath;
  std::string model;   ///< target serving name
  std::string detail;  ///< injector- or engine-provided specifics
};

/// The fleet co-simulation answer.
struct FleetServeResult {
  std::vector<FleetModelServe> models;  ///< plan order
  double duration_s = 0.0;
  double total_qps = 0.0;  ///< sum of per-model qps
  /// sum of arrival_scale_i * qps_i — the same demand weighting as
  /// FleetMeasurement::total_weighted_qps.
  double total_weighted_qps = 0.0;
  /// Allocator re-invocations that actually ran.
  std::size_t reallocations = 0;
  /// Monitor resets applied (DRIFT switching a model's planning mix to
  /// the live stream).
  std::size_t monitor_resets = 0;
  /// Chaos recoveries applied: target re-issues (kRespread) and per-model
  /// replans (kFailover).
  std::size_t respreads = 0;
  std::size_t failovers = 0;
  /// Shed-knob changes applied (kSetShed arms and restores both count).
  std::size_t shed_actions = 0;
  /// Budget-borrowing actions applied (kBorrowBudget): grants taken from
  /// donor headroom, and paybacks returning them.
  std::size_t borrows = 0;
  std::size_t paybacks = 0;
  /// Cumulative $/hr moved through the loan ledger: everything borrowed
  /// and everything repaid. Loans still outstanding at the horizon are
  /// force-repaid into these totals, so borrow == payback holds exactly
  /// at the end of every run (the conservation invariant, DESIGN.md
  /// Sec. 11; asserted by bench/fig18_chaos and tests/control_test.cc).
  double budget_borrowed_per_hour = 0.0;
  double budget_repaid_per_hour = 0.0;
  /// Instances lost to chaos across the fleet; sum over models.
  std::size_t instances_lost = 0;
  /// Spot reclamation notices issued across the fleet; sum over models.
  std::size_t preemption_notices = 0;
  /// Every applied ControlAction in barrier order. Deterministic: the
  /// same sequence for every serve_threads value (tests/control_test.cc).
  std::vector<FleetControlEvent> control_log;
  /// Every chaos fault in time order, notices and kills included. Same
  /// determinism guarantee; empty without an injector.
  std::vector<FleetChaosEvent> chaos_log;
  /// Per-model $/hr shares after the last reallocation (the initial plan's
  /// shares when none ran); plan order.
  std::vector<double> final_shares_per_hour;
  /// Fleet billed spend over the run: catalog on-demand prices, and the
  /// same with each model's spot discount applied (sums of the per-model
  /// fields). Zero-chaos runs report both equal.
  double ondemand_cost_usd = 0.0;
  double effective_cost_usd = 0.0;
  /// effective_cost_usd scaled to an hourly rate over duration_s.
  double effective_cost_per_hour = 0.0;
  /// One registry snapshot per ServeAll barrier, barrier order — filled
  /// only when FleetServeOptions::telemetry is set (empty otherwise; the
  /// rest of the result is bit-identical either way).
  std::vector<telemetry::BarrierSample> telemetry_samples;
  /// Barrier samples not stored because the sink's bound was hit.
  std::uint64_t telemetry_samples_dropped = 0;
};

/// A set of Kairos sessions planned and measured together.
class Fleet {
 public:
  /// Validates the request and builds one Kairos session per model.
  /// Errors: kInvalidArgument (empty model list, duplicate model,
  /// weight / arrival_scale <= 0, floor above ceiling), kNotFound
  /// (unknown model, planner, allocator or trace name, listing
  /// alternatives), kInfeasible (a STATIC share below its floor, or
  /// floors that together exceed the global budget).
  static StatusOr<Fleet> Create(const cloud::Catalog& catalog,
                                std::vector<FleetModelOptions> models,
                                FleetOptions options = {});

  std::size_t size() const { return sessions_.size(); }
  const std::vector<std::string>& model_names() const { return names_; }
  const FleetOptions& options() const { return options_; }

  /// The session serving `model`, or kNotFound.
  StatusOr<const Kairos*> Session(const std::string& model) const;

  /// This model's *prior* budget share in $/hr (the weight-proportional
  /// split), or kNotFound. The authoritative per-model share of a
  /// planning pass is FleetModelPlan::budget_per_hour — under MARGINAL
  /// the allocator re-splits on every PlanAll().
  StatusOr<double> BudgetFor(const std::string& model) const;

  /// Warms one model's monitor from a batch distribution (the model's own
  /// trace, when set, wins over `mix`).
  Status ObserveMix(const std::string& model,
                    const workload::BatchDistribution& mix);

  /// Warms every model's monitor — each from its own trace when set,
  /// from `mix` otherwise.
  void ObserveMixAll(const workload::BatchDistribution& mix);

  /// Splits the global budget with the configured allocator (MARGINAL
  /// probes candidate budgets through PlannerBackend::Probe, independent
  /// models concurrently), then plans every model inside its share with
  /// the configured planner backend, also concurrently.
  /// Evaluation-driven backends (KAIROS+, BRUTE-FORCE) measure real
  /// throughput against each model's monitored empirical mix.
  /// kFailedPrecondition when a monitor is empty.
  StatusOr<FleetPlan> PlanAll(
      const search::SearchOptions& search = {}) const;

  /// Deploys one model's chosen configuration with the Kairos distributor.
  StatusOr<Runtime> Deploy(const std::string& model,
                           const cloud::Config& config) const;

  /// Measures allowable throughput of every planned model, concurrently,
  /// under the model's own trace when set and `mix` otherwise. Each
  /// model's rate bracketing starts from half its planned expected_qps
  /// when available (otherwise `eval_options.rate_guess`). Compatibility
  /// path: each trial run is a batch shim over serving::Engine; ServeAll
  /// is the online, co-simulated view of the same fleet.
  StatusOr<FleetMeasurement> MeasureAll(
      const FleetPlan& plan, const workload::BatchDistribution& mix,
      serving::EvalOptions eval_options = {}) const;

  /// Serves every model of `plan` *online*, co-simulated on one shared
  /// window grid. Each model is a shard — its own engine on its own
  /// clock — and all shards advance concurrently (serve_threads workers)
  /// to each barrier of the merged window/decision grid, join, run the
  /// shared step on the driving thread, and repeat; shards share no
  /// mutable state between barriers, so the results are bit-identical
  /// for every thread count. Each model streams from a registry-built
  /// QuerySource — its named trace mix when set, PRODUCTION otherwise —
  /// at base_rate_qps * arrival_scale_i, Poisson arrivals;
  /// FleetLoadShifts rescale a model's stream mid-run.
  ///
  /// The shared barrier step is the control plane: window snapshots are
  /// taken, a FleetTelemetry snapshot is built (windowed metrics
  /// history, observed arrival rates, engine backlog depths, live
  /// batch-mix statistics), and the configured FleetController decides.
  /// kReallocate re-splits the global budget on the observed demand,
  /// re-plans every model inside its new share and reconfigures the live
  /// engines (launch lag modeled); kResetMonitor drops a model's stale
  /// planning-time mix and re-plans it against the live stream's sliding
  /// window from then on. The legacy wiring (controller == "",
  /// realloc_period_s > 0) routes through "PERIODIC" and reproduces the
  /// fixed-timer loop bit for bit (tests/fleet_serve_test.cc).
  ///
  /// Chaos: a named `chaos` injector (or a programmatic `injector`) is
  /// armed on the run's schedule; its precomputed fault times become
  /// extra barriers where spot reclamations, instance kills and fabric
  /// degradation land (chaos/injector.h). Losses surface in the chaos
  /// log, the chaos telemetry fields, and the billed-spend accounting
  /// (effective vs on-demand cost under the injector's spot market).
  ///
  /// Errors: kInvalidArgument (non-positive duration/rate/window/period,
  /// unknown shift model, shift scale <= 0, shift time outside the
  /// horizon, bad controller or chaos knobs, both `chaos` and `injector`
  /// set), kNotFound (plan model not in the fleet, unknown controller or
  /// chaos name), kFailedPrecondition (empty monitor when a controller is
  /// configured).
  StatusOr<FleetServeResult> ServeAll(const FleetPlan& plan,
                                      FleetServeOptions options = {}) const;

 private:
  Fleet(const cloud::Catalog& catalog, FleetOptions options);

  /// Index of `model` in names_, or npos.
  std::size_t IndexOf(const std::string& model) const;

  /// The mix model i observes / is measured under: its own trace when
  /// set, `fallback` otherwise.
  const workload::BatchDistribution& MixFor(std::size_t i,
                                            const workload::BatchDistribution&
                                                fallback) const;

  const cloud::Catalog& catalog_;
  FleetOptions options_;
  std::vector<std::string> names_;    ///< fleet-unique serving names
  std::vector<FleetModelOptions> model_options_;  ///< same order
  std::vector<double> budgets_;       ///< prior (weight-proportional) shares
  std::vector<double> floors_;        ///< effective per-model floors, $/hr
  std::vector<double> ceilings_;      ///< per-model ceilings, $/hr
  /// Per-model named-trace distributions; nullptr = caller-provided mix.
  std::vector<std::unique_ptr<workload::BatchDistribution>> mixes_;
  std::vector<Kairos> sessions_;      ///< one per model, same order
};

}  // namespace kairos::core

namespace kairos {
using core::Fleet;
}  // namespace kairos
