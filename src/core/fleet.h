// Multi-model fleet facade: several Kairos sessions — one per served
// model — under a single global $/hr budget. The fleet splits the budget
// across models by weight, plans each model's heterogeneous configuration
// with a registry-selected planner backend, and offers aggregate deploy /
// measure entry points. This generalizes the paper's co-design scenario
// (Fig. 14) to multi-tenant serving: the operator states one budget and a
// model mix, the fleet answers "what do I rent for each model?".
//
// All fallible entry points return Status / StatusOr (unknown model or
// planner names, infeasible budget shares) — nothing here throws.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/kairos.h"
#include "core/planner_backend.h"

namespace kairos::core {

/// One model served by the fleet.
struct FleetModelOptions {
  std::string model;   ///< Table-3 name ("RM2", "DIEN", ...)
  /// Relative budget share; the model receives weight / sum(weights) of
  /// the global budget. Must be positive.
  double weight = 1.0;
  /// Multiplier on the model's Table-3 QoS target.
  double qos_scale = 1.0;
  /// Sliding window of the model's query monitor.
  std::size_t monitor_warmup = 10000;
};

/// Fleet-wide knobs.
struct FleetOptions {
  /// Global hourly budget shared by every model.
  double budget_per_hour = 5.0;
  /// Planner backend (PlannerRegistry name) used by PlanAll().
  std::string planner = "KAIROS";
  std::uint64_t seed = 7;
  /// Deploy-time runtime knobs, shared by all sessions.
  RuntimeOptions runtime;
};

/// One model's slice of a fleet plan.
struct FleetModelPlan {
  std::string model;
  double budget_per_hour = 0.0;  ///< this model's share of the budget
  double qos_ms = 0.0;           ///< effective QoS target
  PlannerOutcome outcome;        ///< what the backend chose
  double cost_per_hour = 0.0;    ///< actual cost of the chosen config
};

/// The fleet-wide answer. Invariants (asserted by tests/api_test.cc):
/// sum of per-model budget shares <= global budget, and every chosen
/// configuration costs at most its model's share.
struct FleetPlan {
  std::vector<FleetModelPlan> models;
  double budget_per_hour = 0.0;     ///< the global budget
  double total_cost_per_hour = 0.0; ///< sum of chosen-config costs
};

/// One model's measured allowable throughput.
struct FleetModelMeasurement {
  std::string model;
  serving::EvalResult result;
};

/// Aggregate measurement over a FleetPlan.
struct FleetMeasurement {
  std::vector<FleetModelMeasurement> models;
  double total_qps = 0.0;  ///< sum of per-model allowable throughputs
};

/// A set of Kairos sessions planned and measured together.
class Fleet {
 public:
  /// Validates the request and builds one Kairos session per model with
  /// its weight-proportional budget share. Errors: kInvalidArgument
  /// (empty model list, duplicate model, weight <= 0, budget <= 0),
  /// kNotFound (unknown model or planner name, listing alternatives),
  /// kInfeasible (a share too small to rent one base instance).
  static StatusOr<Fleet> Create(const cloud::Catalog& catalog,
                                std::vector<FleetModelOptions> models,
                                FleetOptions options = {});

  std::size_t size() const { return sessions_.size(); }
  const std::vector<std::string>& model_names() const { return names_; }
  const FleetOptions& options() const { return options_; }

  /// The session serving `model`, or kNotFound.
  StatusOr<const Kairos*> Session(const std::string& model) const;

  /// This model's budget share in $/hr, or kNotFound.
  StatusOr<double> BudgetFor(const std::string& model) const;

  /// Warms one model's monitor from a batch distribution.
  Status ObserveMix(const std::string& model,
                    const workload::BatchDistribution& mix);

  /// Warms every model's monitor from the same distribution.
  void ObserveMixAll(const workload::BatchDistribution& mix);

  /// Plans every model under its budget share with the configured planner
  /// backend. Evaluation-driven backends (KAIROS+, BRUTE-FORCE) measure
  /// real throughput against each model's monitored empirical mix.
  /// kFailedPrecondition when a monitor is empty.
  StatusOr<FleetPlan> PlanAll(
      const search::SearchOptions& search = {}) const;

  /// Deploys one model's chosen configuration with the Kairos distributor.
  StatusOr<Runtime> Deploy(const std::string& model,
                           const cloud::Config& config) const;

  /// Measures allowable throughput of every planned model under `mix`.
  /// Each model's rate bracketing starts from half its planned
  /// expected_qps when available (otherwise `eval_options.rate_guess`).
  StatusOr<FleetMeasurement> MeasureAll(
      const FleetPlan& plan, const workload::BatchDistribution& mix,
      serving::EvalOptions eval_options = {}) const;

 private:
  Fleet(const cloud::Catalog& catalog, FleetOptions options);

  /// Index of `model` in names_, or npos.
  std::size_t IndexOf(const std::string& model) const;

  const cloud::Catalog& catalog_;
  FleetOptions options_;
  std::vector<std::string> names_;    ///< canonical model names
  std::vector<double> budgets_;       ///< per-model $/hr shares
  std::vector<Kairos> sessions_;      ///< one per model, same order
};

}  // namespace kairos::core

namespace kairos {
using core::Fleet;
}  // namespace kairos
