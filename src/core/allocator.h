// Budget-allocation strategies for the multi-model Fleet: given one global
// $/hr envelope and per-model floors/ceilings/priors, decide each model's
// share. Strategies are interchangeable objects selected by name from the
// AllocatorRegistry (same pattern as PolicyRegistry / PlannerRegistry):
//
//   * STATIC   — the weight-proportional split (PR 1 behavior);
//   * MARGINAL — iterative water-filling on marginal QPS per dollar,
//                driven by planner-backend probes (DESIGN.md Sec. 7).
//
// Allocators never talk to planners directly; the Fleet hands them an
// AllocationProblem whose `probe` callback answers "what throughput would
// model i plan at budget b?". Probes of independent models are issued
// concurrently through common/parallel.h.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace kairos::core {

/// One model's allocation constraints and priors.
struct AllocModel {
  std::string name;
  /// Prior / tie-breaker: when two models report equal marginal utility
  /// (and under STATIC, always), budget follows the weights. Must be > 0.
  double weight = 1.0;
  /// Demand multiplier: this model's share of fleet arrival traffic
  /// relative to the others. MARGINAL weighs a model's marginal QPS by
  /// this factor (a model serving twice the traffic earns twice the
  /// credit per planned QPS). Must be > 0.
  double arrival_scale = 1.0;
  /// Minimum feasible share in $/hr (the Fleet passes at least the price
  /// of the cheapest base instance). Every allocator grants >= floor.
  double floor = 0.0;
  /// Maximum share in $/hr; infinity = uncapped.
  double ceiling = std::numeric_limits<double>::infinity();
};

/// Planned throughput (QPS) of model `index` when granted `budget_per_hour`.
/// Called concurrently for different models; must be thread-safe.
using ProbeFn =
    std::function<StatusOr<double>(std::size_t index, double budget_per_hour)>;

/// Everything an allocator needs to split one budget.
struct AllocationProblem {
  double budget_per_hour = 0.0;
  std::vector<AllocModel> models;
  /// Consulted only by allocators whose NeedsProbes() is true.
  ProbeFn probe;
  /// Water-filling increment in $/hr; 0 = auto (budget-proportional).
  double step_per_hour = 0.0;
  /// Concurrent probe fan-out; 0 = hardware concurrency.
  std::size_t threads = 0;
};

/// A budget-splitting strategy. Implementations must uphold, for every
/// returned share vector s: floor_i <= s_i <= ceiling_i for all i, and
/// sum(s) <= budget_per_hour (+ float tolerance). Infeasible constraints
/// (sum of floors exceeding the budget) come back as kInfeasible naming
/// the binding model, never as a clamped-but-wrong answer.
class BudgetAllocator {
 public:
  virtual ~BudgetAllocator() = default;

  /// Canonical allocator name ("STATIC", "MARGINAL").
  virtual std::string Name() const = 0;

  /// True when Allocate() consults AllocationProblem::probe.
  virtual bool NeedsProbes() const { return false; }

  /// Splits the budget; result[i] is models[i]'s share in $/hr.
  virtual StatusOr<std::vector<double>> Allocate(
      const AllocationProblem& problem) const = 0;
};

/// Process-wide name -> allocator table, mirroring PlannerRegistry: static
/// registrars populate it, lookup is case-insensitive, unknown names come
/// back as kNotFound listing the alternatives.
class AllocatorRegistry {
 public:
  static AllocatorRegistry& Global();

  Status Register(std::string name, std::string summary,
                  std::function<std::unique_ptr<BudgetAllocator>()> make);

  /// Canonical allocator names, sorted alphabetically.
  std::vector<std::string> ListNames() const;

  bool Contains(const std::string& name) const;

  /// One-line description of an allocator.
  StatusOr<std::string> Summary(const std::string& name) const;

  /// Builds an allocator by (case-insensitive) name.
  StatusOr<std::unique_ptr<BudgetAllocator>> Build(
      const std::string& name) const;

 private:
  struct Entry {
    std::string summary;
    std::function<std::unique_ptr<BudgetAllocator>()> make;
  };
  std::map<std::string, Entry> entries_;  ///< keyed by canonical name
};

/// Static-initialization helper, same pattern as PlannerRegistrar.
class AllocatorRegistrar {
 public:
  AllocatorRegistrar(std::string name, std::string summary,
                     std::function<std::unique_ptr<BudgetAllocator>()> make) {
    const Status status = AllocatorRegistry::Global().Register(
        std::move(name), std::move(summary), std::move(make));
    if (!status.ok()) {
      std::fprintf(stderr, "AllocatorRegistrar: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace kairos::core

namespace kairos {
using core::AllocatorRegistry;
using core::BudgetAllocator;
}  // namespace kairos
