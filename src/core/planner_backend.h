// Planner strategy interface: one-shot Kairos, evaluation-driven Kairos+,
// and the homogeneous / brute-force baselines are interchangeable objects
// selected by name from the PlannerRegistry, so benches, examples, and the
// Fleet facade drive "pick a configuration under this budget" through one
// surface regardless of which algorithm does the picking.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/planner.h"
#include "search/search.h"
#include "workload/monitor.h"

namespace kairos::core {

/// One planning request. Every backend needs the monitored workload; the
/// evaluation-driven backends additionally need `eval` (and honor
/// `search.max_evals` / `search.target_qps`).
struct PlanRequest {
  const workload::QueryMonitor* monitor = nullptr;
  /// Real throughput measurement of a configuration (queries/sec). Only
  /// consulted when the backend's NeedsEvaluations() is true.
  search::EvalFn eval;
  search::SearchOptions search;
};

/// What a backend decided, in a shape all backends share.
struct PlannerOutcome {
  cloud::Config config;        ///< the chosen configuration
  double expected_qps = 0.0;   ///< UB estimate or measured qps
  std::size_t evaluations = 0; ///< real evaluations spent (0 for one-shot)
  /// Full one-shot diagnostics (ranking, selection rule) when the backend
  /// produced them; empty for baselines that do not rank upper bounds.
  std::optional<Plan> plan;
};

/// A configuration-planning strategy bound to nothing: all problem state
/// arrives through (PlannerContext, PlanRequest).
class PlannerBackend {
 public:
  virtual ~PlannerBackend() = default;

  /// Canonical backend name ("KAIROS", "KAIROS+", ...).
  virtual std::string Name() const = 0;

  /// True when Plan() consults PlanRequest::eval.
  virtual bool NeedsEvaluations() const { return false; }

  /// Plans one configuration. Returns kInvalidArgument for a malformed
  /// context, kFailedPrecondition when a required eval fn is missing, and
  /// kInfeasible when no configuration fits the budget.
  virtual StatusOr<PlannerOutcome> Plan(const PlannerContext& ctx,
                                        const PlanRequest& request) const = 0;

  /// Incremental budget probe: estimates what this backend would achieve
  /// at ctx.budget_per_hour, cheaply enough that the Fleet's MARGINAL
  /// allocator can call it once per (model, budget increment). The base
  /// implementation runs the one-shot upper-bound ranking — analytic, no
  /// real evaluations — regardless of NeedsEvaluations(), and never
  /// consults PlanRequest::eval. Same error contract as Plan() minus the
  /// missing-eval case.
  virtual StatusOr<PlannerOutcome> Probe(const PlannerContext& ctx,
                                         const PlanRequest& request) const;
};

/// Process-wide name -> backend table, mirroring PolicyRegistry: static
/// registrars populate it, lookup is case-insensitive, unknown names come
/// back as kNotFound listing the alternatives.
class PlannerRegistry {
 public:
  static PlannerRegistry& Global();

  Status Register(std::string name, std::string summary,
                  std::function<std::unique_ptr<PlannerBackend>()> make);

  /// Canonical backend names, sorted alphabetically.
  std::vector<std::string> ListNames() const;

  bool Contains(const std::string& name) const;

  /// One-line description of a backend.
  StatusOr<std::string> Summary(const std::string& name) const;

  /// Builds a backend by (case-insensitive) name.
  StatusOr<std::unique_ptr<PlannerBackend>> Build(
      const std::string& name) const;

 private:
  struct Entry {
    std::string summary;
    std::function<std::unique_ptr<PlannerBackend>()> make;
  };
  std::map<std::string, Entry> entries_;  ///< keyed by canonical name
};

/// Static-initialization helper, same pattern as PolicyRegistrar.
class PlannerRegistrar {
 public:
  PlannerRegistrar(std::string name, std::string summary,
                   std::function<std::unique_ptr<PlannerBackend>()> make) {
    const Status status = PlannerRegistry::Global().Register(
        std::move(name), std::move(summary), std::move(make));
    if (!status.ok()) {
      std::fprintf(stderr, "PlannerRegistrar: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace kairos::core

namespace kairos {
using core::PlannerBackend;
using core::PlannerRegistry;
}  // namespace kairos
