#include "core/runtime.h"

namespace kairos::core {

Runtime::Runtime(const cloud::Catalog& catalog, cloud::Config config,
                 const latency::LatencyModel& truth, double qos_ms,
                 RuntimeOptions options)
    : catalog_(catalog),
      config_(std::move(config)),
      truth_(truth),
      qos_ms_(qos_ms),
      options_(options) {}

std::unique_ptr<serving::ServingSystem> Runtime::MakeSystem() const {
  serving::SystemSpec spec;
  spec.catalog = &catalog_;
  spec.config = config_;
  spec.truth = &truth_;
  spec.qos_ms = qos_ms_;
  return std::make_unique<serving::ServingSystem>(
      spec, std::make_unique<policy::KairosPolicy>(options_.policy),
      options_.predictor, options_.run);
}

serving::RunResult Runtime::Serve(const workload::Trace& trace) const {
  return MakeSystem()->Run(trace);
}

StatusOr<std::unique_ptr<serving::Engine>> Runtime::MakeEngine(
    serving::EngineOptions engine_options,
    sim::Simulator* shared_clock) const {
  serving::SystemSpec spec;
  spec.catalog = &catalog_;
  spec.config = config_;
  spec.truth = &truth_;
  spec.qos_ms = qos_ms_;
  return serving::Engine::Create(
      spec, std::make_unique<policy::KairosPolicy>(options_.policy),
      options_.predictor, engine_options, shared_clock);
}

serving::EvalResult Runtime::MeasureThroughput(
    const workload::BatchDistribution& mix,
    const serving::EvalOptions& eval_options) const {
  return serving::AllowableThroughput([this] { return MakeSystem(); }, mix,
                                      qos_ms_, eval_options);
}

}  // namespace kairos::core
