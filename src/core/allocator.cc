#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "common/strings.h"
#include "policy/registry.h"

namespace kairos::core {
namespace {

constexpr double kEps = 1e-9;

/// Constraint validation shared by every allocator.
Status ValidateProblem(const AllocationProblem& problem) {
  if (problem.models.empty()) {
    return Status::InvalidArgument("allocation problem needs >= 1 model");
  }
  if (problem.budget_per_hour <= 0.0) {
    return Status::InvalidArgument("allocation budget must be positive, got " +
                                   FormatDollarsPerHour(problem.budget_per_hour));
  }
  double floor_sum = 0.0;
  for (const AllocModel& m : problem.models) {
    if (m.weight <= 0.0) {
      return Status::InvalidArgument("model " + m.name +
                                     ": weight must be positive");
    }
    if (m.arrival_scale <= 0.0) {
      return Status::InvalidArgument("model " + m.name +
                                     ": arrival_scale must be positive");
    }
    if (m.floor < 0.0 || !(m.floor <= m.ceiling)) {
      return Status::InvalidArgument(
          "model " + m.name + ": needs 0 <= floor <= ceiling, got floor " +
          FormatDollarsPerHour(m.floor) + ", ceiling " +
          FormatDollarsPerHour(m.ceiling));
    }
    floor_sum += m.floor;
  }
  if (floor_sum > problem.budget_per_hour + kEps) {
    return Status::Infeasible(
        "per-model budget floors sum to " + FormatDollarsPerHour(floor_sum) +
        ", more than the global budget " +
        FormatDollarsPerHour(problem.budget_per_hour) +
        "; raise the budget or drop a model");
  }
  return Status::Ok();
}

/// The PR-1 weight-proportional split. A share below its model's floor is
/// an error (the historical Fleet behavior: raise the budget or the
/// weight); a share above its ceiling is clamped and the excess left
/// unspent, keeping sum(shares) <= budget.
class StaticAllocator final : public BudgetAllocator {
 public:
  std::string Name() const override { return "STATIC"; }

  StatusOr<std::vector<double>> Allocate(
      const AllocationProblem& problem) const override {
    if (Status s = ValidateProblem(problem); !s.ok()) return s;
    double total_weight = 0.0;
    for (const AllocModel& m : problem.models) total_weight += m.weight;

    std::vector<double> shares;
    shares.reserve(problem.models.size());
    for (const AllocModel& m : problem.models) {
      const double share =
          problem.budget_per_hour * m.weight / total_weight;
      if (share + kEps < m.floor) {
        return Status::Infeasible(
            "model " + m.name + ": budget share " +
            FormatDollarsPerHour(share) + " is below its floor " +
            FormatDollarsPerHour(m.floor) +
            "; raise the global budget or its weight");
      }
      shares.push_back(std::min(share, m.ceiling));
    }
    return shares;
  }
};

/// Marginal-utility water-filling (DESIGN.md Sec. 7): start every model at
/// its floor, then repeatedly grant one budget increment to the model whose
/// probe reports the highest arrival-scaled marginal QPS per dollar, until
/// the budget is spent, every model is capped, or all marginals vanish.
/// Probes at a candidate's next budget level are issued concurrently and
/// memoized, so one round costs at most one probe per model.
class MarginalAllocator final : public BudgetAllocator {
 public:
  std::string Name() const override { return "MARGINAL"; }
  bool NeedsProbes() const override { return true; }

  StatusOr<std::vector<double>> Allocate(
      const AllocationProblem& problem) const override {
    if (Status s = ValidateProblem(problem); !s.ok()) return s;
    if (problem.probe == nullptr) {
      return Status::FailedPrecondition(
          "allocator MARGINAL needs AllocationProblem::probe");
    }
    const std::size_t n = problem.models.size();

    std::vector<double> shares(n);
    double remaining = problem.budget_per_hour;
    for (std::size_t i = 0; i < n; ++i) {
      // Floors may be zero (a model the operator is willing to starve),
      // but a zero share plans nothing — every model starts at its floor.
      shares[i] = problem.models[i].floor;
      remaining -= shares[i];
    }
    remaining = std::max(0.0, remaining);

    // Auto step: fine enough for ~32 grants of the spendable budget, but
    // never below a tenth of a cent to keep probe counts bounded.
    const double step = problem.step_per_hour > 0.0
                            ? problem.step_per_hour
                            : std::max(remaining / 32.0, 0.001);

    // Memoized probes keyed by (model, budget in millicents) — losers of a
    // round keep their cached candidate probe for the next round.
    std::map<std::pair<std::size_t, long long>, double> memo;
    const auto key = [](std::size_t i, double budget) {
      return std::make_pair(i, static_cast<long long>(std::llround(budget * 1e5)));
    };
    Status probe_error = Status::Ok();
    std::mutex memo_mutex;
    // One pool for the whole allocation: the grant loop calls probe_all
    // dozens of times, so per-round thread creation would rival the
    // analytic probes themselves. Single-worker problems stay inline.
    const std::size_t workers = ParallelismFor(problem.threads, n);
    std::optional<ThreadPool> pool;
    if (workers > 1) pool.emplace(workers);
    // Probes `budgets[i]` for every listed model concurrently, through the
    // memo. On any probe failure, records the first error and stops
    // granting.
    const auto probe_all = [&](const std::vector<std::size_t>& models,
                               const std::vector<double>& budgets) {
      std::vector<std::size_t> misses;
      for (std::size_t j = 0; j < models.size(); ++j) {
        std::unique_lock<std::mutex> lock(memo_mutex);
        if (memo.find(key(models[j], budgets[j])) == memo.end()) {
          misses.push_back(j);
        }
      }
      const auto probe_one = [&](std::size_t k) {
        const std::size_t i = models[misses[k]];
        const double budget = budgets[misses[k]];
        auto qps = problem.probe(i, budget);
        std::unique_lock<std::mutex> lock(memo_mutex);
        if (!qps.ok()) {
          if (probe_error.ok()) {
            probe_error = Status(qps.status().code(),
                                 "model " + problem.models[i].name +
                                     ": probe at " +
                                     FormatDollarsPerHour(budget) + ": " +
                                     qps.status().message());
          }
          return;
        }
        memo[key(i, budget)] = *qps;
      };
      if (!pool.has_value()) {
        for (std::size_t k = 0; k < misses.size(); ++k) probe_one(k);
      } else {
        for (std::size_t k = 0; k < misses.size(); ++k) {
          pool->Submit([&probe_one, k] { probe_one(k); });
        }
        pool->Wait();
      }
      return probe_error;
    };
    const auto probed = [&](std::size_t i, double budget) {
      return memo.at(key(i, budget));
    };

    // Baseline probes at the floors.
    {
      std::vector<std::size_t> all(n);
      std::vector<double> floors(n);
      for (std::size_t i = 0; i < n; ++i) {
        all[i] = i;
        floors[i] = shares[i];
      }
      if (Status s = probe_all(all, floors); !s.ok()) return s;
    }

    std::vector<double> qps(n);
    for (std::size_t i = 0; i < n; ++i) qps[i] = probed(i, shares[i]);

    while (remaining > kEps) {
      const double grant = std::min(step, remaining);
      // Candidates: models whose ceiling admits another grant.
      std::vector<std::size_t> candidates;
      std::vector<double> budgets;
      for (std::size_t i = 0; i < n; ++i) {
        if (shares[i] + grant <= problem.models[i].ceiling + kEps) {
          candidates.push_back(i);
          budgets.push_back(shares[i] + grant);
        }
      }
      if (candidates.empty()) break;  // everyone capped; leave the rest unspent
      if (Status s = probe_all(candidates, budgets); !s.ok()) return s;

      // Highest arrival-scaled marginal QPS wins the grant; the weight
      // prior breaks ties (then the listing order, for determinism).
      std::size_t best = candidates.size();
      double best_gain = 0.0;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        const std::size_t i = candidates[j];
        const double gain = problem.models[i].arrival_scale *
                            (probed(i, budgets[j]) - qps[i]);
        const bool better =
            best == candidates.size() || gain > best_gain + kEps ||
            (gain > best_gain - kEps && problem.models[i].weight >
                                            problem.models[candidates[best]].weight);
        if (better) {
          best = j;
          best_gain = gain;
        }
      }
      if (best_gain <= kEps) break;  // every model plateaued; stop spending
      const std::size_t i = candidates[best];
      shares[i] += grant;
      qps[i] = probed(i, shares[i]);
      remaining -= grant;
    }

    // Never do worse than the prior: when the weight-proportional split is
    // itself feasible and its probed total beats the water-filled one,
    // return it instead (probes are estimates; the prior encodes operator
    // intent).
    auto static_shares = StaticAllocator().Allocate(problem);
    if (static_shares.ok()) {
      std::vector<std::size_t> all(n);
      std::iota(all.begin(), all.end(), 0);
      if (Status s = probe_all(all, *static_shares); s.ok()) {
        double ours = 0.0;
        double prior = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          ours += problem.models[i].arrival_scale * qps[i];
          prior += problem.models[i].arrival_scale *
                   probed(i, (*static_shares)[i]);
        }
        if (prior > ours + kEps) return *std::move(static_shares);
      } else {
        return s;
      }
    }
    return shares;
  }
};

const AllocatorRegistrar kStatic(
    "STATIC", "weight-proportional split of the global budget",
    [] { return std::make_unique<StaticAllocator>(); });
const AllocatorRegistrar kMarginal(
    "MARGINAL",
    "water-filling on probed marginal QPS per dollar (floors/ceilings, "
    "weight prior as tie-breaker)",
    [] { return std::make_unique<MarginalAllocator>(); });

}  // namespace

AllocatorRegistry& AllocatorRegistry::Global() {
  static AllocatorRegistry* registry = new AllocatorRegistry();
  return *registry;
}

Status AllocatorRegistry::Register(
    std::string name, std::string summary,
    std::function<std::unique_ptr<BudgetAllocator>()> make) {
  const std::string canonical = policy::CanonicalSchemeName(name);
  if (canonical.empty()) {
    return Status::InvalidArgument("allocator registration with empty name");
  }
  if (make == nullptr) {
    return Status::InvalidArgument("allocator " + canonical +
                                   " registered without a factory");
  }
  const auto [it, inserted] = entries_.emplace(
      canonical, Entry{std::move(summary), std::move(make)});
  if (!inserted) {
    return Status::InvalidArgument("allocator " + it->first +
                                   " registered twice");
  }
  return Status::Ok();
}

std::vector<std::string> AllocatorRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool AllocatorRegistry::Contains(const std::string& name) const {
  return entries_.count(policy::CanonicalSchemeName(name)) > 0;
}

StatusOr<std::string> AllocatorRegistry::Summary(const std::string& name) const {
  const auto it = entries_.find(policy::CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown allocator \"" + name +
                            "\"; registered allocators: " +
                            JoinComma(ListNames()));
  }
  return it->second.summary;
}

StatusOr<std::unique_ptr<BudgetAllocator>> AllocatorRegistry::Build(
    const std::string& name) const {
  const auto it = entries_.find(policy::CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown allocator \"" + name +
                            "\"; registered allocators: " +
                            JoinComma(ListNames()));
  }
  return it->second.make();
}

}  // namespace kairos::core
