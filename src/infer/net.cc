#include "infer/net.h"

#include <stdexcept>

#include "common/rng.h"

namespace kairos::infer {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       std::uint64_t seed)
    : weights_(in, out), bias_(out), act_(act) {
  Rng rng(seed);
  const double scale = 1.0 / std::max<std::size_t>(1, in);
  for (float& v : weights_.data()) {
    v = static_cast<float>(rng.Normal(0.0, scale));
  }
  for (float& v : bias_) v = static_cast<float>(rng.Normal(0.0, 0.01));
}

void DenseLayer::Forward(const Tensor& x, Tensor& out,
                         ThreadPool& pool) const {
  out = Tensor(x.rows(), out_features());
  Gemm(x, weights_, out, pool);
  AddBiasActivate(out, bias_, act_);
}

Mlp::Mlp(const std::vector<std::size_t>& widths, Activation final_act,
         std::uint64_t seed) {
  if (widths.size() < 2) throw std::invalid_argument("Mlp: need >= 2 widths");
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    const bool last = (i + 2 == widths.size());
    layers_.emplace_back(widths[i], widths[i + 1],
                         last ? final_act : Activation::kRelu,
                         seed + 0x9E37 * (i + 1));
  }
}

std::size_t Mlp::in_features() const { return layers_.front().in_features(); }
std::size_t Mlp::out_features() const {
  return layers_.back().out_features();
}

Tensor Mlp::Forward(const Tensor& x, ThreadPool& pool) const {
  Tensor cur = x;
  Tensor next;
  for (const DenseLayer& layer : layers_) {
    layer.Forward(cur, next, pool);
    cur = std::move(next);
  }
  return cur;
}

}  // namespace kairos::infer
