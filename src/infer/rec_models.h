// Miniature versions of the five Table-3 recommendation models, built from
// real embedding gathers and MLP towers. Their purpose in this repo is
// evidential: executing them shows that (a) latency grows affinely with
// batch size (Pearson > 0.99, the Sec. 5.1 observation every Kairos
// decision rests on) and (b) the relative CPU cost structure assumed by the
// latency zoo (embedding-heavy RM2 vs. compute-heavy MT-WND) is real.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "infer/net.h"
#include "infer/ops.h"
#include "infer/thread_pool.h"

namespace kairos::infer {

/// A runnable recommendation model instance.
class RecModel {
 public:
  virtual ~RecModel() = default;
  virtual std::string Name() const = 0;

  /// Runs one query of `batch` samples; returns per-sample scores. Inputs
  /// are generated deterministically from `seed` (content is irrelevant to
  /// latency; recommendation inference is data-independent).
  virtual Tensor Infer(std::size_t batch, ThreadPool& pool,
                       std::uint64_t seed = 0) const = 0;
};

/// Builds a miniature model by Table-3 name (NCF, RM2, WND, MT-WND, DIEN).
/// Throws std::out_of_range for unknown names.
std::unique_ptr<RecModel> BuildRecModel(const std::string& name);

/// Measures wall-clock latency (ms) of one inference at each batch size.
/// `repeats` > 1 returns the minimum (noise floor) per batch.
std::vector<double> MeasureLatencyMs(const RecModel& model,
                                     const std::vector<std::size_t>& batches,
                                     ThreadPool& pool, int repeats = 3);

}  // namespace kairos::infer
