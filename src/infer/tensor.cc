#include "infer/tensor.h"

namespace kairos::infer {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

}  // namespace kairos::infer
