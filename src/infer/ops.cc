#include "infer/ops.h"

#include <cmath>
#include <stdexcept>

#include "common/rng.h"

namespace kairos::infer {

void Gemm(const Tensor& x, const Tensor& w, Tensor& out, ThreadPool& pool) {
  if (x.cols() != w.rows() || out.rows() != x.rows() ||
      out.cols() != w.cols()) {
    throw std::invalid_argument("Gemm: dimension mismatch");
  }
  const std::size_t in = x.cols();
  const std::size_t width = w.cols();
  pool.ParallelFor(x.rows(), [&](std::size_t r) {
    float* out_row = out.row(r);
    for (std::size_t c = 0; c < width; ++c) out_row[c] = 0.0f;
    const float* x_row = x.row(r);
    for (std::size_t k = 0; k < in; ++k) {
      const float xv = x_row[k];
      if (xv == 0.0f) continue;
      const float* w_row = w.row(k);
      for (std::size_t c = 0; c < width; ++c) out_row[c] += xv * w_row[c];
    }
  });
}

void AddBiasActivate(Tensor& out, const std::vector<float>& bias,
                     Activation act) {
  if (bias.size() != out.cols()) {
    throw std::invalid_argument("AddBiasActivate: bias width mismatch");
  }
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float* row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) {
      float v = row[c] + bias[c];
      switch (act) {
        case Activation::kNone:
          break;
        case Activation::kRelu:
          v = v > 0.0f ? v : 0.0f;
          break;
        case Activation::kSigmoid:
          v = 1.0f / (1.0f + std::exp(-v));
          break;
      }
      row[c] = v;
    }
  }
}

EmbeddingTable::EmbeddingTable(std::size_t rows, std::size_t dim,
                               std::uint64_t seed)
    : table_(rows, dim) {
  Rng rng(seed);
  for (float& v : table_.data()) {
    v = static_cast<float>(rng.Normal(0.0, 0.1));
  }
}

void EmbeddingTable::GatherPooled(const std::vector<std::uint32_t>& indices,
                                  std::size_t lookups_per_sample, Tensor& out,
                                  ThreadPool& pool) const {
  if (out.cols() != dim() ||
      indices.size() != out.rows() * lookups_per_sample) {
    throw std::invalid_argument("GatherPooled: shape mismatch");
  }
  pool.ParallelFor(out.rows(), [&](std::size_t r) {
    float* out_row = out.row(r);
    for (std::size_t c = 0; c < dim(); ++c) out_row[c] = 0.0f;
    for (std::size_t l = 0; l < lookups_per_sample; ++l) {
      const std::uint32_t idx =
          indices[r * lookups_per_sample + l] % static_cast<std::uint32_t>(rows());
      const float* src = table_.row(idx);
      for (std::size_t c = 0; c < dim(); ++c) out_row[c] += src[c];
    }
  });
}

void ConcatColumns(const std::vector<const Tensor*>& parts, Tensor& out) {
  if (parts.empty()) throw std::invalid_argument("ConcatColumns: no parts");
  std::size_t total = 0;
  for (const Tensor* p : parts) {
    if (p->rows() != out.rows()) {
      throw std::invalid_argument("ConcatColumns: row mismatch");
    }
    total += p->cols();
  }
  if (total != out.cols()) {
    throw std::invalid_argument("ConcatColumns: column mismatch");
  }
  for (std::size_t r = 0; r < out.rows(); ++r) {
    float* dst = out.row(r);
    for (const Tensor* p : parts) {
      const float* src = p->row(r);
      for (std::size_t c = 0; c < p->cols(); ++c) *dst++ = src[c];
    }
  }
}

}  // namespace kairos::infer
