// MLP building block: a stack of dense layers with activations, the "tower"
// component shared by every recommendation model in the zoo.
#pragma once

#include <cstdint>
#include <vector>

#include "infer/ops.h"
#include "infer/tensor.h"
#include "infer/thread_pool.h"

namespace kairos::infer {

/// One dense layer: y = act(x W + b).
class DenseLayer {
 public:
  /// Weights are deterministic pseudo-random from `seed`.
  DenseLayer(std::size_t in, std::size_t out, Activation act,
             std::uint64_t seed);

  std::size_t in_features() const { return weights_.rows(); }
  std::size_t out_features() const { return weights_.cols(); }

  /// Computes the layer into `out` (resized as needed).
  void Forward(const Tensor& x, Tensor& out, ThreadPool& pool) const;

 private:
  Tensor weights_;
  std::vector<float> bias_;
  Activation act_;
};

/// A feed-forward stack of dense layers.
class Mlp {
 public:
  /// `widths` = {in, h1, ..., out}; hidden layers ReLU, final layer `final`.
  Mlp(const std::vector<std::size_t>& widths, Activation final_act,
      std::uint64_t seed);

  std::size_t in_features() const;
  std::size_t out_features() const;

  /// Full forward pass; returns the final activation tensor.
  Tensor Forward(const Tensor& x, ThreadPool& pool) const;

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace kairos::infer
