// Compute kernels for the miniature inference engine: GEMM, bias +
// activation, embedding gather, and feature interaction — the operator set
// recommendation models are built from (Gupta et al., HPCA'20).
#pragma once

#include <cstdint>
#include <vector>

#include "infer/tensor.h"
#include "infer/thread_pool.h"

namespace kairos::infer {

/// out = x * w  (x: [batch, in], w: [in, out_features]); rows of `x` are
/// parallelized over the pool.
void Gemm(const Tensor& x, const Tensor& w, Tensor& out, ThreadPool& pool);

/// Activation functions for MLP layers.
enum class Activation { kNone, kRelu, kSigmoid };

/// In-place out[r][c] = act(out[r][c] + bias[c]).
void AddBiasActivate(Tensor& out, const std::vector<float>& bias,
                     Activation act);

/// Embedding table: rows of dense vectors gathered (and pooled) by index.
class EmbeddingTable {
 public:
  /// Deterministically pseudo-random contents from `seed`.
  EmbeddingTable(std::size_t rows, std::size_t dim, std::uint64_t seed);

  std::size_t rows() const { return table_.rows(); }
  std::size_t dim() const { return table_.cols(); }

  /// Sum-pools `lookups_per_sample` gathered rows into out[sample]; indices
  /// are consumed per sample (size = batch * lookups_per_sample).
  void GatherPooled(const std::vector<std::uint32_t>& indices,
                    std::size_t lookups_per_sample, Tensor& out,
                    ThreadPool& pool) const;

 private:
  Tensor table_;
};

/// Concatenates feature tensors along columns into `out`.
void ConcatColumns(const std::vector<const Tensor*>& parts, Tensor& out);

}  // namespace kairos::infer
