#include "infer/rec_models.h"

#include <chrono>
#include <stdexcept>

#include "common/rng.h"

namespace kairos::infer {
namespace {

// Shared skeleton: sparse features -> pooled embeddings, dense features ->
// bottom MLP, concat -> one or more top towers. The per-model constants
// below shape the compute profile (embedding-heavy vs. tower-heavy).
struct ModelShape {
  std::size_t dense_features;
  std::size_t embedding_tables;
  std::size_t embedding_rows;
  std::size_t embedding_dim;
  std::size_t lookups_per_sample;
  std::vector<std::size_t> bottom_widths;  // excluding input width
  std::vector<std::size_t> tower_widths;   // excluding input width
  std::size_t towers;                      // parallel top towers (MT-WND > 1)
};

class SkeletonModel final : public RecModel {
 public:
  SkeletonModel(std::string name, const ModelShape& shape)
      : name_(std::move(name)), shape_(shape) {
    std::vector<std::size_t> bottom = {shape.dense_features};
    bottom.insert(bottom.end(), shape.bottom_widths.begin(),
                  shape.bottom_widths.end());
    bottom_ = std::make_unique<Mlp>(bottom, Activation::kRelu, 0xB0770'1);

    const std::size_t concat_width =
        bottom_->out_features() + shape.embedding_tables * shape.embedding_dim;
    std::vector<std::size_t> tower = {concat_width};
    tower.insert(tower.end(), shape.tower_widths.begin(),
                 shape.tower_widths.end());
    for (std::size_t t = 0; t < shape.towers; ++t) {
      towers_.push_back(
          std::make_unique<Mlp>(tower, Activation::kSigmoid, 0x70B'1 + t));
    }
    for (std::size_t e = 0; e < shape.embedding_tables; ++e) {
      tables_.push_back(std::make_unique<EmbeddingTable>(
          shape.embedding_rows, shape.embedding_dim, 0xE'B + e));
    }
  }

  std::string Name() const override { return name_; }

  Tensor Infer(std::size_t batch, ThreadPool& pool,
               std::uint64_t seed) const override {
    if (batch == 0) throw std::invalid_argument("Infer: batch == 0");
    Rng rng(seed ^ 0xFACADE);

    // Dense inputs.
    Tensor dense(batch, shape_.dense_features);
    for (float& v : dense.data()) {
      v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    const Tensor bottom_out = bottom_->Forward(dense, pool);

    // Sparse inputs -> pooled embeddings per table.
    std::vector<Tensor> pooled(tables_.size());
    std::vector<std::uint32_t> indices(batch * shape_.lookups_per_sample);
    for (std::size_t e = 0; e < tables_.size(); ++e) {
      for (std::uint32_t& idx : indices) {
        idx = static_cast<std::uint32_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(
                                  shape_.embedding_rows - 1)));
      }
      pooled[e] = Tensor(batch, shape_.embedding_dim);
      tables_[e]->GatherPooled(indices, shape_.lookups_per_sample, pooled[e],
                               pool);
    }

    // Concatenate features and run the tower(s); multiple towers average
    // (multi-task heads, MT-WND style).
    std::vector<const Tensor*> parts = {&bottom_out};
    for (const Tensor& p : pooled) parts.push_back(&p);
    std::size_t width = bottom_out.cols();
    for (const Tensor& p : pooled) width += p.cols();
    Tensor features(batch, width);
    ConcatColumns(parts, features);

    Tensor scores(batch, towers_.front()->out_features(), 0.0f);
    for (const auto& tower : towers_) {
      const Tensor out = tower->Forward(features, pool);
      for (std::size_t i = 0; i < scores.size(); ++i) {
        scores.data()[i] += out.data()[i];
      }
    }
    const float inv = 1.0f / static_cast<float>(towers_.size());
    for (float& v : scores.data()) v *= inv;
    return scores;
  }

 private:
  std::string name_;
  ModelShape shape_;
  std::unique_ptr<Mlp> bottom_;
  std::vector<std::unique_ptr<Mlp>> towers_;
  std::vector<std::unique_ptr<EmbeddingTable>> tables_;
};

}  // namespace

std::unique_ptr<RecModel> BuildRecModel(const std::string& name) {
  // Shapes are scaled-down analogues of the published architectures: RM2
  // embedding-dominated, MT-WND tower-dominated, NCF tiny, WND/DIEN between.
  if (name == "NCF") {
    return std::make_unique<SkeletonModel>(
        name, ModelShape{8, 2, 2000, 8, 1, {16, 8}, {16, 1}, 1});
  }
  if (name == "RM2") {
    return std::make_unique<SkeletonModel>(
        name, ModelShape{32, 8, 20000, 32, 20, {64, 32}, {64, 1}, 1});
  }
  if (name == "WND") {
    return std::make_unique<SkeletonModel>(
        name, ModelShape{24, 3, 8000, 16, 2, {64, 32}, {64, 32, 1}, 1});
  }
  if (name == "MT-WND") {
    return std::make_unique<SkeletonModel>(
        name, ModelShape{24, 3, 8000, 16, 2, {64, 32}, {64, 32, 1}, 4});
  }
  if (name == "DIEN") {
    return std::make_unique<SkeletonModel>(
        name, ModelShape{24, 4, 10000, 24, 8, {64, 48}, {96, 48, 1}, 1});
  }
  throw std::out_of_range("BuildRecModel: unknown model " + name);
}

std::vector<double> MeasureLatencyMs(const RecModel& model,
                                     const std::vector<std::size_t>& batches,
                                     ThreadPool& pool, int repeats) {
  std::vector<double> out;
  out.reserve(batches.size());
  for (const std::size_t batch : batches) {
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      const auto start = std::chrono::steady_clock::now();
      (void)model.Infer(batch, pool, static_cast<std::uint64_t>(r));
      const auto end = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      best = (r == 0) ? ms : std::min(best, ms);
    }
    out.push_back(best);
  }
  return out;
}

}  // namespace kairos::infer
