// Fixed-size thread pool with a blocking ParallelFor. The paper's CPU
// serving uses all cores of an instance for one query at a time (Sec. 6);
// ParallelFor over batch rows is exactly that execution model.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace kairos::infer {

/// Simple work-queue thread pool.
class ThreadPool {
 public:
  /// `threads` == 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n), splitting contiguous index ranges across
  /// the pool; blocks until all iterations finish. Executes inline when the
  /// pool has a single thread or n is tiny.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void Submit(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace kairos::infer
