// Minimal dense float tensor for the miniature inference engine. The engine
// exists to demonstrate that the latency surfaces the simulator consumes
// arise from real recommendation-model computation (embedding gathers +
// MLP towers) — see DESIGN.md Sec. 1.
#pragma once

#include <cstddef>
#include <vector>

namespace kairos::infer {

/// Row-major 2-D float tensor (rows = batch, cols = features).
class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, float fill = 0.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  float& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace kairos::infer
