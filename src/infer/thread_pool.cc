#include "infer/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace kairos::infer {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = workers_.size();
  if (workers <= 1 || n < 4) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(workers, n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> done{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    Submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      if (done.fetch_add(1) + 1 == chunks) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done.load() == chunks; });
}

}  // namespace kairos::infer
