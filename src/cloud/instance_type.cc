#include "cloud/instance_type.h"

#include <stdexcept>

namespace kairos::cloud {

std::string ToString(InstanceClass c) {
  switch (c) {
    case InstanceClass::kGpuAccelerated:
      return "GPU Accelerated Computing";
    case InstanceClass::kComputeOptimizedCpu:
      return "Compute Optimized CPU";
    case InstanceClass::kMemoryOptimizedCpu:
      return "Memory Optimized CPU";
    case InstanceClass::kGeneralPurposeCpu:
      return "General Purpose CPU";
  }
  return "Unknown";
}

TypeId Catalog::Add(InstanceType type) {
  types_.push_back(std::move(type));
  return types_.size() - 1;
}

TypeId Catalog::BaseType() const {
  bool found = false;
  TypeId base = 0;
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].is_base) {
      if (found) throw std::logic_error("Catalog: multiple base types");
      base = i;
      found = true;
    }
  }
  if (!found) throw std::logic_error("Catalog: no base type");
  return base;
}

std::vector<TypeId> Catalog::AuxiliaryTypes() const {
  std::vector<TypeId> out;
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (!types_[i].is_base) out.push_back(i);
  }
  return out;
}

TypeId Catalog::FindShortName(const std::string& short_name) const {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].short_name == short_name) return i;
  }
  throw std::out_of_range("Catalog: unknown short name " + short_name);
}

Catalog Catalog::PaperPool() {
  Catalog c;
  c.Add({"g4dn.xlarge", "G1", InstanceClass::kGpuAccelerated, 0.526, true});
  c.Add({"c5n.2xlarge", "C1", InstanceClass::kComputeOptimizedCpu, 0.432,
         false});
  c.Add({"r5n.large", "C2", InstanceClass::kMemoryOptimizedCpu, 0.149, false});
  c.Add({"t3.xlarge", "T3", InstanceClass::kGeneralPurposeCpu, 0.1664, false});
  return c;
}

Catalog Catalog::MotivationPool() {
  Catalog c;
  c.Add({"g4dn.xlarge", "G1", InstanceClass::kGpuAccelerated, 0.526, true});
  c.Add({"c5n.2xlarge", "C1", InstanceClass::kComputeOptimizedCpu, 0.432,
         false});
  c.Add({"r5n.large", "C2", InstanceClass::kMemoryOptimizedCpu, 0.149, false});
  return c;
}

}  // namespace kairos::cloud
