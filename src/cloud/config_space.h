// Budget-constrained configuration-space enumeration (Sec. 5.2): all integer
// allocations whose hourly cost fits the budget, optionally requiring at
// least one base instance (without a base instance the largest queries can
// never meet QoS, so such configs have zero allowable throughput).
#pragma once

#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"

namespace kairos::cloud {

/// Enumeration options.
struct ConfigSpaceOptions {
  double budget_per_hour = 2.5;  ///< paper default $2.5/hr
  int min_base_instances = 1;    ///< require at least this many base nodes
  bool include_empty_aux = true; ///< keep homogeneous (aux counts all zero)
};

/// Enumerates every config within budget, in lexicographic order.
/// The search space is small by construction (order of 1e2-1e4 configs).
std::vector<Config> EnumerateConfigs(const Catalog& catalog,
                                     const ConfigSpaceOptions& options);

/// The optimal homogeneous configuration (Sec. 4): the maximum number of
/// base instances that fits the budget, zero auxiliaries.
Config BestHomogeneous(const Catalog& catalog, double budget_per_hour);

/// The fraction of the budget a config leaves unused, in [0, 1].
double BudgetSlack(const Catalog& catalog, const Config& config,
                   double budget_per_hour);

}  // namespace kairos::cloud
