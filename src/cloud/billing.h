// Pay-as-you-go cost accounting (Sec. 3): cloud instances accrue cost per
// second at their hourly price; the meter tracks spend across
// configuration changes so experiments can report cost alongside
// throughput, and enforce a spend ceiling. The SpotMarket extends the
// on-demand catalog with preemptible pricing (DESIGN.md Sec. 11): the
// same instances at a discount, reclaimed by the provider at a Poisson
// rate with a short warning before the hard kill.
#pragma once

#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"
#include "common/status.h"
#include "common/time.h"

namespace kairos::cloud {

/// Per-second cost meter over a sequence of held configurations.
class BillingMeter {
 public:
  /// `catalog` must outlive the meter.
  explicit BillingMeter(const Catalog& catalog);

  /// Charges for holding `config` for `duration` seconds.
  /// kInvalidArgument for a negative duration (nothing is accrued).
  Status Accrue(const Config& config, Time duration);

  /// Total accrued cost in USD.
  double TotalCost() const { return total_usd_; }

  /// Total metered wall time in seconds.
  Time TotalTime() const { return total_time_; }

  /// Average spend rate in USD/hr over the metered period (0 if empty).
  double AverageRatePerHour() const;

  /// Resets the meter.
  void Reset();

 private:
  const Catalog& catalog_;
  double total_usd_ = 0.0;
  Time total_time_ = 0.0;
};

/// A preemptible instance market: every catalog type is available at
/// `discount` times its on-demand price, and the provider reclaims
/// capacity as a Poisson process with `reclaim_rate_per_hour` expected
/// reclamations per hour across a model's deployment, each preceded by a
/// `notice_s`-second warning (the real spot/preemptible-VM contract).
/// The chaos plane (src/chaos/) turns this into seeded fault timelines.
struct SpotMarket {
  double discount = 0.35;             ///< spot $/hr = discount * on-demand
  double reclaim_rate_per_hour = 0.0; ///< expected reclamations per hour
  double notice_s = 0.0;              ///< warning before the hard kill

  /// kInvalidArgument unless discount is in (0, 1], the reclaim rate is
  /// >= 0 and the notice window is >= 0.
  Status Validate() const;
};

/// Spend at spot prices: `ondemand_usd` worth of on-demand capacity costs
/// `market.discount * ondemand_usd` on the spot market. Kept next to the
/// meter so effective-cost accounting has one authoritative definition.
double SpotCost(const SpotMarket& market, double ondemand_usd);

/// One step of a reconfiguration timeline (see PlanReconfiguration).
struct ReconfigPhase {
  Config active;    ///< configuration actually serving during this phase
  Config billed;    ///< configuration being paid for (includes launching)
  Time duration;    ///< phase length in seconds
};

/// Models switching from `from` to `to` with a fixed instance-launch delay
/// (the paper notes allocating cloud instances takes tens of seconds,
/// Sec. 4). Instances being launched bill immediately but serve only after
/// `launch_delay`; instances being released stop billing at once (shrink
/// is instant). Returns the phases covering [0, horizon).
std::vector<ReconfigPhase> PlanReconfiguration(const Config& from,
                                               const Config& to,
                                               Time launch_delay,
                                               Time horizon);

}  // namespace kairos::cloud
