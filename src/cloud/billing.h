// Pay-as-you-go cost accounting (Sec. 3): cloud instances accrue cost per
// second at their hourly price; the meter tracks spend across
// configuration changes so experiments can report cost alongside
// throughput, and enforce a spend ceiling.
#pragma once

#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"
#include "common/time.h"

namespace kairos::cloud {

/// Per-second cost meter over a sequence of held configurations.
class BillingMeter {
 public:
  /// `catalog` must outlive the meter.
  explicit BillingMeter(const Catalog& catalog);

  /// Charges for holding `config` for `duration` seconds.
  void Accrue(const Config& config, Time duration);

  /// Total accrued cost in USD.
  double TotalCost() const { return total_usd_; }

  /// Total metered wall time in seconds.
  Time TotalTime() const { return total_time_; }

  /// Average spend rate in USD/hr over the metered period (0 if empty).
  double AverageRatePerHour() const;

  /// Resets the meter.
  void Reset();

 private:
  const Catalog& catalog_;
  double total_usd_ = 0.0;
  Time total_time_ = 0.0;
};

/// One step of a reconfiguration timeline (see PlanReconfiguration).
struct ReconfigPhase {
  Config active;    ///< configuration actually serving during this phase
  Config billed;    ///< configuration being paid for (includes launching)
  Time duration;    ///< phase length in seconds
};

/// Models switching from `from` to `to` with a fixed instance-launch delay
/// (the paper notes allocating cloud instances takes tens of seconds,
/// Sec. 4). Instances being launched bill immediately but serve only after
/// `launch_delay`; instances being released stop billing at once (shrink
/// is instant). Returns the phases covering [0, horizon).
std::vector<ReconfigPhase> PlanReconfiguration(const Config& from,
                                               const Config& to,
                                               Time launch_delay,
                                               Time horizon);

}  // namespace kairos::cloud
