// Pay-as-you-go cost accounting (Sec. 3): cloud instances accrue cost per
// second at their hourly price; the meter tracks spend across
// configuration changes so experiments can report cost alongside
// throughput, and enforce a spend ceiling. The SpotMarket extends the
// on-demand catalog with preemptible pricing (DESIGN.md Sec. 11): the
// same instances at a discount, reclaimed by the provider at a Poisson
// rate with a short warning before the hard kill.
#pragma once

#include <utility>
#include <vector>

#include "cloud/config.h"
#include "cloud/instance_type.h"
#include "common/status.h"
#include "common/time.h"

namespace kairos::cloud {

/// Per-second cost meter over a sequence of held configurations.
class BillingMeter {
 public:
  /// `catalog` must outlive the meter.
  explicit BillingMeter(const Catalog& catalog);

  /// Charges for holding `config` for `duration` seconds.
  /// kInvalidArgument for a negative duration (nothing is accrued).
  Status Accrue(const Config& config, Time duration);

  /// Total accrued cost in USD.
  double TotalCost() const { return total_usd_; }

  /// Total metered wall time in seconds.
  Time TotalTime() const { return total_time_; }

  /// Average spend rate in USD/hr over the metered period (0 if empty).
  double AverageRatePerHour() const;

  /// Resets the meter.
  void Reset();

 private:
  const Catalog& catalog_;
  double total_usd_ = 0.0;
  Time total_time_ = 0.0;
};

/// A preemptible instance market: every catalog type is available at
/// `discount` times its on-demand price, and the provider reclaims
/// capacity as a Poisson process with `reclaim_rate_per_hour` expected
/// reclamations per hour across a model's deployment, each preceded by a
/// `notice_s`-second warning (the real spot/preemptible-VM contract).
/// The chaos plane (src/chaos/) turns this into seeded fault timelines.
///
/// The discount may vary over the run (DESIGN.md Sec. 11): with the curve
/// knobs at their zero defaults the market is flat and `DiscountAt(t)`
/// equals `discount` exactly for every t — existing flat-market runs stay
/// bit-identical. Otherwise the instantaneous discount is
///
///   discount + curve_amplitude * sin(2*pi*t/curve_period_s + curve_phase_rad)
///            + curve_slope_per_hour * (t / 3600)
///
/// or, when `curve_points` is non-empty, the piecewise-linear
/// interpolation of those (time, discount) breakpoints (held constant
/// outside the covered range). The result is clamped into
/// [kMinSpotDiscount, 1].
struct SpotMarket {
  double discount = 0.35;             ///< spot $/hr = discount * on-demand
  double reclaim_rate_per_hour = 0.0; ///< expected reclamations per hour
  double notice_s = 0.0;              ///< warning before the hard kill

  // -- time-varying discount curve (all-zero => flat market) --
  double curve_amplitude = 0.0;       ///< sinusoid amplitude around discount
  double curve_period_s = 0.0;        ///< sinusoid period (required if amp>0)
  double curve_phase_rad = 0.0;       ///< sinusoid phase offset
  double curve_slope_per_hour = 0.0;  ///< linear drift in discount per hour
  /// Piecewise-linear (time_s, discount) breakpoints; when non-empty they
  /// replace the sinusoid/drift terms. Times must be strictly increasing.
  std::vector<std::pair<Time, double>> curve_points;

  /// True when every curve knob is at its zero default: DiscountAt(t) ==
  /// discount bit-for-bit, with no trigonometry on the path.
  bool FlatCurve() const;

  /// Instantaneous discount multiplier at simulation time `t`.
  double DiscountAt(Time t) const;

  /// Mean discount over [t0, t1] (deterministic fixed-step midpoint
  /// integration; exact for flat and piecewise-linear curves). Returns
  /// DiscountAt(t0) when the interval is empty.
  double MeanDiscount(Time t0, Time t1) const;

  /// kInvalidArgument unless discount is in (0, 1], the reclaim rate is
  /// >= 0, the notice window is >= 0, and the curve knobs are coherent:
  /// amplitude >= 0 with a positive period when amplitude > 0, the
  /// sinusoid envelope discount +/- amplitude stays inside (0, 1], and
  /// curve_points (if any) are strictly increasing in time with
  /// discounts in (0, 1].
  Status Validate() const;
};

/// Hard floor on any curve-evaluated discount: the provider never sells
/// below 1% of on-demand, so drifting curves cannot reach "free".
inline constexpr double kMinSpotDiscount = 0.01;

/// Spend at spot prices: `ondemand_usd` worth of on-demand capacity costs
/// `market.discount * ondemand_usd` on the spot market. Kept next to the
/// meter so effective-cost accounting has one authoritative definition.
double SpotCost(const SpotMarket& market, double ondemand_usd);

/// Curve-integrating overload: the same `ondemand_usd` of capacity held
/// over [0, duration_s] costs `MeanDiscount(0, duration_s) * ondemand_usd`.
/// For a flat market this returns exactly `SpotCost(market, ondemand_usd)`.
double SpotCost(const SpotMarket& market, double ondemand_usd,
                Time duration_s);

/// One step of a reconfiguration timeline (see PlanReconfiguration).
struct ReconfigPhase {
  Config active;    ///< configuration actually serving during this phase
  Config billed;    ///< configuration being paid for (includes launching)
  Time duration;    ///< phase length in seconds
};

/// Models switching from `from` to `to` with a fixed instance-launch delay
/// (the paper notes allocating cloud instances takes tens of seconds,
/// Sec. 4). Instances being launched bill immediately but serve only after
/// `launch_delay`; instances being released stop billing at once (shrink
/// is instant). Returns the phases covering [0, horizon).
std::vector<ReconfigPhase> PlanReconfiguration(const Config& from,
                                               const Config& to,
                                               Time launch_delay,
                                               Time horizon);

}  // namespace kairos::cloud
