#include "cloud/config_space.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace kairos::cloud {

std::vector<Config> EnumerateConfigs(const Catalog& catalog,
                                     const ConfigSpaceOptions& options) {
  const std::size_t n = catalog.size();
  if (n == 0) return {};
  const TypeId base = catalog.BaseType();
  std::vector<Config> out;
  std::vector<int> counts(n, 0);

  // Depth-first over types; prune by remaining budget at each level.
  std::function<void(std::size_t, double)> visit = [&](std::size_t type,
                                                       double remaining) {
    if (type == n) {
      if (counts[base] < options.min_base_instances) return;
      if (!options.include_empty_aux) {
        int aux_total = 0;
        for (TypeId t = 0; t < n; ++t) {
          if (t != base) aux_total += counts[t];
        }
        if (aux_total == 0) return;
      }
      out.emplace_back(counts);
      return;
    }
    const double price = catalog[type].price_per_hour;
    const int max_count = static_cast<int>(std::floor(remaining / price + 1e-9));
    for (int c = 0; c <= max_count; ++c) {
      counts[type] = c;
      visit(type + 1, remaining - c * price);
    }
    counts[type] = 0;
  };
  visit(0, options.budget_per_hour);
  return out;
}

Config BestHomogeneous(const Catalog& catalog, double budget_per_hour) {
  const TypeId base = catalog.BaseType();
  const double price = catalog[base].price_per_hour;
  const int count = static_cast<int>(std::floor(budget_per_hour / price + 1e-9));
  if (count < 1) {
    throw std::invalid_argument(
        "BestHomogeneous: budget cannot afford one base instance");
  }
  std::vector<int> counts(catalog.size(), 0);
  counts[base] = count;
  return Config(std::move(counts));
}

double BudgetSlack(const Catalog& catalog, const Config& config,
                   double budget_per_hour) {
  const double cost = config.CostPerHour(catalog);
  if (budget_per_hour <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - cost / budget_per_hour);
}

}  // namespace kairos::cloud
