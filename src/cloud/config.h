// Heterogeneous configuration: how many instances of each catalog type are
// allocated. This is the decision variable of the Sec. 5.2 search problem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cloud/instance_type.h"

namespace kairos::cloud {

/// Instance counts indexed by TypeId. A config like "(3,1,3)" in the paper
/// is counts = {3, 1, 3} over the G1/C1/C2 catalog.
class Config {
 public:
  Config() = default;
  explicit Config(std::vector<int> counts);

  /// Count for one type.
  int Count(TypeId t) const { return counts_.at(t); }
  int& Count(TypeId t) { return counts_.at(t); }

  std::size_t NumTypes() const { return counts_.size(); }
  const std::vector<int>& counts() const { return counts_; }

  /// Total number of instances across all types.
  int TotalInstances() const;

  /// Hourly cost under the catalog's prices.
  double CostPerHour(const Catalog& catalog) const;

  /// True when every count of *this <= other's count (and same arity):
  /// the paper's "sub-configuration" relation used by Kairos+ pruning.
  /// A config is not a sub-configuration of itself.
  bool IsSubConfigOf(const Config& other) const;

  /// Squared Euclidean distance between count vectors (similarity pick).
  double SquaredDistance(const Config& other) const;

  /// "(3, 1, 3)" formatting used throughout the paper.
  std::string ToString() const;

  /// 64-bit FNV-1a fingerprint of the count vector. Equal configs share a
  /// fingerprint; it keys the search memo's unordered containers (see
  /// cloud::ConfigHash), which sit on the evaluation hot path.
  std::uint64_t Fingerprint() const;

  friend bool operator==(const Config& a, const Config& b) {
    return a.counts_ == b.counts_;
  }
  /// Lexicographic, so Config can key ordered containers.
  friend bool operator<(const Config& a, const Config& b) {
    return a.counts_ < b.counts_;
  }

 private:
  std::vector<int> counts_;
};

/// Hash functor over Config::Fingerprint() for unordered containers.
struct ConfigHash {
  std::size_t operator()(const Config& c) const {
    return static_cast<std::size_t>(c.Fingerprint());
  }
};

}  // namespace kairos::cloud
