#include "cloud/config.h"

#include <sstream>
#include <stdexcept>

namespace kairos::cloud {

Config::Config(std::vector<int> counts) : counts_(std::move(counts)) {
  for (int c : counts_) {
    if (c < 0) throw std::invalid_argument("Config: negative count");
  }
}

int Config::TotalInstances() const {
  int total = 0;
  for (int c : counts_) total += c;
  return total;
}

double Config::CostPerHour(const Catalog& catalog) const {
  if (counts_.size() != catalog.size()) {
    throw std::invalid_argument("Config::CostPerHour: catalog arity mismatch");
  }
  double cost = 0.0;
  for (TypeId t = 0; t < counts_.size(); ++t) {
    cost += counts_[t] * catalog[t].price_per_hour;
  }
  return cost;
}

bool Config::IsSubConfigOf(const Config& other) const {
  if (counts_.size() != other.counts_.size()) return false;
  bool strictly_less_somewhere = false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > other.counts_[i]) return false;
    if (counts_[i] < other.counts_[i]) strictly_less_somewhere = true;
  }
  return strictly_less_somewhere;
}

double Config::SquaredDistance(const Config& other) const {
  if (counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Config::SquaredDistance: arity mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double d = static_cast<double>(counts_[i] - other.counts_[i]);
    acc += d * d;
  }
  return acc;
}

std::uint64_t Config::Fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV offset basis
  for (const int c : counts_) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(c));
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

std::string Config::ToString() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i) os << ", ";
    os << counts_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace kairos::cloud
