#include "cloud/billing.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace kairos::cloud {

BillingMeter::BillingMeter(const Catalog& catalog) : catalog_(catalog) {}

Status BillingMeter::Accrue(const Config& config, Time duration) {
  if (duration < 0.0) {
    return Status::InvalidArgument(
        "BillingMeter::Accrue: duration must be >= 0, got " +
        std::to_string(duration));
  }
  total_usd_ += config.CostPerHour(catalog_) * duration / 3600.0;
  total_time_ += duration;
  return Status::Ok();
}

double BillingMeter::AverageRatePerHour() const {
  if (total_time_ <= 0.0) return 0.0;
  return total_usd_ / (total_time_ / 3600.0);
}

void BillingMeter::Reset() {
  total_usd_ = 0.0;
  total_time_ = 0.0;
}

Status SpotMarket::Validate() const {
  if (!(discount > 0.0) || discount > 1.0) {
    return Status::InvalidArgument(
        "SpotMarket: discount must be in (0, 1], got " +
        std::to_string(discount));
  }
  if (!(reclaim_rate_per_hour >= 0.0)) {
    return Status::InvalidArgument(
        "SpotMarket: reclaim_rate_per_hour must be >= 0, got " +
        std::to_string(reclaim_rate_per_hour));
  }
  if (!(notice_s >= 0.0)) {
    return Status::InvalidArgument("SpotMarket: notice_s must be >= 0, got " +
                                   std::to_string(notice_s));
  }
  return Status::Ok();
}

double SpotCost(const SpotMarket& market, double ondemand_usd) {
  return market.discount * ondemand_usd;
}

std::vector<ReconfigPhase> PlanReconfiguration(const Config& from,
                                               const Config& to,
                                               Time launch_delay,
                                               Time horizon) {
  if (from.NumTypes() != to.NumTypes()) {
    throw std::invalid_argument("PlanReconfiguration: arity mismatch");
  }
  if (horizon <= 0.0) {
    throw std::invalid_argument("PlanReconfiguration: horizon <= 0");
  }
  // During the launch window we serve on the intersection (shrink is
  // instant, growth is delayed) while billing for the union of what we
  // still hold and what we are launching.
  std::vector<int> active_counts(from.NumTypes());
  std::vector<int> billed_counts(from.NumTypes());
  for (std::size_t t = 0; t < from.NumTypes(); ++t) {
    const auto tid = static_cast<TypeId>(t);
    active_counts[t] = std::min(from.Count(tid), to.Count(tid));
    billed_counts[t] = std::max(active_counts[t], to.Count(tid));
  }

  std::vector<ReconfigPhase> phases;
  const Time window = std::min(launch_delay, horizon);
  if (window > 0.0) {
    phases.push_back(ReconfigPhase{Config(active_counts),
                                   Config(billed_counts), window});
  }
  if (horizon > window) {
    phases.push_back(ReconfigPhase{to, to, horizon - window});
  }
  return phases;
}

}  // namespace kairos::cloud
