#include "cloud/billing.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace kairos::cloud {

BillingMeter::BillingMeter(const Catalog& catalog) : catalog_(catalog) {}

Status BillingMeter::Accrue(const Config& config, Time duration) {
  if (duration < 0.0) {
    return Status::InvalidArgument(
        "BillingMeter::Accrue: duration must be >= 0, got " +
        std::to_string(duration));
  }
  total_usd_ += config.CostPerHour(catalog_) * duration / 3600.0;
  total_time_ += duration;
  return Status::Ok();
}

double BillingMeter::AverageRatePerHour() const {
  if (total_time_ <= 0.0) return 0.0;
  return total_usd_ / (total_time_ / 3600.0);
}

void BillingMeter::Reset() {
  total_usd_ = 0.0;
  total_time_ = 0.0;
}

Status SpotMarket::Validate() const {
  if (!(discount > 0.0) || discount > 1.0) {
    return Status::InvalidArgument(
        "SpotMarket: discount must be in (0, 1], got " +
        std::to_string(discount));
  }
  if (!(reclaim_rate_per_hour >= 0.0)) {
    return Status::InvalidArgument(
        "SpotMarket: reclaim_rate_per_hour must be >= 0, got " +
        std::to_string(reclaim_rate_per_hour));
  }
  if (!(notice_s >= 0.0)) {
    return Status::InvalidArgument("SpotMarket: notice_s must be >= 0, got " +
                                   std::to_string(notice_s));
  }
  if (!(curve_amplitude >= 0.0)) {
    return Status::InvalidArgument(
        "SpotMarket: curve_amplitude must be >= 0, got " +
        std::to_string(curve_amplitude));
  }
  if (curve_amplitude > 0.0 && !(curve_period_s > 0.0)) {
    return Status::InvalidArgument(
        "SpotMarket: curve_period_s must be > 0 when curve_amplitude > 0, "
        "got " +
        std::to_string(curve_period_s));
  }
  if (curve_amplitude > 0.0 &&
      (!(discount - curve_amplitude > 0.0) ||
       discount + curve_amplitude > 1.0)) {
    return Status::InvalidArgument(
        "SpotMarket: the sinusoid envelope discount +/- curve_amplitude "
        "must stay inside (0, 1]; discount=" +
        std::to_string(discount) +
        " amplitude=" + std::to_string(curve_amplitude));
  }
  for (std::size_t i = 0; i < curve_points.size(); ++i) {
    const auto& [t, d] = curve_points[i];
    if (!(t >= 0.0)) {
      return Status::InvalidArgument(
          "SpotMarket: curve_points times must be >= 0, got " +
          std::to_string(t));
    }
    if (i > 0 && !(t > curve_points[i - 1].first)) {
      return Status::InvalidArgument(
          "SpotMarket: curve_points times must be strictly increasing (" +
          std::to_string(curve_points[i - 1].first) + " then " +
          std::to_string(t) + ")");
    }
    if (!(d > 0.0) || d > 1.0) {
      return Status::InvalidArgument(
          "SpotMarket: curve_points discounts must be in (0, 1], got " +
          std::to_string(d));
    }
  }
  return Status::Ok();
}

bool SpotMarket::FlatCurve() const {
  return curve_amplitude == 0.0 && curve_slope_per_hour == 0.0 &&
         curve_points.empty();
}

double SpotMarket::DiscountAt(Time t) const {
  if (FlatCurve()) return discount;  // exact: no clamp, no trigonometry
  double d;
  if (!curve_points.empty()) {
    // Piecewise-linear over the breakpoints, held constant outside them.
    if (t <= curve_points.front().first) {
      d = curve_points.front().second;
    } else if (t >= curve_points.back().first) {
      d = curve_points.back().second;
    } else {
      std::size_t hi = 1;
      while (curve_points[hi].first < t) ++hi;
      const auto& [t0, d0] = curve_points[hi - 1];
      const auto& [t1, d1] = curve_points[hi];
      d = d0 + (d1 - d0) * (t - t0) / (t1 - t0);
    }
  } else {
    d = discount + curve_slope_per_hour * (t / 3600.0);
    if (curve_amplitude > 0.0) {
      d += curve_amplitude *
           std::sin(2.0 * M_PI * t / curve_period_s + curve_phase_rad);
    }
  }
  return std::clamp(d, kMinSpotDiscount, 1.0);
}

double SpotMarket::MeanDiscount(Time t0, Time t1) const {
  if (FlatCurve()) return discount;
  if (!(t1 > t0)) return DiscountAt(t0);
  // Deterministic fixed-step midpoint rule; 256 steps keeps the error
  // negligible for any curve a run can configure while staying
  // bit-reproducible across platforms with the same libm.
  constexpr std::size_t kSteps = 256;
  const Time h = (t1 - t0) / static_cast<Time>(kSteps);
  double sum = 0.0;
  for (std::size_t i = 0; i < kSteps; ++i) {
    sum += DiscountAt(t0 + (static_cast<Time>(i) + 0.5) * h);
  }
  return sum / static_cast<double>(kSteps);
}

double SpotCost(const SpotMarket& market, double ondemand_usd) {
  return market.discount * ondemand_usd;
}

double SpotCost(const SpotMarket& market, double ondemand_usd,
                Time duration_s) {
  if (market.FlatCurve()) return SpotCost(market, ondemand_usd);
  return market.MeanDiscount(0.0, duration_s) * ondemand_usd;
}

std::vector<ReconfigPhase> PlanReconfiguration(const Config& from,
                                               const Config& to,
                                               Time launch_delay,
                                               Time horizon) {
  if (from.NumTypes() != to.NumTypes()) {
    throw std::invalid_argument("PlanReconfiguration: arity mismatch");
  }
  if (horizon <= 0.0) {
    throw std::invalid_argument("PlanReconfiguration: horizon <= 0");
  }
  // During the launch window we serve on the intersection (shrink is
  // instant, growth is delayed) while billing for the union of what we
  // still hold and what we are launching.
  std::vector<int> active_counts(from.NumTypes());
  std::vector<int> billed_counts(from.NumTypes());
  for (std::size_t t = 0; t < from.NumTypes(); ++t) {
    const auto tid = static_cast<TypeId>(t);
    active_counts[t] = std::min(from.Count(tid), to.Count(tid));
    billed_counts[t] = std::max(active_counts[t], to.Count(tid));
  }

  std::vector<ReconfigPhase> phases;
  const Time window = std::min(launch_delay, horizon);
  if (window > 0.0) {
    phases.push_back(ReconfigPhase{Config(active_counts),
                                   Config(billed_counts), window});
  }
  if (horizon > window) {
    phases.push_back(ReconfigPhase{to, to, horizon - window});
  }
  return phases;
}

}  // namespace kairos::cloud
