// Cloud instance catalog: the paper's Table 4 EC2 types with hourly prices.
// The catalog is open — experiments can register custom types — but the
// default pool is exactly the paper's G1/C1/C2/T3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kairos::cloud {

/// Broad hardware class of an instance (paper Table 4 "Instance Class").
enum class InstanceClass {
  kGpuAccelerated,
  kComputeOptimizedCpu,
  kMemoryOptimizedCpu,
  kGeneralPurposeCpu,
};

/// Human-readable name for an InstanceClass.
std::string ToString(InstanceClass c);

/// Index of an instance type inside a Catalog.
using TypeId = std::size_t;

/// One rentable instance type.
struct InstanceType {
  std::string name;        ///< e.g. "g4dn.xlarge"
  std::string short_name;  ///< paper shorthand, e.g. "G1"
  InstanceClass klass;
  double price_per_hour;   ///< USD/hr (paper Table 4)
  bool is_base = false;    ///< true for the base type (Sec. 4): meets QoS
                           ///< for every batch size up to the cap.
};

/// Ordered collection of instance types. TypeId 0 is by convention the base
/// type in the paper pool, but code must consult `is_base`.
class Catalog {
 public:
  /// Adds a type; returns its id.
  TypeId Add(InstanceType type);

  std::size_t size() const { return types_.size(); }
  const InstanceType& operator[](TypeId id) const { return types_.at(id); }

  /// Id of the (single) base type. Throws if none or multiple are marked.
  TypeId BaseType() const;

  /// Ids of all non-base (auxiliary) types, in catalog order.
  std::vector<TypeId> AuxiliaryTypes() const;

  /// Finds a type by short name ("G1"); throws std::out_of_range if absent.
  TypeId FindShortName(const std::string& short_name) const;

  /// The paper's Table 4 pool: g4dn.xlarge (G1, base, $0.526), c5n.2xlarge
  /// (C1, $0.432), r5n.large (C2, $0.149), t3.xlarge (T3, $0.1664).
  static Catalog PaperPool();

  /// The three-type pool used in the paper's motivation figures (Fig. 1-3):
  /// G1, C1, C2 only.
  static Catalog MotivationPool();

 private:
  std::vector<InstanceType> types_;
};

}  // namespace kairos::cloud
