#include "workload/batch_dist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "latency/latency_model.h"

namespace kairos::workload {
namespace {

int Clamp(double raw) {
  const double rounded = std::round(raw);
  return static_cast<int>(
      std::clamp(rounded, 1.0, double{latency::kMaxBatchSize}));
}

double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

LogNormalBatches::LogNormalBatches(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("LogNormalBatches: sigma<=0");
}

int LogNormalBatches::Sample(Rng& rng) const {
  return Clamp(rng.LogNormal(mu_, sigma_));
}

double LogNormalBatches::Cdf(int b) const {
  if (b < 1) return 0.0;
  if (b >= latency::kMaxBatchSize) return 1.0;  // mass above cap clamps down
  // P(round(clamp(X)) <= b) = P(X < b + 0.5).
  return StdNormalCdf((std::log(b + 0.5) - mu_) / sigma_);
}

std::string LogNormalBatches::Name() const { return "lognormal(production)"; }

LogNormalBatches LogNormalBatches::Production() {
  return LogNormalBatches(std::log(35.0), 1.35);
}

GaussianBatches::GaussianBatches(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  if (stddev <= 0.0) throw std::invalid_argument("GaussianBatches: stddev<=0");
}

int GaussianBatches::Sample(Rng& rng) const {
  return Clamp(rng.Normal(mean_, stddev_));
}

double GaussianBatches::Cdf(int b) const {
  if (b < 1) return 0.0;
  if (b >= latency::kMaxBatchSize) return 1.0;
  return StdNormalCdf((b + 0.5 - mean_) / stddev_);
}

std::string GaussianBatches::Name() const { return "gaussian"; }

GaussianBatches GaussianBatches::Default() {
  return GaussianBatches(150.0, 80.0);
}

EmpiricalBatches::EmpiricalBatches(std::vector<int> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("EmpiricalBatches: empty sample set");
  }
  sorted_samples_.reserve(samples.size());
  for (int s : samples) {
    sorted_samples_.push_back(
        std::clamp(s, 1, int{latency::kMaxBatchSize}));
  }
  std::sort(sorted_samples_.begin(), sorted_samples_.end());
}

int EmpiricalBatches::Sample(Rng& rng) const {
  const auto idx = static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(sorted_samples_.size()) - 1));
  return sorted_samples_[idx];
}

double EmpiricalBatches::Cdf(int b) const {
  const auto it =
      std::upper_bound(sorted_samples_.begin(), sorted_samples_.end(), b);
  return static_cast<double>(it - sorted_samples_.begin()) /
         static_cast<double>(sorted_samples_.size());
}

std::string EmpiricalBatches::Name() const { return "empirical"; }

}  // namespace kairos::workload
