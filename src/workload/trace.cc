#include "workload/trace.h"

#include <algorithm>
#include <stdexcept>

namespace kairos::workload {

Trace::Trace(std::vector<Query> queries) : queries_(std::move(queries)) {
  if (!std::is_sorted(queries_.begin(), queries_.end(),
                      [](const Query& a, const Query& b) {
                        return a.arrival < b.arrival;
                      })) {
    throw std::invalid_argument("Trace: queries must be sorted by arrival");
  }
}

Time Trace::Horizon() const {
  return queries_.empty() ? 0.0 : queries_.back().arrival;
}

double Trace::OfferedRate() const {
  const Time horizon = Horizon();
  if (horizon <= 0.0 || queries_.size() < 2) return 0.0;
  return static_cast<double>(queries_.size() - 1) / horizon;
}

Trace Trace::Generate(const ArrivalProcess& arrivals,
                      const BatchDistribution& batches, std::size_t count,
                      Rng& rng) {
  std::vector<Query> queries;
  queries.reserve(count);
  Time t = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    t += arrivals.NextGap(rng);
    queries.push_back(Query{/*id=*/i, batches.Sample(rng), /*arrival=*/t});
  }
  return Trace(std::move(queries));
}

Trace Trace::Retimed(double new_rate_qps) const {
  Trace out;
  RetimedInto(new_rate_qps, &out);
  return out;
}

void Trace::RetimedInto(double new_rate_qps, Trace* out) const {
  if (new_rate_qps <= 0.0) {
    throw std::invalid_argument("Trace::Retimed: rate must be positive");
  }
  if (out == this) {
    throw std::invalid_argument("Trace::RetimedInto: out aliases this");
  }
  const double old_rate = OfferedRate();
  // assign() reuses out's capacity; scaling by a positive factor preserves
  // the sorted-by-arrival invariant, so the checking constructor is not
  // needed here.
  out->queries_.assign(queries_.begin(), queries_.end());
  if (old_rate <= 0.0) return;
  const double scale = old_rate / new_rate_qps;
  for (Query& q : out->queries_) q.arrival *= scale;
}

}  // namespace kairos::workload
