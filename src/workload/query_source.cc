#include "workload/query_source.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/strings.h"

namespace kairos::workload {
namespace {

/// Fixed batch size for the pure-arrival-process sources.
class FixedBatches final : public BatchDistribution {
 public:
  explicit FixedBatches(int batch) : batch_(batch < 1 ? 1 : batch) {}

  int Sample(Rng&) const override { return batch_; }
  double Cdf(int b) const override { return b >= batch_ ? 1.0 : 0.0; }
  std::string Name() const override {
    return "fixed(" + std::to_string(batch_) + ")";
  }

 private:
  int batch_;
};

Status BadRate(const std::string& source, double rate) {
  return Status::InvalidArgument(source + " source: rate_qps must be positive, got " +
                                 std::to_string(rate));
}

StatusOr<std::unique_ptr<QuerySource>> BuildProcess(
    const QuerySourceSpec& spec, std::unique_ptr<ArrivalProcess> arrivals,
    std::unique_ptr<BatchDistribution> batches) {
  return std::unique_ptr<QuerySource>(std::make_unique<ProcessSource>(
      std::move(arrivals), std::move(batches), spec.limit));
}

const QuerySourceRegistrar kTraceSource(
    "TRACE", "replay a materialized workload::Trace exactly",
    [](const QuerySourceSpec& spec) -> StatusOr<std::unique_ptr<QuerySource>> {
      if (spec.trace.empty()) {
        return Status::InvalidArgument(
            "TRACE source: spec.trace must be a non-empty trace");
      }
      return std::unique_ptr<QuerySource>(
          std::make_unique<TraceSource>(spec.trace));
    });

const QuerySourceRegistrar kStreamSource(
    "STREAM",
    "stream a trace CSV from disk in bounded-memory chunks (.gz with zlib)",
    [](const QuerySourceSpec& spec) -> StatusOr<std::unique_ptr<QuerySource>> {
      if (spec.path.empty()) {
        return Status::InvalidArgument(
            "STREAM source: spec.path must name a trace CSV file");
      }
      StreamingTraceOptions options;
      options.chunk_bytes = spec.chunk_bytes;
      auto reader = StreamingTraceReader::Open(spec.path, options);
      if (!reader.ok()) return reader.status();
      return std::unique_ptr<QuerySource>(
          std::make_unique<StreamingTraceSource>(*std::move(reader)));
    });

const QuerySourceRegistrar kPoissonSource(
    "POISSON", "Poisson arrivals at rate_qps with a fixed batch size",
    [](const QuerySourceSpec& spec) -> StatusOr<std::unique_ptr<QuerySource>> {
      if (spec.rate_qps <= 0.0) return BadRate("POISSON", spec.rate_qps);
      return BuildProcess(spec,
                          std::make_unique<PoissonArrivals>(spec.rate_qps),
                          std::make_unique<FixedBatches>(spec.batch));
    });

const QuerySourceRegistrar kUniformSource(
    "UNIFORM", "fixed-gap arrivals at rate_qps with a fixed batch size",
    [](const QuerySourceSpec& spec) -> StatusOr<std::unique_ptr<QuerySource>> {
      if (spec.rate_qps <= 0.0) return BadRate("UNIFORM", spec.rate_qps);
      return BuildProcess(spec,
                          std::make_unique<UniformArrivals>(spec.rate_qps),
                          std::make_unique<FixedBatches>(spec.batch));
    });

const QuerySourceRegistrar kGaussianSource(
    "GAUSSIAN", "Poisson arrivals with the Gaussian sensitivity batch mix",
    [](const QuerySourceSpec& spec) -> StatusOr<std::unique_ptr<QuerySource>> {
      if (spec.rate_qps <= 0.0) return BadRate("GAUSSIAN", spec.rate_qps);
      return BuildProcess(spec,
                          std::make_unique<PoissonArrivals>(spec.rate_qps),
                          std::make_unique<GaussianBatches>(
                              GaussianBatches::Default()));
    });

const QuerySourceRegistrar kProductionSource(
    "PRODUCTION",
    "Poisson arrivals with the production log-normal batch mix",
    [](const QuerySourceSpec& spec) -> StatusOr<std::unique_ptr<QuerySource>> {
      if (spec.rate_qps <= 0.0) return BadRate("PRODUCTION", spec.rate_qps);
      return BuildProcess(spec,
                          std::make_unique<PoissonArrivals>(spec.rate_qps),
                          std::make_unique<LogNormalBatches>(
                              LogNormalBatches::Production()));
    });

}  // namespace

TraceSource::TraceSource(Trace trace) : trace_(std::move(trace)) {}

std::optional<Emission> TraceSource::Next(Rng&) {
  if (next_ >= trace_.size()) return std::nullopt;
  const std::vector<workload::Query>& queries = trace_.queries();
  const Time previous = next_ == 0 ? 0.0 : queries[next_ - 1].arrival;
  Emission emission;
  emission.gap = queries[next_].arrival - previous;
  emission.batch = queries[next_].batch_size;
  ++next_;
  return emission;
}

ProcessSource::ProcessSource(std::unique_ptr<ArrivalProcess> arrivals,
                             std::unique_ptr<BatchDistribution> batches,
                             std::size_t limit)
    : arrivals_(std::move(arrivals)),
      batches_(std::move(batches)),
      limit_(limit) {}

std::optional<Emission> ProcessSource::Next(Rng& rng) {
  if (limit_ > 0 && emitted_ >= limit_) return std::nullopt;
  ++emitted_;
  Emission emission;
  emission.gap = arrivals_->NextGap(rng);
  emission.batch = batches_->Sample(rng);
  return emission;
}

std::string ProcessSource::Name() const {
  return arrivals_->Name() + "/" + batches_->Name();
}

StreamingTraceSource::StreamingTraceSource(StreamingTraceReader reader)
    : reader_(std::move(reader)) {}

std::optional<Emission> StreamingTraceSource::Next(Rng&) {
  if (!status_.ok()) return std::nullopt;
  Query q;
  const StatusOr<bool> got = reader_.Next(&q);
  if (!got.ok()) {
    status_ = got.status();
    return std::nullopt;
  }
  if (!*got) return std::nullopt;
  Emission emission;
  emission.gap = q.arrival - last_arrival_;
  emission.batch = q.batch_size;
  last_arrival_ = q.arrival;
  return emission;
}

std::string StreamingTraceSource::Name() const {
  return "stream(" + reader_.path() + ")";
}

void StreamingTraceSource::Reset() {
  const Status rewound = reader_.Rewind();
  status_ = rewound;  // clears a sticky parse error on a successful rewind
  last_arrival_ = 0.0;
}

QuerySourceRegistry& QuerySourceRegistry::Global() {
  static QuerySourceRegistry* registry = new QuerySourceRegistry();
  return *registry;
}

Status QuerySourceRegistry::Register(std::string name, std::string summary,
                                     QuerySourceBuilder builder) {
  const std::string canonical = CanonicalName(name);
  if (canonical.empty()) {
    return Status::InvalidArgument("query source name must be non-empty");
  }
  if (entries_.count(canonical) > 0) {
    return Status::InvalidArgument("query source " + canonical +
                                   " is already registered");
  }
  entries_[canonical] = Entry{std::move(summary), std::move(builder)};
  return Status::Ok();
}

std::vector<std::string> QuerySourceRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

bool QuerySourceRegistry::Contains(const std::string& name) const {
  return entries_.count(CanonicalName(name)) > 0;
}

StatusOr<std::string> QuerySourceRegistry::Summary(
    const std::string& name) const {
  const auto it = entries_.find(CanonicalName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown query source \"" + name +
                            "\"; registered sources: " +
                            JoinComma(ListNames()));
  }
  return it->second.summary;
}

StatusOr<std::unique_ptr<QuerySource>> QuerySourceRegistry::Build(
    const QuerySourceSpec& spec) const {
  const auto it = entries_.find(CanonicalName(spec.source));
  if (it == entries_.end()) {
    return Status::NotFound("unknown query source \"" + spec.source +
                            "\"; registered sources: " +
                            JoinComma(ListNames()));
  }
  return it->second.builder(spec);
}

QuerySourceRegistrar::QuerySourceRegistrar(std::string name,
                                           std::string summary,
                                           QuerySourceBuilder builder) {
  // Registration conflicts at startup are programming errors; surface
  // them loudly rather than silently shadowing a source.
  const Status status = QuerySourceRegistry::Global().Register(
      std::move(name), std::move(summary), std::move(builder));
  if (!status.ok()) {
    std::fprintf(stderr, "QuerySourceRegistrar: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

}  // namespace kairos::workload
