#include "workload/trace_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#ifdef KAIROS_HAS_ZLIB
#include <zlib.h>
#endif

#include "latency/latency_model.h"

namespace kairos::workload {

// ---------------------------------------------------------------------------
// Shared row parser: ReadTraceCsv and StreamingTraceReader both funnel every
// line through here, so the two read paths cannot drift apart semantically
// (the chunk-size-invariance property tests rely on this).

namespace {

constexpr std::string_view kHeader = "id,arrival_s,batch";

/// Drops one trailing '\r' so CRLF traces parse like LF traces.
void StripCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

Status MalformedRow(std::uint64_t line_no) {
  return Status::InvalidArgument("trace csv: malformed row at line " +
                                 std::to_string(line_no));
}

Status BadHeader() {
  return Status::InvalidArgument(
      "trace csv: bad or missing header (want \"id,arrival_s,batch\")");
}

/// Parses one non-empty data row "id,arrival_s,batch" into `*out`.
/// `last_arrival` is the previous row's arrival (0 before the first row);
/// rows must be sorted. Strict: every byte of the line must be consumed.
Status ParseTraceRow(std::string_view line, std::uint64_t line_no,
                     double last_arrival, Query* out) {
  const char* p = line.data();
  const char* const end = p + line.size();

  const auto id_parsed = std::from_chars(p, end, out->id);
  if (id_parsed.ec != std::errc() || id_parsed.ptr == end ||
      *id_parsed.ptr != ',') {
    return MalformedRow(line_no);
  }
  p = id_parsed.ptr + 1;

  const auto arrival_parsed = std::from_chars(p, end, out->arrival);
  if (arrival_parsed.ec != std::errc() || arrival_parsed.ptr == end ||
      *arrival_parsed.ptr != ',') {
    return MalformedRow(line_no);
  }
  p = arrival_parsed.ptr + 1;

  const auto batch_parsed = std::from_chars(p, end, out->batch_size);
  if (batch_parsed.ec != std::errc() || batch_parsed.ptr != end) {
    return MalformedRow(line_no);
  }

  if (!std::isfinite(out->arrival)) {
    return Status::InvalidArgument("trace csv: non-finite arrival_s at line " +
                                   std::to_string(line_no));
  }
  if (out->arrival < 0.0) {
    return Status::InvalidArgument("trace csv: negative arrival_s at line " +
                                   std::to_string(line_no));
  }
  if (out->batch_size < 1 || out->batch_size > latency::kMaxBatchSize) {
    return Status::InvalidArgument(
        "trace csv: batch out of [1, " +
        std::to_string(latency::kMaxBatchSize) + "] at line " +
        std::to_string(line_no));
  }
  if (out->arrival < last_arrival) {
    return Status::InvalidArgument("trace csv: arrivals not sorted at line " +
                                   std::to_string(line_no));
  }
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// Writers.

Status WriteTraceCsv(const Trace& trace, std::ostream& os) {
  os << kHeader << '\n';
  os << std::setprecision(12);
  for (const Query& q : trace.queries()) {
    os << q.id << ',' << q.arrival << ',' << q.batch_size << '\n';
  }
  if (!os.good()) {
    return Status::Internal("trace csv: write failed");
  }
  return Status::Ok();
}

Status WriteTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::NotFound("trace csv: cannot open " + path);
  }
  const Status written = WriteTraceCsv(trace, file);
  if (!written.ok()) {
    return Status::Internal("trace csv: write failed for " + path);
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Materializing readers.

StatusOr<Trace> ReadTraceCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) return BadHeader();
  StripCr(&line);
  if (line != kHeader) return BadHeader();

  std::vector<Query> queries;
  std::uint64_t line_no = 1;
  double last_arrival = 0.0;
  while (std::getline(is, line)) {
    ++line_no;
    StripCr(&line);
    if (line.empty()) continue;
    Query q;
    const Status parsed = ParseTraceRow(line, line_no, last_arrival, &q);
    if (!parsed.ok()) return parsed;
    last_arrival = q.arrival;
    queries.push_back(q);
  }
  return Trace(std::move(queries));
}

StatusOr<Trace> ReadTraceCsv(const std::string& path) {
  // Implemented over the streaming reader so the materialized path accepts
  // exactly what streaming accepts (including ".gz" when zlib is in).
  auto reader = StreamingTraceReader::Open(path);
  if (!reader.ok()) return reader.status();
  std::vector<Query> queries;
  Query q;
  for (;;) {
    const StatusOr<bool> got = reader->Next(&q);
    if (!got.ok()) return got.status();
    if (!*got) break;
    queries.push_back(q);
  }
  return Trace(std::move(queries));
}

// ---------------------------------------------------------------------------
// Deprecated throwing shims (DESIGN.md Sec. 7): pre-Status callers expect
// the throwing contract; the message is exactly Status::ToString().

void SaveTraceCsv(const Trace& trace, std::ostream& os) {
  const Status status = WriteTraceCsv(trace, os);
  if (!status.ok()) throw std::runtime_error(status.ToString());
}

void SaveTraceCsv(const Trace& trace, const std::string& path) {
  const Status status = WriteTraceCsv(trace, path);
  if (!status.ok()) throw std::runtime_error(status.ToString());
}

Trace LoadTraceCsv(std::istream& is) {
  StatusOr<Trace> trace = ReadTraceCsv(is);
  if (!trace.ok()) throw std::runtime_error(trace.status().ToString());
  return *std::move(trace);
}

Trace LoadTraceCsv(const std::string& path) {
  StatusOr<Trace> trace = ReadTraceCsv(path);
  if (!trace.ok()) throw std::runtime_error(trace.status().ToString());
  return *std::move(trace);
}

// ---------------------------------------------------------------------------
// Streaming reader.

bool TraceGzipSupported() {
#ifdef KAIROS_HAS_ZLIB
  return true;
#else
  return false;
#endif
}

namespace detail {

/// Chunked byte access to a trace file, abstracting plain vs gzip storage.
class TraceByteSource {
 public:
  virtual ~TraceByteSource() = default;

  /// Reads up to `n` bytes into `buf`; returns the count read, 0 at
  /// end-of-file, -1 on a read error.
  virtual long Read(char* buf, std::size_t n) = 0;

  /// Back to byte 0; false when the underlying seek fails.
  virtual bool Rewind() = 0;
};

namespace {

class PlainFileSource final : public TraceByteSource {
 public:
  explicit PlainFileSource(std::FILE* file) : file_(file) {}
  ~PlainFileSource() override {
    if (file_ != nullptr) std::fclose(file_);
  }
  PlainFileSource(const PlainFileSource&) = delete;
  PlainFileSource& operator=(const PlainFileSource&) = delete;

  long Read(char* buf, std::size_t n) override {
    const std::size_t got = std::fread(buf, 1, n, file_);
    if (got < n && std::ferror(file_) != 0) return -1;
    return static_cast<long>(got);
  }

  bool Rewind() override { return std::fseek(file_, 0, SEEK_SET) == 0; }

 private:
  std::FILE* file_;
};

#ifdef KAIROS_HAS_ZLIB
class GzipFileSource final : public TraceByteSource {
 public:
  explicit GzipFileSource(gzFile file) : file_(file) {}
  ~GzipFileSource() override {
    if (file_ != nullptr) gzclose(file_);
  }
  GzipFileSource(const GzipFileSource&) = delete;
  GzipFileSource& operator=(const GzipFileSource&) = delete;

  long Read(char* buf, std::size_t n) override {
    // gzread takes an unsigned count; cap one call (the caller loops).
    const unsigned want = static_cast<unsigned>(
        std::min<std::size_t>(n, std::size_t{1} << 24));
    const int got = gzread(file_, buf, want);
    return got;  // gzread already returns -1 on error, 0 at EOF
  }

  bool Rewind() override { return gzrewind(file_) == 0; }

 private:
  gzFile file_;
};
#endif  // KAIROS_HAS_ZLIB

}  // namespace
}  // namespace detail

namespace {

bool EndsWithGz(const std::string& path) {
  return path.size() >= 3 && path.compare(path.size() - 3, 3, ".gz") == 0;
}

}  // namespace

StreamingTraceReader::StreamingTraceReader(
    std::string path, StreamingTraceOptions options,
    std::unique_ptr<detail::TraceByteSource> source)
    : path_(std::move(path)), options_(options), source_(std::move(source)) {}

StreamingTraceReader::StreamingTraceReader(StreamingTraceReader&&) noexcept =
    default;
StreamingTraceReader& StreamingTraceReader::operator=(
    StreamingTraceReader&&) noexcept = default;
StreamingTraceReader::~StreamingTraceReader() = default;

StatusOr<StreamingTraceReader> StreamingTraceReader::Open(
    const std::string& path, StreamingTraceOptions options) {
  std::unique_ptr<detail::TraceByteSource> source;
  if (EndsWithGz(path)) {
#ifdef KAIROS_HAS_ZLIB
    gzFile file = gzopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::NotFound("trace csv: cannot open " + path);
    }
    source = std::make_unique<detail::GzipFileSource>(file);
#else
    return Status::FailedPrecondition(
        "trace csv: " + path +
        " is gzip-compressed but this build lacks zlib");
#endif
  } else {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      return Status::NotFound("trace csv: cannot open " + path);
    }
    source = std::make_unique<detail::PlainFileSource>(file);
  }

  StreamingTraceReader reader(path, options, std::move(source));
  const Status header = reader.ReadHeader();
  if (!header.ok()) return header;
  return reader;
}

StatusOr<bool> StreamingTraceReader::NextLine(std::string* line) {
  for (;;) {
    const std::size_t newline = pending_.find('\n', pending_pos_);
    if (newline != std::string::npos) {
      line->assign(pending_, pending_pos_, newline - pending_pos_);
      pending_pos_ = newline + 1;
      ++line_no_;
      return true;
    }
    if (source_eof_) {
      if (pending_pos_ < pending_.size()) {
        // Final line without a trailing newline.
        line->assign(pending_, pending_pos_,
                     pending_.size() - pending_pos_);
        pending_.clear();
        pending_pos_ = 0;
        ++line_no_;
        return true;
      }
      return false;
    }
    // Refill: drop the consumed prefix, then append one chunk. chunk 0
    // grows in 1 MiB steps — behaviorally "the whole file at once" since
    // nothing is parsed until a newline (or EOF) shows up.
    pending_.erase(0, pending_pos_);
    pending_pos_ = 0;
    const std::size_t want =
        options_.chunk_bytes == 0 ? (std::size_t{1} << 20)
                                  : options_.chunk_bytes;
    const std::size_t old_size = pending_.size();
    pending_.resize(old_size + want);
    const long got = source_->Read(pending_.data() + old_size, want);
    if (got < 0) {
      return Status::Internal("trace csv: read error in " + path_);
    }
    pending_.resize(old_size + static_cast<std::size_t>(got));
    if (got == 0) source_eof_ = true;
  }
}

Status StreamingTraceReader::ReadHeader() {
  const StatusOr<bool> got = NextLine(&line_);
  if (!got.ok()) return got.status();
  if (*got) StripCr(&line_);
  if (!*got || line_ != kHeader) return BadHeader();
  return Status::Ok();
}

StatusOr<bool> StreamingTraceReader::Next(Query* out) {
  if (!sticky_.ok()) return sticky_;
  if (exhausted_) return false;
  for (;;) {
    const StatusOr<bool> got = NextLine(&line_);
    if (!got.ok()) {
      sticky_ = got.status();
      return sticky_;
    }
    if (!*got) {
      exhausted_ = true;
      return false;
    }
    StripCr(&line_);
    if (line_.empty()) continue;
    const Status parsed = ParseTraceRow(line_, line_no_, last_arrival_, out);
    if (!parsed.ok()) {
      sticky_ = parsed;
      return sticky_;
    }
    last_arrival_ = out->arrival;
    ++queries_read_;
    return true;
  }
}

Status StreamingTraceReader::Rewind() {
  if (!source_->Rewind()) {
    return Status::Internal("trace csv: rewind failed for " + path_);
  }
  pending_.clear();
  pending_pos_ = 0;
  source_eof_ = false;
  line_no_ = 0;
  queries_read_ = 0;
  last_arrival_ = 0.0;
  exhausted_ = false;
  sticky_ = Status::Ok();
  return ReadHeader();
}

}  // namespace kairos::workload
