#include "workload/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "latency/latency_model.h"

namespace kairos::workload {

void SaveTraceCsv(const Trace& trace, std::ostream& os) {
  os << "id,arrival_s,batch\n";
  os << std::setprecision(12);
  for (const Query& q : trace.queries()) {
    os << q.id << ',' << q.arrival << ',' << q.batch_size << '\n';
  }
}

void SaveTraceCsv(const Trace& trace, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("SaveTraceCsv: cannot open " + path);
  }
  SaveTraceCsv(trace, file);
  if (!file.good()) {
    throw std::runtime_error("SaveTraceCsv: write failed for " + path);
  }
}

Trace LoadTraceCsv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "id,arrival_s,batch") {
    throw std::runtime_error("LoadTraceCsv: bad or missing header");
  }
  std::vector<Query> queries;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream row(line);
    Query q;
    char comma1 = 0, comma2 = 0;
    if (!(row >> q.id >> comma1 >> q.arrival >> comma2 >> q.batch_size) ||
        comma1 != ',' || comma2 != ',') {
      throw std::runtime_error("LoadTraceCsv: malformed row at line " +
                               std::to_string(line_no));
    }
    if (q.batch_size < 1 || q.batch_size > latency::kMaxBatchSize) {
      throw std::runtime_error("LoadTraceCsv: batch out of range at line " +
                               std::to_string(line_no));
    }
    if (!queries.empty() && q.arrival < queries.back().arrival) {
      throw std::runtime_error("LoadTraceCsv: arrivals not sorted at line " +
                               std::to_string(line_no));
    }
    queries.push_back(q);
  }
  return Trace(std::move(queries));
}

Trace LoadTraceCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    throw std::runtime_error("LoadTraceCsv: cannot open " + path);
  }
  return LoadTraceCsv(file);
}

}  // namespace kairos::workload
