// Batch-size distributions (Sec. 7): the production-like heavy-tailed
// log-normal standing in for the Meta query trace, the Gaussian used in the
// sensitivity studies, and an empirical histogram form for replaying
// recorded mixes. All draws are clamped to [1, kMaxBatchSize].
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace kairos::workload {

/// Interface for batch-size generators.
class BatchDistribution {
 public:
  virtual ~BatchDistribution() = default;

  /// Draws one batch size in [1, 1000].
  virtual int Sample(Rng& rng) const = 0;

  /// P(batch <= b), used by the analytic upper-bound machinery in tests.
  /// Implementations may approximate by sampling if no closed form exists.
  virtual double Cdf(int b) const = 0;

  /// Short human-readable name for reports.
  virtual std::string Name() const = 0;
};

/// Log-normal batch sizes — the synthetic stand-in for the production trace
/// (heavy right tail, most queries small, occasional near-cap batches).
class LogNormalBatches final : public BatchDistribution {
 public:
  /// mu/sigma are the parameters of the underlying normal.
  LogNormalBatches(double mu, double sigma);

  int Sample(Rng& rng) const override;
  double Cdf(int b) const override;
  std::string Name() const override;

  /// The default "production" mix used throughout the benches:
  /// median 40 requests, sigma 1.3 (≈95% of queries below ~350).
  static LogNormalBatches Production();

 private:
  double mu_;
  double sigma_;
};

/// Gaussian batch sizes (Fig. 12 / Fig. 16a).
class GaussianBatches final : public BatchDistribution {
 public:
  GaussianBatches(double mean, double stddev);

  int Sample(Rng& rng) const override;
  double Cdf(int b) const override;
  std::string Name() const override;

  /// Default Gaussian mix: mean 150, stddev 80.
  static GaussianBatches Default();

 private:
  double mean_;
  double stddev_;
};

/// Empirical histogram over batch sizes; replays any recorded mix.
class EmpiricalBatches final : public BatchDistribution {
 public:
  /// `samples` is a list of observed batch sizes (clamped into range).
  explicit EmpiricalBatches(std::vector<int> samples);

  int Sample(Rng& rng) const override;
  double Cdf(int b) const override;
  std::string Name() const override;

 private:
  std::vector<int> sorted_samples_;
};

/// Deep-copyable handle used where ownership must be shared.
using BatchDistributionPtr = std::shared_ptr<const BatchDistribution>;

}  // namespace kairos::workload
