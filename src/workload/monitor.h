// Query monitor (Sec. 5.2 "Remarks"): keeps a sliding window of the most
// recent query batch sizes (default 10,000) so the planner can read the
// batch-size mixture — the fraction f below any region boundary s — without
// extra profiling. This is the only workload knowledge Kairos assumes.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/status.h"
#include "workload/batch_dist.h"

namespace kairos::workload {

/// Sliding-window histogram over observed batch sizes.
class QueryMonitor {
 public:
  /// `window` = number of most recent queries retained.
  explicit QueryMonitor(std::size_t window = 10000);

  /// Records one observed batch size (clamped into [1, 1000]).
  void Observe(int batch_size);

  /// Number of observations currently in the window.
  std::size_t Count() const { return total_in_window_; }

  /// Fraction of windowed queries with batch size <= s. Returns 0 when the
  /// window is empty.
  double FractionAtOrBelow(int s) const;

  /// Mean batch size over the window (0 when empty).
  double MeanBatch() const;

  /// Mean batch size restricted to queries with batch <= s (0 if none).
  double MeanBatchAtOrBelow(int s) const;

  /// Mean batch size restricted to queries with batch > s (0 if none).
  double MeanBatchAbove(int s) const;

  /// Snapshot of the window as an empirical distribution.
  /// kFailedPrecondition when the window is empty (warm the monitor
  /// first). Until PR 5 this threw std::logic_error; it now follows the
  /// Status-based error convention of the rest of the public API (the
  /// same migration MakePolicyFactory -> PolicyRegistry::Build went
  /// through — see the deprecation note in core/kairos.h).
  StatusOr<EmpiricalBatches> Snapshot() const;

  /// Marks `reference_mean` as the planning-time batch mix that
  /// BatchMixDrift() measures against. The no-argument form freezes the
  /// monitor's own current MeanBatch() — call it right after planning.
  void MarkPlanningReference(double reference_mean);
  void MarkPlanningReference() { MarkPlanningReference(MeanBatch()); }

  /// The marked planning-time mean batch size; 0 when never marked.
  double reference_mean_batch() const { return reference_mean_batch_; }

  /// Windowed drift statistic: |MeanBatch() - reference| / reference —
  /// the relative shift of the current window's mean batch size from the
  /// planning-time snapshot. 0 while the window is empty or no reference
  /// is marked, so callers can gate on it without extra emptiness checks.
  double BatchMixDrift() const;

  /// Clears the window (used when the workload regime changes and stale
  /// statistics should be dropped). The planning reference survives — it
  /// describes the plan, not the window.
  void Reset();

 private:
  std::size_t window_;
  std::deque<int> recent_;
  std::vector<std::size_t> histogram_;  // index = batch size, 0 unused
  std::size_t total_in_window_ = 0;
  double sum_in_window_ = 0.0;
  double reference_mean_batch_ = 0.0;
};

}  // namespace kairos::workload
