// Additional batch-size distributions for robustness studies beyond the
// paper's log-normal/Gaussian pair: weighted mixtures (bimodal workloads
// are common in recommendation traffic: interactive singles + batch
// re-ranking) and a bounded Pareto for extreme-tail stress tests.
#pragma once

#include <memory>
#include <vector>

#include "workload/batch_dist.h"

namespace kairos::workload {

/// Weighted mixture of component distributions.
class MixtureBatches final : public BatchDistribution {
 public:
  struct Component {
    BatchDistributionPtr dist;
    double weight = 1.0;
  };

  /// Weights must be positive; they are normalized internally.
  explicit MixtureBatches(std::vector<Component> components);

  int Sample(Rng& rng) const override;
  double Cdf(int b) const override;
  std::string Name() const override;

  /// A bimodal interactive-plus-batch mix: 80% small interactive queries
  /// (log-normal around 20), 20% large re-ranking batches (Gaussian 600).
  static MixtureBatches BimodalDefault();

 private:
  std::vector<Component> components_;
  std::vector<double> weights_;  ///< normalized, for Categorical draws
};

/// Bounded Pareto (power-law) batch sizes on [1, 1000].
class ParetoBatches final : public BatchDistribution {
 public:
  /// `alpha` > 0 is the tail exponent; smaller = heavier tail.
  explicit ParetoBatches(double alpha);

  int Sample(Rng& rng) const override;
  double Cdf(int b) const override;
  std::string Name() const override;

 private:
  double alpha_;
  double norm_;  ///< 1 - (lo/hi)^alpha, the truncation mass
};

}  // namespace kairos::workload
