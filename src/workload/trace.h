// Pre-materialized query traces: a fixed sequence of (arrival time, batch
// size) pairs. Evaluating competing schemes on the *same* trace removes
// sampling noise from comparisons; the oracle scheme additionally requires
// the whole trace up front (it "knows the future").
#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/arrival.h"
#include "workload/batch_dist.h"
#include "workload/query.h"

namespace kairos::workload {

/// An immutable sequence of queries sorted by arrival time.
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Query> queries);

  const std::vector<Query>& queries() const { return queries_; }
  std::size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  /// Duration from time zero to the last arrival.
  Time Horizon() const;

  /// Mean offered load in queries/second over the horizon.
  double OfferedRate() const;

  /// Generates a trace of `count` queries from an arrival process and a
  /// batch distribution.
  static Trace Generate(const ArrivalProcess& arrivals,
                        const BatchDistribution& batches, std::size_t count,
                        Rng& rng);

  /// Re-times this trace's batch sequence to a new mean rate by scaling all
  /// gaps uniformly; batch sizes and their order are preserved. Used by the
  /// allowable-throughput evaluator so each rate trial sees the same mix.
  Trace Retimed(double new_rate_qps) const;

  /// The allocation-free form of Retimed(): writes the retimed sequence
  /// into `*out`, reusing its storage. The allowable-throughput evaluator
  /// calls this once per bracketing/bisection trial against one scratch
  /// trace instead of materializing a fresh query vector every trial.
  /// Produces exactly Retimed(new_rate_qps); `out` must not alias `this`.
  void RetimedInto(double new_rate_qps, Trace* out) const;

 private:
  std::vector<Query> queries_;
};

}  // namespace kairos::workload
