// The unit of work: an inference query carrying a batch of requests.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace kairos::workload {

/// Monotonically increasing query identifier.
using QueryId = std::uint64_t;

/// One inference query (a batch of requests served by one model copy at a
/// time, Sec. 6).
struct Query {
  QueryId id = 0;
  int batch_size = 1;       ///< number of batched requests, in [1, 1000]
  Time arrival = 0.0;       ///< when the query entered the system
};

}  // namespace kairos::workload
