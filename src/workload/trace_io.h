// Trace persistence: save and load query traces as CSV so experiments can
// be replayed bit-for-bit across runs and shared like the paper's
// production trace artifact. Format: header "id,arrival_s,batch" then one
// row per query, sorted by arrival.
//
// Two read paths share one row parser (so their semantics cannot drift):
//   - ReadTraceCsv materializes the whole trace (small files, comparisons);
//   - StreamingTraceReader pulls queries in bounded-memory chunks, the
//     million-user scale path (DESIGN.md Sec. 12). Files ending in ".gz"
//     are decompressed transparently when the build found zlib.
// All entry points follow the repo-wide Status/StatusOr contract; the
// historical throwing Save/LoadTraceCsv names remain as deprecated shims.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "workload/trace.h"

namespace kairos::workload {

/// Writes a trace to a stream (CSV with header). Fails with kInternal when
/// the stream enters a failed state mid-write.
Status WriteTraceCsv(const Trace& trace, std::ostream& os);

/// Writes a trace to a file; kNotFound when the path cannot be opened,
/// kInternal when the write fails.
Status WriteTraceCsv(const Trace& trace, const std::string& path);

/// Parses a trace from a stream. kInvalidArgument on malformed input (bad
/// header, non-numeric fields, non-finite or negative arrivals, unsorted
/// arrivals, batch out of [1, 1000]) with the offending line number in the
/// message.
StatusOr<Trace> ReadTraceCsv(std::istream& is);

/// Reads a trace from a file (".gz" paths are decompressed when zlib is
/// built in); kNotFound when the file cannot be opened. Implemented over
/// StreamingTraceReader, so it accepts exactly what streaming accepts.
StatusOr<Trace> ReadTraceCsv(const std::string& path);

/// Deprecated throwing shims predating the Status contract (DESIGN.md
/// Sec. 7); the exception message is exactly Status::ToString().
[[deprecated("use WriteTraceCsv")]] void SaveTraceCsv(const Trace& trace,
                                                      std::ostream& os);
[[deprecated("use WriteTraceCsv")]] void SaveTraceCsv(
    const Trace& trace, const std::string& path);
[[deprecated("use ReadTraceCsv")]] Trace LoadTraceCsv(std::istream& is);
[[deprecated("use ReadTraceCsv")]] Trace LoadTraceCsv(
    const std::string& path);

/// True when this build can read ".gz" traces (zlib was found by CMake).
bool TraceGzipSupported();

/// Knobs for StreamingTraceReader.
struct StreamingTraceOptions {
  /// Bytes pulled from the file per refill; 0 reads the whole file in one
  /// chunk. Any value yields the identical query sequence (chunk-size
  /// invariance is property-tested); the default keeps resident memory a
  /// few tens of KB regardless of trace size.
  std::size_t chunk_bytes = 65536;
};

/// Pulls queries one at a time from a trace CSV without materializing it:
/// resident memory is O(chunk_bytes + longest line), never O(file). The
/// reader enforces the same validation as ReadTraceCsv (shared parser) and
/// reports errors with 64-bit line numbers, so multi-GB traces with >4G
/// rows still produce precise diagnostics.
namespace detail {
class TraceByteSource;  // plain-file / gzip chunk reader
}  // namespace detail

class StreamingTraceReader {
 public:
  /// Opens `path` and validates the header eagerly. kNotFound when the
  /// file cannot be opened, kFailedPrecondition for ".gz" without zlib,
  /// kInvalidArgument for a bad header.
  static StatusOr<StreamingTraceReader> Open(
      const std::string& path, StreamingTraceOptions options = {});

  StreamingTraceReader(StreamingTraceReader&&) noexcept;
  StreamingTraceReader& operator=(StreamingTraceReader&&) noexcept;
  ~StreamingTraceReader();

  /// Fills `*out` with the next query and returns true; returns false at
  /// clean end-of-file. Malformed rows fail with the same kInvalidArgument
  /// statuses as ReadTraceCsv; the error is sticky (every later call
  /// returns it again).
  StatusOr<bool> Next(Query* out);

  /// Rewinds to the first query (re-validating the header) and clears any
  /// sticky error so replay trials can reuse one open reader.
  Status Rewind();

  const std::string& path() const { return path_; }

  /// Queries successfully returned by Next() since open/rewind.
  std::uint64_t queries_read() const { return queries_read_; }

 private:
  StreamingTraceReader(std::string path, StreamingTraceOptions options,
                       std::unique_ptr<detail::TraceByteSource> source);

  /// Extracts the next newline-terminated line (or the unterminated final
  /// line) into `*line`; false at end of input.
  StatusOr<bool> NextLine(std::string* line);

  /// Reads and validates the header line.
  Status ReadHeader();

  std::string path_;
  StreamingTraceOptions options_;
  std::unique_ptr<detail::TraceByteSource> source_;
  std::string pending_;       ///< bytes read but not yet consumed
  std::size_t pending_pos_ = 0;
  std::string line_;          ///< scratch for the current line
  bool source_eof_ = false;
  std::uint64_t line_no_ = 0;
  std::uint64_t queries_read_ = 0;
  double last_arrival_ = 0.0;
  bool exhausted_ = false;
  Status sticky_;  ///< first parse/IO error; returned by every later Next()
};

}  // namespace kairos::workload
