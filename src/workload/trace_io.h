// Trace persistence: save and load query traces as CSV so experiments can
// be replayed bit-for-bit across runs and shared like the paper's
// production trace artifact. Format: header "id,arrival_s,batch" then one
// row per query, sorted by arrival.
#pragma once

#include <iosfwd>
#include <string>

#include "workload/trace.h"

namespace kairos::workload {

/// Writes a trace to a stream (CSV with header).
void SaveTraceCsv(const Trace& trace, std::ostream& os);

/// Writes a trace to a file; throws std::runtime_error on I/O failure.
void SaveTraceCsv(const Trace& trace, const std::string& path);

/// Parses a trace from a stream; throws std::runtime_error on malformed
/// input (bad header, non-numeric fields, unsorted arrivals, batch out of
/// [1, 1000]).
Trace LoadTraceCsv(std::istream& is);

/// Reads a trace from a file; throws std::runtime_error when the file
/// cannot be opened or parsed.
Trace LoadTraceCsv(const std::string& path);

}  // namespace kairos::workload
