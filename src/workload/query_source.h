// Streaming query sources for the online serving engine (DESIGN.md
// Sec. 8): one pull-based interface unifying the two ways this repo
// produces queries — materialized traces (workload/trace.h) and live
// arrival processes (workload/arrival.h + workload/batch_dist.h). The
// engine pulls one emission at a time, so sources may be unbounded and
// the engine can stretch inter-arrival gaps mid-run (load changes,
// Fig. 12) without re-materializing anything.
//
// Sources are built by name through the QuerySourceRegistry (TRACE,
// STREAM, POISSON, UNIFORM, GAUSSIAN, PRODUCTION) with Status-based
// errors, the same pattern as the policy / planner / allocator registries;
// programmatic injection goes through serving::Engine::Submit instead.
// STREAM is the million-user scale path: it pulls queries from a trace CSV
// on disk in bounded-memory chunks (DESIGN.md Sec. 12) instead of
// materializing the trace like TRACE does.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "workload/trace.h"
#include "workload/trace_io.h"

namespace kairos::workload {

/// One pending emission: the gap (seconds) since the source's previous
/// emission, and the batch size of the query to inject.
struct Emission {
  Time gap = 0.0;
  int batch = 1;
};

/// Pull-based stream of queries. Implementations must be deterministic
/// given the Rng the caller threads through Next().
class QuerySource {
 public:
  virtual ~QuerySource() = default;

  /// The next emission, or nullopt when the source is exhausted. The
  /// caller owns arrival-time bookkeeping (and may stretch gaps).
  virtual std::optional<Emission> Next(Rng& rng) = 0;

  /// Mean emission rate in queries/second at gap scale 1; 0 when unknown.
  virtual double Rate() const = 0;

  /// Short human-readable name for reports ("trace", "poisson", ...).
  virtual std::string Name() const = 0;

  /// Rewinds to the beginning (meaningful for trace replay); stochastic
  /// sources are memoryless and default to a no-op.
  virtual void Reset() {}
};

/// Replays a materialized trace: gaps are the consecutive arrival-time
/// differences (the first gap is the first query's arrival time), batches
/// and their order are preserved exactly.
class TraceSource final : public QuerySource {
 public:
  explicit TraceSource(Trace trace);

  std::optional<Emission> Next(Rng& rng) override;
  double Rate() const override { return trace_.OfferedRate(); }
  std::string Name() const override { return "trace"; }
  void Reset() override { next_ = 0; }

 private:
  Trace trace_;
  std::size_t next_ = 0;
};

/// Draws gaps from an ArrivalProcess and batches from a
/// BatchDistribution; optionally stops after `limit` emissions
/// (0 = unbounded).
class ProcessSource final : public QuerySource {
 public:
  /// Both pointers must be non-null.
  ProcessSource(std::unique_ptr<ArrivalProcess> arrivals,
                std::unique_ptr<BatchDistribution> batches,
                std::size_t limit = 0);

  std::optional<Emission> Next(Rng& rng) override;
  double Rate() const override { return arrivals_->Rate(); }
  std::string Name() const override;
  void Reset() override { emitted_ = 0; }

 private:
  std::unique_ptr<ArrivalProcess> arrivals_;
  std::unique_ptr<BatchDistribution> batches_;
  std::size_t limit_;
  std::size_t emitted_ = 0;
};

/// Replays a trace CSV straight from disk through a StreamingTraceReader:
/// same gap semantics as TraceSource (field-by-field identical emissions
/// for the same file) at O(chunk) resident memory instead of O(trace).
/// A read/parse error mid-stream ends the source (Next -> nullopt) and is
/// reported through status().
class StreamingTraceSource final : public QuerySource {
 public:
  explicit StreamingTraceSource(StreamingTraceReader reader);

  std::optional<Emission> Next(Rng& rng) override;
  /// Unknown without a full scan; callers needing a rate must supply it.
  double Rate() const override { return 0.0; }
  std::string Name() const override;
  void Reset() override;

  /// OK while streaming is healthy; the first read/parse/rewind error
  /// otherwise (sticky, mirrors StreamingTraceReader).
  const Status& status() const { return status_; }

 private:
  StreamingTraceReader reader_;
  double last_arrival_ = 0.0;
  Status status_;
};

/// Registry build request: which named source, and its parameters. The
/// unnamed-parameter style mirrors serving::EvalOptions — named sources
/// read the fields they need and ignore the rest.
struct QuerySourceSpec {
  /// Registry name, case-insensitive: "TRACE", "STREAM", "POISSON",
  /// "UNIFORM", "GAUSSIAN", "PRODUCTION".
  std::string source;
  /// Mean arrival rate for process-backed sources, queries/second.
  double rate_qps = 100.0;
  /// Emissions before the source reports exhaustion; 0 = unbounded
  /// (process-backed sources only; TRACE always ends with its trace).
  std::size_t limit = 0;
  /// Constant batch size for POISSON / UNIFORM (their arrival process is
  /// the point; <=0 means batch 1).
  int batch = 1;
  /// The trace to replay; required non-empty for "TRACE".
  Trace trace;
  /// Trace CSV file to stream; required non-empty for "STREAM" (".gz"
  /// accepted when zlib is built in).
  std::string path;
  /// STREAM refill size in bytes; 0 reads the whole file in one chunk.
  /// Any value produces the identical query sequence.
  std::size_t chunk_bytes = 65536;
};

/// Builds one source from a validated spec.
using QuerySourceBuilder = std::function<StatusOr<std::unique_ptr<QuerySource>>(
    const QuerySourceSpec& spec)>;

/// Process-wide name -> source-builder table, mirroring PolicyRegistry:
/// static registrars populate it, lookup is case-insensitive, unknown
/// names come back as kNotFound listing the alternatives.
class QuerySourceRegistry {
 public:
  static QuerySourceRegistry& Global();

  /// Fails with kInvalidArgument when the (canonical) name is empty or
  /// already taken.
  Status Register(std::string name, std::string summary,
                  QuerySourceBuilder builder);

  /// Canonical source names, sorted alphabetically.
  std::vector<std::string> ListNames() const;

  bool Contains(const std::string& name) const;

  /// One-line description of a source.
  StatusOr<std::string> Summary(const std::string& name) const;

  /// Builds a source. kNotFound for an unknown spec.source (listing the
  /// registered names), kInvalidArgument for bad parameters (rate <= 0,
  /// empty TRACE trace).
  StatusOr<std::unique_ptr<QuerySource>> Build(
      const QuerySourceSpec& spec) const;

 private:
  struct Entry {
    std::string summary;
    QuerySourceBuilder builder;
  };
  std::map<std::string, Entry> entries_;  ///< keyed by canonical name
};

/// Static-initialization helper, same pattern as PolicyRegistrar.
class QuerySourceRegistrar {
 public:
  QuerySourceRegistrar(std::string name, std::string summary,
                       QuerySourceBuilder builder);
};

}  // namespace kairos::workload

namespace kairos {
/// Part of the top-level public API surface, like the other registries.
using workload::QuerySourceRegistry;
}  // namespace kairos
