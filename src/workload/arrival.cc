#include "workload/arrival.h"

#include <stdexcept>

namespace kairos::workload {

PoissonArrivals::PoissonArrivals(double rate_qps) : rate_(rate_qps) {
  if (rate_qps <= 0.0) throw std::invalid_argument("PoissonArrivals: rate<=0");
}

Time PoissonArrivals::NextGap(Rng& rng) const {
  return rng.Exponential(rate_);
}

UniformArrivals::UniformArrivals(double rate_qps) : gap_(1.0 / rate_qps) {
  if (rate_qps <= 0.0) throw std::invalid_argument("UniformArrivals: rate<=0");
}

}  // namespace kairos::workload
