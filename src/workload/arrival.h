// Query arrival processes. The paper drives evaluation with Poisson
// inter-arrivals at 100s of queries per second (Sec. 7).
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "common/time.h"

namespace kairos::workload {

/// Interface for inter-arrival-time generators.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Draws the gap (seconds) until the next arrival.
  virtual Time NextGap(Rng& rng) const = 0;

  /// Mean arrival rate (queries per second).
  virtual double Rate() const = 0;

  virtual std::string Name() const = 0;
};

/// Poisson process: exponential inter-arrival gaps.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_qps);

  Time NextGap(Rng& rng) const override;
  double Rate() const override { return rate_; }
  std::string Name() const override { return "poisson"; }

 private:
  double rate_;
};

/// Fixed-gap arrivals; useful for deterministic tests.
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double rate_qps);

  Time NextGap(Rng&) const override { return gap_; }
  double Rate() const override { return 1.0 / gap_; }
  std::string Name() const override { return "uniform"; }

 private:
  Time gap_;
};

}  // namespace kairos::workload
