#include "workload/monitor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "latency/latency_model.h"

namespace kairos::workload {

QueryMonitor::QueryMonitor(std::size_t window)
    : window_(window), histogram_(latency::kMaxBatchSize + 1, 0) {
  if (window == 0) throw std::invalid_argument("QueryMonitor: window == 0");
}

void QueryMonitor::Observe(int batch_size) {
  const int b = std::clamp(batch_size, 1, int{latency::kMaxBatchSize});
  recent_.push_back(b);
  ++histogram_[static_cast<std::size_t>(b)];
  ++total_in_window_;
  sum_in_window_ += b;
  if (recent_.size() > window_) {
    const int evicted = recent_.front();
    recent_.pop_front();
    --histogram_[static_cast<std::size_t>(evicted)];
    --total_in_window_;
    sum_in_window_ -= evicted;
  }
}

double QueryMonitor::FractionAtOrBelow(int s) const {
  if (total_in_window_ == 0) return 0.0;
  const int cap = std::clamp(s, 0, int{latency::kMaxBatchSize});
  std::size_t below = 0;
  for (int b = 1; b <= cap; ++b) below += histogram_[static_cast<std::size_t>(b)];
  return static_cast<double>(below) / static_cast<double>(total_in_window_);
}

double QueryMonitor::MeanBatch() const {
  if (total_in_window_ == 0) return 0.0;
  return sum_in_window_ / static_cast<double>(total_in_window_);
}

double QueryMonitor::MeanBatchAtOrBelow(int s) const {
  const int cap = std::clamp(s, 0, int{latency::kMaxBatchSize});
  std::size_t count = 0;
  double sum = 0.0;
  for (int b = 1; b <= cap; ++b) {
    count += histogram_[static_cast<std::size_t>(b)];
    sum += static_cast<double>(histogram_[static_cast<std::size_t>(b)]) * b;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double QueryMonitor::MeanBatchAbove(int s) const {
  const int floor = std::clamp(s, 0, int{latency::kMaxBatchSize});
  std::size_t count = 0;
  double sum = 0.0;
  for (int b = floor + 1; b <= latency::kMaxBatchSize; ++b) {
    count += histogram_[static_cast<std::size_t>(b)];
    sum += static_cast<double>(histogram_[static_cast<std::size_t>(b)]) * b;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

StatusOr<EmpiricalBatches> QueryMonitor::Snapshot() const {
  if (recent_.empty()) {
    return Status::FailedPrecondition(
        "QueryMonitor::Snapshot: empty window; Observe() queries (or warm "
        "from a mix) before snapshotting");
  }
  return EmpiricalBatches(std::vector<int>(recent_.begin(), recent_.end()));
}

void QueryMonitor::MarkPlanningReference(double reference_mean) {
  reference_mean_batch_ = reference_mean;
}

double QueryMonitor::BatchMixDrift() const {
  if (reference_mean_batch_ <= 0.0 || total_in_window_ == 0) return 0.0;
  return std::abs(MeanBatch() - reference_mean_batch_) /
         reference_mean_batch_;
}

void QueryMonitor::Reset() {
  recent_.clear();
  std::fill(histogram_.begin(), histogram_.end(), 0);
  total_in_window_ = 0;
  sum_in_window_ = 0.0;
}

}  // namespace kairos::workload
