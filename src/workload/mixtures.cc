#include "workload/mixtures.h"

#include <cmath>
#include <stdexcept>

#include "latency/latency_model.h"

namespace kairos::workload {

MixtureBatches::MixtureBatches(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("MixtureBatches: no components");
  }
  double total = 0.0;
  for (const Component& c : components_) {
    if (!c.dist || c.weight <= 0.0) {
      throw std::invalid_argument("MixtureBatches: bad component");
    }
    total += c.weight;
  }
  weights_.reserve(components_.size());
  for (const Component& c : components_) {
    weights_.push_back(c.weight / total);
  }
}

int MixtureBatches::Sample(Rng& rng) const {
  const std::size_t idx = rng.Categorical(weights_);
  return components_[idx].dist->Sample(rng);
}

double MixtureBatches::Cdf(int b) const {
  double cdf = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    cdf += weights_[i] * components_[i].dist->Cdf(b);
  }
  return cdf;
}

std::string MixtureBatches::Name() const {
  return "mixture(" + std::to_string(components_.size()) + ")";
}

MixtureBatches MixtureBatches::BimodalDefault() {
  std::vector<Component> components;
  components.push_back(
      {std::make_shared<LogNormalBatches>(std::log(20.0), 0.8), 0.8});
  components.push_back(
      {std::make_shared<GaussianBatches>(600.0, 80.0), 0.2});
  return MixtureBatches(std::move(components));
}

ParetoBatches::ParetoBatches(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0) throw std::invalid_argument("ParetoBatches: alpha <= 0");
  norm_ = 1.0 - std::pow(1.0 / double{latency::kMaxBatchSize}, alpha_);
}

int ParetoBatches::Sample(Rng& rng) const {
  // Inverse-CDF sampling of the bounded Pareto on [1, cap].
  const double u = rng.Uniform() * norm_;
  const double x = std::pow(1.0 - u, -1.0 / alpha_);
  const int b = static_cast<int>(x);
  return std::min(std::max(b, 1), int{latency::kMaxBatchSize});
}

double ParetoBatches::Cdf(int b) const {
  if (b < 1) return 0.0;
  if (b >= latency::kMaxBatchSize) return 1.0;
  return (1.0 - std::pow(static_cast<double>(b), -alpha_)) / norm_;
}

std::string ParetoBatches::Name() const {
  return "pareto(alpha=" + std::to_string(alpha_) + ")";
}

}  // namespace kairos::workload
