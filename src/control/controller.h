// The fleet control plane (DESIGN.md Sec. 10): pluggable strategies that
// watch a running Fleet::ServeAll co-simulation and decide *when* the
// fleet should react — re-split the budget and re-plan (reallocation), or
// drop stale workload statistics (monitor reset). The paper's Kairos
// reacts to workload change by re-reading the query monitor and
// replanning; this subsystem generalizes the single hardwired trigger
// (a fixed reallocation timer) into registry-selected controllers, the
// same pattern PolicyRegistry / PlannerRegistry / AllocatorRegistry use:
//
//   * PERIODIC  — fire a reallocation every period_s (the pre-control-
//                 plane Fleet::ServeAll behavior, reproduced bit for bit);
//   * QOS       — fire when a model's windowed p99 violates its QoS
//                 target for patience_windows consecutive windows;
//   * BACKLOG   — fire when a model's engine backlog exceeds backlog_s
//                 seconds of work at the observed arrival rate;
//   * DRIFT     — fire a monitor reset + reallocation when the live
//                 batch mix drifts from the planning-time snapshot;
//   * COMPOSITE — chain any of the above, deduplicating actions.
//
// Controllers never touch engines or allocators. At every barrier of the
// co-simulation the fleet hands them a read-only FleetTelemetry snapshot
// and applies whatever typed ControlActions come back. Determinism
// contract: Decide() must be a pure function of the telemetry and of
// state accumulated from *previous Decide() calls* — no clocks, RNG, or
// ambient state — so the action sequence is bit-identical for every
// serve_threads value (asserted by tests/control_test.cc).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "policy/registry.h"  // KnobMap + CanonicalSchemeName
#include "serving/engine.h"   // WindowedMetrics

namespace kairos::control {

/// Controllers reuse the policy registry's knob convention: named numeric
/// tunables, booleans encoded as 0.0 / 1.0.
using policy::KnobMap;

/// ControlAction::model value meaning "the whole fleet".
inline constexpr std::size_t kAllModels =
    std::numeric_limits<std::size_t>::max();

/// One served model's slice of the telemetry snapshot. Index order is the
/// served plan's model order (FleetServeResult::models).
struct ModelTelemetry {
  std::string model;             ///< fleet-unique serving name
  double arrival_scale = 1.0;    ///< configured demand prior
  double share_per_hour = 0.0;   ///< current budget share in $/hr
  double qos_ms = 0.0;           ///< effective QoS target
  std::size_t offered = 0;       ///< cumulative arrivals accepted so far
  std::size_t served = 0;        ///< cumulative completions so far
  /// Engine backlog depth: queries accepted but not yet completed
  /// (central queue + per-instance FIFOs + executing).
  std::size_t backlog = 0;
  /// Observed arrival rate since the last applied reallocation (or since
  /// the start of the run), queries per simulated second.
  double observed_rate_qps = 0.0;
  /// Mean batch size of the planning-time monitor snapshot — what the
  /// current configuration was planned against.
  double plan_mean_batch = 0.0;
  /// Mean batch size of the live arrival stream's sliding window.
  double live_mean_batch = 0.0;
  /// Samples behind live_mean_batch (drift tests should gate on this).
  std::size_t live_queries = 0;
  /// QueryMonitor::BatchMixDrift() of the live stream vs the planning
  /// reference: |live - plan| / plan, 0 while unknown.
  double drift = 0.0;
  /// Assignable (live, non-retiring) instances right now.
  std::size_t live_instances = 0;
  /// Instances the current target configuration asks for.
  std::size_t target_instances = 0;
  /// Launches in flight (scheduled but not booted yet).
  std::size_t pending_instances = 0;
  /// Cumulative instances lost to chaos (preemption hard kills + abrupt
  /// deaths) since the start of the run. 0 without a chaos injector.
  std::size_t instances_lost = 0;
  /// Cumulative spot reclamation notices issued since the start of the
  /// run. A notice precedes its hard kill by the market's notice window,
  /// so notices lead instances_lost — the failover controller's early
  /// signal.
  std::size_t preemption_notices = 0;
  /// Cumulative arrivals rejected at admission (bounded queue full).
  std::size_t rejected = 0;
  /// Cumulative queued queries dropped by deadline shedding.
  std::size_t shed = 0;
  /// The engine's active shed deadline in seconds; 0 = shedding off.
  /// The SHED controller reads this to know which regime it is in even
  /// across a controller swap.
  double shed_deadline_s = 0.0;
  /// Instantaneous spot discount multiplier on this model's billed spend
  /// at the barrier time (SpotMarket::DiscountAt); 1.0 when the model
  /// rents on demand. Curve-riding controllers read this to buy into
  /// price troughs.
  double spot_discount = 1.0;
  /// Closed WindowedMetrics history, shared grid across all models; the
  /// pointer stays valid for the duration of the Decide() call.
  const std::vector<serving::WindowedMetrics>* windows = nullptr;
};

/// Everything a controller may consult at one barrier.
struct FleetTelemetry {
  Time now = 0.0;                ///< barrier time, simulated seconds
  double duration_s = 0.0;       ///< run horizon
  double window_s = 0.0;         ///< window cadence
  double budget_per_hour = 0.0;  ///< global envelope
  /// True when this barrier just closed a WindowedMetrics window (the
  /// snapshot runs before the controller is consulted, so windows->back()
  /// is the freshly closed window).
  bool window_closed = false;
  std::size_t windows_closed = 0;  ///< closed windows so far
  /// Time of the last applied reallocation; 0 when none ran yet.
  Time last_reallocation = 0.0;
  std::vector<ModelTelemetry> models;  ///< served-plan order
};

/// What a controller can ask the fleet to do.
enum class ControlActionKind {
  /// Re-split the global budget on observed demand, re-plan every model
  /// inside its new share, and reconfigure the live engines (launch lag
  /// modeled). Fleet-wide; `model` is ignored.
  kReallocate,
  /// Drop model `model`'s stale planning-time workload statistics and
  /// plan subsequent reallocations against the live arrival stream's
  /// sliding window instead (the paper's ResetMonitor regime change).
  kResetMonitor,
  /// Re-spread model `model`'s current target configuration across fresh
  /// instances: re-issue the target so the engine schedules replacement
  /// launches for capacity lost (or noticed as lost) to chaos, without
  /// re-splitting the budget. Cheap and local — the fast first response
  /// to a reclamation notice, fired while the victim is still draining.
  kRespread,
  /// Re-plan model `model` from scratch inside its current budget share
  /// and reconfigure to the result. The heavy response to a preemption
  /// storm: the survivor set may want a different instance mix than the
  /// pre-storm plan. Skipped when a same-barrier kReallocate already
  /// replans the whole fleet.
  kFailover,
  /// Set model `model`'s deadline-shedding knob to ControlAction::
  /// deadline_s (seconds; 0 restores full admission). Graceful
  /// degradation: the SHED controller arms shedding *before* a model
  /// violates QoS and restores it once the backlog drains
  /// (DESIGN.md Sec. 12). Other admission knobs are untouched.
  kSetShed,
  /// Borrow ControlAction::amount_per_hour of budget for model `model`
  /// from the unaffected models' headroom (share above floor, taken
  /// proportionally) and re-plan both sides; amount_per_hour == 0 repays
  /// every outstanding loan of `model` instead. The fleet keeps a loan
  /// ledger so borrow == payback holds exactly (conservation invariant,
  /// DESIGN.md Sec. 11); a same-barrier kReallocate clears the ledger —
  /// a full re-split supersedes the loans.
  kBorrowBudget,
};

/// Human-readable action name ("REALLOCATE", "RESET_MONITOR", ...).
const char* ControlActionName(ControlActionKind kind);

/// One typed decision returned by FleetController::Decide.
struct ControlAction {
  ControlActionKind kind = ControlActionKind::kReallocate;
  /// Target model index (telemetry order) for kResetMonitor / kRespread /
  /// kFailover; kAllModels for fleet-wide actions.
  std::size_t model = kAllModels;
  /// kReallocate only: the measurement interval the demand rates should
  /// be computed over, in simulated seconds; 0 = time since the previous
  /// reallocation. PERIODIC pins this to its period so the refactored
  /// loop reproduces the fixed-timer arithmetic bit for bit.
  double interval_s = 0.0;
  /// kSetShed only: the deadline to install (seconds past arrival after
  /// which a queued query is dropped); 0 turns shedding off.
  double deadline_s = 0.0;
  /// kBorrowBudget only: the $/hr to borrow for `model`; 0 = repay every
  /// outstanding loan of `model`. The fleet caps the grant at the donors'
  /// available headroom.
  double amount_per_hour = 0.0;
  /// Why the controller fired — surfaced in FleetServeResult::control_log.
  std::string reason;
};

/// The shape of one ServeAll run, offered to controllers that want their
/// own barrier times merged into the window grid.
struct ControlSchedule {
  double duration_s = 0.0;
  double window_s = 0.0;
};

/// A fleet control strategy. Implementations must uphold the determinism
/// contract in the header comment; they may keep internal state across
/// Decide() calls (cooldowns, consecutive-violation counters).
class FleetController {
 public:
  virtual ~FleetController() = default;

  /// Canonical controller name ("PERIODIC", ...).
  virtual std::string Name() const = 0;

  /// Extra barrier times (strictly inside (0, duration)) this controller
  /// wants the fleet to stop at, beyond the window grid. The default —
  /// none — means the controller decides on window boundaries only.
  virtual std::vector<Time> DecisionTimes(const ControlSchedule&) const {
    return {};
  }

  /// True when Decide() consults the live batch-mix fields
  /// (live_mean_batch / live_queries / drift) or emits kResetMonitor.
  /// Only then does the fleet tap every arrival into per-shard live
  /// monitors — controllers that never read the mix (PERIODIC, QOS,
  /// BACKLOG) keep the arrival hot path at its pre-control-plane cost,
  /// and see those telemetry fields as zero.
  virtual bool NeedsLiveMix() const { return false; }

  /// Consulted at every barrier except the horizon (an action applied
  /// there could never serve a query), after the window snapshot.
  /// Returns the actions the fleet should apply; monitor resets are
  /// applied before a same-barrier reallocation regardless of order.
  virtual std::vector<ControlAction> Decide(const FleetTelemetry&) = 0;
};

/// Registration-time description of one controller.
struct ControllerInfo {
  std::string name;     ///< canonical name, e.g. "QOS" (upper-cased)
  std::string summary;  ///< one-line description for listings
  KnobMap knobs;        ///< supported knob names with their defaults
};

/// Builds a controller from a *complete* knob map (defaults merged with
/// the caller's overrides). kInvalidArgument for an out-of-range value.
using ControllerBuilder =
    std::function<StatusOr<std::unique_ptr<FleetController>>(
        const KnobMap& knobs)>;

/// Process-wide name -> controller table, mirroring PolicyRegistry:
/// static registrars populate it, lookup is case-insensitive, unknown
/// names come back as kNotFound listing the alternatives.
class ControllerRegistry {
 public:
  static ControllerRegistry& Global();

  Status Register(ControllerInfo info, ControllerBuilder builder);

  /// Canonical controller names, sorted alphabetically.
  std::vector<std::string> ListNames() const;

  bool Contains(const std::string& name) const;

  /// Registration info (canonical name, summary, knobs).
  StatusOr<ControllerInfo> Info(const std::string& name) const;

  /// Builds a controller by (case-insensitive) name. `overrides` may set
  /// any subset of the declared knobs; an undeclared knob name or an
  /// out-of-range value is kInvalidArgument.
  StatusOr<std::unique_ptr<FleetController>> Build(
      const std::string& name, const KnobMap& overrides = {}) const;

 private:
  struct Entry {
    ControllerInfo info;
    ControllerBuilder builder;
  };

  StatusOr<Entry> Find(const std::string& name) const;

  std::map<std::string, Entry> entries_;  ///< keyed by canonical name
};

/// Static-initialization helper, same pattern as PolicyRegistrar.
class ControllerRegistrar {
 public:
  ControllerRegistrar(ControllerInfo info, ControllerBuilder builder) {
    const Status status = ControllerRegistry::Global().Register(
        std::move(info), std::move(builder));
    if (!status.ok()) {
      std::fprintf(stderr, "ControllerRegistrar: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace kairos::control

namespace kairos {
using control::ControllerRegistry;
using control::FleetController;
}  // namespace kairos
