// "QOS": reallocate when a model's windowed p99 violates its QoS target.
// The fixed-timer loop reacts up to one full period late; this controller
// watches every freshly closed window and fires the moment a model has
// been in violation for patience_windows consecutive windows, so the
// fleet re-splits its budget within roughly one window of a load spike
// (ROADMAP: "QoS-aware reallocation triggers").
#include <string>

#include "common/strings.h"
#include "control/controllers.h"

namespace kairos::control {
namespace {

class QosController final : public FleetController {
 public:
  explicit QosController(QosControllerOptions options) : options_(options) {}

  std::string Name() const override { return "QOS"; }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    if (!telemetry.window_closed) return {};
    consecutive_bad_.resize(telemetry.models.size(), 0);
    ++windows_since_fire_;

    // Update per-model violation streaks from the freshly closed window.
    std::size_t worst = telemetry.models.size();
    double worst_p99 = 0.0;
    for (std::size_t j = 0; j < telemetry.models.size(); ++j) {
      const ModelTelemetry& model = telemetry.models[j];
      if (model.windows == nullptr || model.windows->empty()) continue;
      const serving::WindowedMetrics& window = model.windows->back();
      const bool violated =
          window.served >= options_.min_served &&
          window.p99_ms > options_.p99_scale * model.qos_ms;
      consecutive_bad_[j] = violated ? consecutive_bad_[j] + 1 : 0;
      if (consecutive_bad_[j] >= options_.patience_windows &&
          window.p99_ms > worst_p99) {
        worst = j;
        worst_p99 = window.p99_ms;
      }
    }

    if (worst == telemetry.models.size()) return {};
    if (windows_since_fire_ <= options_.cooldown_windows) return {};

    windows_since_fire_ = 0;
    for (std::size_t& streak : consecutive_bad_) streak = 0;
    ControlAction action;
    action.kind = ControlActionKind::kReallocate;
    action.reason = telemetry.models[worst].model + " p99 " +
                    FormatNumber(worst_p99) + "ms over the " +
                    FormatNumber(options_.p99_scale *
                                 telemetry.models[worst].qos_ms) +
                    "ms QoS bound for " +
                    std::to_string(options_.patience_windows) + " window(s)";
    return {action};
  }

 private:
  QosControllerOptions options_;
  std::vector<std::size_t> consecutive_bad_;  ///< per model, telemetry order
  /// Closed windows since the last fire; starts beyond any cooldown so
  /// the first violation is actionable immediately.
  std::size_t windows_since_fire_ = 1u << 20;
};

const ControllerRegistrar kQos(
    ControllerInfo{"QOS",
                   "reallocate when a model's windowed p99 exceeds "
                   "p99_scale * QoS for patience_windows consecutive "
                   "windows",
                   {{"p99_scale", 1.0},
                    {"patience_windows", 1.0},
                    {"cooldown_windows", 1.0},
                    {"min_served", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      QosControllerOptions options;
      options.p99_scale = knobs.at("p99_scale");
      if (options.p99_scale <= 0.0) {
        return Status::InvalidArgument(
            "controller QOS: p99_scale must be positive");
      }
      const double patience = knobs.at("patience_windows");
      if (patience < 1.0) {
        return Status::InvalidArgument(
            "controller QOS: patience_windows must be >= 1");
      }
      options.patience_windows = static_cast<std::size_t>(patience);
      const double cooldown = knobs.at("cooldown_windows");
      if (cooldown < 0.0) {
        return Status::InvalidArgument(
            "controller QOS: cooldown_windows must be >= 0");
      }
      options.cooldown_windows = static_cast<std::size_t>(cooldown);
      const double min_served = knobs.at("min_served");
      if (min_served < 0.0) {
        return Status::InvalidArgument(
            "controller QOS: min_served must be >= 0");
      }
      options.min_served = static_cast<std::size_t>(min_served);
      return MakeQosController(options);
    });

}  // namespace

std::unique_ptr<FleetController> MakeQosController(
    QosControllerOptions options) {
  return std::make_unique<QosController>(options);
}

}  // namespace kairos::control
