// "COMPOSITE": chains several controllers into one closed loop. Children
// are consulted in order at every barrier; their actions concatenate with
// three dedup rules — at most one kReallocate per barrier (the first
// child's reason wins; one re-split already replans every model), at
// most one kResetMonitor per model, and at most one chaos recovery
// (kRespread / kFailover) per model per barrier. The registry build
// chains QOS + BACKLOG + DRIFT (+ FAILOVER when toggled on, + PERIODIC
// as a slow safety net when period_s is set), each child with its
// default thresholds; custom chains go through MakeCompositeController.
#include <string>
#include <utility>

#include "control/controllers.h"

namespace kairos::control {
namespace {

class CompositeController final : public FleetController {
 public:
  explicit CompositeController(
      std::vector<std::unique_ptr<FleetController>> children)
      : children_(std::move(children)) {}

  std::string Name() const override { return "COMPOSITE"; }

  bool NeedsLiveMix() const override {
    for (const auto& child : children_) {
      if (child->NeedsLiveMix()) return true;
    }
    return false;
  }

  std::vector<Time> DecisionTimes(const ControlSchedule& schedule) const
      override {
    // Duplicates are fine: the fleet merges these into one barrier map.
    std::vector<Time> times;
    for (const auto& child : children_) {
      const std::vector<Time> child_times = child->DecisionTimes(schedule);
      times.insert(times.end(), child_times.begin(), child_times.end());
    }
    return times;
  }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    std::vector<ControlAction> actions;
    bool reallocated = false;
    std::vector<bool> reset(telemetry.models.size(), false);
    std::vector<bool> recovered(telemetry.models.size(), false);
    std::vector<bool> shed_set(telemetry.models.size(), false);
    std::vector<bool> borrowed(telemetry.models.size(), false);
    for (const auto& child : children_) {
      for (ControlAction& action : child->Decide(telemetry)) {
        if (action.kind == ControlActionKind::kReallocate) {
          if (reallocated) continue;
          reallocated = true;
          action.reason = child->Name() + ": " + action.reason;
        } else if (action.kind == ControlActionKind::kResetMonitor) {
          // Dedup only in-range targets; an out-of-range index passes
          // through so the fleet rejects it loudly (the child's bug must
          // not become invisible just because it is chained).
          if (action.model < reset.size()) {
            if (reset[action.model]) continue;
            reset[action.model] = true;
          }
          action.reason = child->Name() + ": " + action.reason;
        } else if (action.kind == ControlActionKind::kRespread ||
                   action.kind == ControlActionKind::kFailover) {
          // One recovery per model per barrier; children are consulted in
          // order, so an earlier child's choice (respread vs failover)
          // stands for this barrier.
          if (action.model < recovered.size()) {
            if (recovered[action.model]) continue;
            recovered[action.model] = true;
          }
          action.reason = child->Name() + ": " + action.reason;
        } else if (action.kind == ControlActionKind::kSetShed) {
          // One shed-knob change per model per barrier; the earlier
          // child's deadline stands.
          if (action.model < shed_set.size()) {
            if (shed_set[action.model]) continue;
            shed_set[action.model] = true;
          }
          action.reason = child->Name() + ": " + action.reason;
        } else if (action.kind == ControlActionKind::kBorrowBudget) {
          // One loan-ledger change per model per barrier; the earlier
          // child's borrow (or payback) stands.
          if (action.model < borrowed.size()) {
            if (borrowed[action.model]) continue;
            borrowed[action.model] = true;
          }
          action.reason = child->Name() + ": " + action.reason;
        }
        actions.push_back(std::move(action));
      }
    }
    return actions;
  }

 private:
  std::vector<std::unique_ptr<FleetController>> children_;
};

const ControllerRegistrar kComposite(
    ControllerInfo{"COMPOSITE",
                   "chain QOS + BACKLOG + DRIFT (+ FAILOVER / SHED when "
                   "their toggles are set; period_s > 0 adds a PERIODIC "
                   "safety net; p99_scale/backlog_s/drift_fraction/"
                   "storm_losses/borrow_fraction/cooldown_windows forward "
                   "to the children), deduplicating actions per barrier",
                   {{"qos", 1.0},
                    {"backlog", 1.0},
                    {"drift", 1.0},
                    {"failover", 0.0},
                    {"shed", 0.0},
                    {"period_s", 0.0},
                    {"p99_scale", 1.0},
                    {"backlog_s", 2.0},
                    {"drift_fraction", 0.25},
                    {"storm_losses", 3.0},
                    {"borrow_fraction", 0.0},
                    {"cooldown_windows", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      const double period = knobs.at("period_s");
      if (period < 0.0) {
        return Status::InvalidArgument(
            "controller COMPOSITE: period_s must be >= 0");
      }
      if (knobs.at("p99_scale") <= 0.0 || knobs.at("backlog_s") <= 0.0 ||
          knobs.at("drift_fraction") <= 0.0) {
        return Status::InvalidArgument(
            "controller COMPOSITE: p99_scale, backlog_s and "
            "drift_fraction must be positive");
      }
      // The failover knobs are validated whether or not the child is
      // toggled on — a malformed knob never hides behind a toggle.
      if (knobs.at("storm_losses") < 1.0) {
        return Status::InvalidArgument(
            "controller COMPOSITE: storm_losses must be >= 1");
      }
      if (knobs.at("borrow_fraction") < 0.0 ||
          knobs.at("borrow_fraction") >= 1.0) {
        return Status::InvalidArgument(
            "controller COMPOSITE: borrow_fraction must be in [0, 1)");
      }
      if (knobs.at("cooldown_windows") < 0.0) {
        return Status::InvalidArgument(
            "controller COMPOSITE: cooldown_windows must be >= 0");
      }
      std::vector<std::unique_ptr<FleetController>> children;
      if (knobs.at("qos") != 0.0) {
        QosControllerOptions qos;
        qos.p99_scale = knobs.at("p99_scale");
        children.push_back(MakeQosController(qos));
      }
      if (knobs.at("backlog") != 0.0) {
        BacklogControllerOptions backlog;
        backlog.backlog_s = knobs.at("backlog_s");
        children.push_back(MakeBacklogController(backlog));
      }
      if (knobs.at("drift") != 0.0) {
        DriftControllerOptions drift;
        drift.drift_fraction = knobs.at("drift_fraction");
        children.push_back(MakeDriftController(drift));
      }
      if (knobs.at("failover") != 0.0) {
        FailoverControllerOptions failover;
        failover.storm_losses =
            static_cast<std::size_t>(knobs.at("storm_losses"));
        failover.borrow_fraction = knobs.at("borrow_fraction");
        failover.cooldown_windows =
            static_cast<std::size_t>(knobs.at("cooldown_windows"));
        children.push_back(MakeFailoverController(failover));
      }
      if (knobs.at("shed") != 0.0) {
        // Default thresholds; custom shed tuning goes through
        // MakeCompositeController with a hand-built ShedController.
        children.push_back(MakeShedController(ShedControllerOptions{}));
      }
      if (period > 0.0) children.push_back(MakePeriodicController(period));
      if (children.empty()) {
        return Status::InvalidArgument(
            "controller COMPOSITE: every child is toggled off");
      }
      return MakeCompositeController(std::move(children));
    });

}  // namespace

std::unique_ptr<FleetController> MakeCompositeController(
    std::vector<std::unique_ptr<FleetController>> children) {
  return std::make_unique<CompositeController>(std::move(children));
}

}  // namespace kairos::control
