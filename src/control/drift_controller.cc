// "DRIFT": batch-mix drift detection feeding the paper's ResetMonitor
// regime change. Every configuration was planned against a monitor
// snapshot; when the live arrival stream's mean batch size shifts more
// than drift_fraction away from that planning-time reference, the stale
// statistics are dropped (kResetMonitor — subsequent re-plans read the
// live sliding window) and a reallocation is fired so the fleet replans
// against the mix it is actually serving.
#include <string>

#include "common/strings.h"
#include "control/controllers.h"

namespace kairos::control {
namespace {

class DriftController final : public FleetController {
 public:
  explicit DriftController(DriftControllerOptions options)
      : options_(options) {}

  std::string Name() const override { return "DRIFT"; }

  bool NeedsLiveMix() const override { return true; }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    if (!telemetry.window_closed) return {};
    ++windows_since_fire_;
    if (windows_since_fire_ <= options_.cooldown_windows) return {};

    std::vector<ControlAction> actions;
    for (std::size_t j = 0; j < telemetry.models.size(); ++j) {
      const ModelTelemetry& model = telemetry.models[j];
      if (model.live_queries < options_.min_queries) continue;
      if (model.drift <= options_.drift_fraction) continue;
      ControlAction reset;
      reset.kind = ControlActionKind::kResetMonitor;
      reset.model = j;
      reset.reason = model.model + " live mean batch " +
                     FormatNumber(model.live_mean_batch) + " drifted " +
                     FormatNumber(100.0 * model.drift) +
                     "% from the planning mix (mean " +
                     FormatNumber(model.plan_mean_batch) + ")";
      actions.push_back(std::move(reset));
    }
    if (actions.empty()) return {};

    windows_since_fire_ = 0;
    ControlAction realloc;
    realloc.kind = ControlActionKind::kReallocate;
    realloc.reason = "replan against the post-drift batch mix";
    actions.push_back(std::move(realloc));
    return actions;
  }

 private:
  DriftControllerOptions options_;
  std::size_t windows_since_fire_ = 1u << 20;
};

const ControllerRegistrar kDrift(
    ControllerInfo{"DRIFT",
                   "reset a model's monitor and reallocate when the live "
                   "batch mix drifts drift_fraction from the "
                   "planning-time snapshot",
                   {{"drift_fraction", 0.25},
                    {"min_queries", 200.0},
                    {"cooldown_windows", 2.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      DriftControllerOptions options;
      options.drift_fraction = knobs.at("drift_fraction");
      if (options.drift_fraction <= 0.0) {
        return Status::InvalidArgument(
            "controller DRIFT: drift_fraction must be positive");
      }
      const double min_queries = knobs.at("min_queries");
      if (min_queries < 1.0) {
        return Status::InvalidArgument(
            "controller DRIFT: min_queries must be >= 1");
      }
      options.min_queries = static_cast<std::size_t>(min_queries);
      const double cooldown = knobs.at("cooldown_windows");
      if (cooldown < 0.0) {
        return Status::InvalidArgument(
            "controller DRIFT: cooldown_windows must be >= 0");
      }
      options.cooldown_windows = static_cast<std::size_t>(cooldown);
      return MakeDriftController(options);
    });

}  // namespace

std::unique_ptr<FleetController> MakeDriftController(
    DriftControllerOptions options) {
  return std::make_unique<DriftController>(options);
}

}  // namespace kairos::control
