// "BACKLOG": engine-driven autoscaling — reallocate when a model's
// backlog represents more than backlog_s seconds of work at the observed
// arrival rate. Where QOS waits for latencies to actually violate,
// backlog depth is a leading indicator: queues grow the instant offered
// load exceeds capacity, before the first late completion lands
// (ROADMAP: "engine-driven backlog autoscaling").
#include <string>

#include "common/strings.h"
#include "control/controllers.h"

namespace kairos::control {
namespace {

constexpr double kEps = 1e-9;

class BacklogController final : public FleetController {
 public:
  explicit BacklogController(BacklogControllerOptions options)
      : options_(options) {}

  std::string Name() const override { return "BACKLOG"; }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    if (!telemetry.window_closed) return {};
    ++windows_since_fire_;

    std::size_t worst = telemetry.models.size();
    double worst_backlog_s = 0.0;
    for (std::size_t j = 0; j < telemetry.models.size(); ++j) {
      const ModelTelemetry& model = telemetry.models[j];
      if (model.backlog < options_.min_backlog) continue;
      if (model.windows == nullptr || model.windows->empty()) continue;
      // The freshly closed window's offered rate is the sharpest demand
      // signal (observed_rate_qps averages since the last reallocation).
      // A stalled stream (no arrivals this window) is skipped outright:
      // with zero observed demand a reallocation would *shrink* this
      // model's share, and its residual backlog drains on the capacity
      // it already has.
      const double rate = model.windows->back().offered_qps;
      if (rate <= kEps) continue;
      const double backlog_seconds = static_cast<double>(model.backlog) / rate;
      if (backlog_seconds > options_.backlog_s &&
          backlog_seconds > worst_backlog_s) {
        worst = j;
        worst_backlog_s = backlog_seconds;
      }
    }

    if (worst == telemetry.models.size()) return {};
    if (windows_since_fire_ <= options_.cooldown_windows) return {};

    windows_since_fire_ = 0;
    ControlAction action;
    action.kind = ControlActionKind::kReallocate;
    action.reason = telemetry.models[worst].model + " backlog " +
                    std::to_string(telemetry.models[worst].backlog) +
                    " queries (" + FormatSeconds(worst_backlog_s) +
                    " of work) over the " +
                    FormatSeconds(options_.backlog_s) + " bound";
    return {action};
  }

 private:
  BacklogControllerOptions options_;
  std::size_t windows_since_fire_ = 1u << 20;
};

const ControllerRegistrar kBacklog(
    ControllerInfo{"BACKLOG",
                   "reallocate when a model's engine backlog exceeds "
                   "backlog_s seconds of work at the observed arrival "
                   "rate",
                   {{"backlog_s", 2.0},
                    {"min_backlog", 8.0},
                    {"cooldown_windows", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      BacklogControllerOptions options;
      options.backlog_s = knobs.at("backlog_s");
      if (options.backlog_s <= 0.0) {
        return Status::InvalidArgument(
            "controller BACKLOG: backlog_s must be positive");
      }
      const double min_backlog = knobs.at("min_backlog");
      if (min_backlog < 0.0) {
        return Status::InvalidArgument(
            "controller BACKLOG: min_backlog must be >= 0");
      }
      options.min_backlog = static_cast<std::size_t>(min_backlog);
      const double cooldown = knobs.at("cooldown_windows");
      if (cooldown < 0.0) {
        return Status::InvalidArgument(
            "controller BACKLOG: cooldown_windows must be >= 0");
      }
      options.cooldown_windows = static_cast<std::size_t>(cooldown);
      return MakeBacklogController(options);
    });

}  // namespace

std::unique_ptr<FleetController> MakeBacklogController(
    BacklogControllerOptions options) {
  return std::make_unique<BacklogController>(options);
}

}  // namespace kairos::control
