// Direct construction of the built-in fleet controllers. Most callers
// should build by name through ControllerRegistry (control/controller.h);
// these factories exist for code that composes controllers
// programmatically — COMPOSITE chaining a custom sub-controller set, or
// tests pinning non-default thresholds without knob plumbing.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "control/controller.h"

namespace kairos::control {

/// "PERIODIC": one reallocation every `period_s` simulated seconds
/// (0 = never). Reproduces the pre-control-plane Fleet::ServeAll
/// fixed-timer behavior bit for bit, including computing the observed
/// demand rates over exactly `period_s`.
std::unique_ptr<FleetController> MakePeriodicController(double period_s);

/// "QOS" thresholds.
struct QosControllerOptions {
  /// A window is a violation when its p99 exceeds p99_scale * qos_ms.
  double p99_scale = 1.0;
  /// Consecutive violation windows (per model) before firing.
  std::size_t patience_windows = 1;
  /// Closed windows to sit out after a fire before firing again.
  std::size_t cooldown_windows = 1;
  /// Windows with fewer completions than this never count as violations.
  /// The default (1) only skips completion-free windows; raise it (e.g.
  /// to 2+) when a lone straggler in an otherwise idle window should not
  /// count as a QoS signal.
  std::size_t min_served = 1;
};
std::unique_ptr<FleetController> MakeQosController(
    QosControllerOptions options = {});

/// "BACKLOG" thresholds.
struct BacklogControllerOptions {
  /// Fire when a model's backlog exceeds this many seconds of work at
  /// the window's observed arrival rate.
  double backlog_s = 2.0;
  /// Absolute backlog floor below which the controller never fires.
  std::size_t min_backlog = 8;
  /// Closed windows to sit out after a fire before firing again.
  std::size_t cooldown_windows = 1;
};
std::unique_ptr<FleetController> MakeBacklogController(
    BacklogControllerOptions options = {});

/// "DRIFT" thresholds.
struct DriftControllerOptions {
  /// Fire when |live mean batch - planning mean batch| / planning mean
  /// exceeds this fraction.
  double drift_fraction = 0.25;
  /// Live-stream samples required before drift is trusted.
  std::size_t min_queries = 200;
  /// Closed windows to sit out after a fire before firing again.
  std::size_t cooldown_windows = 2;
};
std::unique_ptr<FleetController> MakeDriftController(
    DriftControllerOptions options = {});

/// "FAILOVER" thresholds. The all-default struct reproduces the PR 6
/// controller decision-for-decision: no hysteresis, no borrowing.
struct FailoverControllerOptions {
  /// Chaos losses (hard kills + fresh notices) accumulated across the
  /// fleet before escalating from a per-model kRespread to a kFailover
  /// replan of the affected model. 1 = always replan.
  std::size_t storm_losses = 3;
  /// Notice-flap hysteresis: closed windows a model sits out after a
  /// notice-only kRespread before another notice-only respread may fire
  /// (fresh hard losses always bypass the cooldown). 0 = off — every
  /// notice respreads, the PR 6 behavior.
  std::size_t cooldown_windows = 0;
  /// Storm budget borrowing: on a kFailover escalation the model also
  /// asks to borrow this fraction of its current share from the
  /// unaffected models' headroom (kBorrowBudget), repaid once the storm
  /// passes. 0 = never borrow.
  double borrow_fraction = 0.0;
  /// Consecutive quiet closed windows (no new losses or notices) before
  /// a borrowing model repays its loans.
  std::size_t recovery_windows = 2;
};
std::unique_ptr<FleetController> MakeFailoverController(
    FailoverControllerOptions options = {});

/// "SHED" thresholds (graceful degradation, DESIGN.md Sec. 12).
struct ShedControllerOptions {
  /// Arm shedding when a window's p99 exceeds p99_scale * qos_ms — below
  /// 1.0 so the model degrades *before* it violates QoS.
  double p99_scale = 0.9;
  /// Installed shed deadline = deadline_scale * the model's QoS target
  /// (in seconds): queued queries that cannot finish within it are
  /// dropped instead of poisoning the tail.
  double deadline_scale = 1.5;
  /// Also arm when the backlog exceeds this many seconds of work at the
  /// window's observed arrival rate (pressure shows in the queue before
  /// it shows in the served tail).
  double backlog_s = 1.0;
  /// Consecutive pressured windows (per model) before arming.
  std::size_t patience_windows = 1;
  /// Consecutive healthy windows (p99 back under the bound, backlog
  /// drained) before restoring full admission.
  std::size_t restore_windows = 2;
  /// Windows with fewer completions than this never count as pressured.
  std::size_t min_served = 1;
};
std::unique_ptr<FleetController> MakeShedController(
    ShedControllerOptions options = {});

/// "COMPOSITE": consults `children` in order and concatenates their
/// actions, keeping at most one kReallocate per barrier, one
/// kResetMonitor per model, and one kRespread / kFailover per model
/// (kFailover wins when both fire). The registry-built COMPOSITE chains
/// QOS + BACKLOG + DRIFT + FAILOVER (toggles and period_s via knobs);
/// this factory chains an arbitrary set.
std::unique_ptr<FleetController> MakeCompositeController(
    std::vector<std::unique_ptr<FleetController>> children);

}  // namespace kairos::control
