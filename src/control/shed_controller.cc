// "SHED": graceful degradation via deadline load shedding (DESIGN.md
// Sec. 12). Reallocation-style controllers buy capacity when a model is
// pressured; this one trades completeness for latency instead — when a
// model's windowed p99 creeps toward its QoS bound (or its backlog grows
// past what the current capacity can drain), it installs a per-query shed
// deadline on that model's engine so doomed queries are dropped from the
// queue instead of poisoning every query behind them. Once the model runs
// healthy for restore_windows consecutive windows the deadline is lifted
// and full admission resumes. Shed rates are reported next to p99 in
// WindowedMetrics, so benches gate on "QoS met at X% shed" honestly.
#include <string>

#include "common/strings.h"
#include "control/controllers.h"

namespace kairos::control {
namespace {

class ShedController final : public FleetController {
 public:
  explicit ShedController(ShedControllerOptions options)
      : options_(options) {}

  std::string Name() const override { return "SHED"; }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    if (!telemetry.window_closed) return {};
    pressured_streak_.resize(telemetry.models.size(), 0);
    healthy_streak_.resize(telemetry.models.size(), 0);

    std::vector<ControlAction> actions;
    for (std::size_t j = 0; j < telemetry.models.size(); ++j) {
      const ModelTelemetry& model = telemetry.models[j];
      if (model.windows == nullptr || model.windows->empty()) continue;
      const serving::WindowedMetrics& window = model.windows->back();

      const double p99_bound = options_.p99_scale * model.qos_ms;
      const bool tail_pressure = window.served >= options_.min_served &&
                                 window.p99_ms > p99_bound;
      // Queue pressure: the window's peak central-queue depth deeper than
      // backlog_s seconds of the window's observed arrival stream.
      // Pressure shows here first when the tail is masked (e.g. every
      // served query was a fresh one). The engine now measures the queue
      // directly (WindowedMetrics::queue_depth_max) — the old derivation
      // from Backlog() overcounted committed and executing queries, which
      // shedding can never drop.
      const bool queue_pressure =
          window.offered_qps > 0.0 &&
          static_cast<double>(window.queue_depth_max) >
              options_.backlog_s * window.offered_qps;
      const bool pressured = tail_pressure || queue_pressure;
      const bool shedding = model.shed_deadline_s > 0.0;

      pressured_streak_[j] = pressured ? pressured_streak_[j] + 1 : 0;
      healthy_streak_[j] = pressured ? 0 : healthy_streak_[j] + 1;

      if (!shedding &&
          pressured_streak_[j] >= options_.patience_windows) {
        ControlAction action;
        action.kind = ControlActionKind::kSetShed;
        action.model = j;
        action.deadline_s =
            options_.deadline_scale * MsToSec(model.qos_ms);
        action.reason =
            model.model + (tail_pressure ? " p99 " : " queue peak ") +
            (tail_pressure
                 ? FormatNumber(window.p99_ms) + "ms over the " +
                       FormatNumber(p99_bound) + "ms shed bound"
                 : FormatNumber(
                       static_cast<double>(window.queue_depth_max)) +
                       " queries at " + FormatNumber(window.offered_qps) +
                       " qps") +
            "; shedding at deadline " + FormatNumber(action.deadline_s) +
            "s";
        actions.push_back(action);
        pressured_streak_[j] = 0;
      } else if (shedding &&
                 healthy_streak_[j] >= options_.restore_windows) {
        ControlAction action;
        action.kind = ControlActionKind::kSetShed;
        action.model = j;
        action.deadline_s = 0.0;
        action.reason = model.model + " healthy for " +
                        std::to_string(options_.restore_windows) +
                        " window(s); restoring full admission";
        actions.push_back(action);
        healthy_streak_[j] = 0;
      }
    }
    return actions;
  }

 private:
  ShedControllerOptions options_;
  std::vector<std::size_t> pressured_streak_;  ///< per model
  std::vector<std::size_t> healthy_streak_;    ///< per model
};

const ControllerRegistrar kShed(
    ControllerInfo{"SHED",
                   "graceful degradation: install a deadline-shedding "
                   "knob when a model's p99 nears QoS (p99_scale) or its "
                   "backlog passes backlog_s, restore after "
                   "restore_windows healthy windows",
                   {{"p99_scale", 0.9},
                    {"deadline_scale", 1.5},
                    {"backlog_s", 1.0},
                    {"patience_windows", 1.0},
                    {"restore_windows", 2.0},
                    {"min_served", 1.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      ShedControllerOptions options;
      options.p99_scale = knobs.at("p99_scale");
      if (options.p99_scale <= 0.0) {
        return Status::InvalidArgument(
            "controller SHED: p99_scale must be positive");
      }
      options.deadline_scale = knobs.at("deadline_scale");
      if (options.deadline_scale <= 0.0) {
        return Status::InvalidArgument(
            "controller SHED: deadline_scale must be positive");
      }
      options.backlog_s = knobs.at("backlog_s");
      if (options.backlog_s <= 0.0) {
        return Status::InvalidArgument(
            "controller SHED: backlog_s must be positive");
      }
      const double patience = knobs.at("patience_windows");
      if (patience < 1.0) {
        return Status::InvalidArgument(
            "controller SHED: patience_windows must be >= 1");
      }
      options.patience_windows = static_cast<std::size_t>(patience);
      const double restore = knobs.at("restore_windows");
      if (restore < 1.0) {
        return Status::InvalidArgument(
            "controller SHED: restore_windows must be >= 1");
      }
      options.restore_windows = static_cast<std::size_t>(restore);
      const double min_served = knobs.at("min_served");
      if (min_served < 0.0) {
        return Status::InvalidArgument(
            "controller SHED: min_served must be >= 0");
      }
      options.min_served = static_cast<std::size_t>(min_served);
      return MakeShedController(options);
    });

}  // namespace

std::unique_ptr<FleetController> MakeShedController(
    ShedControllerOptions options) {
  return std::make_unique<ShedController>(options);
}

}  // namespace kairos::control
