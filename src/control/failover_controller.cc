// "FAILOVER": the chaos-aware controller. It watches the chaos counters
// in ModelTelemetry — preemption_notices (the early signal: the victim is
// still draining through its notice window) and instances_lost (the hard
// kills) — and reacts per model the moment either moves:
//
//   * a fresh notice or loss fires kRespread, re-issuing the model's
//     target configuration so replacement launches start booting while
//     the victim drains; with launch lag <= notice window the replacement
//     is live before the capacity actually disappears;
//   * once storm_losses hard kills have accumulated fleet-wide, the next
//     affected model gets kFailover instead — a full replan inside its
//     current share, because the survivor set of a sustained storm may
//     want a different instance mix than the pre-storm plan.
//
// v2 (ISSUE 9) adds two optional regimes, both off by default so the
// all-default controller reproduces PR 6 decision-for-decision:
//
//   * notice-flap hysteresis (cooldown_windows > 0): after a notice-only
//     respread the model sits out that many closed windows before another
//     notice-only respread may fire — a flapping spot market stops
//     triggering a respread per notice. Fresh hard losses always bypass
//     the cooldown: real capacity loss is never ignored;
//   * budget borrowing (borrow_fraction > 0): a kFailover escalation also
//     emits kBorrowBudget for borrow_fraction of the model's current
//     share, taken from the unaffected models' headroom, so the replan
//     can afford replacement capacity *during* the storm. Once the model
//     has been quiet for recovery_windows closed windows the loan is
//     repaid (kBorrowBudget with amount 0); the fleet's loan ledger
//     asserts borrow == payback (DESIGN.md Sec. 11).
//
// Without chaos every counter stays zero and the controller never fires,
// so wiring FAILOVER into a COMPOSITE costs nothing on clean runs.
#include <string>

#include "control/controllers.h"

namespace kairos::control {
namespace {

class FailoverController final : public FleetController {
 public:
  explicit FailoverController(FailoverControllerOptions options)
      : options_(options) {}

  std::string Name() const override { return "FAILOVER"; }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    seen_lost_.resize(telemetry.models.size(), 0);
    seen_notices_.resize(telemetry.models.size(), 0);
    cooldown_.resize(telemetry.models.size(), 0);
    borrowing_.resize(telemetry.models.size(), false);
    quiet_windows_.resize(telemetry.models.size(), 0);

    std::vector<ControlAction> actions;
    for (std::size_t j = 0; j < telemetry.models.size(); ++j) {
      const ModelTelemetry& model = telemetry.models[j];
      const std::size_t lost_delta =
          model.instances_lost - seen_lost_[j];
      const std::size_t notice_delta =
          model.preemption_notices - seen_notices_[j];
      seen_lost_[j] = model.instances_lost;
      seen_notices_[j] = model.preemption_notices;

      if (lost_delta > 0 || notice_delta > 0) {
        quiet_windows_[j] = 0;
        losses_since_failover_ += lost_delta;
        ControlAction action;
        action.model = j;
        if (lost_delta > 0 &&
            losses_since_failover_ >= options_.storm_losses) {
          losses_since_failover_ = 0;
          action.kind = ControlActionKind::kFailover;
          action.reason = model.model + " lost " +
                          std::to_string(lost_delta) +
                          " instance(s); storm threshold reached, replanning "
                          "under the survivor set";
          cooldown_[j] = options_.cooldown_windows;
          actions.push_back(std::move(action));
          if (options_.borrow_fraction > 0.0 && !borrowing_[j] &&
              model.share_per_hour > 0.0) {
            ControlAction borrow;
            borrow.kind = ControlActionKind::kBorrowBudget;
            borrow.model = j;
            borrow.amount_per_hour =
                options_.borrow_fraction * model.share_per_hour;
            borrow.reason = model.model +
                            ": storm failover; borrowing headroom to "
                            "replan with replacement capacity";
            borrowing_[j] = true;
            actions.push_back(std::move(borrow));
          }
        } else if (lost_delta > 0 || cooldown_[j] == 0) {
          action.kind = ControlActionKind::kRespread;
          action.reason =
              model.model + ": " + std::to_string(notice_delta) +
              " reclamation notice(s), " + std::to_string(lost_delta) +
              " instance(s) lost; re-spreading onto replacements";
          // A notice-only respread arms the flap guard; a hard loss
          // keeps the controller fully reactive.
          if (lost_delta == 0) cooldown_[j] = options_.cooldown_windows;
          actions.push_back(std::move(action));
        }
        // else: notice-only flap inside the cooldown window — suppressed.
      } else if (telemetry.window_closed && borrowing_[j]) {
        if (++quiet_windows_[j] >= options_.recovery_windows) {
          ControlAction repay;
          repay.kind = ControlActionKind::kBorrowBudget;
          repay.model = j;
          repay.amount_per_hour = 0.0;  // repay every outstanding loan
          repay.reason = model.model + ": quiet for " +
                         std::to_string(quiet_windows_[j]) +
                         " window(s); storm passed, repaying borrowed "
                         "budget";
          borrowing_[j] = false;
          quiet_windows_[j] = 0;
          actions.push_back(std::move(repay));
        }
      }
      if (telemetry.window_closed && cooldown_[j] > 0) --cooldown_[j];
    }
    return actions;
  }

 private:
  FailoverControllerOptions options_;
  std::vector<std::size_t> seen_lost_;     ///< per model, telemetry order
  std::vector<std::size_t> seen_notices_;  ///< per model, telemetry order
  std::vector<std::size_t> cooldown_;      ///< notice-flap guard, windows
  std::vector<bool> borrowing_;            ///< loan outstanding per model
  std::vector<std::size_t> quiet_windows_; ///< quiet streak while borrowing
  std::size_t losses_since_failover_ = 0;  ///< fleet-wide hard-kill count
};

const ControllerRegistrar kFailover(
    ControllerInfo{"FAILOVER",
                   "chaos-aware: re-spread a model onto replacement "
                   "launches on every reclamation notice or loss, replan "
                   "it once storm_losses hard kills accumulate, borrow "
                   "borrow_fraction of its share during the storm (repaid "
                   "after recovery_windows quiet windows), and damp "
                   "notice flapping with cooldown_windows",
                   {{"storm_losses", 3.0},
                    {"cooldown_windows", 0.0},
                    {"borrow_fraction", 0.0},
                    {"recovery_windows", 2.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      FailoverControllerOptions options;
      const double storm = knobs.at("storm_losses");
      if (storm < 1.0) {
        return Status::InvalidArgument(
            "controller FAILOVER: storm_losses must be >= 1");
      }
      options.storm_losses = static_cast<std::size_t>(storm);
      const double cooldown = knobs.at("cooldown_windows");
      if (cooldown < 0.0) {
        return Status::InvalidArgument(
            "controller FAILOVER: cooldown_windows must be >= 0");
      }
      options.cooldown_windows = static_cast<std::size_t>(cooldown);
      options.borrow_fraction = knobs.at("borrow_fraction");
      if (options.borrow_fraction < 0.0 || options.borrow_fraction >= 1.0) {
        return Status::InvalidArgument(
            "controller FAILOVER: borrow_fraction must be in [0, 1)");
      }
      const double recovery = knobs.at("recovery_windows");
      if (recovery < 1.0) {
        return Status::InvalidArgument(
            "controller FAILOVER: recovery_windows must be >= 1");
      }
      options.recovery_windows = static_cast<std::size_t>(recovery);
      return MakeFailoverController(options);
    });

}  // namespace

std::unique_ptr<FleetController> MakeFailoverController(
    FailoverControllerOptions options) {
  return std::make_unique<FailoverController>(options);
}

}  // namespace kairos::control
