// "FAILOVER": the chaos-aware controller. It watches the chaos counters
// in ModelTelemetry — preemption_notices (the early signal: the victim is
// still draining through its notice window) and instances_lost (the hard
// kills) — and reacts per model the moment either moves:
//
//   * a fresh notice or loss fires kRespread, re-issuing the model's
//     target configuration so replacement launches start booting while
//     the victim drains; with launch lag <= notice window the replacement
//     is live before the capacity actually disappears;
//   * once storm_losses hard kills have accumulated fleet-wide, the next
//     affected model gets kFailover instead — a full replan inside its
//     current share, because the survivor set of a sustained storm may
//     want a different instance mix than the pre-storm plan.
//
// Without chaos both counters stay zero and the controller never fires,
// so wiring FAILOVER into a COMPOSITE costs nothing on clean runs.
#include <string>

#include "control/controllers.h"

namespace kairos::control {
namespace {

class FailoverController final : public FleetController {
 public:
  explicit FailoverController(FailoverControllerOptions options)
      : options_(options) {}

  std::string Name() const override { return "FAILOVER"; }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    seen_lost_.resize(telemetry.models.size(), 0);
    seen_notices_.resize(telemetry.models.size(), 0);

    std::vector<ControlAction> actions;
    for (std::size_t j = 0; j < telemetry.models.size(); ++j) {
      const ModelTelemetry& model = telemetry.models[j];
      const std::size_t lost_delta =
          model.instances_lost - seen_lost_[j];
      const std::size_t notice_delta =
          model.preemption_notices - seen_notices_[j];
      seen_lost_[j] = model.instances_lost;
      seen_notices_[j] = model.preemption_notices;
      if (lost_delta == 0 && notice_delta == 0) continue;

      losses_since_failover_ += lost_delta;
      ControlAction action;
      action.model = j;
      if (lost_delta > 0 && losses_since_failover_ >= options_.storm_losses) {
        losses_since_failover_ = 0;
        action.kind = ControlActionKind::kFailover;
        action.reason = model.model + " lost " +
                        std::to_string(lost_delta) +
                        " instance(s); storm threshold reached, replanning "
                        "under the survivor set";
      } else {
        action.kind = ControlActionKind::kRespread;
        action.reason =
            model.model + ": " + std::to_string(notice_delta) +
            " reclamation notice(s), " + std::to_string(lost_delta) +
            " instance(s) lost; re-spreading onto replacements";
      }
      actions.push_back(std::move(action));
    }
    return actions;
  }

 private:
  FailoverControllerOptions options_;
  std::vector<std::size_t> seen_lost_;     ///< per model, telemetry order
  std::vector<std::size_t> seen_notices_;  ///< per model, telemetry order
  std::size_t losses_since_failover_ = 0;  ///< fleet-wide hard-kill count
};

const ControllerRegistrar kFailover(
    ControllerInfo{"FAILOVER",
                   "chaos-aware: re-spread a model onto replacement "
                   "launches on every reclamation notice or loss, and "
                   "replan it once storm_losses hard kills accumulate",
                   {{"storm_losses", 3.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      FailoverControllerOptions options;
      const double storm = knobs.at("storm_losses");
      if (storm < 1.0) {
        return Status::InvalidArgument(
            "controller FAILOVER: storm_losses must be >= 1");
      }
      options.storm_losses = static_cast<std::size_t>(storm);
      return MakeFailoverController(options);
    });

}  // namespace

std::unique_ptr<FleetController> MakeFailoverController(
    FailoverControllerOptions options) {
  return std::make_unique<FailoverController>(options);
}

}  // namespace kairos::control
