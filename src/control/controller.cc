#include "control/controller.h"

#include <utility>

#include "common/strings.h"

namespace kairos::control {

const char* ControlActionName(ControlActionKind kind) {
  switch (kind) {
    case ControlActionKind::kReallocate: return "REALLOCATE";
    case ControlActionKind::kResetMonitor: return "RESET_MONITOR";
    case ControlActionKind::kRespread: return "RESPREAD";
    case ControlActionKind::kFailover: return "FAILOVER";
    case ControlActionKind::kSetShed: return "SET_SHED";
    case ControlActionKind::kBorrowBudget: return "BORROW_BUDGET";
  }
  return "UNKNOWN";
}

ControllerRegistry& ControllerRegistry::Global() {
  static ControllerRegistry* registry = new ControllerRegistry();
  return *registry;
}

Status ControllerRegistry::Register(ControllerInfo info,
                                    ControllerBuilder builder) {
  const std::string canonical = policy::CanonicalSchemeName(info.name);
  if (canonical.empty()) {
    return Status::InvalidArgument("controller registration with empty name");
  }
  if (builder == nullptr) {
    return Status::InvalidArgument("controller " + canonical +
                                   " registered without a builder");
  }
  info.name = canonical;
  const auto [it, inserted] =
      entries_.emplace(canonical, Entry{std::move(info), std::move(builder)});
  if (!inserted) {
    return Status::InvalidArgument("controller " + it->first +
                                   " registered twice");
  }
  return Status::Ok();
}

std::vector<std::string> ControllerRegistry::ListNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

bool ControllerRegistry::Contains(const std::string& name) const {
  return entries_.count(policy::CanonicalSchemeName(name)) > 0;
}

StatusOr<ControllerRegistry::Entry> ControllerRegistry::Find(
    const std::string& name) const {
  const auto it = entries_.find(policy::CanonicalSchemeName(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown controller \"" + name +
                            "\"; registered controllers: " +
                            JoinComma(ListNames()));
  }
  return it->second;
}

StatusOr<ControllerInfo> ControllerRegistry::Info(
    const std::string& name) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  return entry->info;
}

StatusOr<std::unique_ptr<FleetController>> ControllerRegistry::Build(
    const std::string& name, const KnobMap& overrides) const {
  auto entry = Find(name);
  if (!entry.ok()) return entry.status();
  KnobMap knobs = entry->info.knobs;
  for (const auto& [knob, value] : overrides) {
    const auto it = knobs.find(knob);
    if (it == knobs.end()) {
      std::vector<std::string> declared;
      declared.reserve(knobs.size());
      for (const auto& [k, v] : knobs) declared.push_back(k);
      return Status::InvalidArgument(
          "controller " + entry->info.name + " has no knob \"" + knob +
          "\"; declared knobs: " +
          (declared.empty() ? "(none)" : JoinComma(declared)));
    }
    it->second = value;
  }
  return entry->builder(knobs);
}

}  // namespace kairos::control
