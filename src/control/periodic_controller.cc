// "PERIODIC": the pre-control-plane reallocation loop as a controller —
// one kReallocate every period_s, demand rates measured over exactly the
// period. Fleet::ServeAll with realloc_period_s > 0 and no named
// controller routes here, and tests/fleet_serve_test.cc asserts the
// outcome is bit-identical to the explicit "PERIODIC" spelling.
#include <string>

#include "common/strings.h"
#include "control/controllers.h"

namespace kairos::control {
namespace {

constexpr double kEps = 1e-9;

class PeriodicController final : public FleetController {
 public:
  explicit PeriodicController(double period_s) : period_s_(period_s) {}

  std::string Name() const override { return "PERIODIC"; }

  std::vector<Time> DecisionTimes(const ControlSchedule& schedule) const
      override {
    std::vector<Time> times;
    if (period_s_ <= 0.0) return times;
    // k * period, never accumulated — a non-representable period must not
    // drift into a duplicate barrier just below the horizon (the same
    // arithmetic the window grid uses).
    for (std::size_t k = 1;; ++k) {
      const double t = static_cast<double>(k) * period_s_;
      if (t >= schedule.duration_s - kEps) break;
      times.push_back(t);
    }
    return times;
  }

  std::vector<ControlAction> Decide(const FleetTelemetry& telemetry) override {
    if (period_s_ <= 0.0) return {};
    const double due = static_cast<double>(next_) * period_s_;
    if (telemetry.now + kEps < due) return {};
    const double due_prev = static_cast<double>(next_ - 1) * period_s_;
    while (static_cast<double>(next_) * period_s_ <= telemetry.now + kEps) {
      ++next_;
    }
    // Safety-net gating: when a reallocation already ran strictly inside
    // the current period (a closed-loop sibling in a COMPOSITE fired),
    // the fleet is fresh — skip the redundant re-split. Standalone, the
    // previous reallocation sits exactly on the previous grid point, so
    // this never suppresses the fixed cadence.
    if (telemetry.last_reallocation > due_prev + kEps) return {};
    ControlAction action;
    action.kind = ControlActionKind::kReallocate;
    // On the pure cadence the demand-measurement interval is exactly the
    // period (the pre-control-plane arithmetic, bit for bit); after an
    // off-grid sibling reallocation, defer to the fleet's measured
    // time-since-last instead of misstating it.
    action.interval_s =
        telemetry.last_reallocation == due_prev ? period_s_ : 0.0;
    action.reason = "fixed " + FormatSeconds(period_s_) + " period";
    return {action};
  }

 private:
  double period_s_ = 0.0;
  std::size_t next_ = 1;  ///< next period multiple that fires
};

const ControllerRegistrar kPeriodic(
    ControllerInfo{"PERIODIC",
                   "reallocate on a fixed timer (the pre-control-plane "
                   "ServeAll loop); period_s = 0 never fires",
                   {{"period_s", 0.0}}},
    [](const KnobMap& knobs) -> StatusOr<std::unique_ptr<FleetController>> {
      const double period = knobs.at("period_s");
      if (period < 0.0) {
        return Status::InvalidArgument(
            "controller PERIODIC: period_s must be >= 0, got " +
            std::to_string(period));
      }
      return MakePeriodicController(period);
    });

}  // namespace

std::unique_ptr<FleetController> MakePeriodicController(double period_s) {
  return std::make_unique<PeriodicController>(period_s);
}

}  // namespace kairos::control
