#include "common/rng.h"

#include <cmath>

namespace kairos {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  // Warm the engine with a SplitMix64-derived sequence.
  std::seed_seq seq{SplitMix64(s), SplitMix64(s), SplitMix64(s), SplitMix64(s)};
  engine_.seed(seq);
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::Normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::Exponential(double rate) {
  return std::exponential_distribution<double>(rate)(engine_);
}

std::int64_t Rng::Poisson(double mean) {
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
  return dist(engine_);
}

Rng Rng::Fork() {
  const std::uint64_t child_seed = engine_();
  return Rng(child_seed);
}

}  // namespace kairos
