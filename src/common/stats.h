// Descriptive statistics used across the serving evaluator and tests:
// percentiles (QoS is a p99 target), moments, and the Pearson correlation
// the paper uses to justify linear latency models (Sec. 5.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace kairos {

/// Arithmetic mean; returns 0 for an empty span.
double Mean(std::span<const double> xs);

/// Unbiased sample variance; returns 0 for spans of size < 2.
double Variance(std::span<const double> xs);

/// Sample standard deviation.
double Stddev(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100]. Copies + sorts internally.
/// Returns 0 for an empty span.
double Percentile(std::span<const double> xs, double q);

/// Percentile variant for hot callers: sorts into `scratch` (resized and
/// overwritten) instead of a fresh vector, so a caller computing one
/// percentile per metrics window allocates nothing in steady state.
double Percentile(std::span<const double> xs, double q,
                  std::vector<double>& scratch);

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 if either series is constant or the series are empty.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/// Kendall rank correlation (tau-a) of two equal-length series: the
/// agreement between two rankings in [-1, 1]. Used to compare estimator
/// rankings (upper bound vs. M/M/c) against measured-throughput rankings.
/// O(n^2); fine for the configuration-space sizes involved.
double KendallTau(std::span<const double> xs, std::span<const double> ys);

/// Streaming accumulator for mean/variance/min/max (Welford), O(1) memory.
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Number of observations so far.
  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when count < 2).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-resolution latency histogram for cheap streaming percentile
/// estimates over long simulations (bounded memory, bounded error).
class LatencyHistogram {
 public:
  /// Buckets span [0, max_value] uniformly; values above clamp to the
  /// last bucket.
  LatencyHistogram(double max_value, std::size_t buckets);

  void Add(double x);

  /// Percentile estimate (upper edge of the containing bucket, so estimates
  /// are conservative for QoS checks). q in [0, 100].
  double Percentile(double q) const;

  std::size_t count() const { return count_; }

 private:
  double max_value_;
  double bucket_width_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
};

}  // namespace kairos
