// Time representation shared by the simulator and all latency math.
//
// All simulator-internal time is double seconds since simulation start.
// Latency surfaces are specified in milliseconds (the unit the paper uses)
// and converted at the API boundary via these helpers.
#pragma once

namespace kairos {

/// Simulation time point / duration, in seconds.
using Time = double;

/// Converts milliseconds to simulator seconds.
constexpr Time MsToSec(double ms) { return ms * 1e-3; }

/// Converts simulator seconds to milliseconds.
constexpr double SecToMs(Time s) { return s * 1e3; }

/// A value safely larger than any simulated horizon, usable as "never".
inline constexpr Time kTimeInfinity = 1e30;

}  // namespace kairos
