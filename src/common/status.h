// Lightweight error handling for the public API. Fallible entry points —
// registry lookups, facade construction, fleet planning — return a Status
// (or StatusOr<T>) instead of throwing, so callers can branch on the error
// and print the message; exceptions remain only behind the deprecated
// shims that predate this header (see DESIGN.md Sec. 7).
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace kairos {

/// Broad error category, modeled on the usual cloud-API status codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed request (bad knob, weight <= 0, ...)
  kNotFound,            ///< unknown policy / planner / model name
  kInfeasible,          ///< no configuration satisfies the constraints
  kFailedPrecondition,  ///< call sequencing error (e.g. missing eval fn)
  kInternal,            ///< invariant violation inside the library
};

/// Human-readable name of a StatusCode ("NOT_FOUND", ...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kInfeasible: return "INFEASIBLE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Success-or-error result of an operation with no return value.
class Status {
 public:
  /// Default status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "NOT_FOUND: unknown scheme FCFS++ ..." (or "OK").
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
/// Accessing value() on an error is a programming bug and asserts via
/// std::abort in all build types (there is deliberately no exception).
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value (the common return path).
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK status (the error return path).
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// OK when a value is present, the construction error otherwise.
  const Status& status() const { return status_; }

  const T& value() const& { CheckOk(); return *value_; }
  T& value() & { CheckOk(); return *value_; }
  T&& value() && { CheckOk(); return *std::move(value_); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value, or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!ok()) std::abort();  // accessing value() of an error StatusOr
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

}  // namespace kairos
