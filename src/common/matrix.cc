#include "common/matrix.h"

#include <cmath>
#include <stdexcept>

namespace kairos {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::Multiply: dimension mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix CholeskyFactor(const Matrix& a, double jitter) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("CholeskyFactor: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      if (i == j) sum += jitter;
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::domain_error("CholeskyFactor: not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> SolveLower(const Matrix& l, const std::vector<double>& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) throw std::invalid_argument("SolveLower: size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  return y;
}

std::vector<double> SolveLowerTransposed(const Matrix& l,
                                         const std::vector<double>& y) {
  const std::size_t n = l.rows();
  if (y.size() != n) {
    throw std::invalid_argument("SolveLowerTransposed: size mismatch");
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

std::vector<double> SolveSpd(const Matrix& a, const std::vector<double>& b,
                             double jitter) {
  const Matrix l = CholeskyFactor(a, jitter);
  return SolveLowerTransposed(l, SolveLower(l, b));
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("Dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace kairos
