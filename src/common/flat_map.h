// Open-addressing hash map for hot-path lookups keyed by precomputed
// hashes. std::unordered_map costs a heap node per entry and a pointer
// chase per probe; FlatHashMap stores (hash, key, value) contiguously with
// linear probing over a power-of-two table, so the search memo and the
// engine's per-instance lookups touch one cache line in the common case.
//
// The 64-bit hash is stored alongside each entry and compared before the
// key, so expensive key equality (vector compare for cloud::Config) runs
// only on a hash match. Callers that already hold the hash (e.g.
// Config::Fingerprint()) use the *Hashed entry points to avoid recomputing
// it across several maps in one operation.
//
// Deletion uses tombstones; tombstones are recycled by insert and swept by
// the growth rehash. Not thread-safe; iteration order is unspecified.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace kairos {

template <typename K, typename V, typename Hasher>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    states_.assign(states_.size(), kEmpty);
    slots_.clear();
    slots_.resize(states_.size());
    size_ = 0;
    used_ = 0;
  }

  /// Pointer to the mapped value, or nullptr. O(1) expected.
  V* Find(const K& key) { return FindHashed(Hasher{}(key), key); }
  const V* Find(const K& key) const {
    return const_cast<FlatHashMap*>(this)->FindHashed(Hasher{}(key), key);
  }

  V* FindHashed(std::uint64_t hash, const K& key) {
    if (size_ == 0) return nullptr;
    const std::size_t mask = states_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return nullptr;
      if (states_[i] == kFull && slots_[i].hash == hash &&
          slots_[i].key == key) {
        return &slots_[i].value;
      }
    }
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }
  bool ContainsHashed(std::uint64_t hash, const K& key) const {
    return const_cast<FlatHashMap*>(this)->FindHashed(hash, key) != nullptr;
  }

  /// Inserts key -> value if absent; returns {&value, inserted}. The
  /// existing value is untouched on a hit (unordered_map::emplace rules).
  std::pair<V*, bool> Insert(const K& key, V value) {
    return InsertHashed(Hasher{}(key), key, std::move(value));
  }

  std::pair<V*, bool> InsertHashed(std::uint64_t hash, const K& key,
                                   V value) {
    ReserveForOneMore();
    const std::size_t mask = states_.size() - 1;
    std::size_t grave = states_.size();  // first tombstone on the probe path
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      if (states_[i] == kFull) {
        if (slots_[i].hash == hash && slots_[i].key == key) {
          return {&slots_[i].value, false};
        }
        continue;
      }
      if (states_[i] == kGrave) {
        if (grave == states_.size()) grave = i;
        continue;
      }
      // Empty: the key is absent. Prefer recycling a tombstone so probe
      // chains stop growing under churn.
      std::size_t at = (grave != states_.size()) ? grave : i;
      if (at == i) ++used_;
      states_[at] = kFull;
      slots_[at].hash = hash;
      slots_[at].key = key;
      slots_[at].value = std::move(value);
      ++size_;
      return {&slots_[at].value, true};
    }
  }

  /// Removes the key; returns whether it was present.
  bool Erase(const K& key) { return EraseHashed(Hasher{}(key), key); }

  bool EraseHashed(std::uint64_t hash, const K& key) {
    if (size_ == 0) return false;
    const std::size_t mask = states_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return false;
      if (states_[i] == kFull && slots_[i].hash == hash &&
          slots_[i].key == key) {
        states_[i] = kGrave;
        slots_[i] = Slot{};  // drop key/value payloads eagerly
        --size_;
        return true;
      }
    }
  }

  /// Calls fn(key, value) for every entry, unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::size_t i = 0; i < states_.size(); ++i) {
      if (states_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kGrave = 2 };

  struct Slot {
    std::uint64_t hash = 0;
    K key{};
    V value{};
  };

  /// Keeps load (live + tombstones) under 3/4 so probes stay short.
  void ReserveForOneMore() {
    if (states_.empty()) {
      Rehash(16);
      return;
    }
    if ((used_ + 1) * 4 > states_.size() * 3) {
      // Grow only when live entries justify it; otherwise the rehash just
      // sweeps tombstones at the same capacity.
      const std::size_t cap = (size_ + 1) * 4 > states_.size() * 3
                                  ? states_.size() * 2
                                  : states_.size();
      Rehash(cap);
    }
  }

  void Rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0 && "capacity must be 2^k");
    std::vector<std::uint8_t> old_states = std::move(states_);
    std::vector<Slot> old_slots = std::move(slots_);
    states_.assign(new_cap, kEmpty);
    slots_.assign(new_cap, Slot{});
    size_ = 0;
    used_ = 0;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      InsertHashed(old_slots[i].hash, std::move(old_slots[i].key),
                   std::move(old_slots[i].value));
    }
  }

  std::pair<V*, bool> InsertHashed(std::uint64_t hash, K&& key, V&& value) {
    // Rehash-internal path: table is fresh, no tombstones, no resize.
    const std::size_t mask = states_.size() - 1;
    for (std::size_t i = hash & mask;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) {
        states_[i] = kFull;
        slots_[i].hash = hash;
        slots_[i].key = std::move(key);
        slots_[i].value = std::move(value);
        ++size_;
        ++used_;
        return {&slots_[i].value, true};
      }
    }
  }

  std::vector<std::uint8_t> states_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;  ///< live entries
  std::size_t used_ = 0;  ///< live + tombstoned probe positions
};

}  // namespace kairos
