// Ring-buffer deque: contiguous power-of-two storage with head/size
// bookkeeping. Drop-in for the std::deque uses on the serving hot path
// (the central queue and per-instance FIFOs), where std::deque's
// node-block churn — a block allocation/deallocation every few hundred
// push/pop pairs — was the last steady-state heap traffic in the
// sustained streaming loop. A RingDeque allocates only on growth; once
// the queue has seen its high-water depth, pushes and pops touch no
// allocator at all.
//
// Supports the operations the engine needs (front/back access, indexing,
// push/pop at both ends, prefix drop, const iteration) — not splicing or
// middle insertion.
#pragma once

#include <cassert>
#include <cstddef>
#include <iterator>
#include <utility>
#include <vector>

namespace kairos {

template <typename T>
class RingDeque {
 public:
  RingDeque() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return slots_[(head_ + i) & mask_];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(T value) {
    Reserve(size_ + 1);
    slots_[(head_ + size_) & mask_] = std::move(value);
    ++size_;
  }

  void push_front(T value) {
    Reserve(size_ + 1);
    head_ = (head_ - 1) & mask_;
    slots_[head_] = std::move(value);
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    slots_[head_] = T{};  // release payloads (queries hold no heap, but stay tidy)
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void pop_back() {
    assert(size_ > 0);
    slots_[(head_ + size_ - 1) & mask_] = T{};
    --size_;
  }

  /// Drops the first n elements (n <= size()).
  void PopFrontN(std::size_t n) {
    assert(n <= size_);
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(head_ + i) & mask_] = T{};
    }
    head_ = (head_ + n) & mask_;
    size_ -= n;
  }

  void clear() { PopFrontN(size_); }

  /// Const forward iteration (range-for).
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = const T*;
    using reference = const T&;

    const_iterator(const RingDeque* d, std::size_t i) : d_(d), i_(i) {}
    const T& operator*() const { return (*d_)[i_]; }
    const T* operator->() const { return &(*d_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RingDeque* d_;
    std::size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  void Reserve(std::size_t need) {
    if (need <= slots_.size()) return;
    std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    while (cap < need) cap *= 2;
    std::vector<T> grown(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      grown[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(grown);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace kairos
