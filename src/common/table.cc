#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace kairos {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable::AddRow: width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string TextTable::RenderCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::Print(std::ostream& os, const std::string& title) const {
  os << "== " << title << " ==\n"
     << Render() << "--- csv ---\n"
     << RenderCsv() << "--- end csv ---\n";
}

}  // namespace kairos
