#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace kairos {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double Stddev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::span<const double> xs, double q) {
  std::vector<double> scratch;
  return Percentile(xs, q, scratch);
}

double Percentile(std::span<const double> xs, double q,
                  std::vector<double>& scratch) {
  if (xs.empty()) return 0.0;
  scratch.assign(xs.begin(), xs.end());
  std::sort(scratch.begin(), scratch.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(scratch.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return scratch[lo] + (scratch[hi] - scratch[lo]) * frac;
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  if (xs.empty() || xs.size() != ys.size()) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double KendallTau(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const std::size_t n = xs.size();
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = xs[i] - xs[j];
      const double dy = ys[i] - ys[j];
      const double prod = dx * dy;
      if (prod > 0.0) ++concordant;
      if (prod < 0.0) ++discordant;
    }
  }
  const double pairs = 0.5 * static_cast<double>(n) * (n - 1);
  return (concordant - discordant) / pairs;
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram(double max_value, std::size_t buckets)
    : max_value_(max_value),
      bucket_width_(max_value / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void LatencyHistogram::Add(double x) {
  const double clamped = std::clamp(x, 0.0, max_value_);
  std::size_t idx = static_cast<std::size_t>(clamped / bucket_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
  ++count_;
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  const double target =
      std::clamp(q, 0.0, 100.0) / 100.0 * static_cast<double>(count_);
  std::size_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      return bucket_width_ * static_cast<double>(i + 1);
    }
  }
  return max_value_;
}

}  // namespace kairos
