// Small in-process parallelism primitives for embarrassingly parallel
// planning work: a fixed-size ThreadPool and a ParallelFor built on top of
// it. The Fleet facade uses these to probe and plan independent models
// concurrently (DESIGN.md Sec. 7); nothing here knows about planning.
//
// Tasks must do their own error handling through Status-shaped results;
// an exception escaping a task is captured and rethrown to the caller of
// ThreadPool::Wait() / ParallelFor() (first one wins, the rest are
// swallowed), so worker threads never terminate the process.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kairos {

/// Resolves a requested thread count: 0 means "hardware concurrency",
/// and the result is clamped to [1, jobs] so tiny workloads never spawn
/// idle workers.
std::size_t ParallelismFor(std::size_t requested, std::size_t jobs);

/// A fixed set of worker threads draining one FIFO task queue. Workers
/// start in the constructor and join in the destructor; Submit() after
/// destruction begins is undefined. The pool itself is not copyable.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 resolves to hardware concurrency).
  explicit ThreadPool(std::size_t threads);

  /// Drains remaining tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task raised (if one did).
  void Wait();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_ready_;   ///< signals workers
  std::condition_variable all_done_;     ///< signals Wait()
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;            ///< queued + running tasks
  bool stopping_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Runs fn(0) ... fn(n-1) across up to `threads` workers (0 = hardware
/// concurrency) and returns when all calls finished. Iterations must be
/// independent; writes to shared state need the caller's own
/// synchronization (the common pattern — each iteration writing slot i of
/// a pre-sized vector — needs none). Rethrows the first exception.
void ParallelFor(std::size_t n, std::size_t threads,
                 const std::function<void(std::size_t)>& fn);

/// The pool-reusing form: identical semantics, but the workers come from
/// `pool` instead of a pool spawned per call. Barrier-style drivers —
/// Fleet::ServeAll advancing its shards once per window, a search
/// evaluating one frontier per pruning round — call this many times per
/// run and must not pay thread spawn each time. The caller must own the
/// pool exclusively for the duration of the call: Wait() returns only
/// when *all* work submitted to the pool has finished.
void ParallelFor(ThreadPool& pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

}  // namespace kairos
