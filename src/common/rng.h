// Deterministic random number generation for simulation reproducibility.
//
// Every stochastic component takes an explicit Rng (or a seed) so that
// experiments are replayable; nothing in the library reads global entropy.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace kairos {

/// Thin wrapper over std::mt19937_64 with the distribution helpers the
/// workload generators need. Copyable; copies evolve independently.
class Rng {
 public:
  /// Seeds via SplitMix64 so that nearby raw seeds produce uncorrelated
  /// streams (raw mt19937_64 seeding is weak for small seed deltas).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Log-normal draw: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Exponential draw with the given rate (events per unit time).
  double Exponential(double rate);

  /// Poisson draw with the given mean.
  std::int64_t Poisson(double mean);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent child stream; useful to give each component
  /// its own stream from one experiment seed.
  Rng Fork();

  /// Access to the underlying engine for use with std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kairos
